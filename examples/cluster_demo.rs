//! A 3-server COT fleet on loopback: consistent-hash routing, background
//! warm-up, transparent splitting, and a streaming subscription.
//!
//! Run with `cargo run --example cluster_demo --release`. Each server is
//! an independent FERRET dealer whose `Warmup` refiller keeps its pool
//! shards full before demand arrives; the routed clients then drain
//! buffers instead of waiting on inline extensions.

use ironman_cluster::{ClusterClient, ClusterServerConfig, LocalCluster, WarmupConfig};
use ironman_core::{Backend, Engine};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::{Duration, Instant};

fn main() {
    let engine = Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let cluster = LocalCluster::spawn(
        3,
        &engine,
        &ClusterServerConfig {
            warmup: Some(WarmupConfig::default()),
            ..ClusterServerConfig::default()
        },
    )
    .expect("spawn fleet");
    let directory = cluster.directory();
    for server in directory.servers() {
        println!("fleet member {} at {}", server.name, server.addr);
    }

    let warm_target = engine.config().usable_outputs();
    cluster.wait_warm(warm_target, Duration::from_secs(60));
    println!("fleet warm (every server >= {warm_target} buffered COTs)\n");

    // Sticky routing: each session hashes to a home server.
    for session in ["alice", "bob", "carol", "dave"] {
        println!(
            "session {session:>6} -> home server {}",
            directory.home(session)
        );
    }

    // An oversized request splits transparently across the fleet.
    let mut client = ClusterClient::connect(directory, "alice").expect("connect");
    let max = client.max_request().expect("connected") as usize;
    let want = 2 * max + 500;
    let start = Instant::now();
    let batches = client.request_cots(want).expect("request");
    let split_elapsed = start.elapsed();
    let total: usize = batches.iter().map(ironman_core::CotBatch::len).sum();
    assert_eq!(total, want, "split request must deliver the exact total");
    for batch in &batches {
        batch.verify().expect("verified correlation");
    }
    println!(
        "\nsplit request: {want} COTs (> per-server max {max}) arrived as {} verified \
         batches in {split_elapsed:.2?}; per-server spread {:?}",
        batches.len(),
        client.served_per_server()
    );

    // A streaming subscription pushes chunks under credit backpressure.
    let start = Instant::now();
    let summary = client
        .stream_cots(50_000, 2000, |batch| batch.verify().expect("verified"))
        .expect("stream");
    let elapsed = start.elapsed();
    println!(
        "streamed {} COTs in {} chunks in {elapsed:.2?} ({:.0} COTs/s), accounting exact",
        summary.cots,
        summary.chunks,
        summary.cots as f64 / elapsed.as_secs_f64()
    );

    // Warm-up effectiveness is visible in the per-shard stats.
    println!();
    for (addr, stats) in client.stats_all() {
        let stats = stats.expect("reachable");
        let occupancy: Vec<u64> = stats.shard_stats.iter().map(|s| s.available).collect();
        println!(
            "server {addr}: served {} COTs, {} extensions ({} by warm-up), \
             shard occupancy {occupancy:?}",
            stats.cots_served, stats.extensions_run, stats.warmup_refills
        );
    }

    let final_stats = cluster.shutdown();
    let served: u64 = final_stats.iter().map(|s| s.cots_served).sum();
    println!("\nfleet shut down; {served} COTs served in total");
}
