//! A dynamic 3-server COT fleet on loopback: consistent-hash routing,
//! demand-steered fleet warm-up, transparent splitting, a streaming
//! subscription — and live membership churn (drain, kill, replace) that
//! clients ride out without an error.
//!
//! Run with `cargo run --example cluster_demo --release`. Each server is
//! an independent FERRET dealer; the fleet-level warm-up controller
//! steers refill budget toward whichever server carries the deepest
//! subscription backlog.

use ironman_cluster::{
    ClusterClient, ClusterServerConfig, FleetWarmupConfig, HealthConfig, LocalCluster,
};
use ironman_core::{Backend, Engine};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::{Duration, Instant};

fn main() {
    let engine = Engine::new(
        FerretConfig::recommended(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let mut cluster =
        LocalCluster::spawn(3, &engine, &ClusterServerConfig::default()).expect("spawn fleet");
    cluster.enable_fleet_warmup(FleetWarmupConfig::default());
    cluster.enable_health(HealthConfig::default());
    let directory = cluster.directory();
    let snapshot = directory.snapshot();
    println!("directory at epoch {}", snapshot.epoch());
    for member in snapshot.members() {
        println!(
            "  member {} ({}) at {}",
            member.id, member.name, member.addr
        );
    }

    let warm_target = engine.config().usable_outputs();
    cluster.wait_warm(warm_target, Duration::from_secs(60));
    println!("fleet warm (every server >= {warm_target} buffered COTs)\n");

    // Sticky routing: each session hashes to a home server.
    for session in ["alice", "bob", "carol", "dave"] {
        println!(
            "session {session:>6} -> home server {}",
            snapshot.home(session).expect("non-empty fleet")
        );
    }

    // An oversized request splits transparently across the fleet — the
    // visitor form reuses one batch across every chunk.
    let mut client = ClusterClient::connect(directory.clone(), "alice").expect("connect");
    let max = client.max_request().expect("connected") as usize;
    let want = 2 * max + 500;
    let start = Instant::now();
    let mut total = 0usize;
    let chunks = client
        .request_cots_with(want, |batch| {
            batch.verify().expect("verified correlation");
            total += batch.len();
        })
        .expect("request");
    assert_eq!(total, want, "split request must deliver the exact total");
    println!(
        "\nsplit request: {want} COTs (> per-server max {max}) arrived as {chunks} verified \
         chunks through one reused batch in {:.2?}; per-server spread {:?}",
        start.elapsed(),
        client.served_per_server()
    );

    // A streaming subscription pushes chunks under credit backpressure.
    let start = Instant::now();
    let summary = client
        .stream_cots(50_000, 2000, |batch| batch.verify().expect("verified"))
        .expect("stream");
    let elapsed = start.elapsed();
    println!(
        "streamed {} COTs in {} chunks in {elapsed:.2?} ({:.0} COTs/s), accounting exact",
        summary.cots,
        summary.chunks,
        summary.cots as f64 / elapsed.as_secs_f64()
    );

    // Membership churn, live: drain one server (hitless — no new homes),
    // kill another (the health checker evicts it), join a replacement.
    // The client keeps serving through every step.
    let ids = cluster.server_ids();
    cluster.drain_server(ids[0]);
    println!("\ndrained {} -> epoch {}", ids[0], directory.epoch());
    cluster.kill_server(ids[1]);
    let evicted_by = Instant::now() + Duration::from_secs(10);
    while directory.snapshot().member(ids[1]).is_some() && Instant::now() < evicted_by {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!(
        "killed {} -> health checker evicted it at epoch {}",
        ids[1],
        directory.epoch()
    );
    let replacement = cluster.spawn_server().expect("replacement joins");
    println!("joined {replacement} -> epoch {}", directory.epoch());
    let batches = client.request_cots(1000).expect("serve through churn");
    let churn_total: usize = batches.iter().map(|b| b.len()).sum();
    assert_eq!(churn_total, 1000);
    println!("served {churn_total} COTs straight through the churn, zero errors");

    // Warm-up steering, the epoch, and the v6 latency telemetry are
    // visible in the per-shard stats (quantiles are bucket ceilings,
    // within 6.25% of the true sample).
    let us = |nanos: u64| nanos as f64 / 1_000.0;
    println!();
    for (id, addr, stats) in client.stats_all() {
        let Some(stats) = stats else {
            println!("server {id} at {addr}: unreachable");
            continue;
        };
        let occupancy: Vec<u64> = stats.shard_stats.iter().map(|s| s.available).collect();
        let warm: Vec<u64> = stats.shard_stats.iter().map(|s| s.warm_refills).collect();
        println!(
            "server {id} at {addr}: epoch {}, served {} COTs, {} extensions, \
             shard occupancy {occupancy:?}, warm refills {warm:?}",
            stats.directory_epoch, stats.cots_served, stats.extensions_run
        );
        for (i, shard) in stats.shard_stats.iter().enumerate() {
            let req = &shard.latency.request_first_byte;
            let push = &shard.latency.chunk_push;
            println!(
                "  shard {i}: request->first-byte p50 {:.1}us / p99 {:.1}us ({} reqs), \
                 chunk push p50 {:.1}us / p99 {:.1}us ({} chunks)",
                us(req.p50()),
                us(req.p99()),
                req.count(),
                us(push.p50()),
                us(push.p99()),
                push.count()
            );
        }
        let svc = &stats.latency.request_first_byte;
        println!(
            "  service-wide request->first-byte p50 {:.1}us / p99 {:.1}us / p999 {:.1}us",
            us(svc.p50()),
            us(svc.p99()),
            us(svc.p999())
        );
    }

    let final_stats = cluster.shutdown();
    let served: u64 = final_stats.iter().map(|s| s.cots_served).sum();
    println!("\nfleet shut down; {served} COTs served in total");
}
