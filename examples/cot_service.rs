//! A COT service on a loopback socket serving several concurrent clients.
//!
//! Run with `cargo run --example cot_service --release`. The server plays
//! the Ironman host role: FERRET extensions refill a sharded pool while
//! PPML-style clients drain it over TCP sessions.

use ironman_core::{Backend, Engine};
use ironman_net::{CotClient, CotService, CotServiceConfig};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::Instant;

fn main() {
    let engine = Engine::new(
        FerretConfig::recommended(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let service = CotService::serve(
        "127.0.0.1:0",
        &engine,
        CotServiceConfig {
            shards: 4,
            seed: 2024,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind loopback service");
    let addr = service.addr();
    println!("cot-service listening on {addr}");

    let start = Instant::now();
    let clients: Vec<_> = (0..4)
        .map(|id| {
            std::thread::spawn(move || {
                let name = format!("worker-{id}");
                let mut client = CotClient::connect(addr, &name).expect("connect");
                let mut got = 0usize;
                for _ in 0..8 {
                    let batch = client.request_cots(500).expect("request");
                    batch.verify().expect("verified correlation");
                    got += batch.len();
                }
                let stats = client.transport_stats();
                println!(
                    "{name}: {got} COTs over {} payload bytes in {} messages",
                    stats.total_bytes(),
                    stats.messages_sent
                );
                got
            })
        })
        .collect();

    let total: usize = clients.into_iter().map(|t| t.join().expect("client")).sum();
    let elapsed = start.elapsed();
    let stats = service.shutdown();
    println!(
        "served {total} verified COTs to {} sessions in {:.2?} \
         ({} extensions across {} shards, {:.0} COTs/s)",
        stats.clients_served,
        elapsed,
        stats.extensions_run,
        stats.shards,
        total as f64 / elapsed.as_secs_f64()
    );

    // The v6 latency telemetry, per shard and service-wide: quantiles
    // are bucket ceilings (within 6.25% of the true sample).
    let us = |nanos: u64| nanos as f64 / 1_000.0;
    for (i, shard) in stats.shard_stats.iter().enumerate() {
        let req = &shard.latency.request_first_byte;
        let ext = &shard.latency.extension;
        println!(
            "shard {i}: request->first-byte p50 {:.1}us / p99 {:.1}us ({} reqs), \
             extension p50 {:.1}us / p99 {:.1}us ({} runs)",
            us(req.p50()),
            us(req.p99()),
            req.count(),
            us(ext.p50()),
            us(ext.p99()),
            ext.count()
        );
    }
    let req = &stats.latency.request_first_byte;
    println!(
        "service-wide: request->first-byte p50 {:.1}us / p99 {:.1}us / p999 {:.1}us \
         over {} requests",
        us(req.p50()),
        us(req.p99()),
        us(req.p999()),
        req.count()
    );
}
