//! Role switching with the unified architecture: the same party acts as
//! OT sender in one extension and OT receiver in the next — the capability
//! the unified unit (paper §5.2) exists for — and the communication effect
//! on OT-based MatMul (Fig. 16).
//!
//! ```sh
//! cargo run --release -p ironman-bench --example role_switching_matmul
//! ```

use ironman_nmp::{NmpConfig, OteSimulator, OteWork};
use ironman_ot::ferret::{run_extension, FerretConfig};
use ironman_ot::params::FerretParams;
use ironman_perf::NetworkModel;
use ironman_ppml::matmul::FIG16_DIMS;
use ironman_prg::Block;

fn main() {
    // --- Functional role switching -------------------------------------
    // Party A plays OT sender in session 1 and OT receiver in session 2;
    // party B does the opposite. Both sessions produce valid correlations
    // (on Ironman hardware the same XOR-tree datapath serves both roles).
    let cfg_fwd = FerretConfig::new(FerretParams::toy());
    let cfg_rev = FerretConfig {
        session_key: Block::from(0xBEEFu128), // fresh session
        ..FerretConfig::new(FerretParams::toy())
    };
    let fwd = run_extension(&cfg_fwd, 1); // A = sender
    let rev = run_extension(&cfg_rev, 2); // roles swapped: A = receiver
    fwd.verify().expect("forward session");
    rev.verify().expect("reversed session");
    println!(
        "role switching: A sent {} COTs as sender, consumed {} as receiver — both sessions verify",
        fwd.len(),
        rev.len()
    );

    // --- Hardware view: both roles sharing one PU (paper 1 / 5.2) -------
    let sim = OteSimulator::new(NmpConfig::with_ranks_and_cache(8, 256 * 1024));
    let work = OteWork {
        sample_rows: Some(4096),
        ..OteWork::ironman(100_000, 1024, 48, 16_384, 10)
    };
    let dual = sim.simulate_dual_role(&work, 7);
    println!(
        "dual-role PU: shared {} cycles vs back-to-back {} cycles ({:.2}x from overlap)",
        dual.shared_cycles,
        dual.sequential_cycles,
        dual.overlap_gain()
    );

    // --- The protocol-level payoff (Fig. 16) ----------------------------
    println!("\nOT-based MatMul communication (BERT/LLAMA shapes, 8-bit):");
    for d in FIG16_DIMS {
        println!(
            "  ({:>2},{:>4},{:>3}): {:>7.2} MB fixed-role -> {:>7.2} MB unified ({:.2}x), LAN latency {:.2}x",
            d.input,
            d.hidden,
            d.output,
            d.comm_without_unified_bytes() as f64 / 1e6,
            d.comm_with_unified_bytes() as f64 / 1e6,
            d.comm_reduction(),
            d.latency_reduction(&NetworkModel::LAN)
        );
    }
}
