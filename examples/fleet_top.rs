//! `top` for a COT fleet: a live per-server terminal view off the v7
//! observability plane — windowed supply/serve rates, stall ratios,
//! model-vs-measured headroom, SLO alert states, and the v8
//! fault-tolerance counters (injected faults, `Unavailable` declines,
//! evicted subscribers, client timeouts/retries), refreshed each second
//! while background load drives the fleet. A scripted mid-run outage —
//! the whole fleet starved into graceful degradation, one server's
//! links running with injected latency — and a heal play the supply
//! alert's whole lifecycle (pending → firing → resolved) out on screen:
//! supply is demand-driven, so only losing the *whole* fleet starves
//! it.
//!
//! Run with `cargo run --example fleet_top --release`. Iterations are
//! bounded, so it doubles as a CI-friendly smoke of the observer,
//! exporter, and headroom plumbing; the printed URL serves the same
//! state as Prometheus text (`/metrics`) and HTML (`/fleet`) while the
//! example runs.

use ironman_cluster::{
    AlertState, BurnWindows, ClusterClient, ClusterServerConfig, FleetExporterConfig,
    FleetObserverConfig, HeadroomModel, HealthConfig, LocalCluster, SloKind, SloSpec, WarmupConfig,
};
use ironman_core::{Backend, Engine};
use ironman_net::{FaultPlan, OpTimeouts, RetryPolicy};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const TICKS: usize = 14;

fn main() {
    let params = FerretParams::toy();
    let engine = Engine::new(FerretConfig::new(params), Backend::ironman_default());
    let mut cluster = LocalCluster::spawn(
        3,
        &engine,
        &ClusterServerConfig {
            warmup: Some(WarmupConfig::default()),
            ..ClusterServerConfig::default()
        },
    )
    .expect("spawn fleet");
    cluster.enable_health(HealthConfig {
        interval: Duration::from_millis(25),
        suspect_after: 1,
        evict_after: 4,
        ..HealthConfig::default()
    });
    cluster.enable_observer(FleetObserverConfig {
        interval: Duration::from_millis(50),
        slos: vec![SloSpec::new(
            "supply-floor",
            SloKind::SupplyRate {
                min_cots_per_sec: 1000.0,
            },
        )
        .with_windows(BurnWindows {
            fast: Duration::from_secs(1),
            slow: Duration::from_secs(3),
            clear_for: Duration::from_secs(1),
        })],
        ..FleetObserverConfig::default()
    });
    let exporter = cluster
        .enable_exporter(FleetExporterConfig {
            window: Duration::from_secs(1),
            model: Some(HeadroomModel::xeon(params)),
        })
        .expect("exporter binds");
    println!("scrape endpoint: http://{exporter}/metrics (human view: /fleet)\n");

    // Outage-tolerant background load so supply is demand-driven; v8
    // deadlines and seeded backoff so the outage shows up in the
    // client-side counters instead of a hang. Returns them at join.
    let stop = Arc::new(AtomicBool::new(false));
    let load = {
        let directory = cluster.directory();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = ClusterClient::connect(directory, "fleet-top-load").expect("connect");
            client.set_op_timeouts(OpTimeouts::uniform(Duration::from_millis(500)));
            client.set_retry_policy(RetryPolicy::new(
                Duration::from_millis(10),
                Duration::from_millis(250),
                0xF1EE,
            ));
            while !stop.load(Ordering::SeqCst) {
                if client.request_cots(256).is_err() {
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
            (
                client.timeouts_seen(),
                client.retries_spent(),
                client.unavailable_seen(),
            )
        })
    };

    let handle = cluster.observer_handle().expect("observer enabled");
    let model = HeadroomModel::xeon(params);
    for tick in 0..TICKS {
        std::thread::sleep(Duration::from_secs(1));
        // Scripted chaos: a third of the way in the whole fleet starves
        // into graceful degradation (`Unavailable` declines, a long
        // retry hint) and one server's links run with injected latency;
        // heal after two-thirds — the alert lifecycle plays out live.
        if tick == TICKS / 3 {
            let ids = cluster.server_ids();
            for &id in &ids {
                cluster.starve_server(id, Duration::from_secs(600));
            }
            cluster.inject_faults(
                ids[0],
                FaultPlan {
                    read_latency: Duration::from_millis(2),
                    ..FaultPlan::default()
                },
            );
            println!("== fleet outage: all servers starved, one with laggy links ==");
        }
        if tick == 2 * TICKS / 3 {
            cluster.heal_all();
            println!("== healed: degradation lifted, faults disarmed ==");
        }

        let Some(snapshot) = handle.latest() else {
            println!("[{tick:>2}s] waiting for first scrape");
            continue;
        };
        let window = handle.window(Duration::from_secs(1));
        println!(
            "[{tick:>2}s] epoch {}  members {}  scraped {}  buffered {}",
            snapshot.epoch,
            handle.members().len(),
            snapshot.servers.len(),
            snapshot.available,
        );
        // Gossip lag (v9): each server answers Stats with its *own*
        // replica's epoch; the spread against the most advanced scraped
        // replica is how far anti-entropy still has to travel.
        let max_epoch = snapshot
            .servers
            .iter()
            .map(|o| o.directory_epoch)
            .max()
            .unwrap_or(0);
        println!(
            "     server      up   supply/s    served/s   stall   util  headroom/s  faults  unavail  evict  epoch  lag"
        );
        for member in handle.members() {
            let obs = snapshot.server(member.id);
            let win = window
                .as_ref()
                .and_then(|w| w.servers.iter().find(|s| s.id == member.id));
            let (supply, served, stall) = win
                .map(|w| (w.supply_cots_per_sec, w.served_cots_per_sec, w.stall_ratio))
                .unwrap_or((0.0, 0.0, 0.0));
            let (util, headroom) = obs
                .map(|o| {
                    let h = model.server_headroom(o, supply);
                    (h.utilization, h.headroom_cots_per_sec)
                })
                .unwrap_or((0.0, 0.0));
            let (faults, unavailable, evicted) = obs
                .map(|o| (o.faults_injected, o.unavailable_sent, o.subscribers_evicted))
                .unwrap_or((0, 0, 0));
            let (epoch, lag) = obs
                .map(|o| {
                    (
                        o.directory_epoch.to_string(),
                        max_epoch.saturating_sub(o.directory_epoch).to_string(),
                    )
                })
                .unwrap_or_else(|| ("-".into(), "-".into()));
            println!(
                "     {:<10}  {:>2}  {:>9.0}  {:>10.0}  {:>6.3}  {:>5.3}  {:>10.0}  {:>6}  {:>7}  {:>5}  {:>5}  {:>3}",
                member.name,
                if obs.is_some() { "y" } else { "n" },
                supply,
                served,
                stall,
                util,
                headroom,
                faults,
                unavailable,
                evicted,
                epoch,
                lag,
            );
        }
        for alert in handle.alerts() {
            println!(
                "     alert {:<14} {:<9} fast {}  slow {}",
                alert.slo,
                alert.state.name(),
                alert.fast_value.map_or("-".into(), |v| format!("{v:.0}")),
                alert.slow_value.map_or("-".into(), |v| format!("{v:.0}")),
            );
        }
    }

    stop.store(true, Ordering::SeqCst);
    let (timeouts, retries, unavailable) = load.join().expect("load thread");
    let fired = handle
        .alerts()
        .iter()
        .any(|a| a.state != AlertState::Inactive);
    let (status, metrics) =
        ironman_net::http_get(exporter, "/metrics").expect("final exporter scrape");
    println!(
        "\nsupply alert {} the outage; load client saw {timeouts} timeouts, {retries} retries, \
         {unavailable} unavailable declines",
        if fired { "observed" } else { "slept through" },
    );
    println!(
        "final /metrics scrape: HTTP {status}, {} bytes, {} families",
        metrics.len(),
        metrics.lines().filter(|l| l.starts_with("# TYPE")).count(),
    );
    cluster.shutdown();
    println!("fleet down");
}
