//! Chosen-message oblivious transfer end to end (Fig. 2 of the paper):
//! extend base correlations into COTs, hash them into random OTs, then
//! obliviously transfer real messages — the receiver learns exactly the
//! chosen message of each pair, the sender learns nothing about the
//! choices.
//!
//! ```sh
//! cargo run --release -p ironman-bench --example ot_messaging
//! ```

use ironman_core::rot::rot_from_extension;
use ironman_ot::ferret::{run_extension, FerretConfig};
use ironman_ot::params::FerretParams;
use ironman_prg::Block;

fn main() {
    // Pre-processing: one extension's worth of COT correlations.
    let out = run_extension(&FerretConfig::new(FerretParams::toy()), 7);
    out.verify().expect("correlations must hold");
    let (sender, receiver) = rot_from_extension(&out, 0);
    println!("pre-processed {} random OTs", sender.len());

    // Online phase: the sender holds message pairs, the receiver wants one
    // of each pair by secret choice.
    let n = 8usize;
    let messages: Vec<(Block, Block)> = (0..n)
        .map(|i| {
            (
                Block::from(0x1000 + i as u128),
                Block::from(0x2000 + i as u128),
            )
        })
        .collect();
    let choices: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();

    // Receiver derandomizes its pre-generated random choices...
    let flips = receiver.derandomize(&choices);
    // ...the sender masks both messages of every pair...
    let masked = sender.mask(&messages, &flips);
    // ...and the receiver unmasks exactly the chosen ones.
    let got = receiver.unmask(&masked, &choices);

    for i in 0..n {
        let want = if choices[i] {
            messages[i].1
        } else {
            messages[i].0
        };
        assert_eq!(got[i], want);
        println!("OT {i}: choice {} -> {:x}", choices[i] as u8, got[i]);
    }
    println!("all {n} transfers delivered the chosen message only");
}
