//! Temporary lingering server for external wire probing. Delete me.
use ironman_core::{Backend, Engine};
use ironman_net::{CotService, CotServiceConfig};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;

fn main() {
    let engine = Engine::new(
        FerretConfig::recommended(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let service = CotService::serve(
        "127.0.0.1:47393",
        &engine,
        CotServiceConfig {
            shards: 2,
            seed: 77,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind");
    println!("ADDR {}", service.addr());
    std::thread::sleep(std::time::Duration::from_secs(120));
}
