//! Private-inference scenario: estimate how Ironman changes the
//! end-to-end latency of secure CNN/Transformer inference in the three
//! hybrid HE/MPC frameworks the paper evaluates (Table 5), driven by the
//! OT-extension speedup measured on the simulated accelerator.
//!
//! ```sh
//! cargo run --release -p ironman-bench --example private_inference
//! ```

use ironman_core::speedup::speedup_cell;
use ironman_ot::params::FerretParams;
use ironman_ppml::e2e::{accelerate, SpeedupAssumptions};
use ironman_ppml::TABLE5_WORKLOADS;

fn main() {
    // Measure the OT-extension speedup on the flagship configuration.
    let cell = speedup_cell(FerretParams::OT_2POW20, 16, 1024 * 1024, 99);
    println!(
        "simulated OTE: {:.2} ms/execution on Ironman vs {:.2} ms on CPU -> {:.1}x",
        cell.ironman_ms,
        cell.cpu_ms,
        cell.speedup_vs_cpu()
    );
    let assumptions = SpeedupAssumptions {
        hardware: cell.speedup_vs_cpu(),
        ..SpeedupAssumptions::default()
    };

    // Apply it to a few representative inference workloads.
    for name in ["ResNet50", "BERT-Large"] {
        for w in TABLE5_WORKLOADS.iter().filter(|w| w.model == name) {
            let r = accelerate(w, &assumptions);
            let (s_wan, s_lan) = r.speedups();
            println!(
                "{:<11} {:<12} LAN {:>7.1}s -> {:>6.1}s ({:.2}x)   WAN {:>7.1}s -> {:>6.1}s ({:.2}x)",
                w.framework.to_string(),
                w.model,
                w.base_lan_s,
                r.ours_lan_s,
                s_lan,
                w.base_wan_s,
                r.ours_wan_s,
                s_wan
            );
        }
    }
    println!(
        "\n(the full sixteen-row Table 5 regeneration: cargo run -p ironman-bench --bin tab05_e2e)"
    );
}
