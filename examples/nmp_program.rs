//! Drive the Ironman-NMP PU with its instruction set (paper Fig. 9):
//! compile one OTE execution into NMP instructions, inspect the wire
//! encoding, and interpret the program against the cycle models.
//!
//! ```sh
//! cargo run --release -p ironman-bench --example nmp_program
//! ```

use ironman_ggm::Arity;
use ironman_nmp::driver::{compile_ote, execute, ProgramContext};
use ironman_nmp::{NmpConfig, NmpOp};
use ironman_prg::{Block, PrgKind};

fn main() {
    let cfg = NmpConfig::with_ranks_and_cache(8, 256 * 1024);
    let ctx = ProgramContext {
        n: 1_221_516, // the 2^20 parameter set
        k: 168_000,
        weight: 10,
        leaves: 4096,
        arity: Arity::QUAD,
        prg: PrgKind::CHACHA8,
        seed: Block::from(0x1907u128),
        sample_rows: 8192,
    };

    // 1. Compile: host → instruction program.
    let program = compile_ote(&cfg, ctx.n, 480);
    println!(
        "compiled {} NMP instructions for one 2^20-set execution:",
        program.len()
    );
    for inst in program.iter().take(4) {
        println!("  {:?} -> wire {:#018x}", inst.op, inst.encode());
    }
    println!(
        "  ... ({} gathers, {} SPCOT batches, {} streams)",
        program.iter().filter(|i| i.op == NmpOp::LpnGather).count(),
        program
            .iter()
            .filter(|i| i.op == NmpOp::SpcotExpand)
            .count(),
        program.iter().filter(|i| i.op == NmpOp::ReadCot).count()
    );

    // 2. Interpret: program → cycles through the same DIMM/rank models the
    //    figure harnesses use.
    let report = execute(&cfg, &ctx, &program);
    println!("\nphase cycles:");
    println!("  vector broadcast {:>12}", report.write_cycles);
    println!(
        "  LPN gather       {:>12}  (slowest rank)",
        report.gather_cycles
    );
    println!(
        "  SPCOT expansion  {:>12}  (slowest DIMM)",
        report.spcot_cycles
    );
    println!(
        "  COT streaming    {:>12}  (overlap residual)",
        report.read_cycles
    );
    println!(
        "  total            {:>12}  = {:.3} ms at {} MHz",
        report.total_cycles(),
        cfg.cycles_to_ms(report.total_cycles()),
        cfg.clock_mhz()
    );
}
