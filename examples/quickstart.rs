//! Quickstart: generate correlated OTs with the Ironman engine, verify the
//! correlation, and compare the simulated accelerator latency against the
//! CPU baseline.
//!
//! ```sh
//! cargo run --release -p ironman-bench --example quickstart
//! ```

use ironman_core::{Backend, Engine};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;

fn main() {
    // 1. Pick a parameter set. `toy()` runs in milliseconds; the paper's
    //    production sets are `FerretParams::TABLE4`.
    let params = FerretParams::toy();
    println!("parameter set: {params}");

    // 2. Build the engine: 4-ary ChaCha8 GGM trees (the paper's SPCOT
    //    optimization) timed on the simulated 16-rank / 1 MB Ironman-NMP.
    let cfg = FerretConfig::new(params);
    let engine = Engine::new(cfg, Backend::ironman_default());

    // 3. Run one extension: two real protocol parties exchange SPCOT and
    //    LPN messages over in-memory channels.
    let run = engine.run_one(0xC0FFEE);
    run.cots
        .verify()
        .expect("every COT must satisfy z = y xor x*delta");

    println!("produced {} correlated OTs", run.cots.len());
    println!(
        "sender sent {} bytes, receiver sent {} bytes",
        run.timing.sender_bytes, run.timing.receiver_bytes
    );
    println!(
        "simulated Ironman latency {:.3} ms vs CPU model {:.3} ms -> {:.1}x",
        run.timing.ironman_ms.unwrap_or(f64::NAN),
        run.timing.cpu_model_ms,
        run.timing.speedup()
    );

    // 4. Scale the timing estimate to a production set without running the
    //    full-size protocol.
    let prod = Engine::new(
        FerretConfig::new(FerretParams::OT_2POW20),
        Backend::ironman_default(),
    );
    let t = prod.estimate_timing(1);
    println!(
        "2^20 production set estimate: {:.2} ms on Ironman vs {:.2} ms on CPU ({:.0}x)",
        t.ironman_ms.unwrap(),
        t.cpu_model_ms,
        t.speedup()
    );
}
