//! Workspace facade: re-exports every Ironman crate under one roof.
//!
//! The root package exists so the repository-level `examples/` and
//! `tests/` can depend on the whole workspace with a single manifest; the
//! re-exports below also give downstream users one import surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ironman_cache as cache;
pub use ironman_core as core;
pub use ironman_dram as dram;
pub use ironman_ggm as ggm;
pub use ironman_lpn as lpn;
pub use ironman_net as net;
pub use ironman_nmp as nmp;
pub use ironman_ot as ot;
pub use ironman_perf as perf;
pub use ironman_ppml as ppml;
pub use ironman_prg as prg;
