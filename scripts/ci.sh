#!/usr/bin/env bash
# Workspace CI: build, test (including the ironman-net TCP-loopback e2e),
# formatting, and lints. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

# Self-tee instead of `ci.sh | tee log`: piping from the outside makes the
# pipeline's exit status tee's, so a red run reads as green to anything
# checking $?. Writing the log from inside keeps our own exit status, and
# the EXIT trap prints an unmissable trailer either way.
CI_LOG="${CI_LOG:-ci.log}"
exec > >(tee "$CI_LOG") 2>&1
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "CI FAILED (exit $status)"; fi' EXIT

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test net_loopback (TCP loopback e2e)"
cargo test -q --test net_loopback

echo "==> cluster smoke: 3-server fleet, routed clients, one-shot + streaming paths"
cargo test -q -p ironman-cluster --test cluster_e2e

echo "==> membership-churn smoke: kill + rejoin one of three servers under load"
cargo test -q -p ironman-cluster --test churn

echo "==> multi-process partition/heal: child fleet through a blackhole proxy (MULTIPROC_WAIT_SECS=${MULTIPROC_WAIT_SECS:-30})"
# Real fleet_server child processes with per-replica directories, one
# partitioned via the FaultInjector proxy, membership mutated on both
# sides, healed, and required to converge to one epoch vector — plus the
# warm-standby vs cold failover timing race. MULTIPROC_WAIT_SECS bounds
# every convergence wait (and thus the whole test's runtime on a wedged
# fleet); the happy path finishes in ~10 s regardless.
MULTIPROC_WAIT_SECS="${MULTIPROC_WAIT_SECS:-30}" cargo test -q -p ironman-cluster --test multiproc

echo "==> observability e2e: exporter scrape parses + supply SLO fires on kill, resolves on heal"
cargo test -q -p ironman-cluster --test slo_e2e

echo "==> chaos soak: seeded faults + degradation + heal (CHAOS_SOAK_SECS=${CHAOS_SOAK_SECS:-2})"
# Deterministic fault injection end-to-end: consume-once accounting under
# stalls/resets/bit-flips, typed bounded failure on a blackholed fleet,
# supply SLO firing through a starvation outage, and slow-subscriber
# eviction. CHAOS_SOAK_SECS stretches the scripted soak (default 2 s for
# the CI quick mode; set 30+ for a real soak).
CHAOS_SOAK_SECS="${CHAOS_SOAK_SECS:-2}" cargo test -q -p ironman-cluster --test chaos_soak

echo "==> cluster_loopback bench (--quick; refreshes BENCH_cluster.json)"
cargo run --release -p ironman-bench --bin cluster_loopback -- --quick

echo "==> hot-path bench (--quick; refreshes BENCH_hot_path.json)"
cargo run --release -p ironman-bench --bin hot_path -- --quick

echo "==> extension bench, forced-scalar dispatch (--quick)"
# First pass pins IRONMAN_SIMD=scalar so the scalar tier keeps its own
# throughput floor even on AVX2 hosts; the auto-detect pass runs second
# so the checked-in BENCH_extension.json always reflects the dispatch
# the library would actually pick on this machine.
IRONMAN_SIMD=scalar cargo run --release -p ironman-bench --bin extension -- --quick
mv BENCH_extension.json BENCH_extension_scalar.json

echo "==> extension bench, auto-detected dispatch (--quick; refreshes BENCH_extension.json)"
cargo run --release -p ironman-bench --bin extension -- --quick

echo "==> serving-throughput floors (quick mode, best-of-N)"
# Floors derived from the refreshed BENCH_cluster.json after the zero-copy
# hot-path PR: quick-mode cot_service_single measures ~225-280K COTs/s on
# the CI box (full mode ~750K) where the pre-zero-copy path managed ~140K
# quick (~207K full); quick cluster_streaming measures ~4M COTs/s against
# ~200K before. The floors sit between the two regimes with margin for
# scheduler noise, so a regression to the old copy-heavy path fails CI
# while an unlucky run does not.
check_floor() { # file name floor
  v=$(sed -n "s/.*\"name\": \"$2\".*\"cots_per_sec\": \([0-9.]*\).*/\1/p" "$1")
  if [ -z "$v" ]; then echo "FLOOR CHECK: $2 missing from $1"; exit 1; fi
  awk -v v="$v" -v f="$3" -v n="$2" 'BEGIN {
    if (v + 0 < f + 0) { printf "FLOOR CHECK: %s at %.0f COTs/s is below floor %.0f\n", n, v, f; exit 1 }
    printf "floor ok: %s at %.0f COTs/s (floor %.0f)\n", n, v, f
  }'
}
# The serving floors are latency-sensitive: on the shared one-core CI
# box a host-slowness burst can depress an entire best-of-5 window
# (observed 120K draws on trees that measure 200K+ in a calm window —
# including the pre-chaos-PR baseline, so it is machine noise, not a
# code regression). A structural regression to the old copy-heavy path
# fails every window deterministically, so a floor miss gets up to two
# settled re-measurements before it fails the gate.
cluster_floors() {
  check_floor BENCH_cluster.json cot_service_single 180000 \
    && check_floor BENCH_cluster.json cluster_streaming 1000000
}
if ! cluster_floors; then
  for retry in 1 2; do
    echo "serving-floor miss (attempt $retry): settling 60s, re-measuring"
    sleep 60
    cargo run --release -q -p ironman-bench --bin cluster_loopback -- --quick
    if cluster_floors; then break; fi
    [ "$retry" = 2 ] && { echo "serving floors failed after settled retries"; exit 1; }
  done
fi
# Raw-extension floors: a single pipelined session on the LPN-heavy set
# with the recommended split kernel measures ~10-11M COTs/s under
# auto-detected AVX2/BMI2 dispatch and ~8.5-9M forced scalar (best-of-N
# quick mode, slow-host day; a calm host runs ~1.4x those), against
# ~6-7M for the naive kernels and well under 2M if the supply path
# regresses structurally (per-refill bootstraps, extra copies, broken
# schedule caching). Each floor sits between the naive and measured
# regimes with ~1.5x host-noise margin, so a regression to naive
# kernels or a broken SIMD tier fails while an unlucky window does not
# (same settled-retry treatment as the serving floors). Kernel-ranking
# regressions are guarded separately by the head-to-head table in
# BENCH_extension.json and the equivalence proptests.
extension_floors() {
  check_floor BENCH_extension.json extend_recommended 7000000 \
    && check_floor BENCH_extension_scalar.json extend_recommended 5500000
}
if ! extension_floors; then
  for retry in 1 2; do
    echo "extension-floor miss (attempt $retry): settling 60s, re-measuring"
    sleep 60
    IRONMAN_SIMD=scalar cargo run --release -q -p ironman-bench --bin extension -- --quick
    mv BENCH_extension.json BENCH_extension_scalar.json
    cargo run --release -q -p ironman-bench --bin extension -- --quick
    if extension_floors; then break; fi
    [ "$retry" = 2 ] && { echo "extension floors failed after settled retries"; exit 1; }
  done
fi

echo "==> telemetry-overhead head-to-head (--quick; refreshes BENCH_telemetry.json)"
# Two builds of one binary: --features telemetry-noop compiles every
# histogram record, trace push, and call-site Stopwatch clock read to
# nothing. The feature unifies across the workspace, so the no-op build
# is parked aside before the instrumented rebuild clobbers it; the
# instrumented binary then alternates baseline/live rounds adjacent in
# time (--pair-with) and reports the median CPU-per-COT ratio, which
# must show instrumentation costing under 3% of the serving hot path.
cargo build --release -p ironman-bench --features telemetry-noop --bin telemetry_overhead
cp target/release/telemetry_overhead target/release/telemetry_overhead_noop
cargo build --release -p ironman-bench --bin telemetry_overhead
./target/release/telemetry_overhead --quick --pair-with target/release/telemetry_overhead_noop
ratio=$(sed -n 's/.*"overhead_ratio": \([0-9.]*\).*/\1/p' BENCH_telemetry.json)
if [ -z "$ratio" ]; then echo "TELEMETRY GATE: overhead_ratio missing/null in BENCH_telemetry.json"; exit 1; fi
awk -v r="$ratio" 'BEGIN {
  if (r + 0 < 0.97) { printf "TELEMETRY GATE: instrumented/no-op ratio %.4f below 0.97 (overhead > 3%%)\n", r; exit 1 }
  printf "telemetry gate ok: instrumented/no-op CPU-per-COT ratio %.4f (>= 0.97)\n", r
}'

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
