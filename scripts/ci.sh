#!/usr/bin/env bash
# Workspace CI: build, test (including the ironman-net TCP-loopback e2e),
# formatting, and lints. Run from anywhere; operates on the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --test net_loopback (TCP loopback e2e)"
cargo test -q --test net_loopback

echo "==> cluster smoke: 3-server fleet, routed clients, one-shot + streaming paths"
cargo test -q -p ironman-cluster --test cluster_e2e

echo "==> cluster_loopback bench (--quick; refreshes BENCH_cluster.json)"
cargo run --release -p ironman-bench --bin cluster_loopback -- --quick

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
