//! Criterion benchmark for full two-party Ferret extensions (toy-scale:
//! the same code path as Table 4, sized for a benchmark loop).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironman_ot::channel::run_protocol;
use ironman_ot::dealer::Dealer;
use ironman_ot::ferret::{run_extension, FerretConfig};
use ironman_ot::iknp::{iknp_recv, iknp_send, setup_base};
use ironman_ot::params::FerretParams;
use std::time::Duration;

fn bench_ferret(c: &mut Criterion) {
    let mut g = c.benchmark_group("ferret_extension");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500));
    let params = FerretParams::toy();
    g.throughput(Throughput::Elements(params.n as u64));

    let ironman = FerretConfig::new(params);
    g.bench_function("ironman_4ary_chacha", |b| {
        b.iter(|| run_extension(&ironman, 1).z[0])
    });

    let baseline = FerretConfig::ferret_baseline(params);
    g.bench_function("baseline_2ary_aes", |b| {
        b.iter(|| run_extension(&baseline, 1).z[0])
    });

    // The pre-PCG baseline for the same output count: linear communication,
    // less computation.
    g.bench_function("iknp_same_outputs", |b| {
        b.iter(|| {
            let mut dealer = Dealer::new(1);
            let delta = dealer.random_delta();
            let (seeds, pairs) = setup_base(&mut dealer, delta);
            let n = params.n;
            let x: Vec<bool> = (0..n).map(|j| j % 2 == 0).collect();
            let (s, _, _, _) = run_protocol(
                move |ch| iknp_send(ch, delta, &seeds, n).unwrap(),
                move |ch| iknp_recv(ch, &pairs, &x).unwrap(),
            );
            s.r0()[0]
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ferret);
criterion_main!(benches);
