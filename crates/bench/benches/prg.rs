//! Criterion microbenchmarks for the PRG primitives (Table 2's software
//! counterpart): AES-128 block encryption, ChaCha8/20 block function, and
//! the correlation-robust hash.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironman_prg::{Aes128, Block, ChaCha, Crhf};
use std::hint::black_box;
use std::time::Duration;

fn bench_prg(c: &mut Criterion) {
    let mut g = c.benchmark_group("prg");
    g.sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200));

    let aes = Aes128::new(Block::from(1u128));
    g.throughput(Throughput::Bytes(16));
    g.bench_function("aes128_block", |b| {
        let mut x = Block::from(7u128);
        b.iter(|| {
            x = aes.encrypt_block(black_box(x));
            x
        })
    });

    for rounds in [8u32, 20] {
        let cc = ChaCha::from_session_key(Block::from(2u128), rounds);
        g.throughput(Throughput::Bytes(64));
        g.bench_function(format!("chacha{rounds}_block"), |b| {
            let mut x = Block::from(9u128);
            b.iter(|| {
                let out = cc.expand_block(black_box(x));
                x = out[0];
                x
            })
        });
    }

    let h = Crhf::new();
    g.throughput(Throughput::Bytes(16));
    g.bench_function("crhf_hash", |b| {
        let mut x = Block::from(3u128);
        b.iter(|| {
            x = h.hash(5, black_box(x));
            x
        })
    });
    g.finish();
}

criterion_group!(benches, bench_prg);
criterion_main!(benches);
