//! Criterion benchmarks for the LPN encoder, plain vs. index-sorted
//! (the software counterpart of §5.3's locality argument: the sorted
//! matrix touches memory more coherently, which shows up as wall-clock
//! even on a CPU).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{encoder, LpnMatrix, SortedLpnMatrix};
use ironman_prg::Block;
use std::hint::black_box;
use std::time::Duration;

const N: usize = 32_768;
const K: usize = 65_536;

fn bench_lpn(c: &mut Criterion) {
    let mut g = c.benchmark_group("lpn_encode");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(N as u64));

    let matrix = LpnMatrix::generate(N, K, 10, Block::from(1u128));
    let sorted = SortedLpnMatrix::sort(&matrix, SortConfig::default());
    let input: Vec<Block> = (0..K as u128).map(|i| Block::from(i * 7 + 1)).collect();

    g.bench_function("plain_csr", |b| {
        b.iter(|| {
            let mut acc = vec![Block::ZERO; N];
            encoder::encode_blocks(&matrix, black_box(&input), &mut acc);
            acc[0]
        })
    });
    g.bench_function("sorted_csr", |b| {
        b.iter(|| {
            let mut acc = vec![Block::ZERO; N];
            sorted.encode_blocks(black_box(&input), &mut acc);
            acc[0]
        })
    });
    g.bench_function("bits", |b| {
        let bits: Vec<bool> = (0..K).map(|i| i % 3 == 0).collect();
        b.iter(|| {
            let mut acc = vec![false; N];
            encoder::encode_bits(&matrix, black_box(&bits), &mut acc);
            acc[0]
        })
    });
    g.finish();
}

criterion_group!(benches, bench_lpn);
criterion_main!(benches);
