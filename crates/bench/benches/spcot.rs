//! Criterion benchmark for full two-party SPCOT executions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironman_ggm::Arity;
use ironman_ot::channel::run_protocol;
use ironman_ot::dealer::Dealer;
use ironman_ot::spcot::{spcot_recv, spcot_send, SpcotConfig};
use ironman_prg::{Block, PrgKind};
use std::time::Duration;

fn run_spcot(arity: Arity, prg: PrgKind, leaves: usize) {
    let cfg = SpcotConfig {
        arity,
        prg,
        leaves,
        session_key: Block::from(3u128),
    };
    let mut dealer = Dealer::new(42);
    let delta = dealer.random_delta();
    let (mut sb, mut rb) = dealer.deal_cot(delta, cfg.base_cots_needed());
    let seed = dealer.random_block();
    run_protocol(
        move |ch| {
            let mut tweak = 0;
            spcot_send(ch, &cfg, &mut sb, seed, &mut tweak).unwrap()
        },
        move |ch| {
            let mut tweak = 0;
            spcot_recv(ch, &cfg, &mut rb, 100, &mut tweak).unwrap()
        },
    );
}

fn bench_spcot(c: &mut Criterion) {
    let mut g = c.benchmark_group("spcot");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(1024));
    g.bench_function("2ary_aes_l1024", |b| {
        b.iter(|| run_spcot(Arity::BINARY, PrgKind::Aes, 1024))
    });
    g.bench_function("4ary_chacha_l1024", |b| {
        b.iter(|| run_spcot(Arity::QUAD, PrgKind::CHACHA8, 1024))
    });
    g.finish();
}

criterion_group!(benches, bench_spcot);
criterion_main!(benches);
