//! Criterion benchmark for the pipeline-schedule simulator (Fig. 8) and
//! the rank-level LPN simulator — the two cycle models the figures lean
//! on hardest.

use criterion::{criterion_group, criterion_main, Criterion};
use ironman_ggm::schedule::simulate;
use ironman_ggm::{Arity, ExpansionSchedule, PipelineModel};
use ironman_nmp::rank_lpn::{simulate_rank, LpnWork};
use ironman_nmp::NmpConfig;
use std::hint::black_box;
use std::time::Duration;

fn bench_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("cycle_models");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));

    for s in ExpansionSchedule::ALL {
        g.bench_function(format!("schedule_{s}_16trees_l1024"), |b| {
            b.iter(|| simulate(s, PipelineModel::CHACHA8, 16, Arity::QUAD, 1024).cycles)
        });
    }

    let cfg = NmpConfig::with_ranks_and_cache(2, 256 * 1024);
    let trace: Vec<u32> = (0..100_000u32)
        .map(|i| i.wrapping_mul(7919) % 1_000_000)
        .collect();
    g.bench_function("rank_lpn_100k_accesses", |b| {
        b.iter(|| simulate_rank(&cfg, black_box(&LpnWork::exact(trace.clone()))).cycles)
    });
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
