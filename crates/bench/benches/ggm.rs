//! Criterion benchmarks for GGM tree expansion — the software counterpart
//! of Fig. 13(a)'s ablation (arity × PRG).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ironman_ggm::{Arity, GgmTree, HalfTreePrg};
use ironman_prg::{AesTreePrg, Block, ChaChaTreePrg};
use std::hint::black_box;
use std::time::Duration;

const LEAVES: usize = 4096;

fn bench_ggm(c: &mut Criterion) {
    let mut g = c.benchmark_group("ggm_expand");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_millis(300));
    g.throughput(Throughput::Elements(LEAVES as u64));

    let aes2 = AesTreePrg::new(Block::from(1u128), 2);
    g.bench_function("2ary_aes_l4096", |b| {
        b.iter(|| {
            GgmTree::expand(&aes2, black_box(Block::from(5u128)), Arity::BINARY, LEAVES).leaf_sum()
        })
    });

    let aes4 = AesTreePrg::new(Block::from(1u128), 4);
    g.bench_function("4ary_aes_l4096", |b| {
        b.iter(|| {
            GgmTree::expand(&aes4, black_box(Block::from(5u128)), Arity::QUAD, LEAVES).leaf_sum()
        })
    });

    let cc = ChaChaTreePrg::new(Block::from(1u128), 8);
    g.bench_function("2ary_chacha_l4096", |b| {
        b.iter(|| {
            GgmTree::expand(&cc, black_box(Block::from(5u128)), Arity::BINARY, LEAVES).leaf_sum()
        })
    });
    g.bench_function("4ary_chacha_l4096", |b| {
        b.iter(|| {
            GgmTree::expand(&cc, black_box(Block::from(5u128)), Arity::QUAD, LEAVES).leaf_sum()
        })
    });

    let ht = HalfTreePrg::new(Block::from(1u128));
    g.bench_function("halftree_2ary_l4096", |b| {
        b.iter(|| {
            GgmTree::expand(&ht, black_box(Block::from(5u128)), Arity::BINARY, LEAVES).leaf_sum()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ggm);
criterion_main!(benches);
