//! Regenerates **Figure 1(b)**: Ferret protocol latency split
//! (Init / SPCOT / LPN) per Table 4 parameter set on the CPU baseline.

use ironman_bench::{f2, header, row};
use ironman_core::engine::spcot_aes_equiv_ops;
use ironman_ot::params::FerretParams;
use ironman_perf::{CpuModel, OteWorkload};
use ironman_prg::PrgKind;

fn main() {
    let cpu = CpuModel::xeon_single_thread();
    header(
        "Fig. 1(b): CPU Ferret latency split (s)",
        &["#OTs", "init", "SPCOT", "LPN", "total"],
    );
    for p in FerretParams::TABLE4 {
        let w = OteWorkload::from_counts(
            p.t as u64,
            spcot_aes_equiv_ops(PrgKind::Aes, 2, p.leaves),
            p.n as u64,
            10,
        );
        let l = cpu.execution_latency(&w, true);
        row(&[
            format!("2^{}", p.log_target),
            f2(l.init_s),
            f2(l.spcot_s),
            f2(l.lpn_s),
            f2(l.total_s()),
        ]);
    }
    println!("\nshape check: SPCOT+LPN dominate and grow with the OT count (Fig. 1b)");
}
