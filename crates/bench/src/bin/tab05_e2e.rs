//! Regenerates **Table 5**: end-to-end PPML inference latency under two
//! network settings, composing the paper's measured baselines with the
//! OT-extension speedup measured from this workspace's NMP simulator.

use ironman_bench::{f2, header, pct, row, times};
use ironman_core::speedup::speedup_cell;
use ironman_ot::params::FerretParams;
use ironman_ppml::e2e::{reproduce_table5, SpeedupAssumptions};

fn main() {
    let hw = speedup_cell(FerretParams::OT_2POW20, 16, 1024 * 1024, 5).speedup_vs_cpu();
    let assumptions = SpeedupAssumptions {
        hardware: hw,
        ..SpeedupAssumptions::default()
    };
    println!("measured hardware OTE speedup: {hw:.1}x (flagship config)");

    header(
        "Table 5: end-to-end latency (s)",
        &[
            "framework",
            "model",
            "baseWAN",
            "oursWAN",
            "spdW",
            "baseLAN",
            "oursLAN",
            "spdL",
            "dev",
        ],
    );
    let rows = reproduce_table5(&assumptions);
    let mut mean_dev = 0.0;
    for r in &rows {
        let (sw, sl) = r.speedups();
        let (dw, dl) = r.deviation_vs_paper();
        mean_dev += (dw + dl) / 2.0 / rows.len() as f64;
        row(&[
            r.workload.framework.to_string(),
            r.workload.model.to_string(),
            f2(r.workload.base_wan_s),
            f2(r.ours_wan_s),
            times(sw),
            f2(r.workload.base_lan_s),
            f2(r.ours_lan_s),
            times(sl),
            pct((dw + dl) / 2.0),
        ]);
    }
    println!(
        "\nmean deviation vs paper-reported latencies: {}",
        pct(mean_dev)
    );
    println!("paper bands: WAN 1.32x-1.83x, LAN 1.95x-3.40x");
}
