//! Regenerates **Figure 7**: m-ary tree sweep — PRG operations (a),
//! online communication (b), and WAN/LAN latency (c) as functions of the
//! tree arity. Operation and byte counts are *measured* from real
//! protocol executions, then scaled to the 2^20 parameter set.

use ironman_bench::{f2, f3, header, row, times};
use ironman_ggm::Arity;
use ironman_ot::channel::run_protocol;
use ironman_ot::dealer::Dealer;
use ironman_ot::params::FerretParams;
use ironman_ot::spcot::{spcot_recv, spcot_send, SpcotConfig};
use ironman_perf::NetworkModel;
use ironman_prg::{Block, PrgKind};

fn main() {
    let p = FerretParams::OT_2POW20;
    header(
        "Fig. 7: m-ary sweep (2^20 set, ChaCha8 PRG)",
        &["m", "ops x1e7", "red. vs 2", "comm MB", "WAN s", "LAN s"],
    );
    let mut ops_m2 = 0.0f64;
    for arity in Arity::SWEEP {
        let cfg = SpcotConfig {
            arity,
            prg: PrgKind::CHACHA8,
            leaves: p.leaves,
            session_key: Block::from(7u128),
        };
        // One real SPCOT: measure PRG calls and bytes on the wire.
        let mut dealer = Dealer::new(arity.get() as u64);
        let delta = dealer.random_delta();
        let (mut sb, mut rb) = dealer.deal_cot(delta, cfg.base_cots_needed());
        let seed = dealer.random_block();
        let (s_out, _r_out, s_stats, r_stats) = run_protocol(
            move |ch| {
                let mut tweak = 0;
                spcot_send(ch, &cfg, &mut sb, seed, &mut tweak).unwrap()
            },
            move |ch| {
                let mut tweak = 0;
                spcot_recv(ch, &cfg, &mut rb, 1234, &mut tweak).unwrap()
            },
        );
        // Scale to the whole execution: t trees, batched per level so the
        // round count is per-level, not per-tree.
        let ops = s_out.counter.total() as f64 * p.t as f64;
        if arity == Arity::BINARY {
            ops_m2 = ops;
        }
        let bytes = (s_stats.bytes_sent + r_stats.bytes_sent) * p.t as u64;
        let rounds = s_stats.rounds + r_stats.rounds + 1;
        let wan = NetworkModel::WAN.protocol_time_s(bytes, rounds);
        let lan = NetworkModel::LAN.protocol_time_s(bytes, rounds);
        row(&[
            arity.get().to_string(),
            f3(ops / 1e7),
            times(ops_m2 / ops),
            f2(bytes as f64 / 1e6),
            f2(wan * 1e3),
            f3(lan * 1e3),
        ]);
    }
    println!("\ncolumns 5-6 are milliseconds (bytes term + per-level rounds).");
    println!(
        "shape check (paper Fig. 7): ops fall ~3x from m=2 to m=4 and saturate (~3.9x at 32);"
    );
    println!(
        "communication grows with m, so bandwidth-limited (WAN) latency degrades for large m;"
    );
    println!("m=4 is the sweet spot the paper selects. In this measurement the per-level round");
    println!("count also shrinks with m, which partly offsets the byte growth at high RTT.");
}
