//! Regenerates **Table 6**: the Ironman-NMP design overhead.

use ironman_bench::{f2, f3, header, row};
use ironman_perf::area_power::{nmp_cost_for_cache, CHACHA8_CORE, DRAM_CHIP, NMP_1MB, NMP_256KB};

fn main() {
    header(
        "Table 6: design overhead of Ironman-NMP",
        &["component", "area mm2", "power W"],
    );
    row(&[
        "ChaCha8 core".to_string(),
        f3(CHACHA8_CORE.area_mm2),
        f3(CHACHA8_CORE.power_mw / 1000.0),
    ]);
    row(&[
        "NMP (256KB)".to_string(),
        f3(NMP_256KB.area_mm2),
        f3(NMP_256KB.power_w),
    ]);
    row(&[
        "NMP (1MB)".to_string(),
        f3(NMP_1MB.area_mm2),
        f3(NMP_1MB.power_w),
    ]);
    row(&[
        "DRAM chip".to_string(),
        f2(DRAM_CHIP.area_mm2),
        f2(DRAM_CHIP.power_w),
    ]);

    header(
        "interpolated PU cost per cache size (Fig. 14 area axis)",
        &["cache KB", "area mm2"],
    );
    for kb in [32usize, 64, 128, 256, 512, 1024, 2048] {
        row(&[kb.to_string(), f3(nmp_cost_for_cache(kb * 1024).area_mm2)]);
    }
    println!(
        "\narea share of a typical DRAM chip: {:.1}% (256KB) / {:.1}% (1MB)",
        100.0 * NMP_256KB.area_mm2 / DRAM_CHIP.area_mm2,
        100.0 * NMP_1MB.area_mm2 / DRAM_CHIP.area_mm2
    );
}
