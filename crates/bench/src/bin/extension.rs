//! Raw FERRET supply-ceiling bench: the extension compute core measured
//! kernel by kernel and end to end, head-to-head in one run.
//!
//! PR 3/4 made *serving* nearly free, so the supply ceiling is the
//! extension itself — dominated at Table-4 scale by the memory-bound LPN
//! encode (paper §5.3, Fig. 1c). This bench measures:
//!
//! * **LPN block kernels** on an `OT_2POW20`-class matrix (`k = 168_000`,
//!   `d = 10`): row-major naive vs cache-blocked tiled, each with and
//!   without the §5.3 offline sort — all four against the same matrix
//!   and inputs, best-of-N.
//! * **LPN bit kernels**: the receiver's `x = e·A ⊕ u` half as
//!   `Vec<bool>` (naive) vs packed `u64` words, row-major and tiled.
//! * **SIMD dispatch head-to-head**: every [`ironman_lpn::simd`] entry
//!   point (blocks, packed bits, skip-zero probe, fused pair; row-major
//!   and tiled) at each runtime-available level — scalar vs AVX2/BMI2
//!   wide — so lane-selection claims are measured, not assumed. The
//!   skip-zero rows bench the input-bit test against the branchless
//!   lane honestly (it loses on dense pseudorandom inputs; the rows
//!   prove it).
//! * **Session LPN composite**: one extension's LPN compute across both
//!   party threads (sender blocks + receiver half — they share the
//!   single core in a `CotSession`), naive vs the fused tiled+packed
//!   pair vs the split receiver (tiled block half + row-major packed
//!   bit half) that [`FerretConfig::recommended`] now picks.
//! * **Raw single-session `extend`**: a persistent [`CotSession`] at an
//!   LPN-heavy parameter set, naive kernels vs
//!   [`FerretConfig::recommended`], COTs/s.
//! * **Shared-matrix spawn costs**: session spawn-to-first-batch with a
//!   config that builds its own LPN matrix vs one carrying the
//!   `Arc`-shared prebuilt matrix, plus generation counts and the
//!   matrix working set — the memory/latency numbers behind sharing
//!   one matrix across all shard sessions.
//!
//! Emits the human table plus `BENCH_extension.json`. `--quick` shrinks
//! `n` and iteration counts for CI smoke use (same `k`, so the kernels
//! still see the 2^20-class input working set).
//!
//! `trace_dump` mode (`-- trace_dump [--quick]`) skips the kernel
//! matrix entirely: it runs a pipelined session while draining it
//! faster than it extends, then prints the session's v6 event ring as a
//! per-extension SPCOT vs LPN vs stall breakdown — the trace-level view
//! of the same supply story the throughput numbers summarize.

use ironman_bench::{best_of, f2, header, row, times};
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{encoder, simd, LpnMatrix, PackedBits, SimdLevel, SortedLpnMatrix};
use ironman_ot::ferret::{FerretConfig, LpnKernel};
use ironman_ot::params::FerretParams;
use ironman_ot::session::CotSession;
use ironman_prg::Block;
use ironman_telemetry::{unpack_phase_split, EventKind};
use std::time::Instant;

/// An LPN-dominated parameter set for the raw-`extend` measurement: the
/// 2^20-class input (`k = 168_000`, `d = 10`) with small, cheap GGM
/// trees, so the extension's wall time is the encode the kernels
/// rewrote rather than tree PRG calls. **Bench-only, not secure.**
fn lpn_heavy() -> FerretParams {
    FerretParams {
        log_target: 20,
        n: 1 << 20,
        leaves: 512,
        k: 168_000,
        t: 128,
    }
}

struct ExtendResult {
    name: &'static str,
    cots: u64,
    secs: f64,
}

impl ExtendResult {
    fn cots_per_sec(&self) -> f64 {
        self.cots as f64 / self.secs
    }
}

/// Raw single-session supply: one pipelined [`CotSession`] (both party
/// threads on this core), draining `batches` staged extensions. The
/// session bootstrap (dealer, matrix + tile-schedule build, thread
/// spawns) happens before the clock starts; the first batch is awaited
/// untimed so the measurement sees the steady pipeline.
fn bench_extend(name: &'static str, cfg: &FerretConfig, batches: usize) -> ExtendResult {
    let session = CotSession::spawn(cfg, 808, 2);
    let first = session.recv().expect("session alive");
    let delta = session.delta();
    let per = first.len() as u64;
    let t = Instant::now();
    let mut cots = 0u64;
    let mut last = first;
    for _ in 0..batches {
        last = session.recv().expect("session alive");
        cots += last.len() as u64;
    }
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(last.len() as u64, per);
    for i in (0..last.len()).step_by(997) {
        assert_eq!(last.z[i], last.y[i] ^ delta.and_bit(last.x[i]), "COT {i}");
    }
    ExtendResult { name, cots, secs }
}

struct KernelResult {
    name: &'static str,
    gathers: u64,
    secs: f64,
}

impl KernelResult {
    fn gathers_per_sec(&self) -> f64 {
        self.gathers as f64 / self.secs
    }
}

/// One timed pass of a kernel closure over `iters` repetitions.
fn time_kernel(
    name: &'static str,
    iters: usize,
    gathers_per_iter: u64,
    mut run: impl FnMut(),
) -> KernelResult {
    let t = Instant::now();
    for _ in 0..iters {
        run();
    }
    KernelResult {
        name,
        gathers: gathers_per_iter * iters as u64,
        secs: t.elapsed().as_secs_f64(),
    }
}

/// `trace_dump` mode: drain a pipelined session end to end, then replay
/// its event ring as a per-extension table. Every `ExtensionEnd` carries
/// the SPCOT/LPN phase split packed in its argument; `StallEnd` carries
/// the consumer's blocked time — so the dump shows, extension by
/// extension, where one FERRET iteration's wall time went and when the
/// consumer outran the supply.
fn run_trace_dump(quick: bool) {
    let params = lpn_heavy();
    let cfg = FerretConfig::recommended(params);
    let batches = if quick { 4 } else { 8 };
    let session = CotSession::spawn(&cfg, 808, 2);
    let mut cots = 0u64;
    for _ in 0..batches {
        // recv() faster than extensions complete: the stall path (and
        // its StallStart/StallEnd trace edges) triggers naturally.
        cots += session.recv().expect("session alive").len() as u64;
    }
    let events = session.telemetry().trace.dump();
    drop(session);
    if events.is_empty() {
        println!(
            "trace ring is empty: this binary was built with the telemetry no-op \
             feature (telemetry-noop), which compiles event recording out"
        );
        return;
    }

    header(
        &format!("per-extension trace breakdown ({cots} COTs over {batches} batches)"),
        &[
            "ext",
            "wall us",
            "spcot us",
            "lpn us",
            "other us",
            "stalled consumer us",
        ],
    );
    let us = |nanos: u64| format!("{:.1}", nanos as f64 / 1_000.0);
    let mut started_at: Option<u64> = None;
    let mut ext = 0u64;
    let mut stalled_since_last_end = 0u64;
    let mut totals = (0u64, 0u64, 0u64); // wall, spcot, lpn
    let mut stall_total = 0u64;
    for event in &events {
        match event.kind {
            EventKind::ExtensionStart => started_at = Some(event.at_nanos),
            EventKind::ExtensionEnd => {
                let wall = started_at
                    .take()
                    .map_or(0, |s| event.at_nanos.saturating_sub(s));
                let (spcot, lpn) = unpack_phase_split(event.arg);
                let other = wall.saturating_sub(spcot + lpn);
                row(&[
                    ext.to_string(),
                    us(wall),
                    us(spcot),
                    us(lpn),
                    us(other),
                    us(stalled_since_last_end),
                ]);
                totals.0 += wall;
                totals.1 += spcot;
                totals.2 += lpn;
                stall_total += stalled_since_last_end;
                stalled_since_last_end = 0;
                ext += 1;
            }
            EventKind::StallEnd => stalled_since_last_end += event.arg,
            _ => {}
        }
    }
    if stalled_since_last_end > 0 {
        stall_total += stalled_since_last_end;
        println!(
            "trailing consumer stall (no extension completed after it): {} us",
            us(stalled_since_last_end)
        );
    }
    if totals.0 > 0 {
        println!(
            "\n{ext} extensions: spcot {:.1}% / lpn {:.1}% of extension wall time; \
             consumer stalled {} us total",
            100.0 * totals.1 as f64 / totals.0 as f64,
            100.0 * totals.2 as f64 / totals.0 as f64,
            us(stall_total)
        );
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    if std::env::args().any(|a| a == "trace_dump" || a == "--trace-dump") {
        run_trace_dump(quick);
        return;
    }
    // OT_2POW20-class geometry: the real k and row weight; quick mode
    // shrinks n (fewer rows = fewer timed gathers) but keeps the input
    // working set — the quantity the cache-blocking targets — identical.
    let (n, k, d) = if quick {
        (262_144usize, 168_000usize, 10usize)
    } else {
        (1_221_516usize, 168_000usize, 10usize)
    };
    let attempts = if quick { 3 } else { 5 };
    let kernel_iters = if quick { 2 } else { 3 };

    println!("generating OT_2POW20-class matrix: n={n}, k={k}, d={d}");
    let t = Instant::now();
    let matrix = LpnMatrix::generate(n, k, d, Block::from(0x7e57u128));
    let gen_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let tiles = matrix.tile_schedule();
    let tile_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let sorted = SortedLpnMatrix::sort(
        &matrix,
        SortConfig {
            // The deployed 256 KB memory-side cache model; the smaller
            // window bounds the offline greedy at bench scale.
            cache_lines: 4096,
            window: 8,
            block_rows: 4096,
        },
    );
    let sort_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let sorted_tiles_len = sorted.tile_schedule().len();
    let sorted_tile_secs = t.elapsed().as_secs_f64();
    println!(
        "offline costs: generate {gen_secs:.2}s, tile {tile_secs:.2}s, \
         sort {sort_secs:.2}s, tile(sorted) {sorted_tile_secs:.2}s \
         ({sorted_tiles_len} gathers)"
    );

    // Shared inputs: pseudorandom blocks/bits, dirty accumulators.
    let input_blocks: Vec<Block> = (0..k as u128)
        .map(|i| Block::from(i * 0x9e37 + 1))
        .collect();
    let input_bools: Vec<bool> = (0..k).map(|i| (i * 7 + i / 11) % 3 == 0).collect();
    let input_packed = PackedBits::from_bools(&input_bools);
    let gathers = (n * d) as u64;

    let mut acc_blocks = vec![Block::from(0xA5u128); n];
    let mut acc_bools = vec![false; n];
    let mut acc_packed = PackedBits::zeros(n);

    let score = KernelResult::gathers_per_sec;
    let block_results = [
        best_of(attempts, score, || {
            time_kernel("blocks_naive", kernel_iters, gathers, || {
                encoder::encode_blocks(&matrix, &input_blocks, &mut acc_blocks)
            })
        }),
        best_of(attempts, score, || {
            time_kernel("blocks_tiled", kernel_iters, gathers, || {
                tiles.encode_blocks(&input_blocks, &mut acc_blocks)
            })
        }),
        best_of(attempts, score, || {
            time_kernel("blocks_sorted", kernel_iters, gathers, || {
                sorted.encode_blocks(&input_blocks, &mut acc_blocks)
            })
        }),
        best_of(attempts, score, || {
            time_kernel("blocks_tiled_sorted", kernel_iters, gathers, || {
                sorted.encode_blocks_tiled(&input_blocks, &mut acc_blocks)
            })
        }),
    ];
    let bit_results = [
        best_of(attempts, score, || {
            time_kernel("bits_bool_naive", kernel_iters, gathers, || {
                encoder::encode_bits(&matrix, &input_bools, &mut acc_bools)
            })
        }),
        best_of(attempts, score, || {
            time_kernel("bits_packed_naive", kernel_iters, gathers, || {
                encoder::encode_bits_packed(&matrix, &input_packed, &mut acc_packed)
            })
        }),
        best_of(attempts, score, || {
            time_kernel("bits_packed_tiled", kernel_iters, gathers, || {
                tiles.encode_bits_packed(&input_packed, &mut acc_packed)
            })
        }),
    ];
    // The simd dispatch layer, lane by lane at every level this host can
    // run: the scalar row is the dispatch-overhead baseline, the wide
    // row is the AVX2/BMI2 code path, same matrix and inputs. The
    // skip-zero rows give the input-bit-testing kernel its honest
    // head-to-head against the branchless packed lane.
    let mut simd_results: Vec<KernelResult> = Vec::new();
    for &level in SimdLevel::available() {
        let sc = level == SimdLevel::Scalar;
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "simd_blocks_scalar"
                } else {
                    "simd_blocks_wide"
                },
                kernel_iters,
                gathers,
                || simd::encode_blocks(level, &matrix, &input_blocks, &mut acc_blocks),
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "simd_blocks_tiled_scalar"
                } else {
                    "simd_blocks_tiled_wide"
                },
                kernel_iters,
                gathers,
                || simd::encode_blocks_tiled(level, tiles, &input_blocks, &mut acc_blocks),
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "simd_bits_packed_scalar"
                } else {
                    "simd_bits_packed_wide"
                },
                kernel_iters,
                gathers,
                || simd::encode_bits_packed(level, &matrix, &input_packed, &mut acc_packed),
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "simd_bits_packed_tiled_scalar"
                } else {
                    "simd_bits_packed_tiled_wide"
                },
                kernel_iters,
                gathers,
                || simd::encode_bits_packed_tiled(level, tiles, &input_packed, &mut acc_packed),
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "skipzero_bits_scalar"
                } else {
                    "skipzero_bits_wide"
                },
                kernel_iters,
                gathers,
                || {
                    simd::encode_bits_packed_skipzero(
                        level,
                        &matrix,
                        &input_packed,
                        &mut acc_packed,
                    )
                },
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "skipzero_bits_tiled_scalar"
                } else {
                    "skipzero_bits_tiled_wide"
                },
                kernel_iters,
                gathers,
                || {
                    simd::encode_bits_packed_skipzero_tiled(
                        level,
                        tiles,
                        &input_packed,
                        &mut acc_packed,
                    )
                },
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "simd_pair_scalar"
                } else {
                    "simd_pair_wide"
                },
                kernel_iters,
                2 * gathers,
                || {
                    simd::encode_cot_pair(
                        level,
                        &matrix,
                        &input_blocks,
                        &input_packed,
                        &mut acc_blocks,
                        &mut acc_packed,
                    )
                },
            )
        }));
        simd_results.push(best_of(attempts, score, || {
            time_kernel(
                if sc {
                    "simd_pair_tiled_scalar"
                } else {
                    "simd_pair_tiled_wide"
                },
                kernel_iters,
                2 * gathers,
                || {
                    simd::encode_cot_pair_tiled(
                        level,
                        tiles,
                        &input_blocks,
                        &input_packed,
                        &mut acc_blocks,
                        &mut acc_packed,
                    )
                },
            )
        }));
    }

    // Session-level composite: one extension's LPN compute across both
    // party threads (they share this core in a `CotSession`) — the
    // sender's `z = r·A ⊕ w` block pass plus the receiver's
    // `x = e·A ⊕ u` / `y = s·A ⊕ v` half. Naive runs the pre-PR shape
    // (row-major, separate passes, `bool` bits); tiled+packed runs the
    // fused receiver pair the tile schedule and packed words were built
    // for; split runs what `recommended()` now picks from measurement —
    // tiled block passes plus a row-major packed bit pass, at the
    // auto-detected SIMD level.
    let auto_level = SimdLevel::detect();
    let composite_results = [
        best_of(attempts, score, || {
            time_kernel("session_lpn_naive", kernel_iters, 3 * gathers, || {
                encoder::encode_blocks(&matrix, &input_blocks, &mut acc_blocks);
                encoder::encode_bits(&matrix, &input_bools, &mut acc_bools);
                encoder::encode_blocks(&matrix, &input_blocks, &mut acc_blocks);
            })
        }),
        best_of(attempts, score, || {
            time_kernel(
                "session_lpn_tiled_packed",
                kernel_iters,
                3 * gathers,
                || {
                    tiles.encode_blocks(&input_blocks, &mut acc_blocks);
                    tiles.encode_cot_pair(
                        &input_blocks,
                        &input_packed,
                        &mut acc_blocks,
                        &mut acc_packed,
                    );
                },
            )
        }),
        best_of(attempts, score, || {
            time_kernel("session_lpn_split", kernel_iters, 3 * gathers, || {
                simd::encode_blocks_tiled(auto_level, tiles, &input_blocks, &mut acc_blocks);
                match auto_level {
                    SimdLevel::Wide => simd::encode_cot_pair(
                        auto_level,
                        &matrix,
                        &input_blocks,
                        &input_packed,
                        &mut acc_blocks,
                        &mut acc_packed,
                    ),
                    SimdLevel::Scalar => {
                        simd::encode_blocks_tiled(
                            auto_level,
                            tiles,
                            &input_blocks,
                            &mut acc_blocks,
                        );
                        simd::encode_bits_packed(
                            auto_level,
                            &matrix,
                            &input_packed,
                            &mut acc_packed,
                        );
                    }
                }
            })
        }),
    ];

    // Raw single-session extend: the same code path a pipelined pool
    // shard runs, naive kernels vs the recommended config, at the
    // LPN-heavy set where the encode dominates.
    let heavy = lpn_heavy();
    let naive_cfg = FerretConfig {
        kernel: LpnKernel::Naive,
        ..FerretConfig::new(heavy)
    };
    let rec_cfg = FerretConfig::recommended(heavy);
    assert_eq!(
        rec_cfg.kernel,
        LpnKernel::Split,
        "2^20-class k must pick the measured split kernel"
    );
    let extend_batches = if quick { 3 } else { 6 };
    let extend_score = ExtendResult::cots_per_sec;
    let extends = [
        best_of(attempts, extend_score, || {
            bench_extend("extend_naive", &naive_cfg, extend_batches)
        }),
        best_of(attempts, extend_score, || {
            bench_extend("extend_recommended", &rec_cfg, extend_batches)
        }),
    ];

    // Shared-matrix spawn costs: the same recommended config, once
    // building its matrix at spawn (the pre-sharing behavior: every
    // session pays generation + schedule) and once carrying the
    // Arc-shared prebuilt matrix (what `SharedCotPool` now hands every
    // shard). Spawn-to-first-batch is the latency a fleet pays per
    // shard; the generation counter makes the sharing observable.
    let gen_before = LpnMatrix::generated_count();
    let t = Instant::now();
    let session = CotSession::spawn(&rec_cfg, 909, 2);
    session.recv().expect("session alive");
    let spawn_unshared_secs = t.elapsed().as_secs_f64();
    drop(session);
    let generations_unshared = LpnMatrix::generated_count() - gen_before;

    let mut shared_cfg = rec_cfg.clone();
    let t = Instant::now();
    let matrix_bytes = shared_cfg.ensure_shared_matrix().working_set_bytes();
    let matrix_build_secs = t.elapsed().as_secs_f64();
    let gen_before = LpnMatrix::generated_count();
    let t = Instant::now();
    let session = CotSession::spawn(&shared_cfg, 910, 2);
    session.recv().expect("session alive");
    let spawn_shared_secs = t.elapsed().as_secs_f64();
    drop(session);
    let generations_shared = LpnMatrix::generated_count() - gen_before;

    header(
        "LPN kernels, OT_2POW20-class (gathers/s)",
        &["kernel", "gathers", "secs", "gathers/s", "vs naive"],
    );
    let print_group = |results: &[KernelResult], base: f64| {
        for r in results {
            row(&[
                r.name.to_string(),
                r.gathers.to_string(),
                f2(r.secs),
                format!("{:.3e}", r.gathers_per_sec()),
                times(r.gathers_per_sec() / base),
            ]);
        }
    };
    print_group(&block_results, block_results[0].gathers_per_sec());
    print_group(&bit_results, bit_results[0].gathers_per_sec());
    header(
        &format!("simd dispatch head-to-head (detected: {auto_level:?})"),
        &["kernel", "gathers", "secs", "gathers/s", "vs naive"],
    );
    print_group(&simd_results, block_results[0].gathers_per_sec());
    header(
        "session LPN composites",
        &["kernel", "gathers", "secs", "gathers/s", "vs naive"],
    );
    print_group(&composite_results, composite_results[0].gathers_per_sec());

    header(
        "raw single-session extend (LPN-heavy set)",
        &["config", "COTs", "secs", "COTs/s"],
    );
    for r in &extends {
        row(&[
            r.name.to_string(),
            r.cots.to_string(),
            f2(r.secs),
            format!("{:.0}", r.cots_per_sec()),
        ]);
    }

    let tiled_packed_speedup =
        composite_results[1].gathers_per_sec() / composite_results[0].gathers_per_sec();
    let split_speedup =
        composite_results[2].gathers_per_sec() / composite_results[0].gathers_per_sec();
    let extend_speedup = extends[1].cots_per_sec() / extends[0].cots_per_sec();
    println!(
        "\nsession LPN tiled+packed vs naive: {}",
        times(tiled_packed_speedup)
    );
    println!("session LPN split vs naive: {}", times(split_speedup));
    println!("extend recommended vs naive: {}", times(extend_speedup));
    println!(
        "spawn-to-first-batch: unshared {spawn_unshared_secs:.2}s \
         ({generations_unshared} matrix generations) vs shared \
         {spawn_shared_secs:.2}s ({generations_shared}); one-time shared \
         build {matrix_build_secs:.2}s, matrix working set {matrix_bytes} B"
    );

    let mut json = String::from("{\n  \"bench\": \"extension\",\n");
    json.push_str(&format!(
        "  \"quick\": {quick},\n  \"simd_level\": \"{auto_level:?}\",\n  \"params\": {{\"n\": {n}, \"k\": {k}, \"d\": {d}}},\n"
    ));
    json.push_str(&format!(
        "  \"tiled_packed_speedup\": {tiled_packed_speedup:.3},\n  \"split_speedup\": {split_speedup:.3},\n  \"extend_speedup\": {extend_speedup:.3},\n"
    ));
    json.push_str(&format!(
        "  \"shared_matrix\": {{\"matrix_build_secs\": {matrix_build_secs:.3}, \"matrix_bytes\": {matrix_bytes}, \
         \"spawn_unshared_secs\": {spawn_unshared_secs:.3}, \"spawn_shared_secs\": {spawn_shared_secs:.3}, \
         \"generations_unshared\": {generations_unshared}, \"generations_shared\": {generations_shared}}},\n"
    ));
    json.push_str("  \"extends\": [\n");
    for (i, r) in extends.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cots\": {}, \"secs\": {:.6}, \"cots_per_sec\": {:.1}}}{}\n",
            r.name,
            r.cots,
            r.secs,
            r.cots_per_sec(),
            if i + 1 < extends.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"kernels\": [\n");
    let all: Vec<&KernelResult> = block_results
        .iter()
        .chain(&bit_results)
        .chain(&simd_results)
        .chain(&composite_results)
        .collect();
    for (i, r) in all.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"gathers\": {}, \"secs\": {:.6}, \"gathers_per_sec\": {:.1}}}{}\n",
            r.name,
            r.gathers,
            r.secs,
            r.gathers_per_sec(),
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_extension.json", &json).expect("write bench json");
    println!("wrote BENCH_extension.json");
}
