//! Regenerates **Figure 1(c)**: the roofline placing SPCOT above the ridge
//! (compute-bound) and LPN far below it (memory-bandwidth-bound).

use ironman_bench::{f3, header, row};
use ironman_core::engine::spcot_aes_equiv_ops;
use ironman_ot::params::FerretParams;
use ironman_perf::roofline::{lpn_ops, lpn_traffic_bytes, spcot_traffic_bytes};
use ironman_perf::Roofline;
use ironman_prg::PrgKind;

fn main() {
    let r = Roofline::xeon_5220r();
    println!(
        "peak {} GAES/s, mem {} GB/s, ridge {:.4} AES/byte",
        r.peak_ops_per_s / 1e9,
        r.mem_bw_bytes_per_s / 1e9,
        r.ridge_intensity()
    );
    header(
        "Fig. 1(c): roofline points",
        &["kernel", "#OTs", "AES/byte", "GAES/s", "bound"],
    );
    for p in FerretParams::TABLE4 {
        let spcot_ops = p.t as u64 * spcot_aes_equiv_ops(PrgKind::Aes, 2, p.leaves);
        let sp = r.point(spcot_ops as f64, spcot_traffic_bytes(spcot_ops));
        row(&[
            "SPCOT".to_string(),
            format!("2^{}", p.log_target),
            f3(sp.intensity),
            f3(sp.attainable_ops_per_s / 1e9),
            if sp.compute_bound {
                "compute"
            } else {
                "memory"
            }
            .to_string(),
        ]);
    }
    for p in FerretParams::TABLE4 {
        let lp = r.point(lpn_ops(p.n as u64, 10), lpn_traffic_bytes(p.n as u64, 10));
        row(&[
            "LPN".to_string(),
            format!("2^{}", p.log_target),
            f3(lp.intensity),
            f3(lp.attainable_ops_per_s / 1e9),
            if lp.compute_bound {
                "compute"
            } else {
                "memory"
            }
            .to_string(),
        ]);
    }
}
