//! Regenerates **Figure 1(a)**: execution-time breakdown per PPML
//! framework and model — the motivating observation that OT extension
//! consumes 51–69% of end-to-end private inference.

use ironman_bench::{header, pct, row};
use ironman_ppml::zoo::FIG1A_EXTRA;
use ironman_ppml::TABLE5_WORKLOADS;

fn main() {
    header(
        "Fig. 1(a): execution-time breakdown",
        &["framework", "model", "other", "HE", "OTE", "comm"],
    );
    let mut min_ote = f64::MAX;
    let mut max_ote: f64 = 0.0;
    for w in TABLE5_WORKLOADS.iter().chain(FIG1A_EXTRA.iter()) {
        let [other, he, ote, comm] = w.breakdown();
        min_ote = min_ote.min(ote);
        max_ote = max_ote.max(ote);
        row(&[
            w.framework.to_string(),
            w.model.to_string(),
            pct(other),
            pct(he),
            pct(ote),
            pct(comm),
        ]);
    }
    println!(
        "\nOT extension accounts for {} to {} of execution time (paper: 51%-69%)",
        pct(min_ote),
        pct(max_ote)
    );
}
