//! Regenerates **Table 2**: PRG hardware comparison (area, perf/area,
//! power, power/block), plus a functional throughput cross-check of the
//! software implementations.

use ironman_bench::{f2, f3, header, row};
use ironman_perf::area_power::{AES_CORE, CHACHA8_CORE};
use ironman_prg::{Aes128, Block, ChaCha};
use std::time::Instant;

fn main() {
    header(
        "Table 2: PRG comparison",
        &[
            "PRG",
            "out bits",
            "area mm2",
            "perf/area",
            "power mW",
            "pwr/blk gain",
        ],
    );
    for core in [AES_CORE, CHACHA8_CORE] {
        row(&[
            core.name.to_string(),
            core.output_bits.to_string(),
            f3(core.area_mm2),
            f3(core.perf_per_area_vs(&AES_CORE)),
            f2(core.power_mw),
            f3(core.power_per_block_gain_vs(&AES_CORE)),
        ]);
    }

    // Software sanity: blocks produced per second by each primitive.
    let aes = Aes128::new(Block::from(1u128));
    let n = 200_000u128;
    let t0 = Instant::now();
    let mut acc = Block::ZERO;
    for i in 0..n {
        acc ^= aes.encrypt_block(Block::from(i));
    }
    let aes_rate = n as f64 / t0.elapsed().as_secs_f64();

    let chacha = ChaCha::from_session_key(Block::from(1u128), 8);
    let t0 = Instant::now();
    for i in 0..n {
        let out = chacha.expand_block(Block::from(i));
        acc ^= out[0];
    }
    let chacha_rate = 4.0 * n as f64 / t0.elapsed().as_secs_f64();
    println!("\n(software check, not the ASIC numbers: AES {aes_rate:.0} blocks/s, ChaCha8 {chacha_rate:.0} blocks/s, checksum {acc})");
}
