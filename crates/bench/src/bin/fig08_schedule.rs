//! Regenerates **Figure 8**: GGM expansion schedules on the 8-stage
//! ChaCha pipeline — depth-first bubbles vs. the hybrid strategy's full
//! utilization, plus the buffer cost of pure breadth-first.

use ironman_bench::{header, pct, row};
use ironman_ggm::schedule::simulate;
use ironman_ggm::{Arity, ExpansionSchedule, PipelineModel};

fn main() {
    header(
        "Fig. 8: expansion schedules (4 trees, 4-ary, l=1024, ChaCha8)",
        &["schedule", "cycles", "calls", "bubbles", "util", "peak buf"],
    );
    for s in ExpansionSchedule::ALL {
        let r = simulate(s, PipelineModel::CHACHA8, 4, Arity::QUAD, 1024);
        row(&[
            s.to_string(),
            r.cycles.to_string(),
            r.calls.to_string(),
            r.bubbles.to_string(),
            pct(r.utilization()),
            r.peak_buffer.to_string(),
        ]);
    }

    header(
        "hybrid utilization vs in-flight trees (100% target, paper 4.3)",
        &["trees", "util", "cycles"],
    );
    for trees in [1usize, 2, 4, 8, 16, 32] {
        let r = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            trees,
            Arity::QUAD,
            1024,
        );
        row(&[
            trees.to_string(),
            pct(r.utilization()),
            r.cycles.to_string(),
        ]);
    }
}
