//! Regenerates **Figure 14**: memory-side cache capacity sweep —
//! normalized LPN latency and cache hit rate per parameter set, plus the
//! average hit rate / SRAM area trade-off that picks 256 KB and 1 MB.

use ironman_bench::{f2, f3, header, pct, row};
use ironman_cache::sram_area_mm2;
use ironman_nmp::{NmpConfig, OteSimulator, OteWork};
use ironman_ot::params::FerretParams;

const CACHES_KB: [usize; 7] = [32, 64, 128, 256, 512, 1024, 2048];

fn main() {
    let sets = [
        FerretParams::OT_2POW20,
        FerretParams::OT_2POW21,
        FerretParams::OT_2POW22,
        FerretParams::OT_2POW23,
    ];
    let mut avg_hit = vec![0.0f64; CACHES_KB.len()];

    for p in sets {
        header(
            &format!("Fig. 14(a): cache sweep, output size 2^{}", p.log_target),
            &["cache KB", "lpn cyc", "norm lat", "hit rate"],
        );
        let mut base = 0u64;
        for (ci, &kb) in CACHES_KB.iter().enumerate() {
            let cfg = NmpConfig::with_ranks_and_cache(16, kb * 1024);
            let sim = OteSimulator::new(cfg);
            let work = OteWork::ironman(p.n, p.leaves, p.t, p.k, 10);
            let r = sim.simulate(&work, 14);
            if base == 0 {
                base = r.lpn_cycles;
            }
            avg_hit[ci] += r.cache_hit_rate / sets.len() as f64;
            row(&[
                kb.to_string(),
                r.lpn_cycles.to_string(),
                f3(r.lpn_cycles as f64 / base as f64),
                pct(r.cache_hit_rate),
            ]);
        }
    }

    header(
        "Fig. 14(b): average hit rate vs SRAM area",
        &["cache KB", "avg hit", "area mm2"],
    );
    for (ci, &kb) in CACHES_KB.iter().enumerate() {
        row(&[
            kb.to_string(),
            pct(avg_hit[ci]),
            f2(sram_area_mm2(kb * 1024)),
        ]);
    }
    println!("\nshape check: hit rate saturates while area keeps growing; 256KB/1MB are the knees");
}
