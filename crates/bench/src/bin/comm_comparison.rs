//! Extension experiment: measured communication of IKNP-style vs.
//! PCG-style OT extension — the §2.3 motivation ("sub-linear
//! communication ... at the cost of increased computational overhead"),
//! quantified from real protocol executions.

use ironman_bench::{f2, f3, header, row};
use ironman_ot::channel::run_protocol;
use ironman_ot::dealer::Dealer;
use ironman_ot::ferret::{run_extension, FerretConfig};
use ironman_ot::iknp::{iknp_recv, iknp_send, setup_base};
use ironman_ot::params::FerretParams;

fn main() {
    header(
        "IKNP vs PCG (Ferret) communication, measured",
        &["protocol", "outputs", "bytes", "B/OT", "PRG ops"],
    );

    // IKNP at two sizes: communication is linear.
    for n in [4096usize, 16_384] {
        let mut dealer = Dealer::new(9);
        let delta = dealer.random_delta();
        let (seeds, pairs) = setup_base(&mut dealer, delta);
        let x: Vec<bool> = (0..n).map(|j| j % 3 == 0).collect();
        let (_, _, s_stats, r_stats) = run_protocol(
            move |ch| iknp_send(ch, delta, &seeds, n).unwrap(),
            move |ch| iknp_recv(ch, &pairs, &x).unwrap(),
        );
        let bytes = s_stats.bytes_sent + r_stats.bytes_sent;
        row(&[
            "IKNP".to_string(),
            n.to_string(),
            bytes.to_string(),
            f2(bytes as f64 / n as f64),
            "~n/64 AES".to_string(),
        ]);
    }

    // PCG at two sizes: communication is sub-linear per OT.
    for params in [FerretParams::toy(), FerretParams::toy_large()] {
        let cfg = FerretConfig::new(params);
        let out = run_extension(&cfg, 9);
        let bytes = out.sender_stats.bytes_sent + out.receiver_stats.bytes_sent;
        row(&[
            "PCG (Ferret)".to_string(),
            out.len().to_string(),
            bytes.to_string(),
            f3(bytes as f64 / out.len() as f64),
            format!("{}", out.sender_prg.total()),
        ]);
    }
    println!("\nshape check: IKNP pays 16+ B/OT (linear); PCG amortizes to <8 B/OT and shrinks");
    println!("with scale, paying more PRG computation instead — the trade Ironman accelerates.");
}
