//! Extension experiment: energy per COT across backends, combining the
//! paper's power figures (Table 6, §6.1) with this workspace's measured
//! latencies. The paper reports the power ratio (84.5× vs GPU); this
//! harness completes the picture with energy.

use ironman_bench::{f2, f3, header, row};
use ironman_core::speedup::speedup_cell;
use ironman_ot::params::FerretParams;
use ironman_perf::energy::{energy_comparison, PowerEnvelope};

fn main() {
    let p = FerretParams::OT_2POW20;
    let total_ots = 1u64 << 25;
    let execs = (total_ots as f64 / p.n as f64).ceil();

    let cell_1m = speedup_cell(p, 16, 1024 * 1024, 77);
    let cell_256k = speedup_cell(p, 16, 256 * 1024, 77);

    let backends = [
        (PowerEnvelope::CPU_XEON, cell_1m.cpu_ms / 1e3 * execs),
        (PowerEnvelope::gpu_a6000(), cell_1m.gpu_ms / 1e3 * execs),
        (
            PowerEnvelope::IRONMAN_256KB,
            cell_256k.ironman_ms / 1e3 * execs,
        ),
        (PowerEnvelope::IRONMAN_1MB, cell_1m.ironman_ms / 1e3 * execs),
    ];
    header(
        "energy to generate 2^25 COTs (2^20 set, 16 ranks)",
        &["backend", "latency s", "power W", "energy J", "nJ/COT"],
    );
    let rows = energy_comparison(&backends, total_ots);
    for r in &rows {
        row(&[
            r.envelope.name.to_string(),
            f3(r.latency_s),
            f2(r.envelope.watts),
            f2(r.energy_j),
            f3(r.nj_per_cot),
        ]);
    }
    let cpu = rows[0].energy_j;
    let gpu = rows[1].energy_j;
    let iron = rows[3].energy_j;
    println!(
        "\nenergy reduction: {:.0}x vs CPU, {:.0}x vs GPU (paper reports 84.5x *power* vs GPU)",
        cpu / iron,
        gpu / iron
    );
}
