//! Regenerates **Figure 15**: nonlinear-operator latency (LayerNorm, GeLU,
//! Softmax, ReLU) in EzPC-SiRNN and Bolt, with and without Ironman.

use ironman_bench::{f2, header, row, times};
use ironman_core::speedup::speedup_cell;
use ironman_ot::params::FerretParams;
use ironman_ppml::nonlinear::FIG15_PROFILES;

fn main() {
    // OT speedup measured from the flagship NMP configuration.
    let s = speedup_cell(FerretParams::OT_2POW20, 16, 1024 * 1024, 15).speedup_vs_cpu();
    println!("measured OT-extension speedup (16 ranks, 1MB): {s:.1}x");

    header(
        "Fig. 15: nonlinear operators",
        &["framework", "op", "base s", "ours s", "reduction"],
    );
    let mut min_r = f64::MAX;
    let mut max_r: f64 = 0.0;
    for p in &FIG15_PROFILES {
        let ours = p.accelerated_s(s);
        let r = p.reduction(s);
        min_r = min_r.min(r);
        max_r = max_r.max(r);
        row(&[
            p.framework.to_string(),
            p.op.name().to_string(),
            f2(p.base_s),
            f2(ours),
            times(r),
        ]);
    }
    println!("\nreduction band: {min_r:.2}x - {max_r:.2}x (paper: 3.9x - 4.4x)");
}
