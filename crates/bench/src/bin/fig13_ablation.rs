//! Regenerates **Figure 13**: (a) the m-ary × PRG ablation of SPCOT
//! latency and (b) SPCOT vs. LPN latency across rank counts.

use ironman_bench::{f2, header, row, times};
use ironman_ggm::Arity;
use ironman_nmp::dimm::{simulate_spcot, SpcotWork};
use ironman_nmp::{NmpConfig, OteSimulator, OteWork, Role};
use ironman_ot::params::FerretParams;
use ironman_prg::PrgKind;

fn main() {
    let p = FerretParams::OT_2POW20;
    let cfg = NmpConfig::with_ranks_and_cache(8, 256 * 1024);

    header(
        "Fig. 13(a): SPCOT ablation (2^20 set, 8 ranks)",
        &["tree", "PRG", "cycles", "ms", "gain"],
    );
    let combos = [
        (Arity::BINARY, PrgKind::Aes, "2-ary", "AES"),
        (Arity::QUAD, PrgKind::Aes, "4-ary", "AES"),
        (Arity::BINARY, PrgKind::CHACHA8, "2-ary", "ChaCha"),
        (Arity::QUAD, PrgKind::CHACHA8, "4-ary", "ChaCha"),
    ];
    let mut base_cycles = 0u64;
    for (arity, prg, tname, pname) in combos {
        let r = simulate_spcot(
            &cfg,
            &SpcotWork {
                trees: p.t,
                leaves: p.leaves,
                arity,
                prg,
                role: Role::Sender,
            },
        );
        if base_cycles == 0 {
            base_cycles = r.cycles;
        }
        row(&[
            tname.to_string(),
            pname.to_string(),
            r.cycles.to_string(),
            f2(cfg.cycles_to_ms(r.cycles)),
            times(base_cycles as f64 / r.cycles as f64),
        ]);
    }
    println!("(paper: 4-ary/AES 1.5x, 2-ary/ChaCha 2x, 4-ary/ChaCha 6x)");

    header(
        "Fig. 13(b): SPCOT vs LPN latency across ranks (ms)",
        &["ranks", "2ary-AES", "4ary-AES", "2ary-CC", "4ary-CC", "LPN"],
    );
    for ranks in [2usize, 4, 8, 16] {
        let c = NmpConfig::with_ranks_and_cache(ranks, 256 * 1024);
        let mut cells = vec![ranks.to_string()];
        for (arity, prg, _, _) in combos {
            let r = simulate_spcot(
                &c,
                &SpcotWork {
                    trees: p.t,
                    leaves: p.leaves,
                    arity,
                    prg,
                    role: Role::Sender,
                },
            );
            cells.push(f2(c.cycles_to_ms(r.cycles)));
        }
        let sim = OteSimulator::new(c);
        let work = OteWork::ironman(p.n, p.leaves, p.t, p.k, 10);
        let rep = sim.simulate(&work, 1);
        cells.push(f2(c.cycles_to_ms(rep.lpn_cycles)));
        row(&cells);
    }
    println!(
        "\nshape check: 4-ary ChaCha SPCOT stays below LPN; AES variants are the slowest SPCOTs"
    );
}
