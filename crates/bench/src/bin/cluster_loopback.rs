//! Fleet-serving experiment: aggregate COT throughput of a 3-server
//! cluster (client-side routing + background warm-up + streaming
//! subscriptions) against the single-server `net_loopback` baseline.
//!
//! Three measurements over identical total demand:
//!
//! * `cot_service_single` — one cold `CotService`, one-shot requests;
//!   every refill is an inline FERRET extension on the demand path (the
//!   PR-1 serving shape).
//! * `cluster_3_servers` — a warmed 3-server [`LocalCluster`]: requests
//!   drain pre-filled pools while the per-server `Warmup` refillers keep
//!   topping shards up in the background.
//! * `cluster_streaming` — one credit-controlled subscription delivering
//!   1M correlations (64k with `--quick`) in pushed chunks; the
//!   subscription's accounting asserts fire on any credit or byte
//!   mismatch.
//!
//! Emits the human table plus machine-readable JSON to
//! `BENCH_cluster.json` so sweeps can diff runs. `--quick` shrinks the
//! demand for CI smoke use.

use ironman_bench::{best_of, f2, header, row, times};
use ironman_cluster::{ClusterClient, ClusterServerConfig, LocalCluster, WarmupConfig};
use ironman_core::{Backend, Engine};
use ironman_net::{CotClient, CotService, CotServiceConfig};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::{Duration, Instant};

struct Result {
    name: &'static str,
    cots: u64,
    secs: f64,
}

impl Result {
    fn cots_per_sec(&self) -> f64 {
        self.cots as f64 / self.secs
    }
}

/// The single-server baseline: cold pool, one-shot pulls (mirrors
/// `net_loopback`'s `cot_service_4_clients` shape). Batches are verified
/// after the timed window on both paths — the bench measures serving
/// throughput, not the consumer's checking cost.
fn bench_single(engine: &Engine, clients: usize, requests: usize, batch: usize) -> Result {
    let service = CotService::serve(
        "127.0.0.1:0",
        engine,
        CotServiceConfig {
            shards: 4,
            seed: 77,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind loopback service");
    let addr = service.addr();
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|id| {
            std::thread::spawn(move || {
                let mut client =
                    CotClient::connect(addr, &format!("single-{id}")).expect("connect");
                (0..requests)
                    .map(|_| client.request_cots(batch).expect("request"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let batches: Vec<_> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    service.shutdown();
    let mut cots = 0u64;
    for b in &batches {
        b.verify().expect("verified");
        cots += b.len() as u64;
    }
    Result {
        name: "cot_service_single",
        cots,
        secs,
    }
}

fn warmed_cluster(engine: &Engine, servers: usize) -> LocalCluster {
    let cluster = LocalCluster::spawn(
        servers,
        engine,
        &ClusterServerConfig {
            service: CotServiceConfig {
                shards: 4,
                seed: 77,
                ..CotServiceConfig::default()
            },
            warmup: Some(WarmupConfig {
                // A calm sweep cadence. Each server buffers 4 shards ×
                // one full extension, far above this bench's per-burst
                // demand, so refills belong *between* demand bursts: on
                // the bench's single-core host an eager refiller would
                // otherwise steal the serving window's CPU the moment
                // the first batch drains and the measurement would show
                // refill interference, not serving throughput.
                interval: Duration::from_millis(500),
                ..WarmupConfig::default()
            }),
        },
    )
    .expect("spawn fleet");
    let per_server = 4 * engine.config().usable_outputs();
    assert!(
        cluster.wait_warm(per_server, Duration::from_secs(120)),
        "fleet never warmed"
    );
    cluster
}

/// The fleet: identical demand against 3 warmed servers via routed
/// clients. Warm-up keeps refilling in the background during the run —
/// that overlap (extensions off the demand path) is the measured win.
fn bench_cluster(
    engine: &Engine,
    servers: usize,
    clients: usize,
    requests: usize,
    batch: usize,
) -> Result {
    let cluster = warmed_cluster(engine, servers);
    let directory = cluster.directory();
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|id| {
            let directory = directory.clone();
            std::thread::spawn(move || {
                let mut client =
                    ClusterClient::connect(directory, &format!("fleet-{id}")).expect("connect");
                (0..requests)
                    .flat_map(|_| client.request_cots(batch).expect("request"))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let batches: Vec<_> = threads
        .into_iter()
        .flat_map(|t| t.join().expect("client"))
        .collect();
    let secs = start.elapsed().as_secs_f64();
    cluster.shutdown();
    let mut cots = 0u64;
    for b in &batches {
        b.verify().expect("verified");
        cots += b.len() as u64;
    }
    Result {
        name: "cluster_3_servers",
        cots,
        secs,
    }
}

/// One streaming subscription delivering `total` correlations in pushed
/// chunks. The subscription's internal accounting (credit balance,
/// sequence order, trailer totals) panics the bench on any violation.
fn bench_streaming(engine: &Engine, total: u64, batch: usize) -> Result {
    let cluster = warmed_cluster(engine, 3);
    let mut client =
        ClusterClient::connect(cluster.directory(), "stream-consumer").expect("connect");
    let start = Instant::now();
    let mut delivered = 0u64;
    let summary = client
        .stream_cots(total, batch, |b: &ironman_core::CotBatch| {
            b.verify().expect("verified");
            delivered += b.len() as u64;
        })
        .expect("stream");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(summary.cots, total, "stream accounting mismatch");
    assert_eq!(delivered, total, "consumer saw a different total");
    cluster.shutdown();
    Result {
        name: "cluster_streaming",
        cots: total,
        secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = FerretConfig::recommended(FerretParams::toy());
    let engine = Engine::new(cfg, Backend::ironman_default());

    // Identical one-shot demand on both paths.
    let clients = 3;
    let (requests, batch) = if quick { (4, 500) } else { (4, 2000) };
    let stream_total: u64 = if quick { 64_000 } else { 1_000_000 };
    let stream_batch = 2000;
    // Best-of-5 on both modes: the quick one-shot window is ~30 ms on
    // the single-core CI box, so one host-steal event inside a window
    // costs ~25% — best-of-3 was noise-dominated there and tripped the
    // CI floor on runs with no code change.
    let attempts = 5;

    let single = best_of(attempts, Result::cots_per_sec, || {
        bench_single(&engine, clients, requests, batch)
    });
    let cluster = best_of(attempts, Result::cots_per_sec, || {
        bench_cluster(&engine, 3, clients, requests, batch)
    });
    let streaming = bench_streaming(&engine, stream_total, stream_batch);

    let results = [single, cluster, streaming];
    header(
        "COT fleet throughput, 3-server cluster vs single server",
        &["path", "COTs", "secs", "COTs/s"],
    );
    for r in &results {
        row(&[
            r.name.to_string(),
            r.cots.to_string(),
            f2(r.secs),
            format!("{:.0}", r.cots_per_sec()),
        ]);
    }
    let speedup = results[1].cots_per_sec() / results[0].cots_per_sec();
    println!(
        "\n3-server cluster sustains {} the single-server aggregate throughput",
        times(speedup)
    );
    println!(
        "streaming delivered {} COTs at {:.0} COTs/s with exact credit/byte accounting",
        results[2].cots,
        results[2].cots_per_sec()
    );

    // Machine-readable output (hand-rolled JSON; no serde in this build).
    let mut json = String::from("{\n  \"bench\": \"cluster_loopback\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"results\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cots\": {}, \"secs\": {:.6}, \"cots_per_sec\": {:.1}}}{}\n",
            r.name,
            r.cots,
            r.secs,
            r.cots_per_sec(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"cluster_vs_single_speedup\": {speedup:.2}\n}}\n"
    ));
    let path = "BENCH_cluster.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
