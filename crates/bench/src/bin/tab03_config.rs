//! Regenerates **Table 3**: the simulated system configuration.

use ironman_bench::{f2, header, row};
use ironman_dram::DramConfig;

fn main() {
    let cfg = DramConfig::ddr4_2400();
    let t = cfg.timing;
    header("Table 3: system configuration", &["parameter", "value"]);
    row(&["DRAM", "DDR4-2400"]);
    row(&["channels*dimms".to_string(), "4 x 2 x 2 ranks".to_string()]);
    row(&["scheduler".to_string(), "FR-FCFS".to_string()]);
    row(&["banks/rank".to_string(), cfg.banks().to_string()]);
    row(&["row bytes".to_string(), cfg.row_bytes.to_string()]);
    row(&["clock MHz".to_string(), f2(cfg.clock_mhz)]);
    for (name, v) in [
        ("tRCD", t.t_rcd),
        ("tCL", t.t_cl),
        ("tRP", t.t_rp),
        ("tRC", t.t_rc),
        ("tRRD_S", t.t_rrd_s),
        ("tRRD_L", t.t_rrd_l),
        ("tFAW", t.t_faw),
        ("tCCD_S", t.t_ccd_s),
        ("tCCD_L", t.t_ccd_l),
        ("tBL", t.t_bl),
    ] {
        row(&[name.to_string(), v.to_string()]);
    }
    row(&["peak GB/s/rank".to_string(), f2(cfg.peak_bandwidth_gbps())]);
}
