//! Regenerates **Table 4**: the PCG-style OT-extension parameter sets with
//! their bit-security estimates, side by side with the paper's reported
//! values.

use ironman_bench::{f2, header, row};
use ironman_ot::params::FerretParams;

fn main() {
    header(
        "Table 4: OT-extension parameter sets",
        &["#OTs", "n", "l", "k", "t", "sec(est)", "sec(paper)"],
    );
    let paper = [139.8, 141.8, 132.3, 130.2, 135.4];
    for (p, &rep) in FerretParams::TABLE4.iter().zip(paper.iter()) {
        p.validate().expect("Table 4 row must validate");
        row(&[
            format!("2^{}", p.log_target),
            p.n.to_string(),
            p.leaves.to_string(),
            p.k.to_string(),
            p.t.to_string(),
            f2(p.security_bits()),
            f2(rep),
        ]);
    }
    println!("\nsecurity estimate: Pooled-Gauss cost -k*log2(1-t/n) + 2.8*log2(k)");
}
