//! Regenerates **Figure 12**: OTE latency on CPU, GPU and Ironman across
//! memory configurations (2–16 ranks × 256 KB/1 MB caches) and Table 4
//! parameter sets, normalized to the CPU baseline.

use ironman_bench::{f2, header, row, times};
use ironman_core::speedup::speedup_cell;
use ironman_ot::params::FerretParams;

fn main() {
    for cache in [256 * 1024usize, 1024 * 1024] {
        header(
            &format!("Fig. 12: OTE latency & speedup, {} KB cache", cache / 1024),
            &[
                "ranks", "#OTs", "iron ms", "cpu ms", "gpu ms", "vs CPU", "vs GPU", "hit",
            ],
        );
        let mut band: (f64, f64) = (f64::MAX, 0.0);
        for ranks in [2usize, 4, 8, 16] {
            for p in FerretParams::TABLE4 {
                let c = speedup_cell(p, ranks, cache, 0xF16);
                let s = c.speedup_vs_cpu();
                band.0 = band.0.min(s);
                band.1 = band.1.max(s);
                row(&[
                    ranks.to_string(),
                    format!("2^{}", c.log_target),
                    f2(c.ironman_ms),
                    f2(c.cpu_ms),
                    f2(c.gpu_ms),
                    times(s),
                    times(c.speedup_vs_gpu()),
                    f2(c.cache_hit_rate),
                ]);
            }
        }
        println!(
            "\nspeedup band at {} KB: {:.2}x - {:.2}x (paper: {})",
            cache / 1024,
            band.0,
            band.1,
            if cache == 256 * 1024 {
                "3.66x - 39.26x"
            } else {
                "5.03x - 237.04x"
            }
        );
    }
}
