//! Hot-path microbenchmarks for the zero-copy COT serving pipeline: each
//! stage between pool storage and the wire, measured in isolation and
//! end-to-end, so a regression can be attributed to the stage that caused
//! it rather than inferred from the fleet bench's aggregate number.
//!
//! Stages (all best-of-N on one core, per the bench-noise policy):
//!
//! * `pool_take_into` — draining a warmed pipelined [`SharedCotPool`]
//!   into a reused batch: the cursor-bump-plus-one-memcpy a request costs
//!   under the shard lock.
//! * `encode_batch` — [`encode_cot_batch_into`] of one batch into a
//!   retained scratch buffer: the serving path's single payload copy.
//! * `service_roundtrip` — full one-shot `RequestCot` round trips over
//!   loopback TCP with `request_cots_into` (reused batch + frame
//!   buffers).
//! * `service_stream` — one credit-controlled subscription drained with
//!   `next_chunk_into`.
//!
//! Emits the human table plus machine-readable JSON to
//! `BENCH_hot_path.json`. `--quick` shrinks the iteration counts for CI
//! smoke use.

use ironman_bench::{best_of, f2, header, row};
use ironman_core::{Backend, CotBatch, Engine, SharedCotPool};
use ironman_net::proto::encode_cot_batch_into;
use ironman_net::{CotClient, CotService, CotServiceConfig};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::Instant;

struct Result {
    name: &'static str,
    cots: u64,
    secs: f64,
}

impl Result {
    fn cots_per_sec(&self) -> f64 {
        self.cots as f64 / self.secs
    }
}

/// Warmed pool drain: every take is served from the buffer (the warm-up
/// between bursts happens outside the timed window).
fn bench_pool_take(engine: &Engine, bursts: usize, batch: usize) -> Result {
    let pool = SharedCotPool::new_pipelined(engine, 2, 404);
    let per_burst = 2 * pool.max_request() / batch; // well inside the warm buffer
    let mut reused = CotBatch::default();
    let mut cots = 0u64;
    let mut secs = 0.0;
    for _ in 0..bursts {
        // Fill both shards to the 2-extension ensure cap before timing, so
        // every timed take is a pure buffer drain (never a session wait).
        let full = 2 * pool.shard_count() * pool.max_request();
        while pool.available() < full {
            pool.warm(2 * pool.max_request());
            std::thread::yield_now();
        }
        let t = Instant::now();
        for _ in 0..per_burst {
            pool.take_into(batch, &mut reused);
            cots += reused.len() as u64;
        }
        secs += t.elapsed().as_secs_f64();
    }
    reused.verify().expect("verified");
    Result {
        name: "pool_take_into",
        cots,
        secs,
    }
}

/// Pure serialization: one batch, one retained scratch buffer, no I/O.
fn bench_encode(engine: &Engine, iters: usize, batch: usize) -> Result {
    let pool = SharedCotPool::new_pipelined(engine, 1, 505);
    let owned = pool.take(batch);
    owned.verify().expect("verified");
    let mut scratch = Vec::new();
    let t = Instant::now();
    for _ in 0..iters {
        scratch.clear();
        encode_cot_batch_into(&mut scratch, owned.as_slice());
        std::hint::black_box(scratch.len());
    }
    Result {
        name: "encode_batch",
        cots: (iters * batch) as u64,
        secs: t.elapsed().as_secs_f64(),
    }
}

fn service(engine: &Engine) -> CotService {
    CotService::serve(
        "127.0.0.1:0",
        engine,
        CotServiceConfig {
            shards: 2,
            seed: 77,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind loopback service")
}

/// End-to-end one-shot round trips with the reusing client path.
fn bench_roundtrip(engine: &Engine, requests: usize, batch: usize) -> Result {
    let service = service(engine);
    let mut client = CotClient::connect(service.addr(), "hot-path").expect("connect");
    let mut reused = CotBatch::default();
    client
        .request_cots_into(batch, &mut reused)
        .expect("warm the session buffers");
    let t = Instant::now();
    for _ in 0..requests {
        client
            .request_cots_into(batch, &mut reused)
            .expect("request");
    }
    let secs = t.elapsed().as_secs_f64();
    reused.verify().expect("verified");
    service.shutdown();
    Result {
        name: "service_roundtrip",
        cots: (requests * batch) as u64,
        secs,
    }
}

/// End-to-end streaming with the reusing subscription path.
fn bench_stream(engine: &Engine, chunks: u64, batch: usize) -> Result {
    let service = service(engine);
    let mut client = CotClient::connect(service.addr(), "hot-stream").expect("connect");
    let mut reused = CotBatch::default();
    let t = Instant::now();
    let mut sub = client.subscribe(batch, chunks).expect("subscribe");
    let mut cots = 0u64;
    while sub.next_chunk_into(&mut reused).expect("chunk") {
        cots += reused.len() as u64;
    }
    let summary = sub.finish().expect("finish");
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(summary.cots, cots, "stream accounting mismatch");
    reused.verify().expect("verified");
    service.shutdown();
    Result {
        name: "service_stream",
        cots,
        secs,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = FerretConfig::recommended(FerretParams::toy());
    let engine = Engine::new(cfg, Backend::ironman_default());
    let batch = 2000;
    let attempts = if quick { 3 } else { 5 };
    let (bursts, encode_iters, requests, chunks) = if quick {
        (2, 200, 20, 20)
    } else {
        (4, 2000, 100, 200)
    };

    let score = Result::cots_per_sec;
    let results = [
        best_of(attempts, score, || bench_pool_take(&engine, bursts, batch)),
        best_of(attempts, score, || {
            bench_encode(&engine, encode_iters, batch)
        }),
        best_of(attempts, score, || {
            bench_roundtrip(&engine, requests, batch)
        }),
        best_of(attempts, score, || bench_stream(&engine, chunks, batch)),
    ];

    header(
        "zero-copy hot path, stage by stage",
        &["stage", "COTs", "secs", "COTs/s"],
    );
    for r in &results {
        row(&[
            r.name.to_string(),
            r.cots.to_string(),
            f2(r.secs),
            format!("{:.0}", r.cots_per_sec()),
        ]);
    }

    let mut json = String::from("{\n  \"bench\": \"hot_path\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n  \"results\": [\n"));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cots\": {}, \"secs\": {:.6}, \"cots_per_sec\": {:.1}}}{}\n",
            r.name,
            r.cots,
            r.secs,
            r.cots_per_sec(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_hot_path.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
