//! Telemetry-overhead head-to-head: the serving hot path measured with
//! recording live vs compiled to no-ops, proving the v6 instrumentation
//! is measurably free.
//!
//! One binary, two builds. The default build records for real (relaxed
//! atomics into histograms, ring pushes into the trace); building with
//! `--features telemetry-noop` compiles every record — including the
//! `Stopwatch` clock reads at the call sites — to nothing. `scripts/
//! ci.sh` builds both, parks the no-op binary aside (the feature
//! unifies across the workspace, so the two can't share a target dir),
//! and runs the instrumented one with `--pair-with <noop binary>`: each
//! round re-runs the baseline adjacent in time to the live measurement,
//! the gate metric is CPU seconds per COT from the cheapest quartile of
//! measurement windows (wall time on a shared box is hopeless at this
//! resolution), and the final ratio is the median across rounds. The
//! result lands in `BENCH_telemetry.json`; CI fails if instrumentation
//! costs more than 3%.
//!
//! The instrumented run also measures the other side of the telemetry
//! contract: the scrape-merge cost of rolling a 3-server fleet's `Stats`
//! histograms into one `FleetSnapshot` (`ironman-cluster::observe`).

use ironman_bench::{f2, header, row};
use ironman_cluster::{observe, ClusterServerConfig, LocalCluster, WarmupConfig};
use ironman_core::{Backend, CotBatch, Engine};
use ironman_net::{CotClient, CotService, CotServiceConfig};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::{Duration, Instant};

/// Which half of the head-to-head this build is.
const MODE: &str = if cfg!(feature = "telemetry-noop") {
    "noop"
} else {
    "instrumented"
};

/// Where the no-op build parks its numbers for the instrumented build
/// to pick up (consumed and deleted when the final JSON is written).
const BASELINE_PATH: &str = "BENCH_telemetry_baseline.json";

/// Measurement windows per stage (see [`Result::from_windows`]).
const WINDOWS: usize = 20;

struct Result {
    name: &'static str,
    cots: u64,
    /// Wall-clock seconds over the whole stage — informational only; on
    /// a shared box, preemption by neighbours makes wall time far too
    /// noisy to gate a 3% threshold on.
    secs: f64,
    /// COTs inside the cheapest-quartile measurement windows.
    gated_cots: u64,
    /// CPU seconds consumed by every thread of this process (client,
    /// serving thread, the pool's session threads) inside those windows.
    gated_cpu_secs: f64,
}

impl Result {
    fn cots_per_sec(&self) -> f64 {
        self.cots as f64 / self.secs
    }

    fn cots_per_cpu_sec(&self) -> f64 {
        self.gated_cots as f64 / self.gated_cpu_secs
    }

    /// Aggregates per-window `(cots, cpu_ns)` samples into the combined
    /// CPU rate of the *cheapest* quartile. The work per COT is
    /// deterministic, so CPU-per-COT has a hard floor — a clean window
    /// measures it exactly, and interference (context-switch cache
    /// refills under preemption) only ever adds CPU. The cheapest
    /// quartile of many windows therefore converges on the floor in both
    /// halves of the head-to-head, which is what a 3% gate needs.
    fn from_windows(name: &'static str, mut windows: Vec<(u64, u64)>, wall_secs: f64) -> Result {
        let cots = windows.iter().map(|&(c, _)| c).sum();
        let per_cot = |x: &(u64, u64)| x.1 as f64 / x.0 as f64;
        windows.sort_by(|a, b| per_cot(a).total_cmp(&per_cot(b)));
        let keep = (windows.len() / 4).max(1);
        let kept = &windows[..keep];
        Result {
            name,
            cots,
            secs: wall_secs,
            gated_cots: kept.iter().map(|&(c, _)| c).sum(),
            gated_cpu_secs: kept.iter().map(|&(_, ns)| ns).sum::<u64>() as f64 * 1e-9,
        }
    }
}

/// Total nanoseconds of CPU this process's threads have been scheduled
/// for, from per-thread `/proc/self/task/*/schedstat` (field 1 — time
/// actually *running*, not runqueue wait, at nanosecond resolution).
/// Falls back to 0 off Linux; callers substitute wall time when a
/// stage's CPU delta comes back zero.
fn process_cpu_ns() -> u64 {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .flatten()
        .filter_map(|t| std::fs::read_to_string(t.path().join("schedstat")).ok())
        .filter_map(|s| s.split_whitespace().next()?.parse::<u64>().ok())
        .sum()
}

fn service(engine: &Engine) -> CotService {
    CotService::serve(
        "127.0.0.1:0",
        engine,
        CotServiceConfig {
            shards: 2,
            seed: 77,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind loopback service")
}

/// One-shot round trips: each records one request→first-byte histogram
/// sample (or, in the no-op build, exactly nothing), and the pool's
/// inline/pipelined refills under the drain record extension and stall
/// durations — the full serving path the v6 instrumentation touches.
fn bench_roundtrip(engine: &Engine, requests: usize, batch: usize) -> Result {
    let svc = service(engine);
    let mut client = CotClient::connect(svc.addr(), "telemetry-rt").expect("connect");
    let mut reused = CotBatch::default();
    client
        .request_cots_into(batch, &mut reused)
        .expect("warm the session buffers");
    let per_window = (requests / WINDOWS).max(1);
    let mut windows = Vec::with_capacity(WINDOWS);
    let t = Instant::now();
    // Window boundaries read per-thread schedstat while the session
    // threads are still alive — their entries (and the extension CPU
    // they carry) vanish when they exit at shutdown.
    let mut cpu = process_cpu_ns();
    for _ in 0..WINDOWS {
        for _ in 0..per_window {
            client
                .request_cots_into(batch, &mut reused)
                .expect("request");
        }
        let now = process_cpu_ns();
        windows.push(((per_window * batch) as u64, now.saturating_sub(cpu)));
        cpu = now;
    }
    let secs = t.elapsed().as_secs_f64();
    reused.verify().expect("verified");
    svc.shutdown();
    Result::from_windows("service_roundtrip", windows, secs)
}

/// Streaming: each chunk records a push-latency sample plus a trace
/// event — the heaviest per-payload instrumentation the hot path has.
fn bench_stream(engine: &Engine, chunks: u64, batch: usize) -> Result {
    let svc = service(engine);
    let mut client = CotClient::connect(svc.addr(), "telemetry-stream").expect("connect");
    let mut reused = CotBatch::default();
    // Untimed warm-up stream: session buffers sized, pool shards primed,
    // so the timed window compares steady states, not cold starts.
    let mut warm = client.subscribe(batch, 4).expect("warm subscribe");
    while warm.next_chunk_into(&mut reused).expect("warm chunk") {}
    warm.finish().expect("warm finish");
    let per_window = (chunks as usize / WINDOWS).max(1) as u64;
    let mut windows = Vec::with_capacity(WINDOWS);
    let t = Instant::now();
    let mut sub = client.subscribe(batch, chunks).expect("subscribe");
    let mut cpu = process_cpu_ns();
    let mut window_cots = 0u64;
    let mut seen = 0u64;
    while sub.next_chunk_into(&mut reused).expect("chunk") {
        window_cots += reused.len() as u64;
        seen += 1;
        if seen.is_multiple_of(per_window) {
            let now = process_cpu_ns();
            windows.push((window_cots, now.saturating_sub(cpu)));
            cpu = now;
            window_cots = 0;
        }
    }
    sub.finish().expect("finish");
    let secs = t.elapsed().as_secs_f64();
    reused.verify().expect("verified");
    svc.shutdown();
    Result::from_windows("service_stream", windows, secs)
}

/// Scrape-merge cost for a 3-server fleet: each pass connects to every
/// member, pulls its v6 `Stats` (four histogram snapshots per shard),
/// and merges fleet-wide — the whole cost of one observer sweep.
fn bench_scrape(engine: &Engine, passes: usize) -> (usize, f64) {
    let cluster = LocalCluster::spawn(
        3,
        engine,
        &ClusterServerConfig {
            service: CotServiceConfig {
                shards: 2,
                seed: 909,
                ..CotServiceConfig::default()
            },
            warmup: Some(WarmupConfig::default()),
        },
    )
    .expect("spawn fleet");
    // Give every server some samples to serialize and merge.
    let snapshot = cluster.directory().snapshot();
    for member in snapshot.members() {
        let mut client = CotClient::connect(member.addr, "telemetry-scrape").expect("connect");
        for _ in 0..4 {
            client.request_cots(256).expect("serve");
        }
    }
    let directory = cluster.directory();
    let t = Instant::now();
    let mut scraped = 0usize;
    for _ in 0..passes {
        let fleet = observe::scrape(&directory, Duration::from_millis(500));
        scraped += fleet.servers.len();
    }
    let secs = t.elapsed().as_secs_f64();
    assert_eq!(scraped, 3 * passes, "every pass must reach all 3 servers");
    cluster.shutdown();
    (passes, secs)
}

/// Pulls `"<name>" ... "cots_per_cpu_sec": <value>` out of the baseline
/// JSON (written by this same binary, so the shape is fixed).
fn baseline_rate(json: &str, name: &str) -> Option<f64> {
    let at = json.find(&format!("\"name\": \"{name}\""))?;
    let rest = &json[at..];
    let key = "\"cots_per_cpu_sec\": ";
    let v = &rest[rest.find(key)? + key.len()..];
    let end = v.find(['}', ','])?;
    v[..end].trim().parse().ok()
}

/// Runs both hot-path stages once and prints the per-stage table.
fn measure(engine: &Engine, requests: usize, chunks: u64, batch: usize) -> [Result; 2] {
    let results = [
        bench_roundtrip(engine, requests, batch),
        bench_stream(engine, chunks, batch),
    ];
    header(
        &format!("serving hot path, telemetry {MODE}"),
        &["stage", "COTs", "secs", "COTs/s", "cpu_secs", "COTs/cpu_s"],
    );
    for r in &results {
        row(&[
            r.name.to_string(),
            r.cots.to_string(),
            f2(r.secs),
            format!("{:.0}", r.cots_per_sec()),
            f2(r.gated_cpu_secs),
            format!("{:.0}", r.cots_per_cpu_sec()),
        ]);
    }
    results
}

/// Instrumented-vs-noop ratio of combined COTs per CPU second across
/// both stages (live measurements vs the baseline file's rates).
fn ratio_against(results: &[Result; 2], json: &str) -> Option<f64> {
    let combined = |rates: &[(f64, f64)]| {
        let cots: f64 = rates.iter().map(|&(c, _)| c).sum();
        let cpu: f64 = rates.iter().map(|&(_, s)| s).sum();
        cots / cpu
    };
    let noop: Vec<(f64, f64)> = results
        .iter()
        .map(|r| {
            let c = r.gated_cots as f64;
            baseline_rate(json, r.name).map(|rate| (c, c / rate))
        })
        .collect::<Option<_>>()?;
    let live: Vec<(f64, f64)> = results
        .iter()
        .map(|r| (r.gated_cots as f64, r.gated_cpu_secs))
        .collect();
    Some(combined(&live) / combined(&noop))
}

fn stages_json(results: &[Result; 2]) -> String {
    let mut stages = String::new();
    for (i, r) in results.iter().enumerate() {
        stages.push_str(&format!(
            "    {{\"name\": \"{}\", \"cots\": {}, \"secs\": {:.6}, \"cots_per_sec\": {:.1}, \
             \"gated_cpu_secs\": {:.6}, \"cots_per_cpu_sec\": {:.1}}}{}\n",
            r.name,
            r.cots,
            r.secs,
            r.cots_per_sec(),
            r.gated_cpu_secs,
            r.cots_per_cpu_sec(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    stages
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // `--pair-with <noop binary>`: interleave rounds against the no-op
    // build and gate on the median per-round ratio (see below).
    let pair_with = {
        let mut args = std::env::args();
        args.find(|a| a == "--pair-with").and_then(|_| args.next())
    };
    let engine = Engine::new(
        FerretConfig::recommended(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let batch = 2000;
    // The gate compares CPU seconds per COT, not wall time: the work per
    // COT is deterministic, so its CPU floor reproduces tightly across
    // runs, while wall time on a shared box swings far more than the 3%
    // threshold this head-to-head enforces.
    let (requests, chunks, scrape_passes) = if quick {
        (400, 400, 20)
    } else {
        (1000, 1000, 100)
    };

    if MODE == "noop" {
        let results = measure(&engine, requests, chunks, batch);
        let stages = stages_json(&results);
        let json = format!(
            "{{\n  \"bench\": \"telemetry_overhead_baseline\",\n  \"quick\": {quick},\n  \"results\": [\n{stages}  ]\n}}\n"
        );
        std::fs::write(BASELINE_PATH, &json).expect("write baseline json");
        println!("\nwrote {BASELINE_PATH} (no-op baseline; run the instrumented build next)");
        return;
    }

    // Instrumented build. Even CPU-per-COT drifts a few percent when the
    // box shifts frequency state, and those states persist for seconds —
    // longer than the gap between CI's two halves. So when `--pair-with`
    // names the no-op binary, each round re-runs the baseline *adjacent*
    // to the live measurement and the gate takes the median per-round
    // ratio: a state flip can contaminate one round, not the median.
    let mut ratios = Vec::new();
    let mut results = None;
    if let Some(noop_bin) = &pair_with {
        let rounds = 5;
        for round in 0..rounds {
            let mut cmd = std::process::Command::new(noop_bin);
            if quick {
                cmd.arg("--quick");
            }
            let status = cmd.status().expect("spawn the no-op baseline binary");
            assert!(status.success(), "no-op baseline run failed");
            let live = measure(&engine, requests, chunks, batch);
            let baseline =
                std::fs::read_to_string(BASELINE_PATH).expect("baseline written by paired run");
            let ratio = ratio_against(&live, &baseline).expect("parse baseline rates");
            println!("round {}/{rounds}: ratio {ratio:.4}", round + 1);
            ratios.push(ratio);
            results = Some(live);
        }
        ratios.sort_by(f64::total_cmp);
    } else {
        let live = measure(&engine, requests, chunks, batch);
        if let Ok(baseline) = std::fs::read_to_string(BASELINE_PATH) {
            ratios.extend(ratio_against(&live, &baseline));
        }
        results = Some(live);
    }
    let results = results.expect("at least one measurement round");
    let ratio = (!ratios.is_empty()).then(|| ratios[ratios.len() / 2]);
    match ratio {
        Some(ratio) => println!(
            "\ninstrumented vs no-op, combined COTs per CPU second: {:.4}x ({:.2}% overhead, \
             median of {} round(s))",
            ratio,
            (1.0 - ratio).max(0.0) * 100.0,
            ratios.len()
        ),
        None => println!(
            "\nno usable {BASELINE_PATH} found — run the telemetry-noop build first (or pass \
             --pair-with <noop binary>) for the head-to-head ratio"
        ),
    }

    let (passes, scrape_secs) = bench_scrape(&engine, scrape_passes);
    let per_scrape_us = scrape_secs / passes as f64 * 1e6;
    println!(
        "fleet scrape-merge (3 servers, fresh sessions per pass): {passes} passes, \
         {per_scrape_us:.0} us/scrape"
    );

    let stages = stages_json(&results);
    let ratio_json = ratio.map_or("null".to_string(), |r| format!("{r:.4}"));
    let rounds_json = ratios
        .iter()
        .map(|r| format!("{r:.4}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \"quick\": {quick},\n  \
         \"overhead_ratio\": {ratio_json},\n  \"ratio_rounds\": [{rounds_json}],\n  \
         \"scrape\": {{\"servers\": 3, \"passes\": {passes}, \"secs\": {scrape_secs:.6}, \
         \"us_per_scrape\": {per_scrape_us:.1}}},\n  \"results\": [\n{stages}  ]\n}}\n"
    );
    std::fs::write("BENCH_telemetry.json", &json).expect("write bench json");
    let _ = std::fs::remove_file(BASELINE_PATH);
    println!("wrote BENCH_telemetry.json");
}
