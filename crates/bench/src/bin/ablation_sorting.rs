//! Ablation: the two halves of the §5.3 index-sorting algorithm.
//!
//! The paper reports that column swapping alone tops out near a 20% hit
//! rate with a 1 MB cache and needs row look-ahead on top. This harness
//! measures all four strategies on the 2^20-set geometry.

use ironman_bench::{header, pct, row};
use ironman_lpn::sorting::{trace_hit_rate, SortConfig, SortStrategy};
use ironman_lpn::{encoder, LpnMatrix, SortedLpnMatrix};
use ironman_prg::Block;

fn main() {
    // One rank's share of the 2^20 set: k = 168000 elements, sampled rows.
    let rows = 16_384;
    let k = 168_000;
    let matrix = LpnMatrix::generate(rows, k, 10, Block::from(0x50u128));

    for cache_kb in [256usize, 1024] {
        let cache_lines = cache_kb * 1024 / 64;
        let cfg = SortConfig {
            cache_lines,
            window: 32,
            block_rows: 4096,
        };
        header(
            &format!("index-sorting ablation, {cache_kb} KB cache (2^20-set geometry)"),
            &["strategy", "hit rate"],
        );
        let base = trace_hit_rate(encoder::access_trace(&matrix), cache_lines);
        row(&["unsorted".to_string(), pct(base)]);
        for (strategy, name) in [
            (SortStrategy::ColumnOnly, "column-swap"),
            (SortStrategy::RowOnly, "row-lookahead"),
            (SortStrategy::Full, "both (deployed)"),
        ] {
            let sorted = SortedLpnMatrix::sort_with(&matrix, cfg, strategy);
            row(&[
                name.to_string(),
                pct(trace_hit_rate(sorted.access_trace(), cache_lines)),
            ]);
        }
    }
    println!("\nshape check (paper 5.3): each transformation helps; the combination is deployed");
}
