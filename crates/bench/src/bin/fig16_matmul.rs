//! Regenerates **Figure 16**: OT-based MatMul communication and latency
//! with vs. without the unified (role-switching) architecture.

use ironman_bench::{f2, header, pct, row, times};
use ironman_perf::NetworkModel;
use ironman_ppml::matmul::FIG16_DIMS;

fn main() {
    header(
        "Fig. 16: OT-based MatMul with/without unified architecture",
        &[
            "dims",
            "comm w/o MB",
            "comm w/ MB",
            "norm",
            "lat red LAN",
            "lat red WAN",
        ],
    );
    for d in FIG16_DIMS {
        let without = d.comm_without_unified_bytes();
        let with = d.comm_with_unified_bytes();
        row(&[
            format!("({},{},{})", d.input, d.hidden, d.output),
            f2(without as f64 / 1e6),
            f2(with as f64 / 1e6),
            pct(with as f64 / without as f64),
            times(d.latency_reduction(&NetworkModel::LAN)),
            times(d.latency_reduction(&NetworkModel::WAN)),
        ]);
    }
    println!(
        "\nshape check: 2x communication reduction, ~1.4x LAN latency reduction (paper Fig. 16)"
    );
}
