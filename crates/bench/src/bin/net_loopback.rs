//! Serving-layer experiment: COT throughput over a real TCP loopback
//! socket vs. the in-process `LocalChannel`, for the raw two-party FERRET
//! protocol and for the multi-client `CotService` path.
//!
//! Emits the human table plus machine-readable JSON to
//! `BENCH_net_loopback.json` (`{"bench": ..., "results": [{name,
//! cots_per_sec, ...}]}`) so sweeps can diff runs.

use ironman_bench::{f2, header, row};
use ironman_core::{Backend, Engine};
use ironman_net::{tcp_loopback_pair, CotClient, CotService, CotServiceConfig};
use ironman_ot::ferret::{run_extensions, run_extensions_over, FerretConfig};
use ironman_ot::params::FerretParams;
use std::time::Instant;

struct Result {
    name: &'static str,
    cots: u64,
    secs: f64,
    payload_bytes: u64,
}

impl Result {
    fn cots_per_sec(&self) -> f64 {
        self.cots as f64 / self.secs
    }
}

fn bench_raw_protocol(cfg: &FerretConfig, iters: usize, tcp: bool) -> Result {
    let start = Instant::now();
    let outs = if tcp {
        let (cs, cr) = tcp_loopback_pair().expect("loopback pair");
        run_extensions_over(cfg, 5, iters, cs, cr)
    } else {
        run_extensions(cfg, 5, iters)
    };
    let secs = start.elapsed().as_secs_f64();
    let cots: u64 = outs.iter().map(|o| o.len() as u64).sum();
    // Both directions, counted once: everything the sender sent plus
    // everything it received (= everything the receiver sent).
    let payload_bytes: u64 = outs.iter().map(|o| o.sender_stats.total_bytes()).sum();
    Result {
        name: if tcp {
            "ferret_tcp_loopback"
        } else {
            "ferret_local_channel"
        },
        cots,
        secs,
        payload_bytes,
    }
}

fn bench_service(engine: &Engine, clients: usize, requests: usize, batch: usize) -> Result {
    let service = CotService::serve(
        "127.0.0.1:0",
        engine,
        CotServiceConfig {
            shards: clients.min(4),
            seed: 77,
            ..CotServiceConfig::default()
        },
    )
    .expect("bind loopback service");
    let addr = service.addr();
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|id| {
            std::thread::spawn(move || {
                let mut client = CotClient::connect(addr, &format!("bench-{id}")).expect("connect");
                let mut cots = 0u64;
                for _ in 0..requests {
                    let b = client.request_cots(batch).expect("request");
                    b.verify().expect("verified");
                    cots += b.len() as u64;
                }
                (cots, client.transport_stats().total_bytes())
            })
        })
        .collect();
    let mut cots = 0u64;
    let mut payload_bytes = 0u64;
    for t in threads {
        let (c, b) = t.join().expect("bench client");
        cots += c;
        payload_bytes += b;
    }
    let secs = start.elapsed().as_secs_f64();
    service.shutdown();
    Result {
        name: "cot_service_4_clients",
        cots,
        secs,
        payload_bytes,
    }
}

fn main() {
    let params = FerretParams::toy();
    let cfg = FerretConfig::recommended(params);
    let engine = Engine::new(cfg.clone(), Backend::ironman_default());
    let iters = 6;

    let results = vec![
        bench_raw_protocol(&cfg, iters, false),
        bench_raw_protocol(&cfg, iters, true),
        bench_service(&engine, 4, 8, 500),
    ];

    header(
        "COT serving throughput, loopback TCP vs in-process",
        &["path", "COTs", "secs", "COTs/s", "payload B"],
    );
    for r in &results {
        row(&[
            r.name.to_string(),
            r.cots.to_string(),
            f2(r.secs),
            format!("{:.0}", r.cots_per_sec()),
            r.payload_bytes.to_string(),
        ]);
    }
    let local = results[0].cots_per_sec();
    let tcp = results[1].cots_per_sec();
    println!(
        "\nTCP loopback achieves {:.1}% of LocalChannel throughput",
        100.0 * tcp / local
    );

    // Machine-readable output (hand-rolled JSON; no serde in this build).
    let mut json = String::from("{\n  \"bench\": \"net_loopback\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"cots\": {}, \"secs\": {:.6}, \
             \"cots_per_sec\": {:.1}, \"payload_bytes\": {}}}{}\n",
            r.name,
            r.cots,
            r.secs,
            r.cots_per_sec(),
            r.payload_bytes,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = "BENCH_net_loopback.json";
    std::fs::write(path, &json).expect("write bench json");
    println!("wrote {path}");
}
