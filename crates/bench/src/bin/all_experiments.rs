//! Runs every table/figure generator in sequence — the one-shot command
//! behind EXPERIMENTS.md. Equivalent to running each `fig*`/`tab*` binary
//! individually.

use std::process::Command;

const BINS: [&str; 13] = [
    "fig01_breakdown",
    "fig01_latency_split",
    "fig01_roofline",
    "tab02_prg",
    "tab03_config",
    "tab04_params",
    "fig07_mary",
    "fig08_schedule",
    "fig12_ote_speedup",
    "fig13_ablation",
    "fig14_cache",
    "fig15_nonlinear",
    "fig16_matmul",
];

const BINS_TAIL: [&str; 5] = [
    "tab05_e2e",
    "tab06_area_power",
    "ablation_sorting",
    "energy_comparison",
    "comm_comparison",
];

fn main() {
    let exe = std::env::current_exe().expect("current exe path");
    let dir = exe.parent().expect("bin directory").to_path_buf();
    for bin in BINS.iter().chain(BINS_TAIL.iter()) {
        let path = dir.join(bin);
        let status = if path.exists() {
            Command::new(&path).status()
        } else {
            // Fall back to cargo when siblings aren't built yet.
            Command::new("cargo")
                .args([
                    "run",
                    "-q",
                    "--release",
                    "-p",
                    "ironman-bench",
                    "--bin",
                    bin,
                ])
                .status()
        };
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => eprintln!("{bin} exited with {s}"),
            Err(e) => eprintln!("failed to launch {bin}: {e}"),
        }
    }
}
