//! Shared helpers for the experiment harness.
//!
//! Each `src/bin/*.rs` binary regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index); this library provides the common
//! table formatting and the measured-speedup plumbing they share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Prints a header row followed by a separator sized to the columns.
pub fn header(title: &str, cols: &[&str]) {
    println!("\n=== {title} ===");
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Prints one row of up-to-14-character cells.
pub fn row<D: Display>(cells: &[D]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Formats a float with 2 decimals (table cell).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio as `x.x×`.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Runs `run` `attempts` times and keeps the attempt with the highest
/// `score` — the bench-noise policy on the one-core CI box, where the OS
/// scheduler (and background warm-up refills landing inside a short
/// timed window) add run-to-run noise: the best attempt is the one that
/// measured the path under test rather than the interference.
pub fn best_of<T>(attempts: usize, score: impl Fn(&T) -> f64, mut run: impl FnMut() -> T) -> T {
    let mut best = run();
    for _ in 1..attempts {
        let next = run();
        if score(&next) > score(&best) {
            best = next;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(times(2.5), "2.50x");
        assert_eq!(pct(0.25), "25.0%");
    }
}
