//! Kernel-equivalence properties: every LPN kernel variant — row-major
//! naive, cache-blocked tiled (arbitrary geometries), §5.3-sorted,
//! sorted+tiled, packed bits, the fused receiver pair, the skip-zero
//! probe lanes, and the whole [`ironman_lpn::simd`] dispatch layer at
//! every runtime-available SIMD level (scalar always; AVX2/BMI2 where
//! the host has it) — computes the same GF(2)/GF(2^128) product, onto
//! dirty accumulators, across matrix shapes including the `toy()` and
//! `OT_2POW20` parameter classes. Iterating `SimdLevel::available()`
//! covers both the forced-scalar and auto-detected dispatch outcomes
//! without racing on the `IRONMAN_SIMD` process environment.

use ironman_lpn::encoder;
use ironman_lpn::sorting::{SortConfig, SortStrategy};
use ironman_lpn::{
    simd, LpnMatrix, PackedBits, SimdLevel, SortedLpnMatrix, TileConfig, TileSchedule,
};
use ironman_prg::Block;
use proptest::prelude::*;

/// Pseudorandom but deterministic fill helpers (proptest's collection
/// strategies at `n`-element scale would dominate runtime).
fn blocks_from(seed: u64, len: usize) -> Vec<Block> {
    (0..len)
        .map(|i| {
            let x = (seed ^ i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            Block::from_halves(x, x.rotate_left(17) ^ 0xABCD)
        })
        .collect()
}

fn bools_from(seed: u64, len: usize) -> Vec<bool> {
    (0..len)
        .map(|i| (seed ^ i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) & 4 != 0)
        .collect()
}

/// Asserts all block-kernel variants match the naive encoder on the
/// given matrix with dirty accumulators, and likewise for bits.
fn assert_all_kernels_equal(m: &LpnMatrix, tile_cfg: TileConfig, sort_cfg: SortConfig, seed: u64) {
    let n = m.rows();
    let k = m.cols();
    let s = blocks_from(seed, k);
    let e = bools_from(seed ^ 1, k);
    let e_packed = PackedBits::from_bools(&e);
    let dirty_blocks = blocks_from(seed ^ 2, n);
    let dirty_bits = bools_from(seed ^ 3, n);

    // Reference: row-major naive.
    let mut y_ref = dirty_blocks.clone();
    let mut x_ref = dirty_bits.clone();
    encoder::encode_blocks(m, &s, &mut y_ref);
    encoder::encode_bits(m, &e, &mut x_ref);

    // Tiled (explicit geometry + the cached default schedule).
    let tiles = TileSchedule::build(m, tile_cfg);
    let mut y = dirty_blocks.clone();
    tiles.encode_blocks(&s, &mut y);
    assert_eq!(y, y_ref, "tiled blocks ({tile_cfg:?})");
    let mut y = dirty_blocks.clone();
    m.tile_schedule().encode_blocks(&s, &mut y);
    assert_eq!(y, y_ref, "default-schedule blocks");

    // Packed bits: row-major and tiled.
    let mut x = PackedBits::from_bools(&dirty_bits);
    encoder::encode_bits_packed(m, &e_packed, &mut x);
    assert_eq!(x.to_bools(), x_ref, "packed bits");
    let mut x = PackedBits::from_bools(&dirty_bits);
    tiles.encode_bits_packed(&e_packed, &mut x);
    assert_eq!(x.to_bools(), x_ref, "tiled packed bits ({tile_cfg:?})");

    // Fused receiver pair: row-major and tiled.
    let mut y = dirty_blocks.clone();
    let mut x = PackedBits::from_bools(&dirty_bits);
    encoder::encode_cot_pair(m, &s, &e_packed, &mut y, &mut x);
    assert_eq!(y, y_ref, "fused row-major blocks");
    assert_eq!(x.to_bools(), x_ref, "fused row-major bits");
    let mut y = dirty_blocks.clone();
    let mut x = PackedBits::from_bools(&dirty_bits);
    tiles.encode_cot_pair(&s, &e_packed, &mut y, &mut x);
    assert_eq!(y, y_ref, "fused tiled blocks");
    assert_eq!(x.to_bools(), x_ref, "fused tiled bits");

    // The simd dispatch layer: every entry point × every level the host
    // can actually run (Scalar everywhere; Wide on AVX2+BMI2 machines),
    // including both skip-zero probe lanes.
    for &level in SimdLevel::available() {
        let mut y = dirty_blocks.clone();
        simd::encode_blocks(level, m, &s, &mut y);
        assert_eq!(y, y_ref, "simd blocks ({level:?})");
        let mut y = dirty_blocks.clone();
        simd::encode_blocks_tiled(level, &tiles, &s, &mut y);
        assert_eq!(y, y_ref, "simd tiled blocks ({level:?})");

        let mut x = PackedBits::from_bools(&dirty_bits);
        simd::encode_bits_packed(level, m, &e_packed, &mut x);
        assert_eq!(x.to_bools(), x_ref, "simd packed bits ({level:?})");
        let mut x = PackedBits::from_bools(&dirty_bits);
        simd::encode_bits_packed_tiled(level, &tiles, &e_packed, &mut x);
        assert_eq!(x.to_bools(), x_ref, "simd tiled packed bits ({level:?})");

        let mut x = PackedBits::from_bools(&dirty_bits);
        simd::encode_bits_packed_skipzero(level, m, &e_packed, &mut x);
        assert_eq!(x.to_bools(), x_ref, "skip-zero packed bits ({level:?})");
        let mut x = PackedBits::from_bools(&dirty_bits);
        simd::encode_bits_packed_skipzero_tiled(level, &tiles, &e_packed, &mut x);
        assert_eq!(
            x.to_bools(),
            x_ref,
            "skip-zero tiled packed bits ({level:?})"
        );

        let mut y = dirty_blocks.clone();
        let mut x = PackedBits::from_bools(&dirty_bits);
        simd::encode_cot_pair(level, m, &s, &e_packed, &mut y, &mut x);
        assert_eq!(y, y_ref, "simd fused blocks ({level:?})");
        assert_eq!(x.to_bools(), x_ref, "simd fused bits ({level:?})");
        let mut y = dirty_blocks.clone();
        let mut x = PackedBits::from_bools(&dirty_bits);
        simd::encode_cot_pair_tiled(level, &tiles, &s, &e_packed, &mut y, &mut x);
        assert_eq!(y, y_ref, "simd fused tiled blocks ({level:?})");
        assert_eq!(x.to_bools(), x_ref, "simd fused tiled bits ({level:?})");
    }

    // Sorted, sorted+tiled, sorted packed, sorted fused.
    for strategy in [SortStrategy::ColumnOnly, SortStrategy::Full] {
        let sorted = SortedLpnMatrix::sort_with(m, sort_cfg, strategy);
        let mut y = dirty_blocks.clone();
        sorted.encode_blocks(&s, &mut y);
        assert_eq!(y, y_ref, "sorted blocks ({strategy:?})");
        let mut y = dirty_blocks.clone();
        sorted.encode_blocks_tiled(&s, &mut y);
        assert_eq!(y, y_ref, "sorted tiled blocks ({strategy:?})");
        let mut x = PackedBits::from_bools(&dirty_bits);
        sorted.encode_bits_packed(&e_packed, &mut x);
        assert_eq!(x.to_bools(), x_ref, "sorted packed bits ({strategy:?})");
        let mut y = dirty_blocks.clone();
        let mut x = PackedBits::from_bools(&dirty_bits);
        sorted.encode_cot_pair_tiled(&s, &e_packed, &mut y, &mut x);
        assert_eq!(y, y_ref, "sorted fused blocks ({strategy:?})");
        assert_eq!(x.to_bools(), x_ref, "sorted fused bits ({strategy:?})");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random small matrices × random tile geometries × dirty
    /// accumulators: every kernel equals the naive encoder.
    #[test]
    fn all_kernels_agree_on_random_matrices(
        rows in 1usize..400,
        cols in 1usize..300,
        weight in 0usize..12,
        row_block in 1usize..512,
        col_tile in 1usize..512,
        seed in any::<u64>(),
    ) {
        let weight = weight.min(cols);
        let m = LpnMatrix::generate(rows, cols, weight, Block::from(seed as u128));
        let tile_cfg = TileConfig { row_block, col_tile };
        let sort_cfg = SortConfig { cache_lines: 64, window: 4, block_rows: 128 };
        assert_all_kernels_equal(&m, tile_cfg, sort_cfg, seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The `FerretParams::toy()` shape (n=5000, k=1024, d=10) — the CI
    /// parameter class — under random seeds and the default geometries.
    #[test]
    fn all_kernels_agree_on_toy_class(seed in any::<u64>()) {
        let m = LpnMatrix::generate(5000, 1024, 10, Block::from(seed as u128));
        assert_all_kernels_equal(&m, TileConfig::default(), SortConfig {
            cache_lines: 256, window: 8, block_rows: 1024,
        }, seed);
    }

    /// The `OT_2POW20` shape (n ≈ 7.3k, d = 10) at 1/100 linear scale,
    /// keeping the n:k ratio, plus the production tile geometry scaled
    /// the same way — the shape the tiled kernels were built for.
    #[test]
    fn all_kernels_agree_on_ot2pow20_class(seed in any::<u64>()) {
        let m = LpnMatrix::generate(12_215, 1_680, 10, Block::from(seed as u128));
        let tile_cfg = TileConfig { row_block: 1310, col_tile: 327 };
        assert_all_kernels_equal(&m, tile_cfg, SortConfig {
            cache_lines: 256, window: 8, block_rows: 2048,
        }, seed);
    }
}
