//! LPN encoding for the Ironman OT-extension reproduction.
//!
//! §2.3.2 of the paper: after SPCOT, both parties locally multiply their
//! length-`k` pre-generated vectors by a fixed sparse binary matrix `A`
//! (each row has exactly `d = 10` nonzero entries) and XOR the result onto
//! their length-`n` SPCOT outputs:
//!
//! * sender:   `z = r·A ⊕ w`
//! * receiver: `x = e·A ⊕ u` (bits), `y = s·A ⊕ v` (blocks)
//!
//! Because `A`'s entries are bits, each output element is the XOR of `d`
//! randomly indexed elements of the input vector — a pure random-access
//! workload, which is why LPN is memory-bandwidth-bound (Fig. 1c) and why
//! Ironman sorts the index matrix at compile time (§5.3).
//!
//! This crate provides the matrix ([`LpnMatrix`]), the encoder
//! ([`encoder`]), the locality-improving sorting pass
//! ([`sorting::SortedLpnMatrix`]: column swapping + row look-ahead), the
//! cache-blocked online schedule ([`tile::TileSchedule`]) and the
//! packed-bit lane ([`bits::PackedBits`]).
//!
//! # Software kernels ↔ paper mechanisms
//!
//! Ironman fixes LPN's memory-boundedness with near-memory hardware; this
//! crate applies each mechanism's *idea* in software, on the online path:
//!
//! | software kernel | paper mechanism | shared idea |
//! |---|---|---|
//! | [`tile::TileSchedule`] — offline (row-block × column-tile) bucketing of the fixed gather set, executed tile-major | memory-side cache fed by §5.3 offline index sorting | the access stream is known ahead of time, so reorder it **once** so the live window always fits the nearest memory |
//! | [`bits::PackedBits`] — the receiver's `e`/`u`/`x` bit lane in `u64` words (8× smaller than `Vec<bool>`; `k = 168K` shrinks 168 KB → ~21 KB, L1-resident) | rank-level bandwidth: NMP wins by moving fewer DRAM bytes per useful bit | shrink bytes-per-bit so the same cache holds 8× more of the working set |
//! | [`sorting::SortedLpnMatrix`] column swap + row look-ahead (offline), composable with tiling via [`sorting::SortedLpnMatrix::tile_schedule`] | §5.3 `Colidx`/`Rowidx` sorting | spatial + temporal locality mined from the fixed matrix offline |
//! | [`encoder::XorLane`] — one generic XOR-accumulate core behind every traversal × element type | the paper's single LPN datapath parameterized by operand width | the kernel is one circuit; only the operand format varies |
//! | [`simd`] — runtime-dispatched AVX2/BMI2 lanes (XMM 128-bit `Block` XORs, `SHRX` bit probes) behind [`simd::SimdLevel::detect`], scalar fallback always available | the paper's datapath is a *wide* XOR engine (rank-level parallel XOR units) | the XOR circuit is wider than one word; use the widest the hardware offers |
//! | [`encoder::SkipZeroPackedLane`] — tests each input bit and only accumulates set ones (≈half of a pseudorandom `e` is zero) | NMP skips work per useful bit moved, not per scheduled access | don't spend an operation proving a zero contributes nothing — benched honestly against the branchless lane, which wins when the 50/50 branch mispredicts |
//!
//! # Example
//!
//! ```
//! use ironman_lpn::{LpnMatrix, encoder};
//! use ironman_prg::Block;
//!
//! let m = LpnMatrix::generate(100, 40, 10, Block::from(1u128));
//! let r: Vec<Block> = (0..40u128).map(Block::from).collect();
//! let mut w = vec![Block::ZERO; 100];
//! encoder::encode_blocks(&m, &r, &mut w);
//! // The cache-blocked schedule computes the same product tile-major.
//! let mut w2 = vec![Block::ZERO; 100];
//! m.tile_schedule().encode_blocks(&r, &mut w2);
//! assert_eq!(w, w2);
//! ```

// `deny` (not `forbid`) so the [`simd`] module alone may opt in to the
// feature-gated intrinsics behind a scoped `#[allow(unsafe_code)]`;
// every other module still rejects `unsafe` at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod encoder;
pub mod matrix;
pub mod simd;
pub mod sorting;
pub mod tile;

pub use bits::PackedBits;
pub use matrix::LpnMatrix;
pub use simd::{SimdLevel, SimdMode};
pub use sorting::SortedLpnMatrix;
pub use tile::{TileConfig, TileSchedule};

/// The paper's row weight: every row of `A` has exactly ten nonzeros.
pub const DEFAULT_ROW_WEIGHT: usize = 10;
