//! LPN encoding for the Ironman OT-extension reproduction.
//!
//! §2.3.2 of the paper: after SPCOT, both parties locally multiply their
//! length-`k` pre-generated vectors by a fixed sparse binary matrix `A`
//! (each row has exactly `d = 10` nonzero entries) and XOR the result onto
//! their length-`n` SPCOT outputs:
//!
//! * sender:   `z = r·A ⊕ w`
//! * receiver: `x = e·A ⊕ u` (bits), `y = s·A ⊕ v` (blocks)
//!
//! Because `A`'s entries are bits, each output element is the XOR of `d`
//! randomly indexed elements of the input vector — a pure random-access
//! workload, which is why LPN is memory-bandwidth-bound (Fig. 1c) and why
//! Ironman sorts the index matrix at compile time (§5.3).
//!
//! This crate provides the matrix ([`LpnMatrix`]), the encoder
//! ([`encoder`]), and the locality-improving sorting pass
//! ([`sorting::SortedLpnMatrix`]: column swapping + row look-ahead).
//!
//! # Example
//!
//! ```
//! use ironman_lpn::{LpnMatrix, encoder};
//! use ironman_prg::Block;
//!
//! let m = LpnMatrix::generate(100, 40, 10, Block::from(1u128));
//! let r: Vec<Block> = (0..40u128).map(Block::from).collect();
//! let mut w = vec![Block::ZERO; 100];
//! encoder::encode_blocks(&m, &r, &mut w);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoder;
pub mod matrix;
pub mod sorting;

pub use matrix::LpnMatrix;
pub use sorting::SortedLpnMatrix;

/// The paper's row weight: every row of `A` has exactly ten nonzeros.
pub const DEFAULT_ROW_WEIGHT: usize = 10;
