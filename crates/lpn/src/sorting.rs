//! Compile-time index sorting: column swapping + row look-ahead (§5.3).
//!
//! LPN's access pattern is fixed (the matrix never changes), so Ironman
//! sorts the CSR index array **once, offline** and reuses it for every OTE
//! execution. Two transformations are applied:
//!
//! * **Column swapping** — columns are relabeled in order of first use, so
//!   that indices touched close together in time sit close together in
//!   memory (spatial locality: consecutive relabeled elements share 64-byte
//!   cache lines). Correctness is preserved by permuting the input vector
//!   identically on both parties, which is safe because the LPN input is
//!   (pseudo)random (paper §5.3, "Vector permutation").
//! * **Row look-ahead** — rows are reordered (tracked by a `Rowidx` array)
//!   so that rows reusing currently cached lines execute next (temporal
//!   locality). We implement the offline greedy the paper describes:
//!   simulate the memory-side cache and repeatedly pick, from a look-ahead
//!   window, the row with the most cache hits.
//!
//! The paper's sorting-overhead mitigation — "divide the matrix into
//! smaller blocks and sort them separately" — is the `block_rows` knob.

use crate::bits::PackedBits;
use crate::encoder::{self, PackedLane, RowMappedLane, SliceLane, XorLane};
use crate::tile::{TileConfig, TileSchedule};
use crate::LpnMatrix;
use ironman_prg::Block;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::OnceLock;

/// Blocks (16-byte elements) per 64-byte cache line.
pub const ELEMS_PER_LINE: usize = 4;

/// Configuration of the offline sorting pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortConfig {
    /// Capacity (in 64-byte lines) of the simulated memory-side cache used
    /// by the greedy row scheduler. Should match the deployed cache
    /// (256 KB ⇒ 4096 lines; 1 MB ⇒ 16384 lines).
    pub cache_lines: usize,
    /// Look-ahead window: how many pending rows are examined per step.
    pub window: usize,
    /// Rows per independently sorted block (bounds the offline cost).
    pub block_rows: usize,
}

impl Default for SortConfig {
    fn default() -> Self {
        SortConfig {
            cache_lines: 4096,
            window: 16,
            block_rows: 4096,
        }
    }
}

/// Which of the two §5.3 transformations to apply — the ablation axis of
/// the `ablation_sorting` bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SortStrategy {
    /// Column swapping only (spatial locality; the paper measures this
    /// alone topping out near a 20% hit rate).
    ColumnOnly,
    /// Row look-ahead only (temporal locality).
    RowOnly,
    /// Both, as deployed (the default).
    Full,
}

/// A sorted LPN matrix: same code, better locality.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SortedLpnMatrix {
    matrix: LpnMatrix,
    /// `row_order[pos]` = original row computed at position `pos`
    /// (the paper's `Rowidx` array).
    row_order: Vec<u32>,
    /// `col_perm[old]` = new location of input element `old`.
    col_perm: Vec<u32>,
    /// Cache-blocked schedule composing both permutations with tiling
    /// (derived state, built on first use).
    tiles: OnceLock<TileSchedule>,
}

impl SortedLpnMatrix {
    /// Sorts `matrix` with both transformations (the deployed configuration).
    pub fn sort(matrix: &LpnMatrix, cfg: SortConfig) -> Self {
        Self::sort_with(matrix, cfg, SortStrategy::Full)
    }

    /// Sorts `matrix` applying only the selected transformation(s).
    pub fn sort_with(matrix: &LpnMatrix, cfg: SortConfig, strategy: SortStrategy) -> Self {
        let col_perm = match strategy {
            SortStrategy::RowOnly => (0..matrix.cols() as u32).collect(),
            _ => first_use_permutation(matrix),
        };
        // Apply the column relabeling.
        let relabeled: Vec<u32> = matrix
            .colidx()
            .iter()
            .map(|&c| col_perm[c as usize])
            .collect();
        let relabeled =
            LpnMatrix::from_colidx(matrix.rows(), matrix.cols(), matrix.weight(), relabeled);
        // Row look-ahead per block.
        let row_order = match strategy {
            SortStrategy::ColumnOnly => (0..matrix.rows() as u32).collect(),
            _ => look_ahead_order(&relabeled, cfg),
        };
        // Materialize the colidx in execution order so the NMP module can
        // stream it.
        let weight = relabeled.weight();
        let mut sorted_idx = Vec::with_capacity(relabeled.colidx().len());
        for &r in &row_order {
            sorted_idx.extend_from_slice(relabeled.row(r as usize));
        }
        let matrix = LpnMatrix::from_colidx(relabeled.rows(), relabeled.cols(), weight, sorted_idx);
        SortedLpnMatrix {
            matrix,
            row_order,
            col_perm,
            tiles: OnceLock::new(),
        }
    }

    /// The sorted matrix: row `pos` holds the indices executed at position
    /// `pos` (use [`Self::row_order`] to map back to original rows).
    pub fn matrix(&self) -> &LpnMatrix {
        &self.matrix
    }

    /// The `Rowidx` array: original row index per execution position.
    pub fn row_order(&self) -> &[u32] {
        &self.row_order
    }

    /// The column permutation (old → new).
    pub fn col_perm(&self) -> &[u32] {
        &self.col_perm
    }

    /// Permutes an input vector to match the relabeled columns:
    /// `out[col_perm[i]] = input[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols`.
    pub fn permute_input<T: Copy + Default>(&self, input: &[T]) -> Vec<T> {
        assert_eq!(
            input.len(),
            self.col_perm.len(),
            "input length must equal k"
        );
        let mut out = vec![T::default(); input.len()];
        for (i, &x) in input.iter().enumerate() {
            out[self.col_perm[i] as usize] = x;
        }
        out
    }

    /// Permutes a packed-bit input vector to match the relabeled columns
    /// (the [`PackedBits`] twin of [`Self::permute_input`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols`.
    pub fn permute_input_packed(&self, input: &PackedBits) -> PackedBits {
        assert_eq!(
            input.len(),
            self.col_perm.len(),
            "input length must equal k"
        );
        let mut out = PackedBits::zeros(input.len());
        for (i, &p) in self.col_perm.iter().enumerate() {
            out.set(p as usize, input.get(i));
        }
        out
    }

    /// Runs the sorted traversal (execution-order rows, original-row
    /// scatter) over any lane — the single sorted kernel behind the
    /// blocks/bits/packed variants. `lane` must index its input in the
    /// *relabeled* column space (see [`Self::permute_input`]).
    fn encode_sorted(&self, lane: impl XorLane) {
        encoder::encode_rows(
            &self.matrix,
            &mut RowMappedLane {
                rows: &self.row_order,
                lane,
            },
        );
    }

    /// Encodes blocks with the sorted matrix, scattering results to their
    /// original row positions. Produces bit-identical output to
    /// [`encoder::encode_blocks`] on the unsorted matrix.
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the matrix dimensions.
    pub fn encode_blocks(&self, input: &[Block], acc: &mut [Block]) {
        assert_eq!(
            acc.len(),
            self.matrix.rows(),
            "accumulator length must equal n"
        );
        let permuted = self.permute_input(input);
        self.encode_sorted(SliceLane {
            input: &permuted,
            acc,
        });
    }

    /// Bit-vector variant of [`Self::encode_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the matrix dimensions.
    pub fn encode_bits(&self, input: &[bool], acc: &mut [bool]) {
        assert_eq!(
            acc.len(),
            self.matrix.rows(),
            "accumulator length must equal n"
        );
        let permuted = self.permute_input(input);
        self.encode_sorted(SliceLane {
            input: &permuted,
            acc,
        });
    }

    /// Packed-bit variant of [`Self::encode_bits`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the matrix dimensions.
    pub fn encode_bits_packed(&self, input: &PackedBits, acc: &mut PackedBits) {
        assert_eq!(
            acc.len(),
            self.matrix.rows(),
            "accumulator length must equal n"
        );
        let permuted = self.permute_input_packed(input);
        self.encode_sorted(PackedLane::new(&permuted, acc));
    }

    /// The cache-blocked schedule composing §5.3's permutations with
    /// tiling: gathers are emitted in look-ahead execution order with
    /// relabeled columns, then re-bucketed tile-major with the scatter to
    /// original rows baked into the entries. Built once, cached.
    /// Inputs handed to the returned schedule must be permuted first
    /// ([`Self::permute_input`]/[`Self::permute_input_packed`]).
    pub fn tile_schedule(&self) -> &TileSchedule {
        self.tiles.get_or_init(|| {
            TileSchedule::build_with(
                self.matrix.rows(),
                self.matrix.cols(),
                TileConfig::default(),
                |emit| {
                    for (pos, &orig_row) in self.row_order.iter().enumerate() {
                        for &c in self.matrix.row(pos) {
                            emit(orig_row, c);
                        }
                    }
                },
            )
        })
    }

    /// Tiled [`Self::encode_blocks`] (same output, tile-major traversal).
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the matrix dimensions.
    pub fn encode_blocks_tiled(&self, input: &[Block], acc: &mut [Block]) {
        let permuted = self.permute_input(input);
        self.tile_schedule().encode_blocks(&permuted, acc);
    }

    /// Tiled [`Self::encode_bits_packed`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the matrix dimensions.
    pub fn encode_bits_packed_tiled(&self, input: &PackedBits, acc: &mut PackedBits) {
        let permuted = self.permute_input_packed(input);
        self.tile_schedule().encode_bits_packed(&permuted, acc);
    }

    /// Tiled fused receiver encode over the sorted matrix: both halves
    /// in one tile-major pass (see [`crate::tile::TileSchedule::encode_cot_pair`]),
    /// with the column permutation applied to both inputs.
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the matrix dimensions.
    pub fn encode_cot_pair_tiled(
        &self,
        s: &[Block],
        e: &PackedBits,
        y: &mut [Block],
        x: &mut PackedBits,
    ) {
        let s_perm = self.permute_input(s);
        let e_perm = self.permute_input_packed(e);
        self.tile_schedule().encode_cot_pair(&s_perm, &e_perm, y, x);
    }

    /// The sorted access trace (element indices in execution order) — what
    /// the Rank-NMP replays against the memory-side cache.
    pub fn access_trace(&self) -> impl Iterator<Item = u32> + '_ {
        encoder::access_trace(&self.matrix)
    }
}

/// Column-swapping permutation: relabel columns by order of first use.
fn first_use_permutation(matrix: &LpnMatrix) -> Vec<u32> {
    let mut perm = vec![u32::MAX; matrix.cols()];
    let mut next = 0u32;
    for &c in matrix.colidx() {
        if perm[c as usize] == u32::MAX {
            perm[c as usize] = next;
            next += 1;
        }
    }
    // Columns never used keep stable labels after the used ones.
    for p in perm.iter_mut() {
        if *p == u32::MAX {
            *p = next;
            next += 1;
        }
    }
    perm
}

/// A fully associative LRU cache of 64-byte lines with amortized O(1)
/// updates (lazy-deletion queue).
struct LruLines {
    capacity: usize,
    stamp: u64,
    lines: HashMap<u32, u64>,
    queue: VecDeque<(u32, u64)>,
}

impl LruLines {
    fn new(capacity: usize) -> Self {
        LruLines {
            capacity: capacity.max(1),
            stamp: 0,
            lines: HashMap::new(),
            queue: VecDeque::new(),
        }
    }

    fn contains(&self, line: u32) -> bool {
        self.lines.contains_key(&line)
    }

    fn touch(&mut self, line: u32) {
        self.stamp += 1;
        self.lines.insert(line, self.stamp);
        self.queue.push_back((line, self.stamp));
        while self.lines.len() > self.capacity {
            if let Some((l, s)) = self.queue.pop_front() {
                if self.lines.get(&l) == Some(&s) {
                    self.lines.remove(&l);
                }
            } else {
                break;
            }
        }
    }
}

/// Greedy look-ahead row ordering: within each block of rows, repeatedly
/// pick from the next `window` pending rows the one with the most lines
/// already in the simulated cache.
fn look_ahead_order(matrix: &LpnMatrix, cfg: SortConfig) -> Vec<u32> {
    let rows = matrix.rows();
    let mut order = Vec::with_capacity(rows);
    let mut cache = LruLines::new(cfg.cache_lines);
    let mut block_start = 0usize;
    while block_start < rows {
        let block_end = (block_start + cfg.block_rows).min(rows);
        let mut pending: VecDeque<u32> = (block_start as u32..block_end as u32).collect();
        while !pending.is_empty() {
            // Score the first `window` pending rows.
            let mut best_pos = 0usize;
            let mut best_score = -1i64;
            for (pos, &row) in pending.iter().take(cfg.window).enumerate() {
                let score = matrix
                    .row(row as usize)
                    .iter()
                    .filter(|&&c| cache.contains(c / ELEMS_PER_LINE as u32))
                    .count() as i64;
                if score > best_score {
                    best_score = score;
                    best_pos = pos;
                }
            }
            let row = pending.remove(best_pos).expect("pending nonempty");
            for &c in matrix.row(row as usize) {
                cache.touch(c / ELEMS_PER_LINE as u32);
            }
            order.push(row);
        }
        block_start = block_end;
    }
    order
}

/// Measures the hit rate of an access trace against a fully associative
/// LRU cache of `cache_lines` lines — the metric of Fig. 14 (the deployed
/// hardware model in `ironman-cache` is set-associative; this helper is
/// for quick offline comparisons).
pub fn trace_hit_rate<I: IntoIterator<Item = u32>>(trace: I, cache_lines: usize) -> f64 {
    let mut cache = LruLines::new(cache_lines);
    let mut hits = 0u64;
    let mut total = 0u64;
    for idx in trace {
        let line = idx / ELEMS_PER_LINE as u32;
        total += 1;
        if cache.contains(line) {
            hits += 1;
        }
        cache.touch(line);
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> LpnMatrix {
        LpnMatrix::generate(512, 4096, 10, Block::from(21u128))
    }

    #[test]
    fn column_permutation_is_bijection() {
        let m = toy();
        let perm = first_use_permutation(&m);
        let mut seen = vec![false; m.cols()];
        for &p in &perm {
            assert!(!seen[p as usize], "duplicate target {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn row_order_is_permutation() {
        let m = toy();
        let sorted = SortedLpnMatrix::sort(&m, SortConfig::default());
        let mut seen = vec![false; m.rows()];
        for &r in sorted.row_order() {
            assert!(!seen[r as usize]);
            seen[r as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn sorted_encode_matches_unsorted_blocks() {
        let m = toy();
        let sorted = SortedLpnMatrix::sort(
            &m,
            SortConfig {
                cache_lines: 64,
                window: 8,
                block_rows: 128,
            },
        );
        let input: Vec<Block> = (0..m.cols() as u128)
            .map(|i| Block::from(i * 3 + 1))
            .collect();
        let mut plain = vec![Block::from(7u128); m.rows()];
        let mut via_sorted = plain.clone();
        encoder::encode_blocks(&m, &input, &mut plain);
        sorted.encode_blocks(&input, &mut via_sorted);
        assert_eq!(plain, via_sorted);
    }

    #[test]
    fn sorted_encode_matches_unsorted_bits() {
        let m = toy();
        let sorted = SortedLpnMatrix::sort(&m, SortConfig::default());
        let input: Vec<bool> = (0..m.cols()).map(|i| i % 7 == 0).collect();
        let mut plain = vec![false; m.rows()];
        let mut via_sorted = plain.clone();
        encoder::encode_bits(&m, &input, &mut plain);
        sorted.encode_bits(&input, &mut via_sorted);
        assert_eq!(plain, via_sorted);
    }

    #[test]
    fn sorting_improves_hit_rate() {
        // A matrix over many columns with a small cache: sorting must help.
        let m = LpnMatrix::generate(2048, 16384, 10, Block::from(5u128));
        let cache_lines = 256;
        let base = trace_hit_rate(encoder::access_trace(&m), cache_lines);
        let cfg = SortConfig {
            cache_lines,
            window: 32,
            block_rows: 2048,
        };
        let sorted = SortedLpnMatrix::sort(&m, cfg);
        let improved = trace_hit_rate(sorted.access_trace(), cache_lines);
        assert!(
            improved > base,
            "sorting should improve hit rate: {base:.3} -> {improved:.3}"
        );
    }

    #[test]
    fn permute_input_round_trips_through_inverse() {
        let m = toy();
        let sorted = SortedLpnMatrix::sort(&m, SortConfig::default());
        let input: Vec<u32> = (0..m.cols() as u32).collect();
        let permuted = sorted.permute_input(&input);
        // Invert: permuted[col_perm[i]] == input[i].
        for (i, &x) in input.iter().enumerate() {
            assert_eq!(permuted[sorted.col_perm()[i] as usize], x);
        }
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = LruLines::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(3);
        assert!(!c.contains(1));
        assert!(c.contains(2) && c.contains(3));
    }

    #[test]
    fn lru_touch_refreshes() {
        let mut c = LruLines::new(2);
        c.touch(1);
        c.touch(2);
        c.touch(1); // refresh 1 → 2 becomes oldest
        c.touch(3);
        assert!(c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn hit_rate_bounds() {
        let m = toy();
        let r = trace_hit_rate(encoder::access_trace(&m), 128);
        assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn empty_trace_hit_rate_zero() {
        assert_eq!(trace_hit_rate(std::iter::empty(), 16), 0.0);
    }
}

#[cfg(test)]
mod strategy_tests {
    use super::*;

    fn matrix() -> LpnMatrix {
        LpnMatrix::generate(2048, 16384, 10, Block::from(31u128))
    }

    #[test]
    fn column_only_keeps_row_order() {
        let m = matrix();
        let s = SortedLpnMatrix::sort_with(&m, SortConfig::default(), SortStrategy::ColumnOnly);
        let identity: Vec<u32> = (0..m.rows() as u32).collect();
        assert_eq!(s.row_order(), identity.as_slice());
    }

    #[test]
    fn row_only_keeps_columns() {
        let m = matrix();
        let s = SortedLpnMatrix::sort_with(&m, SortConfig::default(), SortStrategy::RowOnly);
        let identity: Vec<u32> = (0..m.cols() as u32).collect();
        assert_eq!(s.col_perm(), identity.as_slice());
    }

    #[test]
    fn every_strategy_preserves_encoding() {
        let m = matrix();
        let input: Vec<Block> = (0..m.cols() as u128)
            .map(|i| Block::from(i * 5 + 2))
            .collect();
        let mut reference = vec![Block::ZERO; m.rows()];
        encoder::encode_blocks(&m, &input, &mut reference);
        for strategy in [
            SortStrategy::ColumnOnly,
            SortStrategy::RowOnly,
            SortStrategy::Full,
        ] {
            let s = SortedLpnMatrix::sort_with(&m, SortConfig::default(), strategy);
            let mut out = vec![Block::ZERO; m.rows()];
            s.encode_blocks(&input, &mut out);
            assert_eq!(out, reference, "{strategy:?}");
        }
    }

    #[test]
    fn full_beats_each_alone() {
        // §5.3's argument: column swapping alone is capped; the combination
        // wins.
        let m = matrix();
        let cfg = SortConfig {
            cache_lines: 256,
            window: 32,
            block_rows: 2048,
        };
        let hit = |strategy| {
            let s = SortedLpnMatrix::sort_with(&m, cfg, strategy);
            trace_hit_rate(s.access_trace(), cfg.cache_lines)
        };
        let full = hit(SortStrategy::Full);
        let col = hit(SortStrategy::ColumnOnly);
        let rowo = hit(SortStrategy::RowOnly);
        assert!(full >= col, "full {full:.3} !>= column-only {col:.3}");
        assert!(full >= rowo, "full {full:.3} !>= row-only {rowo:.3}");
    }
}
