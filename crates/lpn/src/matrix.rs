//! The fixed sparse LPN index matrix.
//!
//! `A` is an `n × k` binary matrix with exactly `d` nonzeros per row,
//! stored as a flat column-index array (the degenerate CSR of §5.3: all
//! values are 1 and all rows have the same length, so only `Colidx` is
//! needed). Indices are generated deterministically from a seed with
//! AES in counter mode — mirroring the paper's observation that on CPUs
//! "LPN uses AES to generate indices of random access" — and the matrix is
//! generated **once** and reused across all OTE executions.

use crate::tile::{TileConfig, TileSchedule};
use ironman_prg::{Aes128, Block};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Process-wide count of [`LpnMatrix::generate`] calls — the observable
/// the matrix-sharing tests assert on (N shards sharing one prebuilt
/// matrix must bump this once, not N times). Monotonic; never reset.
static GENERATION_COUNT: AtomicU64 = AtomicU64::new(0);

/// A fixed `n × k` sparse binary matrix with `d` nonzeros per row.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LpnMatrix {
    rows: usize,
    cols: usize,
    weight: usize,
    colidx: Vec<u32>,
    /// Default-geometry tile schedule, built once on first use (the
    /// matrix never changes, so the schedule is a pure function of it —
    /// derived state, excluded from equality).
    tiles: OnceLock<TileSchedule>,
}

impl PartialEq for LpnMatrix {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.weight == other.weight
            && self.colidx == other.colidx
    }
}

impl Eq for LpnMatrix {}

impl LpnMatrix {
    /// Generates the matrix from `seed` (deterministic).
    ///
    /// Duplicate indices within a row are avoided by linear probing so each
    /// row has exactly `weight` *distinct* columns; XOR of a duplicated
    /// index would silently cancel and lower the effective row weight.
    ///
    /// # Panics
    ///
    /// Panics if `weight > cols`, `cols == 0`, `rows == 0`, or
    /// `cols > u32::MAX as usize`.
    pub fn generate(rows: usize, cols: usize, weight: usize, seed: Block) -> Self {
        GENERATION_COUNT.fetch_add(1, Ordering::Relaxed);
        Self::generate_untracked(rows, cols, weight, seed)
    }

    /// [`LpnMatrix::generate`] without bumping
    /// [`LpnMatrix::generated_count`] — for model-side trace *sampling*
    /// (the NMP simulator generates small throwaway matrices per timing
    /// estimate), which would otherwise drown the session-spawn
    /// observable the counter exists for.
    pub fn generate_untracked(rows: usize, cols: usize, weight: usize, seed: Block) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert!(
            weight <= cols,
            "row weight {weight} exceeds column count {cols}"
        );
        assert!(cols <= u32::MAX as usize, "column count must fit in u32");
        let aes = Aes128::new(seed ^ Block::from(MATRIX_DOMAIN));
        let mut colidx = Vec::with_capacity(rows * weight);
        let mut ctr = 0u128;
        let mut row_buf: Vec<u32> = Vec::with_capacity(weight);
        for _ in 0..rows {
            row_buf.clear();
            while row_buf.len() < weight {
                ctr += 1;
                let blk = aes.encrypt_block(Block::from(ctr));
                let (hi, lo) = blk.to_halves();
                for half in [hi, lo] {
                    if row_buf.len() >= weight {
                        break;
                    }
                    let mut idx = (half % cols as u64) as u32;
                    // Linear probe past duplicates within the row.
                    while row_buf.contains(&idx) {
                        idx = (idx + 1) % cols as u32;
                    }
                    row_buf.push(idx);
                }
            }
            colidx.extend_from_slice(&row_buf);
        }
        LpnMatrix {
            rows,
            cols,
            weight,
            colidx,
            tiles: OnceLock::new(),
        }
    }

    /// Number of rows (`n`, the LPN output length).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (`k`, the input vector length).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Nonzeros per row (`d`).
    pub fn weight(&self) -> usize {
        self.weight
    }

    /// The column indices of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows()`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.colidx[i * self.weight..(i + 1) * self.weight]
    }

    /// The full flat `Colidx` array (row-major).
    pub fn colidx(&self) -> &[u32] {
        &self.colidx
    }

    /// Builds a matrix directly from a flat index array (used by the
    /// sorting pass and tests).
    ///
    /// # Panics
    ///
    /// Panics if `colidx.len() != rows * weight` or any index is out of
    /// range.
    pub fn from_colidx(rows: usize, cols: usize, weight: usize, colidx: Vec<u32>) -> Self {
        assert_eq!(
            colidx.len(),
            rows * weight,
            "flat index array has the wrong length"
        );
        assert!(
            colidx.iter().all(|&c| (c as usize) < cols),
            "column index out of range"
        );
        LpnMatrix {
            rows,
            cols,
            weight,
            colidx,
            tiles: OnceLock::new(),
        }
    }

    /// The default-geometry cache-blocked execution schedule for this
    /// matrix, built on first use and cached for the matrix's lifetime —
    /// the online analogue of §5.3's offline index sorting (see
    /// [`crate::tile`]). Custom geometries go through
    /// [`TileSchedule::build`] directly.
    pub fn tile_schedule(&self) -> &TileSchedule {
        self.tiles
            .get_or_init(|| TileSchedule::build(self, TileConfig::default()))
    }

    /// The memory footprint of the matrix plus a `k`-vector of blocks in
    /// bytes — the quantity the paper notes exceeds 900 MB for 2^24 outputs,
    /// defeating CPU caches.
    pub fn working_set_bytes(&self) -> u64 {
        (self.colidx.len() * std::mem::size_of::<u32>()) as u64 + (self.cols * Block::BYTES) as u64
    }

    /// How many times [`LpnMatrix::generate`] has run in this process.
    /// Matrix generation at Table-4 scale is the dominant session-spawn
    /// cost, so shard pools that `Arc`-share one prebuilt matrix assert
    /// with this counter that spawning N shards generated one matrix.
    pub fn generated_count() -> u64 {
        GENERATION_COUNT.load(Ordering::Relaxed)
    }
}

/// Domain-separation constant mixed into the matrix-generation seed
/// (ASCII "LPN_MATRIX").
const MATRIX_DOMAIN: u128 = 0x4c50_4e5f_4d41_5452_4958;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = LpnMatrix::generate(50, 32, 10, Block::from(1u128));
        let b = LpnMatrix::generate(50, 32, 10, Block::from(1u128));
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = LpnMatrix::generate(50, 32, 10, Block::from(1u128));
        let b = LpnMatrix::generate(50, 32, 10, Block::from(2u128));
        assert_ne!(a, b);
    }

    #[test]
    fn rows_have_distinct_indices() {
        let m = LpnMatrix::generate(200, 64, 10, Block::from(3u128));
        for i in 0..m.rows() {
            let mut row = m.row(i).to_vec();
            row.sort_unstable();
            row.dedup();
            assert_eq!(row.len(), 10, "row {i} has duplicate indices");
        }
    }

    #[test]
    fn indices_in_range() {
        let m = LpnMatrix::generate(100, 17, 10, Block::from(4u128));
        assert!(m.colidx().iter().all(|&c| (c as usize) < 17));
    }

    #[test]
    fn indices_spread_over_columns() {
        let m = LpnMatrix::generate(1000, 256, 10, Block::from(5u128));
        let mut hist = vec![0u32; 256];
        for &c in m.colidx() {
            hist[c as usize] += 1;
        }
        let used = hist.iter().filter(|&&h| h > 0).count();
        assert!(
            used > 240,
            "only {used}/256 columns used — not random enough"
        );
    }

    #[test]
    #[should_panic(expected = "row weight")]
    fn weight_larger_than_cols_rejected() {
        let _ = LpnMatrix::generate(10, 5, 10, Block::ZERO);
    }

    #[test]
    fn from_colidx_round_trip() {
        let m = LpnMatrix::generate(20, 16, 4, Block::from(6u128));
        let m2 = LpnMatrix::from_colidx(20, 16, 4, m.colidx().to_vec());
        assert_eq!(m, m2);
    }

    #[test]
    fn working_set_scales() {
        let small = LpnMatrix::generate(100, 64, 10, Block::ZERO);
        let large = LpnMatrix::generate(1000, 64, 10, Block::ZERO);
        assert!(large.working_set_bytes() > small.working_set_bytes());
    }
}
