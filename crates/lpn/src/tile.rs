//! Cache-blocked (tile-major) LPN execution schedules.
//!
//! The row-major encoder walks outputs in order and gathers each row's
//! `d` columns from anywhere in the length-`k` input — the random-access
//! pattern that makes LPN memory-bound on CPUs (Fig. 1c) and that Ironman
//! attacks in hardware with a memory-side cache fed by §5.3's offline
//! index sorting. [`TileSchedule`] is the software twin of that idea for
//! the **online** path: the matrix is fixed, so we precompute — once,
//! offline, cached on the matrix — a partition of its gathers into
//! (row-block × column-tile) buckets and execute bucket-major:
//!
//! * within a bucket, every gather reads a `col_tile`-wide input window
//!   (512 KB of blocks, 4 KB of packed bits at the default tile) that
//!   stays cache-resident — the role of the paper's memory-side cache;
//! * buckets of one row block share a `row_block`-wide accumulator
//!   window (2 MB of blocks at the default), visited in ascending row
//!   order inside each bucket, so output traffic stays streaming;
//! * each entry packs `(local_row, local_col)` into one `u32`, so the
//!   schedule streams exactly as many index bytes as the CSR it replaces.
//!
//! The traversal is generic over [`encoder::XorLane`], so the tiled
//! kernel exists once for blocks, `bool` bits and packed bits.

use crate::bits::PackedBits;
use crate::encoder::{self, XorLane};
use crate::LpnMatrix;
use ironman_prg::Block;
use serde::{Deserialize, Serialize};

/// Geometry of the tile partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileConfig {
    /// Rows per accumulator block. The default (131072 = 2 MB of block
    /// accumulator) was swept on the reference single-core box: large
    /// blocks amortize input-tile reloads, and the ascending-row visit
    /// order inside each bucket keeps the (L2+L3-resident) accumulator
    /// window prefetch-friendly.
    pub row_block: usize,
    /// Columns per input tile. The default (32768 = 512 KB of blocks,
    /// 4 KB of packed bits) keeps the gather window cache-resident where
    /// the full `k = 168K+` input of Table-4 parameter sets does not fit.
    pub col_tile: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            row_block: 131_072,
            col_tile: 32_768,
        }
    }
}

impl TileConfig {
    /// Bits needed for a local column index.
    fn col_bits(&self) -> u32 {
        (self.col_tile.max(2) - 1).ilog2() + 1
    }
}

/// A precomputed tile-major execution order for one fixed matrix: the
/// offline product the online kernels replay (the analogue of the
/// paper's sorted `Colidx`/`Rowidx` arrays living beside the CSR).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TileSchedule {
    rows: usize,
    cols: usize,
    row_block: usize,
    col_tile: usize,
    col_bits: u32,
    /// `(local_row << col_bits) | local_col`, bucket-major: row blocks
    /// outer, column tiles inner, emission order within a bucket
    /// (ascending rows for [`TileSchedule::build`]; look-ahead execution
    /// order for the sorted-matrix composition — lanes may not assume
    /// ascending).
    entries: Vec<u32>,
    /// End offset of each bucket in `entries` (same bucket order).
    bucket_ends: Vec<usize>,
}

impl TileSchedule {
    /// Builds the schedule for `matrix` (row `j` accumulates into
    /// `acc[j]`, exactly like the row-major encoder).
    pub fn build(matrix: &LpnMatrix, cfg: TileConfig) -> Self {
        Self::build_with(matrix.rows(), matrix.cols(), cfg, |emit| {
            for j in 0..matrix.rows() {
                for &c in matrix.row(j) {
                    emit(j as u32, c);
                }
            }
        })
    }

    /// Builds a schedule from an arbitrary gather set: `for_each` must
    /// emit every `(accumulator_row, input_column)` pair, and is called
    /// twice (count pass + placement pass). This is how the sorted
    /// matrix composes its row/column permutations with tiling.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`, `cols == 0`, the geometry cannot pack an
    /// entry into 32 bits, or an emitted index is out of range.
    pub fn build_with(
        rows: usize,
        cols: usize,
        cfg: TileConfig,
        mut for_each: impl FnMut(&mut dyn FnMut(u32, u32)),
    ) -> Self {
        assert!(rows > 0 && cols > 0, "schedule dimensions must be positive");
        let row_block = cfg.row_block.max(1).min(rows);
        let col_tile = cfg.col_tile.max(1).min(cols);
        let col_bits = TileConfig {
            row_block,
            col_tile,
        }
        .col_bits();
        assert!(
            (row_block.max(2) - 1).ilog2() + 1 + col_bits <= 32,
            "tile geometry {row_block}x{col_tile} does not pack into u32 entries"
        );
        let n_blocks = rows.div_ceil(row_block);
        let n_tiles = cols.div_ceil(col_tile);

        // Counting sort into (row-block, tile) buckets: one count pass,
        // one placement pass, no per-bucket allocations.
        let mut counts = vec![0usize; n_blocks * n_tiles];
        let mut total = 0usize;
        for_each(&mut |row, col| {
            assert!(
                (row as usize) < rows && (col as usize) < cols,
                "entry out of range"
            );
            counts[(row as usize / row_block) * n_tiles + col as usize / col_tile] += 1;
            total += 1;
        });
        let mut cursors = Vec::with_capacity(counts.len());
        let mut acc = 0usize;
        for &c in &counts {
            cursors.push(acc);
            acc += c;
        }
        let mut entries = vec![0u32; total];
        for_each(&mut |row, col| {
            let bucket = (row as usize / row_block) * n_tiles + col as usize / col_tile;
            let local_row = (row as usize % row_block) as u32;
            let local_col = (col as usize % col_tile) as u32;
            entries[cursors[bucket]] = (local_row << col_bits) | local_col;
            cursors[bucket] += 1;
        });
        TileSchedule {
            rows,
            cols,
            row_block,
            col_tile,
            col_bits,
            entries,
            bucket_ends: cursors,
        }
    }

    /// Accumulator length the schedule was built for (`n`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input length the schedule was built for (`k`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total gathers in the schedule (`n·d` for a plain matrix).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule holds no gathers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tile-major traversal — the single tiled kernel, generic over
    /// the lane (blocks, `bool` bits, packed bits, the fused pair).
    pub fn encode(&self, lane: &mut impl XorLane) {
        let n_tiles = self.cols.div_ceil(self.col_tile);
        let mut start = 0usize;
        for (bucket, &end) in self.bucket_ends.iter().enumerate() {
            let row_base = (bucket / n_tiles) * self.row_block;
            let col_base = (bucket % n_tiles) * self.col_tile;
            lane.xor_gather_bucket(row_base, col_base, self.col_bits, &self.entries[start..end]);
            start = end;
        }
    }

    /// Tiled [`encoder::encode_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the schedule dimensions.
    pub fn encode_blocks(&self, input: &[Block], acc: &mut [Block]) {
        assert_eq!(input.len(), self.cols, "input length must equal k");
        assert_eq!(acc.len(), self.rows, "accumulator length must equal n");
        self.encode(&mut encoder::SliceLane { input, acc });
    }

    /// Tiled [`encoder::encode_bits`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the schedule dimensions.
    pub fn encode_bits(&self, input: &[bool], acc: &mut [bool]) {
        assert_eq!(input.len(), self.cols, "input length must equal k");
        assert_eq!(acc.len(), self.rows, "accumulator length must equal n");
        self.encode(&mut encoder::SliceLane { input, acc });
    }

    /// Tiled [`encoder::encode_bits_packed`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the schedule dimensions.
    pub fn encode_bits_packed(&self, input: &PackedBits, acc: &mut PackedBits) {
        assert_eq!(input.len(), self.cols, "input length must equal k");
        assert_eq!(acc.len(), self.rows, "accumulator length must equal n");
        self.encode(&mut encoder::PackedLane::new(input, acc));
    }

    /// Tiled fused receiver encode: both halves (`y ^= s·A`,
    /// `x ^= e·A`) in one tile-major pass over the index stream — see
    /// [`encoder::CotPairLane`].
    ///
    /// # Panics
    ///
    /// Panics if lengths do not match the schedule dimensions.
    pub fn encode_cot_pair(
        &self,
        s: &[Block],
        e: &PackedBits,
        y: &mut [Block],
        x: &mut PackedBits,
    ) {
        assert_eq!(s.len(), self.cols, "block input length must equal k");
        assert_eq!(e.len(), self.cols, "bit input length must equal k");
        assert_eq!(y.len(), self.rows, "block accumulator length must equal n");
        assert_eq!(x.len(), self.rows, "bit accumulator length must equal n");
        self.encode(&mut encoder::CotPairLane::new(s, e, y, x));
    }

    /// The input-column trace in execution order — comparable against
    /// [`encoder::access_trace`] with [`crate::sorting::trace_hit_rate`].
    pub fn access_trace(&self) -> impl Iterator<Item = u32> + '_ {
        let n_tiles = self.cols.div_ceil(self.col_tile);
        let col_mask = (1u32 << self.col_bits) - 1;
        let mut bucket = 0usize;
        self.entries.iter().enumerate().map(move |(i, &e)| {
            while i >= self.bucket_ends[bucket] {
                bucket += 1;
            }
            ((bucket % n_tiles) * self.col_tile) as u32 + (e & col_mask)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sorting::trace_hit_rate;

    fn matrix() -> LpnMatrix {
        LpnMatrix::generate(3000, 1000, 10, Block::from(77u128))
    }

    fn small_cfg() -> TileConfig {
        TileConfig {
            row_block: 256,
            col_tile: 128,
        }
    }

    #[test]
    fn schedule_covers_every_gather() {
        let m = matrix();
        let s = TileSchedule::build(&m, small_cfg());
        assert_eq!(s.len(), m.rows() * m.weight());
        assert_eq!(s.rows(), m.rows());
        assert_eq!(s.cols(), m.cols());
    }

    #[test]
    fn tiled_blocks_match_row_major() {
        let m = matrix();
        let s = TileSchedule::build(&m, small_cfg());
        let input: Vec<Block> = (0..m.cols() as u128)
            .map(|i| Block::from(i * 3 + 1))
            .collect();
        let mut plain = vec![Block::from(5u128); m.rows()];
        let mut tiled = plain.clone();
        encoder::encode_blocks(&m, &input, &mut plain);
        s.encode_blocks(&input, &mut tiled);
        assert_eq!(plain, tiled);
    }

    #[test]
    fn tiled_bits_match_row_major() {
        let m = matrix();
        let s = TileSchedule::build(&m, small_cfg());
        let input: Vec<bool> = (0..m.cols()).map(|i| i % 3 == 1).collect();
        let mut plain: Vec<bool> = (0..m.rows()).map(|j| j % 7 == 0).collect();
        let mut tiled = plain.clone();
        let packed_input = PackedBits::from_bools(&input);
        let mut packed = PackedBits::from_bools(&tiled);
        encoder::encode_bits(&m, &input, &mut plain);
        s.encode_bits(&input, &mut tiled);
        s.encode_bits_packed(&packed_input, &mut packed);
        assert_eq!(plain, tiled);
        assert_eq!(packed.to_bools(), plain);
    }

    #[test]
    fn degenerate_tiles_still_correct() {
        // Tile/block sizes of 1 and sizes exceeding the matrix both work.
        let m = LpnMatrix::generate(37, 19, 5, Block::from(3u128));
        for cfg in [
            TileConfig {
                row_block: 1,
                col_tile: 1,
            },
            TileConfig {
                row_block: 1024,
                col_tile: 1024,
            },
            TileConfig {
                row_block: 7,
                col_tile: 3,
            },
        ] {
            let s = TileSchedule::build(&m, cfg);
            let input: Vec<Block> = (0..19u128).map(|i| Block::from(i + 9)).collect();
            let mut plain = vec![Block::ZERO; 37];
            let mut tiled = plain.clone();
            encoder::encode_blocks(&m, &input, &mut plain);
            s.encode_blocks(&input, &mut tiled);
            assert_eq!(plain, tiled, "{cfg:?}");
        }
    }

    #[test]
    fn tiling_improves_small_cache_hit_rate() {
        // Against a cache that holds one tile but not the whole input,
        // the tile-major trace must hit far more often than row-major.
        let m = LpnMatrix::generate(4096, 16384, 10, Block::from(11u128));
        let cfg = TileConfig {
            row_block: 1024,
            col_tile: 1024,
        };
        let s = TileSchedule::build(&m, cfg);
        let lines = 512; // 2048 elements: two tiles' worth
        let base = trace_hit_rate(encoder::access_trace(&m), lines);
        let tiled = trace_hit_rate(s.access_trace(), lines);
        assert!(
            tiled > base + 0.2,
            "tiling should lift hit rate decisively: {base:.3} -> {tiled:.3}"
        );
    }

    #[test]
    fn cached_schedule_is_shared() {
        let m = matrix();
        let a = m.tile_schedule() as *const TileSchedule;
        let b = m.tile_schedule() as *const TileSchedule;
        assert_eq!(a, b, "tile_schedule must build once and cache");
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let m = matrix();
        let s = TileSchedule::build(&m, small_cfg());
        let mut acc = vec![Block::ZERO; m.rows()];
        s.encode_blocks(&[Block::ZERO; 3], &mut acc);
    }
}
