//! Runtime-dispatched wide (AVX2 + BMI2) LPN kernels.
//!
//! The PR-5 kernels are deliberately baseline x86-64: `Block` XORs
//! compile to general-purpose-register pairs and packed-bit probes go
//! through a mask table because baseline variable shifts serialize on
//! the shift-count register. This module adds a **wide** tier of the
//! same lanes behind runtime feature detection:
//!
//! * `Block` gathers run on 128-bit XMM registers (`PXOR`/`VPXOR`: one
//!   load + one XOR per 16-byte element instead of two of each), with
//!   the row-major gather chain split over two independent accumulators
//!   so the XOR latency chains overlap;
//! * packed-bit probes use the [`encoder::ShiftProbe`] — with BMI2
//!   enabled a variable shift is a single `SHRX`, deleting the mask
//!   table's load traffic from every gather;
//! * the whole traversal is compiled under
//!   `#[target_feature(enable = "avx2", enable = "bmi2")]`, so LLVM may
//!   additionally autovectorize (e.g. 256-bit `VPXOR` on the bulk
//!   paths).
//!
//! Dispatch is by [`SimdLevel`]: [`SimdLevel::detect`] caches one
//! `is_x86_feature_detected!` query per process (overridable with the
//! `IRONMAN_SIMD=scalar` environment knob, and per-session via
//! `FerretConfig`'s simd policy in `ironman-ot`), and every entry point
//! takes the level explicitly so benches and proptests can pin either
//! tier. The scalar tier calls the unchanged [`encoder`] kernels — the
//! always-available fallback, and the only tier on non-x86-64 targets.
//! Both tiers are bit-identical in output (checked by the
//! `kernel_props` proptests under both forced-scalar and auto
//! dispatch).

use crate::bits::PackedBits;
use crate::encoder;
use crate::tile::TileSchedule;
use crate::LpnMatrix;
use ironman_prg::Block;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Which kernel tier an encode runs. Output-identical; only the
/// instruction selection differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimdLevel {
    /// Baseline x86-64 lanes (GPR-pair block XORs, mask-table bit
    /// probes) — the always-available fallback.
    Scalar,
    /// AVX2 + BMI2 lanes (XMM block XORs, `SHRX` bit probes). Falls
    /// back to [`SimdLevel::Scalar`] behavior where the features are
    /// absent (every entry point re-checks, so passing `Wide` on a
    /// machine without AVX2 is safe, just pointless).
    Wide,
}

/// Per-session dispatch policy (the config knob: `FerretConfig` carries
/// one so tests force the scalar tier without touching the process-wide
/// environment).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimdMode {
    /// Use [`SimdLevel::detect`] (honors `IRONMAN_SIMD=scalar`).
    #[default]
    Auto,
    /// Pin the scalar tier regardless of CPU features.
    ForceScalar,
}

impl SimdMode {
    /// Resolves the policy to a concrete level.
    pub fn resolve(self) -> SimdLevel {
        match self {
            SimdMode::Auto => SimdLevel::detect(),
            SimdMode::ForceScalar => SimdLevel::Scalar,
        }
    }
}

impl SimdLevel {
    /// The best level this machine supports, cached per process. The
    /// `IRONMAN_SIMD` environment variable forces the scalar tier when
    /// set to `scalar`, `off`, or `0` (the env knob CI uses to keep the
    /// fallback path green on AVX2 machines).
    pub fn detect() -> SimdLevel {
        static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            match std::env::var("IRONMAN_SIMD") {
                Ok(v) if v.eq_ignore_ascii_case("scalar") || v == "off" || v == "0" => {
                    return SimdLevel::Scalar;
                }
                _ => {}
            }
            if wide_available() {
                SimdLevel::Wide
            } else {
                SimdLevel::Scalar
            }
        })
    }

    /// Every level that runs on this machine (for equivalence tests
    /// that must cover the wide tier exactly where it exists).
    pub fn available() -> &'static [SimdLevel] {
        if wide_available() {
            &[SimdLevel::Scalar, SimdLevel::Wide]
        } else {
            &[SimdLevel::Scalar]
        }
    }
}

/// Whether the wide tier's features (AVX2 + BMI2) exist on this CPU.
#[cfg(target_arch = "x86_64")]
fn wide_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("bmi2")
}

/// Non-x86-64 targets have only the scalar tier.
#[cfg(not(target_arch = "x86_64"))]
fn wide_available() -> bool {
    false
}

/// [`encoder::encode_blocks`] at the chosen level.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
#[allow(unsafe_code)]
pub fn encode_blocks(level: SimdLevel, matrix: &LpnMatrix, input: &[Block], acc: &mut [Block]) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_blocks(matrix, input, acc) };
        return;
    }
    let _ = level;
    encoder::encode_rows(matrix, &mut encoder::SliceLane { input, acc });
}

/// Tiled [`encode_blocks`] over a prebuilt schedule.
///
/// # Panics
///
/// Panics if lengths do not match the schedule dimensions.
#[allow(unsafe_code)]
pub fn encode_blocks_tiled(
    level: SimdLevel,
    tiles: &TileSchedule,
    input: &[Block],
    acc: &mut [Block],
) {
    assert_eq!(input.len(), tiles.cols(), "input length must equal k");
    assert_eq!(acc.len(), tiles.rows(), "accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_blocks_tiled(tiles, input, acc) };
        return;
    }
    let _ = level;
    tiles.encode(&mut encoder::SliceLane { input, acc });
}

/// [`encoder::encode_bits_packed`] at the chosen level.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
#[allow(unsafe_code)]
pub fn encode_bits_packed(
    level: SimdLevel,
    matrix: &LpnMatrix,
    input: &PackedBits,
    acc: &mut PackedBits,
) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_bits_packed(matrix, input, acc) };
        return;
    }
    let _ = level;
    encoder::encode_rows(matrix, &mut encoder::PackedLane::new(input, acc));
}

/// Tiled [`encode_bits_packed`] over a prebuilt schedule.
///
/// # Panics
///
/// Panics if lengths do not match the schedule dimensions.
#[allow(unsafe_code)]
pub fn encode_bits_packed_tiled(
    level: SimdLevel,
    tiles: &TileSchedule,
    input: &PackedBits,
    acc: &mut PackedBits,
) {
    assert_eq!(input.len(), tiles.cols(), "input length must equal k");
    assert_eq!(acc.len(), tiles.rows(), "accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_bits_packed_tiled(tiles, input, acc) };
        return;
    }
    let _ = level;
    tiles.encode(&mut encoder::PackedLane::new(input, acc));
}

/// Skip-zero [`encode_bits_packed`] at the chosen level (row-major).
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
#[allow(unsafe_code)]
pub fn encode_bits_packed_skipzero(
    level: SimdLevel,
    matrix: &LpnMatrix,
    input: &PackedBits,
    acc: &mut PackedBits,
) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_bits_packed_skipzero(matrix, input, acc) };
        return;
    }
    let _ = level;
    encoder::encode_rows(matrix, &mut encoder::SkipZeroPackedLane::new(input, acc));
}

/// Skip-zero [`encode_bits_packed_tiled`] over a prebuilt schedule.
///
/// # Panics
///
/// Panics if lengths do not match the schedule dimensions.
#[allow(unsafe_code)]
pub fn encode_bits_packed_skipzero_tiled(
    level: SimdLevel,
    tiles: &TileSchedule,
    input: &PackedBits,
    acc: &mut PackedBits,
) {
    assert_eq!(input.len(), tiles.cols(), "input length must equal k");
    assert_eq!(acc.len(), tiles.rows(), "accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_bits_packed_skipzero_tiled(tiles, input, acc) };
        return;
    }
    let _ = level;
    tiles.encode(&mut encoder::SkipZeroPackedLane::new(input, acc));
}

/// Fused receiver encode (row-major) at the chosen level.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
#[allow(unsafe_code)]
pub fn encode_cot_pair(
    level: SimdLevel,
    matrix: &LpnMatrix,
    s: &[Block],
    e: &PackedBits,
    y: &mut [Block],
    x: &mut PackedBits,
) {
    assert_eq!(s.len(), matrix.cols(), "block input length must equal k");
    assert_eq!(e.len(), matrix.cols(), "bit input length must equal k");
    assert_eq!(
        y.len(),
        matrix.rows(),
        "block accumulator length must equal n"
    );
    assert_eq!(
        x.len(),
        matrix.rows(),
        "bit accumulator length must equal n"
    );
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_cot_pair(matrix, s, e, y, x) };
        return;
    }
    let _ = level;
    encoder::encode_rows(matrix, &mut encoder::CotPairLane::new(s, e, y, x));
}

/// Fused receiver encode (tiled) at the chosen level.
///
/// # Panics
///
/// Panics if lengths do not match the schedule dimensions.
#[allow(unsafe_code)]
pub fn encode_cot_pair_tiled(
    level: SimdLevel,
    tiles: &TileSchedule,
    s: &[Block],
    e: &PackedBits,
    y: &mut [Block],
    x: &mut PackedBits,
) {
    assert_eq!(s.len(), tiles.cols(), "block input length must equal k");
    assert_eq!(e.len(), tiles.cols(), "bit input length must equal k");
    assert_eq!(
        y.len(),
        tiles.rows(),
        "block accumulator length must equal n"
    );
    assert_eq!(x.len(), tiles.rows(), "bit accumulator length must equal n");
    #[cfg(target_arch = "x86_64")]
    if level == SimdLevel::Wide && wide_available() {
        // SAFETY: AVX2 + BMI2 presence was just verified at runtime.
        unsafe { wide::encode_cot_pair_tiled(tiles, s, e, y, x) };
        return;
    }
    let _ = level;
    tiles.encode(&mut encoder::CotPairLane::new(s, e, y, x));
}

/// The wide tier: XMM block lanes + `ShiftProbe` bit lanes, every
/// traversal compiled under `avx2,bmi2`. The lanes are `#[inline(always)]`
/// so their bodies inherit the wrapper's target features; the SSE2
/// intrinsics they use are baseline x86-64 (always present), the gain
/// comes from AVX2 codegen (`VPXOR`, three-operand forms) and BMI2
/// shifts (`SHRX`) replacing the scalar tier's instruction selection.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod wide {
    use crate::bits::PackedBits;
    use crate::encoder::{self, PackedLane, ShiftProbe, SkipZeroPackedLane, XorLane};
    use crate::tile::TileSchedule;
    use crate::LpnMatrix;
    use ironman_prg::Block;
    use std::arch::x86_64::{
        __m128i, _mm_loadu_si128, _mm_prefetch, _mm_setzero_si128, _mm_storeu_si128, _mm_xor_si128,
        _MM_HINT_T0,
    };

    /// 128-bit XOR (`PXOR`/`VPXOR`). SSE2 is baseline x86-64, so this is
    /// callable from any context on this architecture.
    #[inline(always)]
    fn xor128(a: __m128i, b: __m128i) -> __m128i {
        // SAFETY: SSE2 is unconditionally available on x86-64.
        unsafe { _mm_xor_si128(a, b) }
    }

    /// The 128-bit zero register.
    #[inline(always)]
    fn zero128() -> __m128i {
        // SAFETY: SSE2 is unconditionally available on x86-64.
        unsafe { _mm_setzero_si128() }
    }

    /// 16-byte load of one block into an XMM register.
    #[inline(always)]
    fn load(b: &Block) -> __m128i {
        // SAFETY: `b` is a valid reference to 16 readable bytes;
        // `_mm_loadu_si128` has no alignment requirement.
        unsafe { _mm_loadu_si128((b as *const Block).cast()) }
    }

    /// 16-byte store of an XMM register into one block.
    #[inline(always)]
    fn store(b: &mut Block, v: __m128i) {
        // SAFETY: `b` is a valid mutable reference to 16 writable
        // bytes; `_mm_storeu_si128` has no alignment requirement.
        unsafe { _mm_storeu_si128((b as *mut Block).cast(), v) }
    }

    /// Requests `b`'s cache line ahead of use (`PREFETCHT0`). Only the
    /// row-major traversals prefetch (via [`XorLane::prefetch_cols`]):
    /// their gathers stride the whole `k`-block input region, which
    /// outruns L2 at Table-4 scale. The tiled buckets already confine
    /// their gathers to a cache-resident column tile, and measured
    /// in-bucket prefetch there costs ~25% (pure issue overhead).
    #[inline(always)]
    fn prefetch(b: &Block) {
        // SAFETY: prefetch never faults and has no memory effects; any
        // address is permitted.
        unsafe { _mm_prefetch::<_MM_HINT_T0>((b as *const Block).cast()) }
    }

    /// XMM twin of [`encoder::SliceLane`] over blocks: one 128-bit load
    /// and XOR per gather, two independent accumulators per row so the
    /// XOR dependency chains overlap.
    struct XmmBlockLane<'a> {
        input: &'a [Block],
        acc: &'a mut [Block],
    }

    impl XorLane for XmmBlockLane<'_> {
        #[inline(always)]
        fn xor_gather(&mut self, row: usize, col: usize) {
            let v = xor128(load(&self.acc[row]), load(&self.input[col]));
            store(&mut self.acc[row], v);
        }

        #[inline(always)]
        fn prefetch_cols(&self, cols: &[u32]) {
            for &c in cols {
                prefetch(&self.input[c as usize]);
            }
        }

        #[inline(always)]
        fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
            let mut even = load(&self.acc[row]);
            let mut odd = zero128();
            let mut pairs = cols.chunks_exact(2);
            for pair in &mut pairs {
                even = xor128(even, load(&self.input[pair[0] as usize]));
                odd = xor128(odd, load(&self.input[pair[1] as usize]));
            }
            for &c in pairs.remainder() {
                even = xor128(even, load(&self.input[c as usize]));
            }
            store(&mut self.acc[row], xor128(even, odd));
        }

        #[inline(always)]
        fn xor_gather_bucket(
            &mut self,
            row_base: usize,
            col_base: usize,
            col_bits: u32,
            entries: &[u32],
        ) {
            let mask = (1u32 << col_bits) - 1;
            for &e in entries {
                let row = row_base + (e >> col_bits) as usize;
                let col = col_base + (e & mask) as usize;
                let v = xor128(load(&self.acc[row]), load(&self.input[col]));
                store(&mut self.acc[row], v);
            }
        }
    }

    /// XMM twin of [`encoder::CotPairLane`]: XMM block half, shift-probe
    /// bit half.
    struct XmmCotPairLane<'a> {
        s: &'a [Block],
        e: &'a PackedBits,
        y: &'a mut [Block],
        x: &'a mut PackedBits,
    }

    impl XorLane for XmmCotPairLane<'_> {
        #[inline(always)]
        fn xor_gather(&mut self, row: usize, col: usize) {
            let v = xor128(load(&self.y[row]), load(&self.s[col]));
            store(&mut self.y[row], v);
            self.x.xor_bit(row, shift_bit(self.e.words(), col));
        }

        #[inline(always)]
        fn prefetch_cols(&self, cols: &[u32]) {
            for &c in cols {
                prefetch(&self.s[c as usize]);
            }
        }

        #[inline(always)]
        fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
            let words = self.e.words();
            let mut even = load(&self.y[row]);
            let mut odd = zero128();
            let mut parity = false;
            let mut pairs = cols.chunks_exact(2);
            for pair in &mut pairs {
                even = xor128(even, load(&self.s[pair[0] as usize]));
                odd = xor128(odd, load(&self.s[pair[1] as usize]));
                parity ^= shift_bit(words, pair[0] as usize) ^ shift_bit(words, pair[1] as usize);
            }
            for &c in pairs.remainder() {
                even = xor128(even, load(&self.s[c as usize]));
                parity ^= shift_bit(words, c as usize);
            }
            store(&mut self.y[row], xor128(even, odd));
            self.x.xor_bit(row, parity);
        }

        #[inline(always)]
        fn xor_gather_bucket(
            &mut self,
            row_base: usize,
            col_base: usize,
            col_bits: u32,
            entries: &[u32],
        ) {
            let mask = (1u32 << col_bits) - 1;
            let words = self.e.words();
            let mut pending = encoder::PendingWord::at(row_base);
            for &en in entries {
                let row = row_base + (en >> col_bits) as usize;
                let col = col_base + (en & mask) as usize;
                let v = xor128(load(&self.y[row]), load(&self.s[col]));
                store(&mut self.y[row], v);
                pending.xor_bit(self.x, row, shift_bit(words, col));
            }
            pending.flush(self.x);
        }
    }

    /// `SHRX` bit probe (compiles to one variable shift under BMI2).
    #[inline(always)]
    fn shift_bit(words: &[u64], col: usize) -> bool {
        <ShiftProbe as encoder::BitProbe>::bit(words, col)
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_blocks(matrix: &LpnMatrix, input: &[Block], acc: &mut [Block]) {
        encoder::encode_rows(matrix, &mut XmmBlockLane { input, acc });
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_blocks_tiled(tiles: &TileSchedule, input: &[Block], acc: &mut [Block]) {
        tiles.encode(&mut XmmBlockLane { input, acc });
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_bits_packed(matrix: &LpnMatrix, input: &PackedBits, acc: &mut PackedBits) {
        encoder::encode_rows(
            matrix,
            &mut PackedLane::<ShiftProbe>::with_probe(input, acc),
        );
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_bits_packed_tiled(
        tiles: &TileSchedule,
        input: &PackedBits,
        acc: &mut PackedBits,
    ) {
        tiles.encode(&mut PackedLane::<ShiftProbe>::with_probe(input, acc));
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_bits_packed_skipzero(
        matrix: &LpnMatrix,
        input: &PackedBits,
        acc: &mut PackedBits,
    ) {
        encoder::encode_rows(
            matrix,
            &mut SkipZeroPackedLane::<ShiftProbe>::with_probe(input, acc),
        );
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_bits_packed_skipzero_tiled(
        tiles: &TileSchedule,
        input: &PackedBits,
        acc: &mut PackedBits,
    ) {
        tiles.encode(&mut SkipZeroPackedLane::<ShiftProbe>::with_probe(
            input, acc,
        ));
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_cot_pair(
        matrix: &LpnMatrix,
        s: &[Block],
        e: &PackedBits,
        y: &mut [Block],
        x: &mut PackedBits,
    ) {
        encoder::encode_rows(matrix, &mut XmmCotPairLane { s, e, y, x });
    }

    #[target_feature(enable = "avx2", enable = "bmi2")]
    pub(super) fn encode_cot_pair_tiled(
        tiles: &TileSchedule,
        s: &[Block],
        e: &PackedBits,
        y: &mut [Block],
        x: &mut PackedBits,
    ) {
        tiles.encode(&mut XmmCotPairLane { s, e, y, x });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_stable() {
        assert_eq!(SimdLevel::detect(), SimdLevel::detect());
    }

    #[test]
    fn available_contains_scalar() {
        assert!(SimdLevel::available().contains(&SimdLevel::Scalar));
    }

    #[test]
    fn mode_resolution() {
        assert_eq!(SimdMode::ForceScalar.resolve(), SimdLevel::Scalar);
        assert_eq!(SimdMode::Auto.resolve(), SimdLevel::detect());
    }

    #[test]
    #[ignore = "micro-bench; run with --release -- --ignored --nocapture"]
    fn level_head_to_head_at_table4_shape() {
        use std::time::Instant;
        let (n, k) = (262_144, 168_000);
        let m = LpnMatrix::generate(n, k, 10, Block::from(7u128));
        let tiles = m.tile_schedule();
        let s: Vec<Block> = (0..k as u128).map(|i| Block::from(i * 11 + 1)).collect();
        let e = PackedBits::from_bools(&(0..k).map(|i| i % 2 == 0).collect::<Vec<_>>());
        let mut y = vec![Block::ZERO; n];
        let mut x = PackedBits::zeros(n);
        let best_of = |label: &str, f: &mut dyn FnMut()| {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let t = Instant::now();
                f();
                best = best.min(t.elapsed().as_secs_f64());
            }
            println!(
                "{label}: {:.1}M rows/s ({:.2} ms)",
                n as f64 / best / 1e6,
                best * 1e3
            );
        };
        for &level in SimdLevel::available() {
            best_of(&format!("{level:?} blocks row-major"), &mut || {
                encode_blocks(level, &m, &s, &mut y)
            });
            best_of(&format!("{level:?} blocks tiled"), &mut || {
                encode_blocks_tiled(level, tiles, &s, &mut y)
            });
            best_of(&format!("{level:?} pair row-major"), &mut || {
                encode_cot_pair(level, &m, &s, &e, &mut y, &mut x)
            });
            best_of(&format!("{level:?} pair tiled"), &mut || {
                encode_cot_pair_tiled(level, tiles, &s, &e, &mut y, &mut x)
            });
            best_of(&format!("{level:?} packed row-major"), &mut || {
                encode_bits_packed(level, &m, &e, &mut x)
            });
            best_of(&format!("{level:?} packed tiled"), &mut || {
                encode_bits_packed_tiled(level, tiles, &e, &mut x)
            });
            best_of(&format!("{level:?} skipzero row-major"), &mut || {
                encode_bits_packed_skipzero(level, &m, &e, &mut x)
            });
            best_of(&format!("{level:?} skipzero tiled"), &mut || {
                encode_bits_packed_skipzero_tiled(level, tiles, &e, &mut x)
            });
        }
    }

    #[test]
    fn wide_entry_points_match_scalar_on_this_machine() {
        // Cheap smoke (the exhaustive sweep lives in the kernel_props
        // proptests): every wide entry point equals its scalar twin on
        // whatever tier this machine has.
        let m = LpnMatrix::generate(300, 200, 7, Block::from(123u128));
        let tiles = m.tile_schedule();
        let s: Vec<Block> = (0..200u128).map(|i| Block::from(i * 31 + 5)).collect();
        let e = PackedBits::from_bools(&(0..200).map(|i| i % 3 == 1).collect::<Vec<_>>());
        let dirty: Vec<Block> = (0..300u128).map(|i| Block::from(i + 9)).collect();
        let dirty_bits = PackedBits::from_bools(&(0..300).map(|i| i % 5 == 0).collect::<Vec<_>>());

        for &level in SimdLevel::available() {
            let mut y_ref = dirty.clone();
            encoder::encode_blocks(&m, &s, &mut y_ref);
            let mut y = dirty.clone();
            encode_blocks(level, &m, &s, &mut y);
            assert_eq!(y, y_ref, "{level:?} blocks");
            let mut y = dirty.clone();
            encode_blocks_tiled(level, tiles, &s, &mut y);
            assert_eq!(y, y_ref, "{level:?} blocks tiled");

            let mut x_ref = dirty_bits.clone();
            encoder::encode_bits_packed(&m, &e, &mut x_ref);
            for f in [encode_bits_packed, encode_bits_packed_skipzero] {
                let mut x = dirty_bits.clone();
                f(level, &m, &e, &mut x);
                assert_eq!(x, x_ref, "{level:?} packed bits");
            }
            for f in [encode_bits_packed_tiled, encode_bits_packed_skipzero_tiled] {
                let mut x = dirty_bits.clone();
                f(level, tiles, &e, &mut x);
                assert_eq!(x, x_ref, "{level:?} packed bits tiled");
            }

            let mut y = dirty.clone();
            let mut x = dirty_bits.clone();
            encode_cot_pair(level, &m, &s, &e, &mut y, &mut x);
            assert_eq!(
                (y, x.clone()),
                (y_ref.clone(), x_ref.clone()),
                "{level:?} pair"
            );
            let mut y = dirty.clone();
            let mut x = dirty_bits.clone();
            encode_cot_pair_tiled(level, tiles, &s, &e, &mut y, &mut x);
            assert_eq!((y, x), (y_ref, x_ref), "{level:?} pair tiled");
        }
    }
}
