//! Packed bit vectors: the receiver's GF(2) lane in `u64` words.
//!
//! The receiver's LPN half `x = e·A ⊕ u` is pure bit algebra, but the
//! original pipeline carried it as `Vec<bool>` — one **byte** per bit, so
//! the `k = 168,000`-element input of the 2^20 parameter set occupied
//! 168 KB (spilling L1/L2) and every gather loaded a whole byte to fetch
//! one bit. [`PackedBits`] stores 64 bits per word: the same input is
//! ~21 KB — L1-resident on any deployment target — which is the software
//! twin of the paper's observation that rank-level NMP wins by moving
//! less DRAM data per useful bit (§5.3, Fig. 1c).
//!
//! The type deliberately exposes only what the extension pipeline needs:
//! construction from/unpacking to `bool`s at the batch boundary, bit
//! get/toggle for the kernels, and word-level XOR for bulk accumulation.

use serde::{Deserialize, Serialize};

/// A bit vector packed least-significant-bit-first into `u64` words.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackedBits {
    words: Vec<u64>,
    len: usize,
}

impl PackedBits {
    /// An all-zero vector of `len` bits.
    pub fn zeros(len: usize) -> Self {
        PackedBits {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Packs a `bool` slice (index `i` of the slice becomes bit `i`).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut packed = PackedBits::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            packed.words[i >> 6] |= (b as u64) << (i & 63);
        }
        packed
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing words (the last word's bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Sets bit `i` to `b`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, b: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i & 63);
        if b {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }

    /// XORs `b` onto bit `i` — the GF(2) accumulate the kernels run.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn xor_bit(&mut self, i: usize, b: bool) {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i >> 6] ^= (b as u64) << (i & 63);
    }

    /// XORs a whole word of bits onto word `idx` — the flush primitive
    /// behind the kernels' pending-word caches. Bits past `len()` must
    /// be zero in `bits` (callers only accumulate in-range rows).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[inline]
    pub fn xor_word(&mut self, idx: usize, bits: u64) {
        self.words[idx] ^= bits;
    }

    /// Word-level XOR of an equal-length vector onto `self`.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor_with(&mut self, other: &PackedBits) {
        assert_eq!(self.len, other.len, "bit-vector lengths must match");
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            *d ^= s;
        }
    }

    /// Copies bits `[start, start + count)` into a fresh vector starting
    /// at bit 0 (word-shift repack, not a per-bit loop for aligned
    /// starts).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `len()`.
    pub fn slice(&self, start: usize, count: usize) -> PackedBits {
        assert!(
            start + count <= self.len,
            "range {start}..{} out of {}",
            start + count,
            self.len
        );
        let mut out = PackedBits::zeros(count);
        let shift = start & 63;
        let first = start >> 6;
        if shift == 0 {
            out.words
                .copy_from_slice(&self.words[first..first + count.div_ceil(64)]);
        } else {
            for (w, out_word) in out.words.iter_mut().enumerate() {
                let lo = self.words[first + w] >> shift;
                let hi = match self.words.get(first + w + 1) {
                    Some(&next) => next << (64 - shift),
                    None => 0,
                };
                *out_word = lo | hi;
            }
        }
        out.mask_tail();
        out
    }

    /// Appends the bits of `[start, start + count)` as `bool`s onto `out`
    /// — the unpack half of the batch boundary.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `len()`.
    pub fn extend_bools(&self, start: usize, count: usize, out: &mut Vec<bool>) {
        assert!(
            start + count <= self.len,
            "range {start}..{} out of {}",
            start + count,
            self.len
        );
        out.reserve(count);
        for i in start..start + count {
            out.push((self.words[i >> 6] >> (i & 63)) & 1 == 1);
        }
    }

    /// The whole vector as `bool`s.
    pub fn to_bools(&self) -> Vec<bool> {
        let mut out = Vec::new();
        self.extend_bools(0, self.len, &mut out);
        out
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zeroes any bits of the last word past `len` (kept as an invariant
    /// so word-level operations agree with bit-level ones).
    fn mask_tail(&mut self) {
        let tail = self.len & 63;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize) -> Vec<bool> {
        (0..len).map(|i| (i * 7 + i / 13) % 3 == 0).collect()
    }

    #[test]
    fn pack_unpack_round_trip() {
        for len in [0usize, 1, 63, 64, 65, 200, 1024, 1031] {
            let bits = pattern(len);
            let packed = PackedBits::from_bools(&bits);
            assert_eq!(packed.len(), len);
            assert_eq!(packed.to_bools(), bits, "len {len}");
        }
    }

    #[test]
    fn get_set_agree_with_bools() {
        let bits = pattern(130);
        let mut packed = PackedBits::zeros(130);
        for (i, &b) in bits.iter().enumerate() {
            packed.set(i, b);
        }
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(packed.get(i), b, "bit {i}");
        }
        packed.set(5, false);
        assert!(!packed.get(5));
    }

    #[test]
    fn xor_bit_toggles() {
        let mut p = PackedBits::zeros(70);
        p.xor_bit(69, true);
        assert!(p.get(69));
        p.xor_bit(69, true);
        assert!(!p.get(69));
        p.xor_bit(69, false);
        assert!(!p.get(69));
    }

    #[test]
    fn xor_with_matches_elementwise() {
        let a = pattern(150);
        let b: Vec<bool> = (0..150).map(|i| i % 5 == 1).collect();
        let mut pa = PackedBits::from_bools(&a);
        let pb = PackedBits::from_bools(&b);
        pa.xor_with(&pb);
        let expect: Vec<bool> = a.iter().zip(&b).map(|(&x, &y)| x ^ y).collect();
        assert_eq!(pa.to_bools(), expect);
    }

    #[test]
    fn slice_matches_bool_slicing() {
        let bits = pattern(300);
        let packed = PackedBits::from_bools(&bits);
        for (start, count) in [(0, 300), (0, 64), (64, 64), (7, 120), (191, 109), (299, 1)] {
            let sliced = packed.slice(start, count);
            assert_eq!(
                sliced.to_bools(),
                bits[start..start + count].to_vec(),
                "slice({start}, {count})"
            );
            // Tail invariant: bits past len are zero.
            assert_eq!(
                sliced.count_ones(),
                sliced.to_bools().iter().filter(|&&b| b).count()
            );
        }
    }

    #[test]
    fn extend_bools_appends() {
        let bits = pattern(100);
        let packed = PackedBits::from_bools(&bits);
        let mut out = vec![true, false];
        packed.extend_bools(10, 30, &mut out);
        assert_eq!(out.len(), 32);
        assert_eq!(&out[2..], &bits[10..40]);
    }

    #[test]
    fn count_ones_matches() {
        let bits = pattern(500);
        let packed = PackedBits::from_bools(&bits);
        assert_eq!(packed.count_ones(), bits.iter().filter(|&&b| b).count());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let p = PackedBits::zeros(10);
        let _ = p.get(10);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_slice_panics() {
        let p = PackedBits::zeros(10);
        let _ = p.slice(5, 6);
    }
}
