//! The LPN encoder: sparse matrix–vector products over GF(2) and
//! GF(2^128), shared by every kernel variant.
//!
//! Each output element is the XOR of `d` randomly indexed input elements,
//! accumulated onto the SPCOT output in place. The same routine serves:
//!
//! * the sender (`z = r·A ⊕ w`, blocks),
//! * the receiver's block half (`y = s·A ⊕ v`), and
//! * the receiver's bit half (`x = e·A ⊕ u`).
//!
//! All kernels are expressed over one generic XOR-accumulate core — the
//! [`XorLane`] trait, whose defining operation is `acc[row] ^= input[col]`
//! — so the row-major (naive) and tile-major ([`crate::tile`]) traversals
//! each exist **once** and serve blocks, `bool` bits, packed bits and the
//! receiver's fused block+bit pair alike. Monomorphization inlines the
//! lane into each traversal; there is no dynamic dispatch on the hot
//! path. Lanes override the batched trait methods only to keep their
//! accumulation state in registers (one store per row / per packed word
//! instead of one read-modify-write per gather).

use crate::bits::PackedBits;
use crate::LpnMatrix;
use ironman_prg::Block;
use std::marker::PhantomData;
use std::ops::BitXorAssign;

/// One gather-XOR lane: an input vector indexed by column, an accumulator
/// indexed by row, and the single operation every LPN kernel is built
/// from. Implementations are expected to be `#[inline]`-friendly structs
/// borrowing their vectors; the traversals ([`encode_rows`],
/// [`crate::tile::TileSchedule::encode`]) are generic over the lane.
pub trait XorLane {
    /// `acc[row] ^= input[col]`.
    fn xor_gather(&mut self, row: usize, col: usize);

    /// Row-batched form: `acc[row] ^= ⊕_{c∈cols} input[c]`, equivalent
    /// to `xor_gather` per column. The row-major traversal calls this so
    /// lanes can accumulate the row in a register and touch the
    /// accumulator once per row instead of once per gather.
    #[inline]
    fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
        for &c in cols {
            self.xor_gather(row, c as usize);
        }
    }

    /// Hints that `cols` will be gathered shortly (a later row's column
    /// list, handed down by the row-major driver's lookahead):
    /// implementations may issue cache prefetches for `input[c]`. The
    /// default is no hint — scalar lanes compile it away entirely.
    #[inline]
    fn prefetch_cols(&self, _cols: &[u32]) {}

    /// Bucket-batched form, driven by [`crate::tile::TileSchedule`]:
    /// every entry packs `(local_row << col_bits) | local_col` relative
    /// to the bucket's `(row_base, col_base)` origin, in the schedule's
    /// emission order. Implementations must be correct for **any** row
    /// order — `TileSchedule::build` happens to emit rows ascending
    /// (which is what makes the packed lanes' pending-word buffering
    /// fast), but the sorted-matrix schedule emits look-ahead execution
    /// order. Equivalent to `xor_gather` per entry.
    #[inline]
    fn xor_gather_bucket(
        &mut self,
        row_base: usize,
        col_base: usize,
        col_bits: u32,
        entries: &[u32],
    ) {
        let mask = (1u32 << col_bits) - 1;
        for &e in entries {
            self.xor_gather(
                row_base + (e >> col_bits) as usize,
                col_base + (e & mask) as usize,
            );
        }
    }
}

/// The dense-slice lane: serves both `Block` vectors (GF(2^128)) and
/// `bool` vectors (GF(2) carried one byte per element).
pub struct SliceLane<'a, T> {
    /// The length-`k` input vector.
    pub input: &'a [T],
    /// The length-`n` accumulator.
    pub acc: &'a mut [T],
}

impl<T: Copy + BitXorAssign> XorLane for SliceLane<'_, T> {
    #[inline(always)]
    fn xor_gather(&mut self, row: usize, col: usize) {
        let v = self.input[col];
        self.acc[row] ^= v;
    }

    #[inline(always)]
    fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
        // Accumulate in a register; one accumulator store per row.
        let mut x = self.acc[row];
        for &c in cols {
            x ^= self.input[c as usize];
        }
        self.acc[row] = x;
    }
}

/// Single-bit masks indexed by bit position (`BIT_MASK[i] == 1 << i`).
const BIT_MASK: [u64; 64] = {
    let mut m = [0u64; 64];
    let mut i = 0;
    while i < 64 {
        m[i] = 1u64 << i;
        i += 1;
    }
    m
};

/// How a packed lane tests one bit of its input words — the only
/// instruction-selection difference between the scalar and wide packed
/// kernels, factored out so every lane exists once for both.
pub trait BitProbe {
    /// Bit `col` of `words` (LSB-first packing, as [`PackedBits`]).
    fn bit(words: &[u64], col: usize) -> bool;
}

/// Mask-table bit test: one word load plus one mask load (64-entry
/// table, a pair of L1 lines) and an AND. The table lookup replaces a
/// variable shift, which baseline x86-64 serializes through the
/// shift-count register — the right trade *without* BMI2.
pub struct TableProbe;

impl BitProbe for TableProbe {
    #[inline(always)]
    fn bit(words: &[u64], col: usize) -> bool {
        words[col >> 6] & BIT_MASK[col & 63] != 0
    }
}

/// Variable-shift bit test: `(word >> (col & 63)) & 1`. Loses to the
/// mask table on baseline x86-64 (shift-count serialization) but wins
/// once BMI2 is enabled, where it compiles to a single `SHRX` with no
/// table traffic — the probe the [`crate::simd`] wide kernels
/// instantiate.
pub struct ShiftProbe;

impl BitProbe for ShiftProbe {
    #[inline(always)]
    fn bit(words: &[u64], col: usize) -> bool {
        (words[col >> 6] >> (col & 63)) & 1 != 0
    }
}

/// The packed-bit lane: input and accumulator are [`PackedBits`] words,
/// so the `k`-bit input window is 8× smaller than its `bool` twin
/// (L1-resident at Table-4 scale). Generic over the [`BitProbe`]
/// (defaulting to the baseline-friendly mask table).
pub struct PackedLane<'a, P: BitProbe = TableProbe> {
    input: &'a PackedBits,
    acc: &'a mut PackedBits,
    _probe: PhantomData<P>,
}

impl<'a> PackedLane<'a, TableProbe> {
    /// Borrows the input/accumulator pair (mask-table probe).
    pub fn new(input: &'a PackedBits, acc: &'a mut PackedBits) -> Self {
        PackedLane::with_probe(input, acc)
    }
}

impl<'a, P: BitProbe> PackedLane<'a, P> {
    /// Borrows the input/accumulator pair with an explicit probe.
    pub fn with_probe(input: &'a PackedBits, acc: &'a mut PackedBits) -> Self {
        PackedLane {
            input,
            acc,
            _probe: PhantomData,
        }
    }
}

impl<P: BitProbe> XorLane for PackedLane<'_, P> {
    #[inline(always)]
    fn xor_gather(&mut self, row: usize, col: usize) {
        let b = P::bit(self.input.words(), col);
        self.acc.xor_bit(row, b);
    }

    #[inline(always)]
    fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
        let words = self.input.words();
        self.acc.xor_bit(row, row_parity::<P>(words, cols));
    }

    #[inline(always)]
    fn xor_gather_bucket(
        &mut self,
        row_base: usize,
        col_base: usize,
        col_bits: u32,
        entries: &[u32],
    ) {
        let mask = (1u32 << col_bits) - 1;
        let words = self.input.words();
        let mut pending = PendingWord::at(row_base);
        for &e in entries {
            let row = row_base + (e >> col_bits) as usize;
            let b = P::bit(words, col_base + (e & mask) as usize);
            pending.xor_bit(self.acc, row, b);
        }
        pending.flush(self.acc);
    }
}

/// The skip-zero packed lane: identical algebra to [`PackedLane`], but
/// each gather *tests* the input bit and only touches the accumulator
/// when it is set. Roughly half of a pseudorandom `e`'s bits are zero,
/// so half the accumulator XORs disappear — at the price of one
/// 50/50 data-dependent branch per gather, which is exactly the kind a
/// predictor cannot learn. Benched head-to-head against the branchless
/// lane in `BENCH_extension.json`; the branch predictability depends on
/// the traversal layout (the tiled bucket order revisits the same input
/// window, the row-major order does not), which is why both layouts get
/// a bench row.
pub struct SkipZeroPackedLane<'a, P: BitProbe = TableProbe> {
    input: &'a PackedBits,
    acc: &'a mut PackedBits,
    _probe: PhantomData<P>,
}

impl<'a> SkipZeroPackedLane<'a, TableProbe> {
    /// Borrows the input/accumulator pair (mask-table probe).
    pub fn new(input: &'a PackedBits, acc: &'a mut PackedBits) -> Self {
        SkipZeroPackedLane::with_probe(input, acc)
    }
}

impl<'a, P: BitProbe> SkipZeroPackedLane<'a, P> {
    /// Borrows the input/accumulator pair with an explicit probe.
    pub fn with_probe(input: &'a PackedBits, acc: &'a mut PackedBits) -> Self {
        SkipZeroPackedLane {
            input,
            acc,
            _probe: PhantomData,
        }
    }
}

impl<P: BitProbe> XorLane for SkipZeroPackedLane<'_, P> {
    #[inline(always)]
    fn xor_gather(&mut self, row: usize, col: usize) {
        if P::bit(self.input.words(), col) {
            self.acc.xor_bit(row, true);
        }
    }

    #[inline(always)]
    fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
        // Count set bits with branches (the skip under test), touch the
        // accumulator only for odd parity.
        let words = self.input.words();
        let mut parity = false;
        for &c in cols {
            if P::bit(words, c as usize) {
                parity = !parity;
            }
        }
        if parity {
            self.acc.xor_bit(row, true);
        }
    }

    #[inline(always)]
    fn xor_gather_bucket(
        &mut self,
        row_base: usize,
        col_base: usize,
        col_bits: u32,
        entries: &[u32],
    ) {
        let mask = (1u32 << col_bits) - 1;
        let words = self.input.words();
        let mut pending = PendingWord::at(row_base);
        for &e in entries {
            let col = col_base + (e & mask) as usize;
            // Zero input bits skip the pending-word update entirely;
            // the word-change write-back below still triggers on the
            // next *set* bit, so skipped rows cost nothing.
            if P::bit(words, col) {
                let row = row_base + (e >> col_bits) as usize;
                pending.xor_bit(self.acc, row, true);
            }
        }
        pending.flush(self.acc);
    }
}

/// One packed accumulator word buffered in locals (registers) across a
/// bucket: `TileSchedule::build` emits rows ascending within a bucket,
/// so consecutive entries share a 64-row word for long runs and the
/// write-back branch is rare and well predicted. Correct for *any* row
/// order (each word change writes back), ascending order is only what
/// makes it fast.
pub(crate) struct PendingWord {
    bits: u64,
    idx: usize,
}

impl PendingWord {
    #[inline(always)]
    pub(crate) fn at(row: usize) -> Self {
        PendingWord {
            bits: 0,
            idx: row >> 6,
        }
    }

    #[inline(always)]
    pub(crate) fn xor_bit(&mut self, acc: &mut PackedBits, row: usize, b: bool) {
        let idx = row >> 6;
        if idx != self.idx {
            acc.xor_word(self.idx, self.bits);
            self.bits = 0;
            self.idx = idx;
        }
        self.bits ^= (b as u64) << (row & 63);
    }

    #[inline(always)]
    pub(crate) fn flush(self, acc: &mut PackedBits) {
        acc.xor_word(self.idx, self.bits);
    }
}

/// Two-lane parity of `cols`' bits in `words` — short XOR chains, no
/// accumulator traffic.
#[inline(always)]
fn row_parity<P: BitProbe>(words: &[u64], cols: &[u32]) -> bool {
    let mut even = false;
    let mut odd = false;
    let mut pairs = cols.chunks_exact(2);
    for pair in &mut pairs {
        even ^= P::bit(words, pair[0] as usize);
        odd ^= P::bit(words, pair[1] as usize);
    }
    for &c in pairs.remainder() {
        even ^= P::bit(words, c as usize);
    }
    even ^ odd
}

/// The receiver's fused lane: one traversal drives **both** receiver
/// halves — `y[row] ^= s[col]` (blocks) and `x[row] ^= e[col]` (packed
/// bits) — sharing a single pass over the index stream and a single
/// gather address per entry. The bit half rides almost free on the
/// block gathers: its input is an L1-resident packed word away from the
/// block element just fetched.
pub struct CotPairLane<'a, P: BitProbe = TableProbe> {
    s: &'a [Block],
    e: &'a PackedBits,
    y: &'a mut [Block],
    x: &'a mut PackedBits,
    _probe: PhantomData<P>,
}

impl<'a> CotPairLane<'a, TableProbe> {
    /// Borrows the receiver's two input/accumulator pairs.
    pub fn new(
        s: &'a [Block],
        e: &'a PackedBits,
        y: &'a mut [Block],
        x: &'a mut PackedBits,
    ) -> Self {
        CotPairLane::with_probe(s, e, y, x)
    }
}

impl<'a, P: BitProbe> CotPairLane<'a, P> {
    /// Borrows the receiver's two input/accumulator pairs with an
    /// explicit probe.
    pub fn with_probe(
        s: &'a [Block],
        e: &'a PackedBits,
        y: &'a mut [Block],
        x: &'a mut PackedBits,
    ) -> Self {
        CotPairLane {
            s,
            e,
            y,
            x,
            _probe: PhantomData,
        }
    }
}

impl<P: BitProbe> XorLane for CotPairLane<'_, P> {
    #[inline(always)]
    fn xor_gather(&mut self, row: usize, col: usize) {
        let v = self.s[col];
        self.y[row] ^= v;
        self.x.xor_bit(row, P::bit(self.e.words(), col));
    }

    #[inline(always)]
    fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
        let words = self.e.words();
        let mut v = self.y[row];
        for &c in cols {
            v ^= self.s[c as usize];
        }
        self.y[row] = v;
        self.x.xor_bit(row, row_parity::<P>(words, cols));
    }

    #[inline(always)]
    fn xor_gather_bucket(
        &mut self,
        row_base: usize,
        col_base: usize,
        col_bits: u32,
        entries: &[u32],
    ) {
        let mask = (1u32 << col_bits) - 1;
        let words = self.e.words();
        // The y half read-modify-writes per entry (rows change too
        // unpredictably for run accumulation to beat the store buffer);
        // the packed x half buffers its 64-row word ([`PendingWord`]).
        let mut pending = PendingWord::at(row_base);
        for &en in entries {
            let row = row_base + (en >> col_bits) as usize;
            let col = col_base + (en & mask) as usize;
            let v = self.s[col];
            self.y[row] ^= v;
            pending.xor_bit(self.x, row, P::bit(words, col));
        }
        pending.flush(self.x);
    }
}

/// Remaps lane rows through a translation table — how the §5.3
/// row-look-ahead order ([`crate::sorting::SortedLpnMatrix`]) scatters
/// execution-position results back to their original rows while reusing
/// the same traversals as the plain matrix.
pub struct RowMappedLane<'a, L> {
    /// `rows[pos]` = the accumulator row for traversal position `pos`.
    pub rows: &'a [u32],
    /// The underlying lane.
    pub lane: L,
}

impl<L: XorLane> XorLane for RowMappedLane<'_, L> {
    #[inline(always)]
    fn xor_gather(&mut self, row: usize, col: usize) {
        self.lane.xor_gather(self.rows[row] as usize, col);
    }

    #[inline(always)]
    fn xor_gather_row(&mut self, row: usize, cols: &[u32]) {
        self.lane.xor_gather_row(self.rows[row] as usize, cols);
    }
}

/// The row-major (naive) traversal: for each output row, gather its `d`
/// columns. Sequential on the accumulator, random on the input — the
/// access pattern of Fig. 1(c) that the tile schedule reorders.
pub fn encode_rows(matrix: &LpnMatrix, lane: &mut impl XorLane) {
    // Row lookahead: at 2^20-class k the input vector outruns L2, so
    // the irregular `input[col]` reads miss unless requested ahead of
    // use. Eight rows ≈ 80 gathers of flight time, far enough to cover
    // DRAM latency without evicting lines before they are consumed;
    // scalar lanes keep the default no-op hint and lose nothing.
    const LOOKAHEAD: usize = 8;
    let rows = matrix.rows();
    for j in 0..rows {
        if let Some(ahead) = (j + LOOKAHEAD < rows).then(|| matrix.row(j + LOOKAHEAD)) {
            lane.prefetch_cols(ahead);
        }
        lane.xor_gather_row(j, matrix.row(j));
    }
}

/// Accumulates `A·input` onto `acc` (blocks): `acc[j] ^= ⊕_{i∈row_j} input[i]`.
///
/// # Panics
///
/// Panics if `input.len() != matrix.cols()` or `acc.len() != matrix.rows()`.
pub fn encode_blocks(matrix: &LpnMatrix, input: &[Block], acc: &mut [Block]) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    encode_rows(matrix, &mut SliceLane { input, acc });
}

/// Accumulates `A·input` onto `acc` (bits): `acc[j] ^= ⊕_{i∈row_j} input[i]`.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
pub fn encode_bits(matrix: &LpnMatrix, input: &[bool], acc: &mut [bool]) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    encode_rows(matrix, &mut SliceLane { input, acc });
}

/// Packed-bit variant of [`encode_bits`]: same algebra, 8× smaller
/// working set for the receiver's `x = e·A ⊕ u` half.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
pub fn encode_bits_packed(matrix: &LpnMatrix, input: &PackedBits, acc: &mut PackedBits) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    encode_rows(matrix, &mut PackedLane::new(input, acc));
}

/// Skip-zero variant of [`encode_bits_packed`]: tests each input bit and
/// only accumulates the set ones (see [`SkipZeroPackedLane`] for the
/// branch-prediction trade). Bit-identical output to the branchless lane.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
pub fn encode_bits_packed_skipzero(matrix: &LpnMatrix, input: &PackedBits, acc: &mut PackedBits) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    encode_rows(matrix, &mut SkipZeroPackedLane::new(input, acc));
}

/// Fused receiver encode (row-major): one pass computing
/// `y ^= s·A` (blocks) and `x ^= e·A` (packed bits) together — see
/// [`CotPairLane`].
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
pub fn encode_cot_pair(
    matrix: &LpnMatrix,
    s: &[Block],
    e: &PackedBits,
    y: &mut [Block],
    x: &mut PackedBits,
) {
    assert_eq!(s.len(), matrix.cols(), "block input length must equal k");
    assert_eq!(e.len(), matrix.cols(), "bit input length must equal k");
    assert_eq!(
        y.len(),
        matrix.rows(),
        "block accumulator length must equal n"
    );
    assert_eq!(
        x.len(),
        matrix.rows(),
        "bit accumulator length must equal n"
    );
    encode_rows(matrix, &mut CotPairLane::new(s, e, y, x));
}

/// The random-access address trace of one encode pass: the sequence of
/// input-vector element indices touched, in execution order. This is the
/// exact stream the Rank-NMP module replays against its memory-side cache
/// (§5.3); one trace entry corresponds to one 16-byte element read.
pub fn access_trace(matrix: &LpnMatrix) -> impl Iterator<Item = u32> + '_ {
    matrix.colidx().iter().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_matrix() -> LpnMatrix {
        LpnMatrix::generate(64, 32, 4, Block::from(9u128))
    }

    #[test]
    fn encode_blocks_matches_naive() {
        let m = toy_matrix();
        let input: Vec<Block> = (0..32u128).map(|i| Block::from(i * 0x77 + 1)).collect();
        let mut acc = vec![Block::from(0xAAu128); 64];
        let orig = acc.clone();
        encode_blocks(&m, &input, &mut acc);
        for j in 0..64 {
            let mut expect = orig[j];
            for &c in m.row(j) {
                expect ^= input[c as usize];
            }
            assert_eq!(acc[j], expect, "row {j}");
        }
    }

    #[test]
    fn encode_bits_matches_naive() {
        let m = toy_matrix();
        let input: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut acc: Vec<bool> = (0..64).map(|j| j % 5 == 0).collect();
        let orig = acc.clone();
        encode_bits(&m, &input, &mut acc);
        for j in 0..64 {
            let mut expect = orig[j];
            for &c in m.row(j) {
                expect ^= input[c as usize];
            }
            assert_eq!(acc[j], expect, "row {j}");
        }
    }

    #[test]
    fn packed_bits_match_bool_bits() {
        let m = toy_matrix();
        let input: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut acc: Vec<bool> = (0..64).map(|j| j % 5 == 0).collect();
        let mut packed_acc = PackedBits::from_bools(&acc);
        let packed_input = PackedBits::from_bools(&input);
        encode_bits(&m, &input, &mut acc);
        encode_bits_packed(&m, &packed_input, &mut packed_acc);
        assert_eq!(packed_acc.to_bools(), acc);
    }

    #[test]
    fn fused_pair_matches_separate_passes() {
        let m = toy_matrix();
        let s: Vec<Block> = (0..32u128).map(|i| Block::from(i * 13 + 2)).collect();
        let e: Vec<bool> = (0..32).map(|i| i % 5 == 2).collect();
        let e_packed = PackedBits::from_bools(&e);
        let mut y_sep: Vec<Block> = (0..64u128).map(Block::from).collect();
        let mut x_sep: Vec<bool> = (0..64).map(|j| j % 3 == 0).collect();
        let mut y_fused = y_sep.clone();
        let mut x_fused = PackedBits::from_bools(&x_sep);
        encode_blocks(&m, &s, &mut y_sep);
        encode_bits(&m, &e, &mut x_sep);
        encode_cot_pair(&m, &s, &e_packed, &mut y_fused, &mut x_fused);
        assert_eq!(y_fused, y_sep);
        assert_eq!(x_fused.to_bools(), x_sep);
    }

    #[test]
    fn encoding_is_linear() {
        // A·(p ⊕ q) == A·p ⊕ A·q — the property the COT bootstrap relies on.
        let m = toy_matrix();
        let p: Vec<Block> = (0..32u128).map(|i| Block::from(i + 5)).collect();
        let q: Vec<Block> = (0..32u128).map(|i| Block::from(i * i + 3)).collect();
        let pq: Vec<Block> = p.iter().zip(&q).map(|(&a, &b)| a ^ b).collect();

        let mut acc_p = vec![Block::ZERO; 64];
        let mut acc_q = vec![Block::ZERO; 64];
        let mut acc_pq = vec![Block::ZERO; 64];
        encode_blocks(&m, &p, &mut acc_p);
        encode_blocks(&m, &q, &mut acc_q);
        encode_blocks(&m, &pq, &mut acc_pq);
        for j in 0..64 {
            assert_eq!(acc_pq[j], acc_p[j] ^ acc_q[j]);
        }
    }

    #[test]
    fn zero_input_is_identity() {
        let m = toy_matrix();
        let input = vec![Block::ZERO; 32];
        let mut acc: Vec<Block> = (0..64u128).map(Block::from).collect();
        let orig = acc.clone();
        encode_blocks(&m, &input, &mut acc);
        assert_eq!(acc, orig);
    }

    #[test]
    fn trace_length_is_rows_times_weight() {
        let m = toy_matrix();
        assert_eq!(access_trace(&m).count(), 64 * 4);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let m = toy_matrix();
        let mut acc = vec![Block::ZERO; 64];
        encode_blocks(&m, &[Block::ZERO; 3], &mut acc);
    }
}
