//! The LPN encoder: sparse matrix–vector products over GF(2) and
//! GF(2^128).
//!
//! Each output element is the XOR of `d` randomly indexed input elements,
//! accumulated onto the SPCOT output in place. The same routine serves:
//!
//! * the sender (`z = r·A ⊕ w`, blocks),
//! * the receiver's block half (`y = s·A ⊕ v`), and
//! * the receiver's bit half (`x = e·A ⊕ u`).

use crate::LpnMatrix;
use ironman_prg::Block;

/// Accumulates `A·input` onto `acc` (blocks): `acc[j] ^= ⊕_{i∈row_j} input[i]`.
///
/// # Panics
///
/// Panics if `input.len() != matrix.cols()` or `acc.len() != matrix.rows()`.
pub fn encode_blocks(matrix: &LpnMatrix, input: &[Block], acc: &mut [Block]) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    for (j, out) in acc.iter_mut().enumerate() {
        let mut x = *out;
        for &c in matrix.row(j) {
            x ^= input[c as usize];
        }
        *out = x;
    }
}

/// Accumulates `A·input` onto `acc` (bits): `acc[j] ^= ⊕_{i∈row_j} input[i]`.
///
/// # Panics
///
/// Panics if lengths do not match the matrix dimensions.
pub fn encode_bits(matrix: &LpnMatrix, input: &[bool], acc: &mut [bool]) {
    assert_eq!(input.len(), matrix.cols(), "input length must equal k");
    assert_eq!(acc.len(), matrix.rows(), "accumulator length must equal n");
    for (j, out) in acc.iter_mut().enumerate() {
        let mut x = *out;
        for &c in matrix.row(j) {
            x ^= input[c as usize];
        }
        *out = x;
    }
}

/// The random-access address trace of one encode pass: the sequence of
/// input-vector element indices touched, in execution order. This is the
/// exact stream the Rank-NMP module replays against its memory-side cache
/// (§5.3); one trace entry corresponds to one 16-byte element read.
pub fn access_trace(matrix: &LpnMatrix) -> impl Iterator<Item = u32> + '_ {
    matrix.colidx().iter().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_matrix() -> LpnMatrix {
        LpnMatrix::generate(64, 32, 4, Block::from(9u128))
    }

    #[test]
    fn encode_blocks_matches_naive() {
        let m = toy_matrix();
        let input: Vec<Block> = (0..32u128).map(|i| Block::from(i * 0x77 + 1)).collect();
        let mut acc = vec![Block::from(0xAAu128); 64];
        let orig = acc.clone();
        encode_blocks(&m, &input, &mut acc);
        for j in 0..64 {
            let mut expect = orig[j];
            for &c in m.row(j) {
                expect ^= input[c as usize];
            }
            assert_eq!(acc[j], expect, "row {j}");
        }
    }

    #[test]
    fn encode_bits_matches_naive() {
        let m = toy_matrix();
        let input: Vec<bool> = (0..32).map(|i| i % 3 == 0).collect();
        let mut acc: Vec<bool> = (0..64).map(|j| j % 5 == 0).collect();
        let orig = acc.clone();
        encode_bits(&m, &input, &mut acc);
        for j in 0..64 {
            let mut expect = orig[j];
            for &c in m.row(j) {
                expect ^= input[c as usize];
            }
            assert_eq!(acc[j], expect, "row {j}");
        }
    }

    #[test]
    fn encoding_is_linear() {
        // A·(p ⊕ q) == A·p ⊕ A·q — the property the COT bootstrap relies on.
        let m = toy_matrix();
        let p: Vec<Block> = (0..32u128).map(|i| Block::from(i + 5)).collect();
        let q: Vec<Block> = (0..32u128).map(|i| Block::from(i * i + 3)).collect();
        let pq: Vec<Block> = p.iter().zip(&q).map(|(&a, &b)| a ^ b).collect();

        let mut acc_p = vec![Block::ZERO; 64];
        let mut acc_q = vec![Block::ZERO; 64];
        let mut acc_pq = vec![Block::ZERO; 64];
        encode_blocks(&m, &p, &mut acc_p);
        encode_blocks(&m, &q, &mut acc_q);
        encode_blocks(&m, &pq, &mut acc_pq);
        for j in 0..64 {
            assert_eq!(acc_pq[j], acc_p[j] ^ acc_q[j]);
        }
    }

    #[test]
    fn zero_input_is_identity() {
        let m = toy_matrix();
        let input = vec![Block::ZERO; 32];
        let mut acc: Vec<Block> = (0..64u128).map(Block::from).collect();
        let orig = acc.clone();
        encode_blocks(&m, &input, &mut acc);
        assert_eq!(acc, orig);
    }

    #[test]
    fn trace_length_is_rows_times_weight() {
        let m = toy_matrix();
        assert_eq!(access_trace(&m).count(), 64 * 4);
    }

    #[test]
    #[should_panic(expected = "input length")]
    fn wrong_input_length_panics() {
        let m = toy_matrix();
        let mut acc = vec![Block::ZERO; 64];
        encode_blocks(&m, &[Block::ZERO; 3], &mut acc);
    }
}
