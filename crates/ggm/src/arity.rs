//! Validated tree arity and level-shape computation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The branching factor of a GGM tree.
///
/// The paper sweeps `m ∈ {2, 4, 8, 16, 32}` (Fig. 7) and selects `m = 4`
/// because it matches the ChaCha quad-output exactly while keeping the
/// online communication low. Arities must be powers of two so that the
/// (m−1)-out-of-m OT can be built from `log2(m)` base COTs (§4.2).
///
/// # Example
///
/// ```
/// use ironman_ggm::Arity;
///
/// let m = Arity::new(4).unwrap();
/// assert_eq!(m.get(), 4);
/// assert_eq!(m.log2(), 2);
/// assert!(Arity::new(3).is_err());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Arity(usize);

/// Error returned when constructing an invalid [`Arity`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidArityError(usize);

impl fmt::Display for InvalidArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid GGM arity {}: must be a power of two in 2..=32",
            self.0
        )
    }
}

impl std::error::Error for InvalidArityError {}

impl Arity {
    /// The classic binary GGM tree (the paper's CPU baseline).
    pub const BINARY: Arity = Arity(2);
    /// The paper's selected 4-ary expansion.
    pub const QUAD: Arity = Arity(4);

    /// All arities evaluated in Fig. 7.
    pub const SWEEP: [Arity; 5] = [Arity(2), Arity(4), Arity(8), Arity(16), Arity(32)];

    /// Creates an arity, validating that it is a power of two in `2..=32`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidArityError`] for non-powers-of-two or out-of-range
    /// values.
    pub fn new(m: usize) -> Result<Self, InvalidArityError> {
        if m.is_power_of_two() && (2..=32).contains(&m) {
            Ok(Arity(m))
        } else {
            Err(InvalidArityError(m))
        }
    }

    /// The raw branching factor.
    #[inline]
    pub fn get(self) -> usize {
        self.0
    }

    /// `log2(m)` — the number of base COTs one (m−1)-out-of-m OT consumes.
    #[inline]
    pub fn log2(self) -> u32 {
        self.0.trailing_zeros()
    }

    /// The per-level branching factors for a tree with `leaves` leaves.
    ///
    /// Levels are full `m`-ary while possible; because both `leaves` and `m`
    /// are powers of two, any remainder forms one final level of smaller
    /// (power-of-two) fan-out. E.g. `m = 4, ℓ = 8192 = 4^6·2` yields six
    /// 4-ary levels and one binary level.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two or is `< 2`.
    pub fn level_fanouts(self, leaves: usize) -> Vec<usize> {
        assert!(
            leaves.is_power_of_two() && leaves >= 2,
            "leaf count must be a power of two >= 2"
        );
        let total_bits = leaves.trailing_zeros();
        let per_level = self.log2();
        let full = (total_bits / per_level) as usize;
        let rem = total_bits % per_level;
        let mut fanouts = vec![self.0; full];
        if rem > 0 {
            fanouts.push(1 << rem);
        }
        fanouts
    }

    /// Theoretical PRG *block* demand for expanding `leaves` leaves: the
    /// paper's `m(ℓ−1)/(m−1)` for exact m-ary trees, computed exactly from
    /// the level shape otherwise.
    pub fn expansion_blocks(self, leaves: usize) -> u64 {
        let mut width = 1u64;
        let mut blocks = 0u64;
        for f in self.level_fanouts(leaves) {
            width *= f as u64;
            blocks += width;
        }
        blocks
    }
}

impl fmt::Display for Arity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-ary", self.0)
    }
}

impl TryFrom<usize> for Arity {
    type Error = InvalidArityError;
    fn try_from(m: usize) -> Result<Self, Self::Error> {
        Arity::new(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_arities() {
        for m in [2usize, 4, 8, 16, 32] {
            assert_eq!(Arity::new(m).unwrap().get(), m);
        }
    }

    #[test]
    fn invalid_arities() {
        for m in [0usize, 1, 3, 6, 64, 33] {
            assert!(Arity::new(m).is_err(), "{m} should be invalid");
        }
    }

    #[test]
    fn fanouts_exact_power() {
        assert_eq!(Arity::QUAD.level_fanouts(4096), vec![4; 6]);
        assert_eq!(Arity::BINARY.level_fanouts(8), vec![2, 2, 2]);
    }

    #[test]
    fn fanouts_with_remainder() {
        // 8192 = 4^6 * 2
        let f = Arity::QUAD.level_fanouts(8192);
        assert_eq!(f, vec![4, 4, 4, 4, 4, 4, 2]);
        assert_eq!(f.iter().product::<usize>(), 8192);
    }

    #[test]
    fn fanouts_product_is_leaf_count() {
        for m in Arity::SWEEP {
            for log_l in 1..=14u32 {
                let l = 1usize << log_l;
                let f = m.level_fanouts(l);
                assert_eq!(f.iter().product::<usize>(), l, "m={m} l={l}");
            }
        }
    }

    #[test]
    fn expansion_blocks_matches_paper_formula() {
        // Exact m-ary tree: m(ℓ−1)/(m−1) blocks.
        let l = 4096u64;
        assert_eq!(Arity::QUAD.expansion_blocks(4096), 4 * (l - 1) / 3);
        assert_eq!(Arity::BINARY.expansion_blocks(4096), 2 * (l - 1));
    }

    #[test]
    fn log2_matches() {
        assert_eq!(Arity::BINARY.log2(), 1);
        assert_eq!(Arity::new(32).unwrap().log2(), 5);
    }

    #[test]
    fn error_display() {
        let e = Arity::new(3).unwrap_err();
        assert!(e.to_string().contains("3"));
    }
}
