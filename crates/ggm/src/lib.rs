//! GGM trees for the Ironman OT-extension reproduction.
//!
//! The SPCOT sub-protocol (paper §2.3.1) has both parties build
//! Goldreich–Goldwasser–Micali trees: the sender expands a random seed into
//! `ℓ` leaves; the receiver reconstructs every leaf *except* one punctured
//! position `α` from per-level XOR sums obtained through OT.
//!
//! This crate provides:
//!
//! * [`Arity`] — validated tree arity `m ∈ {2, 4, 8, 16, 32}` (§4.1's sweep).
//! * [`GgmTree`] — the sender's full local expansion with level sums
//!   (`K^i_j`, Table 1) and primitive-call accounting.
//! * [`PuncturedTree`] — the receiver's reconstruction from level sums,
//!   generic over arity.
//! * [`schedule`] — the hardware expansion schedules of §4.3 (depth-first,
//!   breadth-first, hybrid) with an 8-stage-pipeline cycle model that
//!   reproduces the bubble/utilization arithmetic of Fig. 8.
//!
//! # Example
//!
//! ```
//! use ironman_ggm::{Arity, GgmTree, PuncturedTree};
//! use ironman_prg::{Block, ChaChaTreePrg};
//!
//! let prg = ChaChaTreePrg::new(Block::from(7u128), 8);
//! let tree = GgmTree::expand(&prg, Block::from(1u128), Arity::QUAD, 64);
//! let alpha = 17;
//! let sums = tree.level_sums();
//! let punct = PuncturedTree::reconstruct(&prg, Arity::QUAD, 64, alpha, |lvl, j| {
//!     // The receiver obtains every sum except the punctured branch via OT.
//!     sums[lvl][j]
//! });
//! for (i, leaf) in punct.leaves().iter().enumerate() {
//!     if i != alpha {
//!         assert_eq!(*leaf, tree.leaves()[i]);
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arity;
pub mod halftree;
pub mod punctured;
pub mod schedule;
pub mod tree;

pub use arity::Arity;
pub use halftree::HalfTreePrg;
pub use punctured::PuncturedTree;
pub use schedule::{ExpansionSchedule, PipelineModel, ScheduleReport};
pub use tree::{GgmTree, LevelShape};
