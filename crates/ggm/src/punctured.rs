//! Receiver-side punctured GGM tree reconstruction (Step ③ of Fig. 3(b)).
//!
//! The receiver knows the branch digits of the punctured index `α` and, for
//! each level `i`, obtains through OT the branch sums `K^i_j` for every
//! branch `j ≠ α_i`. From those it reconstructs all nodes of the tree except
//! the ones on the punctured path; in particular, all leaves except leaf `α`.

use crate::{Arity, LevelShape};
use ironman_prg::{Block, PrgCounter, PrgKind, TreePrg};

/// A GGM tree with one unknown (punctured) leaf.
#[derive(Clone, Debug)]
pub struct PuncturedTree {
    shape: LevelShape,
    alpha: usize,
    leaves: Vec<Block>,
    counter: PrgCounter,
}

impl PuncturedTree {
    /// Reconstructs the tree from per-level branch sums.
    ///
    /// `sum_for(level, branch)` must return the sender's `K^level_branch`
    /// for every `branch != α_level`; it is never called with
    /// `branch == α_level` (the receiver cannot learn that sum — this is
    /// what hides the punctured leaf). In the protocol those values arrive
    /// via (m−1)-out-of-m OT; tests pass a closure over the sender's sums.
    ///
    /// The punctured leaf position holds [`Block::ZERO`] until
    /// [`Self::recover_punctured`] fills it in.
    ///
    /// # Panics
    ///
    /// Panics if `alpha >= leaves` or `leaves` is not a power of two `>= 2`.
    pub fn reconstruct<P, F>(prg: &P, arity: Arity, leaves: usize, alpha: usize, sum_for: F) -> Self
    where
        P: TreePrg + ?Sized,
        F: Fn(usize, usize) -> Block,
    {
        let shape = LevelShape::new(arity, leaves);
        assert!(
            alpha < leaves,
            "alpha {alpha} out of range for {leaves} leaves"
        );
        let digits = shape.digits(alpha);
        let mut counter = PrgCounter::new();

        // `known[idx]` for the current level; the punctured node's slot is
        // ZERO and tracked by `punct_idx`.
        let mut current: Vec<Block> = Vec::new();
        let mut punct_idx = 0usize;

        for (lvl, (&fanout, &width)) in shape
            .fanouts()
            .iter()
            .zip(shape.widths().iter())
            .enumerate()
        {
            let mut next = vec![Block::ZERO; width];
            let mut calls = 0u64;
            // Expand all known parents.
            if lvl == 0 {
                // Root is never known to the receiver; level 0 comes
                // entirely from sums.
            } else {
                for (p, parent) in current.iter().enumerate() {
                    if p == punct_idx {
                        continue;
                    }
                    let start = p * fanout;
                    calls += prg.expand(*parent, &mut next[start..start + fanout]);
                }
            }
            // Recover the punctured parent's children (except branch α_lvl)
            // from the branch sums: sibling_j = K^lvl_j ⊕ XOR(all known
            // level nodes at branch j).
            let a = digits[lvl];
            let new_punct_parent = if lvl == 0 { 0 } else { punct_idx };
            for j in 0..fanout {
                if j == a {
                    continue;
                }
                let mut acc = sum_for(lvl, j);
                for (idx, node) in next.iter().enumerate() {
                    if idx % fanout == j && idx / fanout != new_punct_parent {
                        acc ^= *node;
                    }
                }
                next[new_punct_parent * fanout + j] = acc;
            }
            punct_idx = new_punct_parent * fanout + a;
            match prg.kind() {
                PrgKind::Aes => counter.add_aes(calls),
                PrgKind::ChaCha { .. } => counter.add_chacha(calls),
            }
            current = next;
        }

        debug_assert_eq!(punct_idx, alpha);
        PuncturedTree {
            shape,
            alpha,
            leaves: current,
            counter,
        }
    }

    /// The punctured leaf index `α`.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The tree's level shape.
    pub fn shape(&self) -> &LevelShape {
        &self.shape
    }

    /// The leaf layer; position [`Self::alpha`] is ZERO (or the recovered
    /// value after [`Self::recover_punctured`]).
    pub fn leaves(&self) -> &[Block] {
        &self.leaves
    }

    /// Consumes the tree, returning the leaf vector.
    pub fn into_leaves(self) -> Vec<Block> {
        self.leaves
    }

    /// PRG primitive calls consumed by the reconstruction.
    pub fn counter(&self) -> PrgCounter {
        self.counter
    }

    /// XOR of all *known* leaves (everything except `α`).
    pub fn known_leaf_sum(&self) -> Block {
        Block::xor_all(
            self.leaves
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != self.alpha)
                .map(|(_, b)| *b),
        )
    }

    /// Step ④ (α-th node recovery): given the sender's `c = Δ ⊕ ⊕_i w_i`,
    /// fills in the punctured leaf with `v_α = c ⊕ ⊕_{i≠α} v_i`, which
    /// satisfies `w_α = v_α ⊕ Δ`.
    pub fn recover_punctured(&mut self, masked_leaf_sum: Block) {
        self.leaves[self.alpha] = masked_leaf_sum ^ self.known_leaf_sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GgmTree;
    use ironman_prg::{AesTreePrg, ChaChaTreePrg};

    fn check_reconstruction<P: TreePrg>(prg: &P, arity: Arity, leaves: usize, alpha: usize) {
        let tree = GgmTree::expand(prg, Block::from(99u128), arity, leaves);
        let sums = tree.level_sums();
        let digits = tree.shape().digits(alpha);
        let punct = PuncturedTree::reconstruct(prg, arity, leaves, alpha, |lvl, j| {
            assert_ne!(j, digits[lvl], "receiver asked for the hidden branch sum");
            sums[lvl][j]
        });
        for (i, leaf) in punct.leaves().iter().enumerate() {
            if i == alpha {
                assert_eq!(*leaf, Block::ZERO);
            } else {
                assert_eq!(
                    *leaf,
                    tree.leaves()[i],
                    "leaf {i} mismatched (alpha={alpha})"
                );
            }
        }
    }

    #[test]
    fn binary_reconstruction_all_alphas() {
        let prg = AesTreePrg::new(Block::from(7u128), 2);
        for alpha in 0..16 {
            check_reconstruction(&prg, Arity::BINARY, 16, alpha);
        }
    }

    #[test]
    fn quad_reconstruction_all_alphas() {
        let prg = ChaChaTreePrg::new(Block::from(8u128), 8);
        for alpha in 0..64 {
            check_reconstruction(&prg, Arity::QUAD, 64, alpha);
        }
    }

    #[test]
    fn wide_arity_reconstruction() {
        let prg = ChaChaTreePrg::new(Block::from(13u128), 8);
        for arity in Arity::SWEEP {
            check_reconstruction(&prg, arity, 1024, 513);
        }
    }

    #[test]
    fn mixed_fanout_reconstruction() {
        let prg = ChaChaTreePrg::new(Block::from(17u128), 8);
        // 8192 = 4^6 * 2 exercises the partial final level.
        for alpha in [0usize, 1, 4095, 4096, 8191] {
            check_reconstruction(&prg, Arity::QUAD, 8192, alpha);
        }
    }

    #[test]
    fn recover_punctured_satisfies_correlation() {
        let prg = ChaChaTreePrg::new(Block::from(5u128), 8);
        let delta = Block::from(0xabcdefu128);
        let tree = GgmTree::expand(&prg, Block::from(3u128), Arity::QUAD, 64);
        let sums = tree.level_sums();
        let alpha = 37;
        let mut punct =
            PuncturedTree::reconstruct(&prg, Arity::QUAD, 64, alpha, |lvl, j| sums[lvl][j]);
        punct.recover_punctured(delta ^ tree.leaf_sum());
        // w_α = v_α ⊕ Δ
        assert_eq!(tree.leaves()[alpha], punct.leaves()[alpha] ^ delta);
    }

    #[test]
    fn receiver_does_fewer_expansions_than_sender() {
        let prg = ChaChaTreePrg::new(Block::from(5u128), 8);
        let tree = GgmTree::expand(&prg, Block::from(3u128), Arity::QUAD, 4096);
        let sums = tree.level_sums();
        let punct = PuncturedTree::reconstruct(&prg, Arity::QUAD, 4096, 100, |lvl, j| sums[lvl][j]);
        assert!(punct.counter().total() < tree.counter().total());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn alpha_out_of_range_panics() {
        let prg = AesTreePrg::new(Block::from(7u128), 2);
        let _ = PuncturedTree::reconstruct(&prg, Arity::BINARY, 8, 8, |_, _| Block::ZERO);
    }
}
