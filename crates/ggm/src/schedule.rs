//! Hardware GGM expansion schedules and the pipelined-PRG cycle model.
//!
//! §4.3 of the paper compares three ways of feeding GGM expansions into a
//! fully pipelined ChaCha core (8 pipeline stages):
//!
//! * **Depth-first** — minimal `O(m·log_m ℓ)` node buffer, but each call
//!   depends on the previous one, so the pipeline stalls for
//!   `stages − 1 = 7` bubbles between dependent calls (Fig. 8a).
//! * **Breadth-first** — full pipeline utilization once a level is wide
//!   enough, but `O(ℓ)` buffering and delayed leaf readiness.
//! * **Hybrid** — depth-first-style buffering plus breadth-first issue
//!   within a level *and* inter-tree parallelism to fill the remaining
//!   bubbles; with at least `stages` trees in flight it reaches 100%
//!   utilization (Fig. 8b).
//!
//! The model here is a cycle-accurate discrete simulation of a single
//! in-order issue port feeding an `S`-stage pipeline: one PRG call may be
//! issued per cycle, its children become available `S` cycles later.

use crate::Arity;
use ironman_prg::Block;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which traversal order feeds the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExpansionSchedule {
    /// Strict depth-first, one tree at a time.
    DepthFirst,
    /// Strict breadth-first (level order), one tree at a time.
    BreadthFirst,
    /// Breadth-first within a tree, round-robin across trees when the
    /// current tree has no issuable call (the paper's Hybrid strategy).
    Hybrid,
}

impl ExpansionSchedule {
    /// All schedules, in paper order.
    pub const ALL: [ExpansionSchedule; 3] = [
        ExpansionSchedule::DepthFirst,
        ExpansionSchedule::BreadthFirst,
        ExpansionSchedule::Hybrid,
    ];

    /// Display label used in bench output.
    pub fn label(self) -> &'static str {
        match self {
            ExpansionSchedule::DepthFirst => "depth-first",
            ExpansionSchedule::BreadthFirst => "breadth-first",
            ExpansionSchedule::Hybrid => "hybrid",
        }
    }
}

impl fmt::Display for ExpansionSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The pipelined PRG core being modeled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Pipeline depth in cycles (8 for the paper's ChaCha8 core: one stage
    /// per double round).
    pub stages: usize,
    /// Child blocks produced per call (4 for ChaCha, 1 for AES).
    pub blocks_per_call: usize,
}

impl Default for PipelineModel {
    fn default() -> Self {
        PipelineModel::CHACHA8
    }
}

impl PipelineModel {
    /// The paper's ChaCha8 core: 8 stages, 512-bit (4-block) output.
    pub const CHACHA8: PipelineModel = PipelineModel {
        stages: 8,
        blocks_per_call: 4,
    };
    /// A pipelined AES core: 10 stages (one per round), 1 block per call.
    pub const AES: PipelineModel = PipelineModel {
        stages: 10,
        blocks_per_call: 1,
    };
}

/// Outcome of simulating a schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleReport {
    /// Total cycles until the last call's results are available.
    pub cycles: u64,
    /// PRG calls issued.
    pub calls: u64,
    /// Cycles in which no call could be issued while work remained.
    pub bubbles: u64,
    /// Peak number of live (produced, not yet fully consumed) non-leaf node
    /// values — the node-buffer requirement.
    pub peak_buffer: usize,
}

impl ScheduleReport {
    /// Issue-port utilization over the issue window: `calls / (calls + bubbles)`.
    pub fn utilization(&self) -> f64 {
        if self.calls == 0 {
            return 0.0;
        }
        self.calls as f64 / (self.calls + self.bubbles) as f64
    }
}

/// One PRG call: expands segment `segment` of the parent node at
/// `(level, parent)` within its tree; level 0 is the root. The owning tree
/// is implied by which per-tree stream the call sits in.
#[derive(Clone, Copy, Debug)]
struct Call {
    level: usize,
    parent: usize,
    segment: usize,
}

/// Per-tree static description derived from arity/leaves.
struct TreeDesc {
    fanouts: Vec<usize>,
    widths: Vec<usize>,
    segs_per_parent: Vec<usize>,
}

impl TreeDesc {
    fn new(arity: Arity, leaves: usize, blocks_per_call: usize) -> Self {
        let fanouts = arity.level_fanouts(leaves);
        let mut widths = Vec::with_capacity(fanouts.len());
        let mut w = 1;
        for f in &fanouts {
            w *= f;
            widths.push(w);
        }
        let segs_per_parent = fanouts
            .iter()
            .map(|f| f.div_ceil(blocks_per_call))
            .collect();
        TreeDesc {
            fanouts,
            widths,
            segs_per_parent,
        }
    }

    fn depth(&self) -> usize {
        self.fanouts.len()
    }

    fn parent_width(&self, level: usize) -> usize {
        if level == 0 {
            1
        } else {
            self.widths[level - 1]
        }
    }
}

/// Generates the per-tree call order for a schedule.
fn call_order(desc: &TreeDesc, schedule: ExpansionSchedule) -> Vec<Call> {
    let mut calls = Vec::new();
    match schedule {
        ExpansionSchedule::BreadthFirst => {
            for level in 0..desc.depth() {
                for parent in 0..desc.parent_width(level) {
                    for segment in 0..desc.segs_per_parent[level] {
                        calls.push(Call {
                            level,
                            parent,
                            segment,
                        });
                    }
                }
            }
        }
        ExpansionSchedule::DepthFirst | ExpansionSchedule::Hybrid => {
            // Depth-first order keeps the node buffer at O(m·depth); Hybrid
            // uses the same order per tree but interleaves trees at issue
            // time to fill dependency bubbles (§4.3).
            fn visit(desc: &TreeDesc, level: usize, idx: usize, out: &mut Vec<Call>) {
                if level == desc.depth() {
                    return; // leaf
                }
                for segment in 0..desc.segs_per_parent[level] {
                    out.push(Call {
                        level,
                        parent: idx,
                        segment,
                    });
                }
                for child in 0..desc.fanouts[level] {
                    visit(desc, level + 1, idx * desc.fanouts[level] + child, out);
                }
            }
            visit(desc, 0, 0, &mut calls);
        }
    }
    calls
}

/// Simulates expanding `trees` GGM trees of shape `(arity, leaves)` through
/// the pipeline, returning cycle counts, bubbles and buffer occupancy.
///
/// For [`ExpansionSchedule::DepthFirst`] and
/// [`ExpansionSchedule::BreadthFirst`], trees are processed one after
/// another through a single in-order call stream; the Hybrid schedule may
/// interleave call streams of different trees.
///
/// # Example
///
/// ```
/// use ironman_ggm::{Arity, ExpansionSchedule, PipelineModel};
/// use ironman_ggm::schedule::simulate;
///
/// let df = simulate(ExpansionSchedule::DepthFirst, PipelineModel::CHACHA8, 4, Arity::QUAD, 64);
/// let hy = simulate(ExpansionSchedule::Hybrid, PipelineModel::CHACHA8, 4, Arity::QUAD, 64);
/// assert!(hy.cycles < df.cycles);
/// assert!(hy.utilization() > df.utilization());
/// ```
pub fn simulate(
    schedule: ExpansionSchedule,
    pipeline: PipelineModel,
    trees: usize,
    arity: Arity,
    leaves: usize,
) -> ScheduleReport {
    assert!(trees > 0, "need at least one tree");
    let desc = TreeDesc::new(arity, leaves, pipeline.blocks_per_call);
    let depth = desc.depth();
    let stages = pipeline.stages as u64;

    // Per-tree in-order call streams.
    let streams: Vec<Vec<Call>> = (0..trees).map(|_| call_order(&desc, schedule)).collect();
    let mut cursors = vec![0usize; trees];
    let total_calls: u64 = streams.iter().map(|s| s.len() as u64).sum();

    // ready[tree][level][idx] = cycle at which node value is available
    // (u64::MAX = not yet produced). Level 0 here = root.
    let mut ready: Vec<Vec<Vec<u64>>> = (0..trees)
        .map(|_| {
            let mut v = vec![vec![0u64]]; // root ready at cycle 0
            for &w in &desc.widths {
                v.push(vec![u64::MAX; w]);
            }
            v
        })
        .collect();

    // Remaining unissued segments per (tree, level, idx) of non-leaf nodes;
    // when it reaches zero the node value can be dropped from the buffer.
    let mut pending_segs: Vec<Vec<Vec<usize>>> = (0..trees)
        .map(|_| {
            (0..depth)
                .map(|level| vec![desc.segs_per_parent[level]; desc.parent_width(level)])
                .collect()
        })
        .collect();

    // Completion events: (cycle, tree, level(child), start_idx, count),
    // min-ordered by completion cycle.
    type CompletionEvent = std::cmp::Reverse<(u64, usize, usize, usize, usize)>;
    let mut events: std::collections::BinaryHeap<CompletionEvent> =
        std::collections::BinaryHeap::new();

    let mut cycle = 0u64;
    let mut issued = 0u64;
    let mut bubbles = 0u64;
    let mut alive = trees; // roots
    let mut peak = alive;
    let mut rr = 0usize; // round-robin pointer for Hybrid
    let mut last_completion = 0u64;

    let sequential = matches!(
        schedule,
        ExpansionSchedule::DepthFirst | ExpansionSchedule::BreadthFirst
    );

    while issued < total_calls {
        // Drain completions up to the current cycle.
        while let Some(&std::cmp::Reverse((t, tree, level, start, count))) = events.peek() {
            if t > cycle {
                break;
            }
            events.pop();
            for slot in ready[tree][level].iter_mut().skip(start).take(count) {
                *slot = t;
            }
            // Only non-leaf children occupy the node buffer.
            if level < depth {
                alive += count;
            }
            peak = peak.max(alive);
        }

        // Pick an issuable call.
        let pick: Option<usize> = if sequential {
            // Single global stream: first tree with remaining calls.
            let t = (0..trees)
                .find(|&t| cursors[t] < streams[t].len())
                .expect("work remains");
            let call = streams[t][cursors[t]];
            let parent_ready = ready[t][call.level][call.parent];
            if parent_ready <= cycle && parent_ready != u64::MAX {
                Some(t)
            } else {
                None
            }
        } else {
            // Hybrid: round-robin over trees, pick the first issuable.
            let mut found = None;
            for off in 0..trees {
                let t = (rr + off) % trees;
                if cursors[t] >= streams[t].len() {
                    continue;
                }
                let call = streams[t][cursors[t]];
                let parent_ready = ready[t][call.level][call.parent];
                if parent_ready <= cycle && parent_ready != u64::MAX {
                    found = Some(t);
                    break;
                }
            }
            found
        };

        match pick {
            Some(t) => {
                let call = streams[t][cursors[t]];
                cursors[t] += 1;
                rr = (t + 1) % trees;
                issued += 1;
                // Children indices covered by this segment.
                let fanout = desc.fanouts[call.level];
                let start_child = call.parent * fanout + call.segment * pipeline.blocks_per_call;
                let count = (fanout - call.segment * pipeline.blocks_per_call)
                    .min(pipeline.blocks_per_call);
                let done = cycle + stages;
                last_completion = last_completion.max(done);
                events.push(std::cmp::Reverse((
                    done,
                    t,
                    call.level + 1,
                    start_child,
                    count,
                )));
                // Parent consumed one more segment.
                pending_segs[t][call.level][call.parent] -= 1;
                if pending_segs[t][call.level][call.parent] == 0 {
                    alive = alive.saturating_sub(1);
                }
            }
            None => {
                bubbles += 1;
            }
        }
        cycle += 1;
    }

    ScheduleReport {
        cycles: last_completion,
        calls: issued,
        bubbles,
        peak_buffer: peak,
    }
}

/// Expands `trees` trees functionally in hybrid order, checking that the
/// interleaved order produces the same leaves as plain expansion. Returns
/// the leaves of each tree. Used by tests to show the schedule is a pure
/// reordering.
pub fn hybrid_functional_check(
    prg: &dyn ironman_prg::TreePrg,
    seeds: &[Block],
    arity: Arity,
    leaves: usize,
) -> Vec<Vec<Block>> {
    seeds
        .iter()
        .map(|&s| {
            crate::GgmTree::expand(prg, s, arity, leaves)
                .leaves()
                .to_vec()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_first_has_pipeline_bubbles() {
        // One binary tree with AES: every call depends on the previous
        // level; with 1 block/call each parent needs 2 calls, the second of
        // which is issuable back-to-back, so utilization is low but nonzero.
        let r = simulate(
            ExpansionSchedule::DepthFirst,
            PipelineModel::CHACHA8,
            1,
            Arity::QUAD,
            256,
        );
        assert!(r.bubbles > 0, "DF on a single tree must stall: {r:?}");
        assert!(r.utilization() < 0.5);
    }

    #[test]
    fn hybrid_fills_bubbles_with_trees() {
        let df = simulate(
            ExpansionSchedule::DepthFirst,
            PipelineModel::CHACHA8,
            8,
            Arity::QUAD,
            256,
        );
        let hy = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            8,
            Arity::QUAD,
            256,
        );
        assert_eq!(df.calls, hy.calls, "schedules issue the same work");
        assert!(hy.cycles < df.cycles);
        assert!(
            hy.utilization() > 0.9,
            "hybrid with 8 trees ≈ full utilization: {hy:?}"
        );
    }

    #[test]
    fn breadth_first_uses_more_buffer() {
        let bf = simulate(
            ExpansionSchedule::BreadthFirst,
            PipelineModel::CHACHA8,
            1,
            Arity::QUAD,
            1024,
        );
        let hy = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            8,
            Arity::QUAD,
            1024,
        );
        let df = simulate(
            ExpansionSchedule::DepthFirst,
            PipelineModel::CHACHA8,
            1,
            Arity::QUAD,
            1024,
        );
        assert!(
            bf.peak_buffer > df.peak_buffer,
            "BF buffer {} should exceed DF buffer {}",
            bf.peak_buffer,
            df.peak_buffer
        );
        // Hybrid's buffer grows with tree count but stays far below BF's O(ℓ).
        assert!(hy.peak_buffer < bf.peak_buffer);
    }

    #[test]
    fn cycles_lower_bounded_by_work() {
        for s in ExpansionSchedule::ALL {
            let r = simulate(s, PipelineModel::CHACHA8, 4, Arity::QUAD, 256);
            assert!(
                r.cycles >= r.calls,
                "{s}: cycles {} < calls {}",
                r.cycles,
                r.calls
            );
        }
    }

    #[test]
    fn call_counts_match_formula() {
        // 4-ary ChaCha: (ℓ-1)/3 calls per tree for exact 4-power ℓ.
        let r = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            3,
            Arity::QUAD,
            1024,
        );
        assert_eq!(r.calls, 3 * (1024 - 1) / 3);
    }

    #[test]
    fn aes_pipeline_models_more_calls() {
        let aes = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::AES,
            4,
            Arity::QUAD,
            256,
        );
        let cc = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            4,
            Arity::QUAD,
            256,
        );
        // AES issues one call per child: 4x the ChaCha quad calls.
        assert_eq!(aes.calls, 4 * cc.calls);
    }

    #[test]
    fn utilization_bounds() {
        for s in ExpansionSchedule::ALL {
            let r = simulate(s, PipelineModel::CHACHA8, 2, Arity::BINARY, 64);
            let u = r.utilization();
            assert!((0.0..=1.0).contains(&u), "{s}: utilization {u}");
        }
    }

    #[test]
    fn report_is_deterministic() {
        let a = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            4,
            Arity::QUAD,
            256,
        );
        let b = simulate(
            ExpansionSchedule::Hybrid,
            PipelineModel::CHACHA8,
            4,
            Arity::QUAD,
            256,
        );
        assert_eq!(a, b);
    }
}
