//! Sender-side full GGM tree expansion.

use crate::Arity;
use ironman_prg::{Block, PrgCounter, PrgKind, TreePrg};

/// The per-level structure of a tree: fanout and width of every level.
///
/// # Example
///
/// ```
/// use ironman_ggm::{Arity, LevelShape};
///
/// let shape = LevelShape::new(Arity::QUAD, 64);
/// assert_eq!(shape.depth(), 3);
/// assert_eq!(shape.widths(), &[4, 16, 64]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LevelShape {
    fanouts: Vec<usize>,
    widths: Vec<usize>,
}

impl LevelShape {
    /// Computes the shape for a tree of the given arity and leaf count.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two `>= 2` (see
    /// [`Arity::level_fanouts`]).
    pub fn new(arity: Arity, leaves: usize) -> Self {
        let fanouts = arity.level_fanouts(leaves);
        let mut widths = Vec::with_capacity(fanouts.len());
        let mut w = 1usize;
        for f in &fanouts {
            w *= f;
            widths.push(w);
        }
        LevelShape { fanouts, widths }
    }

    /// Number of levels below the root.
    pub fn depth(&self) -> usize {
        self.fanouts.len()
    }

    /// Fanout of each level (root's children are level 0).
    pub fn fanouts(&self) -> &[usize] {
        &self.fanouts
    }

    /// Width (node count) of each level.
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// Leaf count (width of the last level).
    pub fn leaves(&self) -> usize {
        *self.widths.last().expect("shape has at least one level")
    }

    /// Decomposes a leaf index into per-level branch digits
    /// (most-significant level first). Digit `i` is the branch taken at
    /// level `i`.
    ///
    /// # Panics
    ///
    /// Panics if `leaf >= leaves()`.
    pub fn digits(&self, leaf: usize) -> Vec<usize> {
        assert!(
            leaf < self.leaves(),
            "leaf index {} out of range {}",
            leaf,
            self.leaves()
        );
        let mut digits = vec![0usize; self.depth()];
        let mut rem = leaf;
        for (i, f) in self.fanouts.iter().enumerate().rev() {
            digits[i] = rem % f;
            rem /= f;
        }
        digits
    }

    /// Recomposes a leaf index from branch digits; inverse of [`Self::digits`].
    pub fn index_from_digits(&self, digits: &[usize]) -> usize {
        assert_eq!(digits.len(), self.depth());
        let mut idx = 0usize;
        for (d, f) in digits.iter().zip(self.fanouts.iter()) {
            debug_assert!(d < f);
            idx = idx * f + d;
        }
        idx
    }
}

/// A fully expanded GGM tree (sender side, Step ① of Fig. 3(b)).
///
/// All levels are retained so that level sums — the `K^i_j` values fed into
/// the per-level OTs — can be computed, and so tests can cross-check the
/// receiver's reconstruction node by node.
#[derive(Clone, Debug)]
pub struct GgmTree {
    shape: LevelShape,
    levels: Vec<Vec<Block>>,
    counter: PrgCounter,
}

impl GgmTree {
    /// Expands `seed` into a tree with `leaves` leaves using `prg`.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two `>= 2`, or if the PRG cannot
    /// produce the required fanout (AES PRGs are built with a fixed key
    /// count).
    pub fn expand<P: TreePrg + ?Sized>(prg: &P, seed: Block, arity: Arity, leaves: usize) -> Self {
        let shape = LevelShape::new(arity, leaves);
        let mut levels: Vec<Vec<Block>> = Vec::with_capacity(shape.depth());
        let mut counter = PrgCounter::new();
        let mut current = vec![seed];
        for (&fanout, &width) in shape.fanouts().iter().zip(shape.widths().iter()) {
            let mut next = vec![Block::ZERO; width];
            let mut calls = 0u64;
            for (parent, chunk) in current.iter().zip(next.chunks_mut(fanout)) {
                calls += prg.expand(*parent, chunk);
            }
            match prg.kind() {
                PrgKind::Aes => counter.add_aes(calls),
                PrgKind::ChaCha { .. } => counter.add_chacha(calls),
            }
            levels.push(next.clone());
            current = next;
        }
        GgmTree {
            shape,
            levels,
            counter,
        }
    }

    /// The tree's level shape.
    pub fn shape(&self) -> &LevelShape {
        &self.shape
    }

    /// Nodes of level `i` (level 0 = root's children).
    pub fn level(&self, i: usize) -> &[Block] {
        &self.levels[i]
    }

    /// The leaf layer (the sender's SPCOT output vector `w`).
    pub fn leaves(&self) -> &[Block] {
        self.levels.last().expect("tree has at least one level")
    }

    /// PRG primitive calls consumed by the expansion.
    pub fn counter(&self) -> PrgCounter {
        self.counter
    }

    /// Per-level branch sums `K^i_j`: the XOR of all level-`i` nodes whose
    /// within-parent branch position is `j` (Step ② of Fig. 3(b); for the
    /// binary case these are the paper's "even" and "odd" sums).
    pub fn level_sums(&self) -> Vec<Vec<Block>> {
        self.shape
            .fanouts()
            .iter()
            .zip(self.levels.iter())
            .map(|(&fanout, nodes)| {
                let mut sums = vec![Block::ZERO; fanout];
                for (idx, node) in nodes.iter().enumerate() {
                    sums[idx % fanout] ^= *node;
                }
                sums
            })
            .collect()
    }

    /// XOR of all leaves — the value the sender masks with `Δ` and transmits
    /// for the receiver's α-th node recovery (Step ④).
    pub fn leaf_sum(&self) -> Block {
        Block::xor_all(self.leaves().iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_prg::{AesTreePrg, ChaChaTreePrg};

    fn chacha() -> ChaChaTreePrg {
        ChaChaTreePrg::new(Block::from(11u128), 8)
    }

    #[test]
    fn shape_binary() {
        let s = LevelShape::new(Arity::BINARY, 16);
        assert_eq!(s.depth(), 4);
        assert_eq!(s.widths(), &[2, 4, 8, 16]);
        assert_eq!(s.leaves(), 16);
    }

    #[test]
    fn digits_round_trip() {
        let s = LevelShape::new(Arity::QUAD, 8192);
        for leaf in [0usize, 1, 17, 4095, 8191] {
            let d = s.digits(leaf);
            assert_eq!(s.index_from_digits(&d), leaf);
        }
    }

    #[test]
    fn digits_binary_match_bits() {
        let s = LevelShape::new(Arity::BINARY, 16);
        // 13 = 0b1101
        assert_eq!(s.digits(13), vec![1, 1, 0, 1]);
    }

    #[test]
    fn expansion_deterministic() {
        let prg = chacha();
        let a = GgmTree::expand(&prg, Block::from(1u128), Arity::QUAD, 64);
        let b = GgmTree::expand(&prg, Block::from(1u128), Arity::QUAD, 64);
        assert_eq!(a.leaves(), b.leaves());
    }

    #[test]
    fn leaf_count_matches() {
        let prg = chacha();
        for leaves in [2usize, 4, 64, 256, 8192] {
            let t = GgmTree::expand(&prg, Block::from(3u128), Arity::QUAD, leaves);
            assert_eq!(t.leaves().len(), leaves);
        }
    }

    #[test]
    fn chacha_quad_counts_match_formula() {
        // 4-ary ChaCha: one call per parent → (ℓ−1)/(m−1) calls for exact trees.
        let prg = chacha();
        let t = GgmTree::expand(&prg, Block::from(5u128), Arity::QUAD, 4096);
        assert_eq!(t.counter().chacha_calls, (4096 - 1) / 3);
        assert_eq!(t.counter().aes_calls, 0);
    }

    #[test]
    fn aes_binary_counts_match_paper() {
        // 2-ary AES: 2(ℓ−1) AES calls for ℓ leaves (paper's 2ℓ−2; their
        // "2ℓ−1" in §3.1 includes the root seed sampling).
        let prg = AesTreePrg::new(Block::from(2u128), 2);
        let t = GgmTree::expand(&prg, Block::from(5u128), Arity::BINARY, 4096);
        assert_eq!(t.counter().aes_calls, 2 * (4096 - 1));
    }

    #[test]
    fn level_sums_are_branch_xors() {
        let prg = chacha();
        let t = GgmTree::expand(&prg, Block::from(9u128), Arity::QUAD, 64);
        let sums = t.level_sums();
        assert_eq!(sums.len(), 3);
        for (lvl, s) in sums.iter().enumerate() {
            assert_eq!(s.len(), 4);
            let mut expect = vec![Block::ZERO; 4];
            for (idx, node) in t.level(lvl).iter().enumerate() {
                expect[idx % 4] ^= *node;
            }
            assert_eq!(*s, expect);
        }
    }

    #[test]
    fn binary_level_sums_are_even_odd() {
        let prg = AesTreePrg::new(Block::from(4u128), 2);
        let t = GgmTree::expand(&prg, Block::from(5u128), Arity::BINARY, 8);
        let sums = t.level_sums();
        let leaves = t.leaves();
        let even = Block::xor_all(leaves.iter().step_by(2).copied());
        let odd = Block::xor_all(leaves.iter().skip(1).step_by(2).copied());
        assert_eq!(sums[2], vec![even, odd]);
    }

    #[test]
    fn leaf_sum_is_total_xor() {
        let prg = chacha();
        let t = GgmTree::expand(&prg, Block::from(9u128), Arity::QUAD, 16);
        assert_eq!(t.leaf_sum(), Block::xor_all(t.leaves().iter().copied()));
    }

    #[test]
    fn mixed_fanout_tree() {
        // 8192 with 4-ary → final binary level must still be well-formed.
        let prg = chacha();
        let t = GgmTree::expand(&prg, Block::from(21u128), Arity::QUAD, 8192);
        assert_eq!(t.leaves().len(), 8192);
        let sums = t.level_sums();
        assert_eq!(sums.last().unwrap().len(), 2);
    }
}
