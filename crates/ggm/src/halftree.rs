//! Half-tree expansion (Guo et al., EUROCRYPT 2023 — the paper's
//! reference \[36\]): an *extension feature* beyond the Ironman paper's own
//! design space.
//!
//! A binary GGM level normally costs one PRG call per child (two per
//! parent). The half-tree observation: derive only the left child with
//! the hash and set the right child to `parent ⊕ left`. One call per
//! parent — half the computation of the standard binary tree — while the
//! tree remains deterministic, so the SPCOT reconstruction algebra is
//! unchanged.
//!
//! Security caveat (documented, since this crate is a systems
//! reproduction): the real half-tree protocol of \[36\] proves security for
//! this correlated expansion in the circular-correlation-robust-hash
//! model, with protocol-level adjustments we do not replicate. Here the
//! construction serves as the op-count/ablation point its citation plays
//! in the paper.

use crate::arity::Arity;
use ironman_prg::{Aes128, Block, PrgKind, TreePrg};

/// A binary tree PRG with one primitive call per parent:
/// `left = H(parent)`, `right = parent ⊕ left`.
#[derive(Clone, Debug)]
pub struct HalfTreePrg {
    hash: Aes128,
}

impl HalfTreePrg {
    /// Creates the half-tree PRG from a session key.
    pub fn new(session_key: Block) -> Self {
        HalfTreePrg {
            hash: Aes128::new(session_key ^ Block::from(0x4a1f_7265u128)),
        }
    }

    /// The arity this PRG supports (binary only).
    pub fn arity() -> Arity {
        Arity::BINARY
    }
}

impl TreePrg for HalfTreePrg {
    fn blocks_per_call(&self) -> usize {
        2
    }

    fn expand(&self, parent: Block, children: &mut [Block]) -> u64 {
        assert!(children.len() <= 2, "half-tree expansion is binary");
        let left = self.hash.encrypt_block(parent) ^ parent;
        children[0] = left;
        if children.len() == 2 {
            children[1] = parent ^ left;
        }
        1
    }

    fn kind(&self) -> PrgKind {
        // Accounted as AES (one block-cipher call per parent).
        PrgKind::Aes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GgmTree, PuncturedTree};

    #[test]
    fn halves_the_call_count() {
        let prg = HalfTreePrg::new(Block::from(1u128));
        let full = ironman_prg::AesTreePrg::new(Block::from(1u128), 2);
        let ht = GgmTree::expand(&prg, Block::from(2u128), Arity::BINARY, 1024);
        let std = GgmTree::expand(&full, Block::from(2u128), Arity::BINARY, 1024);
        assert_eq!(ht.counter().aes_calls * 2, std.counter().aes_calls);
    }

    #[test]
    fn children_satisfy_the_half_tree_relation() {
        let prg = HalfTreePrg::new(Block::from(3u128));
        let mut kids = [Block::ZERO; 2];
        let parent = Block::from(99u128);
        prg.expand(parent, &mut kids);
        assert_eq!(kids[0] ^ kids[1], parent);
    }

    #[test]
    fn punctured_reconstruction_still_works() {
        let prg = HalfTreePrg::new(Block::from(4u128));
        let tree = GgmTree::expand(&prg, Block::from(5u128), Arity::BINARY, 256);
        let sums = tree.level_sums();
        for alpha in [0usize, 1, 100, 255] {
            let punct =
                PuncturedTree::reconstruct(&prg, Arity::BINARY, 256, alpha, |l, j| sums[l][j]);
            for (i, leaf) in punct.leaves().iter().enumerate() {
                if i != alpha {
                    assert_eq!(*leaf, tree.leaves()[i], "leaf {i} (alpha={alpha})");
                }
            }
        }
    }

    #[test]
    fn recovery_satisfies_correlation() {
        let prg = HalfTreePrg::new(Block::from(6u128));
        let delta = Block::from(0x1234u128);
        let tree = GgmTree::expand(&prg, Block::from(7u128), Arity::BINARY, 64);
        let sums = tree.level_sums();
        let mut punct = PuncturedTree::reconstruct(&prg, Arity::BINARY, 64, 33, |l, j| sums[l][j]);
        punct.recover_punctured(delta ^ tree.leaf_sum());
        assert_eq!(tree.leaves()[33], punct.leaves()[33] ^ delta);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn wide_expansion_rejected() {
        let prg = HalfTreePrg::new(Block::from(1u128));
        let mut kids = [Block::ZERO; 4];
        prg.expand(Block::ZERO, &mut kids);
    }
}
