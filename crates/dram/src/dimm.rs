//! DIMM-level simulation: two ranks behind one shared data bus.
//!
//! The Ironman PU's two Rank-NMP modules compute independently against
//! their own ranks (that is the whole point of rank-level parallelism),
//! but host-visible phases — broadcasting the pre-generated vector,
//! streaming COTs back — cross the DIMM's shared bus, where rank-to-rank
//! switching costs turnaround cycles. This module models that shared-bus
//! view and quantifies the §5.1 claim that internal rank parallelism
//! yields bandwidth the external bus cannot see.

use crate::rank::{RankSim, Request};
use crate::{DramConfig, DramStats};
use serde::{Deserialize, Serialize};

/// Bus turnaround penalty between accesses to different ranks, cycles
/// (standard DDR4 rank-switch bubble).
pub const RANK_SWITCH_CYCLES: u64 = 2;

/// Result of a DIMM-level run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DimmStats {
    /// Per-rank statistics.
    pub rank0: DramStats,
    /// Per-rank statistics.
    pub rank1: DramStats,
    /// Cycles when the shared external bus is the constraint.
    pub shared_bus_cycles: u64,
    /// Cycles when the two ranks run internally in parallel.
    pub parallel_cycles: u64,
}

impl DimmStats {
    /// The rank-level-parallelism advantage: shared-bus time over
    /// parallel-internal time for the same request mix.
    pub fn parallelism_gain(&self) -> f64 {
        if self.parallel_cycles == 0 {
            return 1.0;
        }
        self.shared_bus_cycles as f64 / self.parallel_cycles as f64
    }
}

/// A two-rank DIMM with a shared external data bus.
#[derive(Clone, Debug)]
pub struct DimmSim {
    cfg: DramConfig,
}

impl DimmSim {
    /// Creates the DIMM model.
    pub fn new(cfg: DramConfig) -> Self {
        DimmSim { cfg }
    }

    /// Runs a request mix where bit 6 of the line address selects the
    /// rank, under both execution disciplines:
    ///
    /// * **shared-bus** — all data crosses the external bus; a rank switch
    ///   between consecutive bursts costs [`RANK_SWITCH_CYCLES`], and the
    ///   two ranks' transfers serialize (the host's view of the DIMM);
    /// * **parallel** — each rank's requests are served by its own
    ///   Rank-NMP locally; the DIMM finishes when the slower rank does
    ///   (Ironman's view).
    pub fn run(&self, requests: &[Request]) -> DimmStats {
        let mut r0 = Vec::new();
        let mut r1 = Vec::new();
        let mut switches = 0u64;
        let mut last_rank = None;
        for req in requests {
            let rank = (req.addr / self.cfg.access_bytes as u64) & 1;
            if last_rank.is_some() && last_rank != Some(rank) {
                switches += 1;
            }
            last_rank = Some(rank);
            let local = Request {
                addr: req.addr / 2,
                ..*req
            };
            if rank == 0 {
                r0.push(local);
            } else {
                r1.push(local);
            }
        }
        let stats0 = RankSim::new(self.cfg).run(&r0);
        let stats1 = RankSim::new(self.cfg).run(&r1);
        let parallel_cycles = stats0.total_cycles.max(stats1.total_cycles);
        let shared_bus_cycles =
            stats0.total_cycles + stats1.total_cycles + switches * RANK_SWITCH_CYCLES;
        DimmStats {
            rank0: stats0,
            rank1: stats1,
            shared_bus_cycles,
            parallel_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interleaved(n: u64) -> Vec<Request> {
        (0..n).map(|i| Request::read(i * 64)).collect()
    }

    #[test]
    fn requests_split_across_ranks() {
        let dimm = DimmSim::new(DramConfig::ddr4_2400());
        let s = dimm.run(&interleaved(256));
        assert_eq!(s.rank0.reads + s.rank1.reads, 256);
        assert_eq!(s.rank0.reads, 128);
    }

    #[test]
    fn parallel_faster_than_shared_bus() {
        // The §5.1 argument: rank-level parallelism roughly doubles
        // effective bandwidth for a balanced mix.
        let dimm = DimmSim::new(DramConfig::ddr4_2400());
        let s = dimm.run(&interleaved(1024));
        assert!(s.parallel_cycles < s.shared_bus_cycles);
        // 2× from parallel ranks plus the turnaround bubbles of the
        // perfectly interleaved worst case.
        let gain = s.parallelism_gain();
        assert!((1.5..=3.5).contains(&gain), "gain {gain}");
    }

    #[test]
    fn single_rank_mix_has_no_gain() {
        let dimm = DimmSim::new(DramConfig::ddr4_2400());
        // All requests land on rank 0 (even line addresses).
        let reqs: Vec<Request> = (0..128u64).map(|i| Request::read(i * 128)).collect();
        let s = dimm.run(&reqs);
        assert_eq!(s.rank1.reads, 0);
        assert!((s.parallelism_gain() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_mix() {
        let dimm = DimmSim::new(DramConfig::ddr4_2400());
        let s = dimm.run(&[]);
        assert_eq!(s.parallel_cycles, 0);
        assert_eq!(s.parallelism_gain(), 1.0);
    }
}
