//! Cycle-level DDR4 DRAM timing model (the workspace's Ramulator
//! substitute; see DESIGN.md's substitution table).
//!
//! The model covers what the Ironman evaluation depends on:
//!
//! * the DDR4-2400 timing parameters of the paper's Table 3 (tRCD, tCL,
//!   tRP, tRC, tRRD_S/L, tFAW, tCCD_S/L, tBL) driving open-row hits vs.
//!   row-buffer misses,
//! * bank/bank-group state machines per rank,
//! * an FR-FCFS scheduler (first-ready, first-come-first-served) with a
//!   bounded reorder window, and
//! * per-rank statistics: row hit rate, sustained bandwidth, average
//!   access latency.
//!
//! The LPN encoder's random element reads are what this model exists for:
//! `ironman-nmp` replays the (sorted or unsorted) access trace of each
//! Rank-NMP module through a [`RankSim`] to obtain the cycle counts behind
//! Figs. 12–14.
//!
//! # Example
//!
//! ```
//! use ironman_dram::{DramConfig, RankSim, Request};
//!
//! let cfg = DramConfig::ddr4_2400();
//! let mut rank = RankSim::new(cfg);
//! let reqs: Vec<Request> = (0..64).map(|i| Request::read(i * 64)).collect();
//! let stats = rank.run(&reqs);
//! assert_eq!(stats.reads, 64);
//! assert!(stats.row_hits > 0); // sequential lines mostly hit the open row
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod config;
pub mod controller;
pub mod dimm;
pub mod rank;
pub mod stats;

pub use address::{AddressMapping, DecodedAddr};
pub use config::{DramConfig, DramTiming};
pub use controller::{ControllerStats, MemoryController, SystemGeometry};
pub use dimm::{DimmSim, DimmStats};
pub use rank::{RankSim, Request, RequestKind};
pub use stats::DramStats;
