//! DDR4 configuration: geometry and timing (paper Table 3).

use serde::{Deserialize, Serialize};

/// DDR4 timing parameters in memory-clock cycles.
///
/// Values are the paper's Table 3 row for DDR4-2400. `tRAS` is not listed
/// there; we derive it as `tRC − tRP` (the JEDEC identity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// ACT → internal READ/WRITE delay.
    pub t_rcd: u64,
    /// CAS latency (READ → first data beat).
    pub t_cl: u64,
    /// PRE → ACT delay.
    pub t_rp: u64,
    /// ACT → ACT delay, same bank (row cycle time).
    pub t_rc: u64,
    /// ACT → ACT delay, different bank group.
    pub t_rrd_s: u64,
    /// ACT → ACT delay, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// READ → READ delay, different bank group.
    pub t_ccd_s: u64,
    /// READ → READ delay, same bank group.
    pub t_ccd_l: u64,
    /// Burst length in cycles (BL8 at double data rate = 4 clocks).
    pub t_bl: u64,
    /// Average refresh interval (JEDEC 7.8 µs at 1200 MHz; not listed in
    /// Table 3, standard DDR4 value).
    pub t_refi: u64,
    /// Refresh cycle time (8 Gb device class, ~350 ns).
    pub t_rfc: u64,
    /// WRITE command → first data beat (CAS write latency).
    pub t_cwl: u64,
    /// WRITE recovery before PRE.
    pub t_wr: u64,
}

impl DramTiming {
    /// The paper's Table 3 timing set.
    pub const fn table3() -> Self {
        DramTiming {
            t_rcd: 16,
            t_cl: 16,
            t_rp: 16,
            t_rc: 55,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 26,
            t_ccd_s: 4,
            t_ccd_l: 6,
            t_bl: 4,
            t_refi: 9360,
            t_rfc: 420,
            t_cwl: 14,
            t_wr: 18,
        }
    }

    /// Row-active minimum time `tRAS = tRC − tRP`.
    pub const fn t_ras(&self) -> u64 {
        self.t_rc - self.t_rp
    }
}

/// Geometry plus timing of one DRAM device hierarchy level used by the
/// simulator (one rank's view).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Timing parameters.
    pub timing: DramTiming,
    /// Bank groups per rank (DDR4: 4).
    pub bank_groups: usize,
    /// Banks per bank group (DDR4: 4).
    pub banks_per_group: usize,
    /// Row buffer size in bytes (8 KB for typical x8 DDR4 devices ganged
    /// across a 64-bit rank).
    pub row_bytes: usize,
    /// Bytes transferred per column access (64-byte cache line).
    pub access_bytes: usize,
    /// Memory clock in MHz (DDR4-2400 → 1200 MHz clock, 2400 MT/s).
    pub clock_mhz: f64,
    /// FR-FCFS reorder window (outstanding requests considered).
    pub window: usize,
}

impl DramConfig {
    /// The paper's system configuration (Table 3).
    pub fn ddr4_2400() -> Self {
        DramConfig {
            timing: DramTiming::table3(),
            bank_groups: 4,
            banks_per_group: 4,
            row_bytes: 8192,
            access_bytes: 64,
            clock_mhz: 1200.0,
            window: 16,
        }
    }

    /// Total banks per rank.
    pub fn banks(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Nanoseconds per memory-clock cycle.
    pub fn ns_per_cycle(&self) -> f64 {
        1000.0 / self.clock_mhz
    }

    /// Peak per-rank data bandwidth in GB/s: one 64-byte burst per `tBL`
    /// cycles.
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        let bytes_per_cycle = self.access_bytes as f64 / self.timing.t_bl as f64;
        bytes_per_cycle * self.clock_mhz * 1e6 / 1e9
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_2400()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let t = DramTiming::table3();
        assert_eq!(t.t_rcd, 16);
        assert_eq!(t.t_cl, 16);
        assert_eq!(t.t_rp, 16);
        assert_eq!(t.t_rc, 55);
        assert_eq!(t.t_rrd_s, 4);
        assert_eq!(t.t_rrd_l, 6);
        assert_eq!(t.t_faw, 26);
        assert_eq!(t.t_ccd_s, 4);
        assert_eq!(t.t_ccd_l, 6);
        assert_eq!(t.t_bl, 4);
    }

    #[test]
    fn ras_identity() {
        assert_eq!(DramTiming::table3().t_ras(), 39);
    }

    #[test]
    fn geometry() {
        let c = DramConfig::ddr4_2400();
        assert_eq!(c.banks(), 16);
        assert!((c.ns_per_cycle() - 0.8333).abs() < 1e-3);
    }

    #[test]
    fn peak_bandwidth_is_ddr4_2400() {
        // 2400 MT/s × 8 bytes = 19.2 GB/s per rank interface.
        let c = DramConfig::ddr4_2400();
        assert!((c.peak_bandwidth_gbps() - 19.2).abs() < 0.1);
    }
}
