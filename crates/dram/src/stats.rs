//! Simulation statistics.

use serde::{Deserialize, Serialize};

/// Outcome of running a request trace through a [`crate::RankSim`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DramStats {
    /// Read requests completed.
    pub reads: u64,
    /// Accesses that hit an open row.
    pub row_hits: u64,
    /// Accesses requiring precharge + activate.
    pub row_misses: u64,
    /// Accesses to a closed (never-opened) bank — activate only.
    pub row_empty: u64,
    /// Cycle at which the last data beat completed.
    pub total_cycles: u64,
    /// Sum of per-request latencies (arrival → last data beat), in cycles.
    pub latency_sum: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.row_hits as f64 / self.reads as f64
    }

    /// Mean access latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.reads == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / self.reads as f64
    }

    /// Sustained bandwidth in GB/s for a given access size and clock.
    pub fn bandwidth_gbps(&self, access_bytes: usize, clock_mhz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        let bytes = self.reads as f64 * access_bytes as f64;
        let seconds = self.total_cycles as f64 / (clock_mhz * 1e6);
        bytes / seconds / 1e9
    }

    /// Wall-clock duration of the simulated trace in nanoseconds.
    pub fn duration_ns(&self, clock_mhz: f64) -> f64 {
        self.total_cycles as f64 * 1000.0 / clock_mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_empty() {
        let s = DramStats::default();
        assert_eq!(s.row_hit_rate(), 0.0);
        assert_eq!(s.avg_latency(), 0.0);
        assert_eq!(s.bandwidth_gbps(64, 1200.0), 0.0);
    }

    #[test]
    fn bandwidth_math() {
        let s = DramStats {
            reads: 1000,
            total_cycles: 4000,
            ..Default::default()
        };
        // 1000 × 64 B in 4000 cycles @1200 MHz = 64000 B / 3.333 µs = 19.2 GB/s.
        assert!((s.bandwidth_gbps(64, 1200.0) - 19.2).abs() < 0.1);
    }
}
