//! The per-rank DDR4 simulator with FR-FCFS scheduling.
//!
//! One [`RankSim`] models the banks of a single rank — the unit the
//! Ironman Rank-NMP module owns. Scheduling is First-Ready FCFS over a
//! bounded reorder window: among outstanding requests, prefer row-buffer
//! hits; break ties by age. Commands (PRE, ACT, READ) respect the Table 3
//! timing constraints tracked per bank, per bank group, and rank-wide
//! (tFAW, tRRD, tCCD).

use crate::address::AddressMapping;
use crate::{DramConfig, DramStats};
use std::collections::VecDeque;

/// Request direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// Column read (the LPN gather's element fetches).
    Read,
    /// Column write (the host's vector-broadcast phase).
    Write,
}

/// A memory request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Byte address within the rank.
    pub addr: u64,
    /// Earliest cycle at which the request exists (0 = trace start).
    pub arrival: u64,
    /// Direction.
    pub kind: RequestKind,
}

impl Request {
    /// A read arriving at cycle 0.
    pub fn read(addr: u64) -> Self {
        Request {
            addr,
            arrival: 0,
            kind: RequestKind::Read,
        }
    }

    /// A read arriving at a given cycle.
    pub fn read_at(addr: u64, arrival: u64) -> Self {
        Request {
            addr,
            arrival,
            kind: RequestKind::Read,
        }
    }

    /// A write arriving at cycle 0.
    pub fn write(addr: u64) -> Self {
        Request {
            addr,
            arrival: 0,
            kind: RequestKind::Write,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the next ACT may issue (tRC / tRP constraints).
    next_act: u64,
    /// Earliest cycle the next READ may issue on this bank (tRCD).
    next_read: u64,
    /// Earliest cycle a PRE may issue (tRAS after ACT).
    next_pre: u64,
}

impl BankState {
    fn closed() -> Self {
        BankState {
            open_row: None,
            next_act: 0,
            next_read: 0,
            next_pre: 0,
        }
    }
}

/// Cycle-level model of one DDR4 rank.
#[derive(Clone, Debug)]
pub struct RankSim {
    cfg: DramConfig,
    mapping: AddressMapping,
    banks: Vec<BankState>,
    /// Last ACT cycle per bank group (tRRD_L) and rank-wide (tRRD_S);
    /// `None` until the first activation.
    last_act_group: Vec<Option<u64>>,
    last_act_rank: Option<u64>,
    /// Sliding window of the last four ACT cycles (tFAW).
    act_history: VecDeque<u64>,
    /// Last READ cycle and its bank group (tCCD_S/L).
    last_read: Option<(u64, usize)>,
    /// Data-bus free cycle.
    bus_free: u64,
    /// Start of the next refresh window.
    next_refresh: u64,
    /// Refreshes performed.
    refreshes: u64,
    now: u64,
}

impl RankSim {
    /// Creates an idle rank.
    pub fn new(cfg: DramConfig) -> Self {
        RankSim {
            mapping: AddressMapping::new(cfg),
            banks: vec![BankState::closed(); cfg.banks()],
            last_act_group: vec![None; cfg.bank_groups],
            last_act_rank: None,
            act_history: VecDeque::new(),
            last_read: None,
            bus_free: 0,
            next_refresh: cfg.timing.t_refi,
            refreshes: 0,
            cfg,
            now: 0,
        }
    }

    /// Defers `t` past any refresh window it lands in and advances the
    /// refresh schedule. All banks are blocked for `tRFC` every `tREFI`.
    fn refresh_adjust(&mut self, mut t: u64) -> u64 {
        let timing = self.cfg.timing;
        while t >= self.next_refresh {
            let end = self.next_refresh + timing.t_rfc;
            if t < end {
                t = end;
            }
            self.next_refresh += timing.t_refi;
            self.refreshes += 1;
        }
        t
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Refresh operations performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Earliest cycle an ACT may issue, given group/rank/FAW constraints.
    fn act_ready(&self, bank: &BankState, group: usize) -> u64 {
        let t = &self.cfg.timing;
        let mut ready = bank.next_act;
        if let Some(last) = self.last_act_group[group] {
            ready = ready.max(last + t.t_rrd_l);
        }
        if let Some(last) = self.last_act_rank {
            ready = ready.max(last + t.t_rrd_s);
        }
        if self.act_history.len() == 4 {
            ready = ready.max(self.act_history[0] + t.t_faw);
        }
        ready
    }

    /// Earliest cycle a READ may issue on an open bank.
    fn read_ready(&self, bank: &BankState, group: usize) -> u64 {
        let t = &self.cfg.timing;
        let mut ready = bank.next_read;
        if let Some((last, last_group)) = self.last_read {
            let ccd = if last_group == group {
                t.t_ccd_l
            } else {
                t.t_ccd_s
            };
            ready = ready.max(last + ccd);
        }
        ready.max(self.bus_free.saturating_sub(t.t_cl))
    }

    /// Estimates the completion cycle of `req` *without* mutating state —
    /// the FR-FCFS scoring function.
    fn estimate(&self, req: &Request) -> (bool, u64) {
        let d = self.mapping.decode(req.addr);
        let bank = &self.banks[d.flat_bank(&self.cfg)];
        let t = &self.cfg.timing;
        let base = self.now.max(req.arrival);
        match bank.open_row {
            Some(row) if row == d.row => {
                let read = self.read_ready(bank, d.group).max(base);
                (true, read + t.t_cl + t.t_bl)
            }
            Some(_) => {
                let pre = bank.next_pre.max(base);
                let act = self.act_ready(bank, d.group).max(pre + t.t_rp);
                let read = (act + t.t_rcd).max(base);
                (false, read + t.t_cl + t.t_bl)
            }
            None => {
                let act = self.act_ready(bank, d.group).max(base);
                let read = act + t.t_rcd;
                (false, read + t.t_cl + t.t_bl)
            }
        }
    }

    /// Executes `req`, updating all timing state; returns the cycle of the
    /// last data beat.
    fn execute(&mut self, req: &Request, stats: &mut DramStats) -> u64 {
        let d = self.mapping.decode(req.addr);
        let flat = d.flat_bank(&self.cfg);
        let t = self.cfg.timing;
        let base = self.now.max(req.arrival);

        let (hit_kind, read_cycle) = match self.banks[flat].open_row {
            Some(row) if row == d.row => {
                let read = self.read_ready(&self.banks[flat], d.group).max(base);
                (0u8, read)
            }
            Some(_) => {
                let pre = self.banks[flat].next_pre.max(base);
                let act = self.act_ready(&self.banks[flat], d.group).max(pre + t.t_rp);
                self.record_act(flat, d.group, d.row, act);
                (1, act + t.t_rcd)
            }
            None => {
                let act = self.act_ready(&self.banks[flat], d.group).max(base);
                self.record_act(flat, d.group, d.row, act);
                (2, act + t.t_rcd)
            }
        };
        let read_cycle = read_cycle.max(self.read_ready(&self.banks[flat], d.group));
        let read_cycle = self.refresh_adjust(read_cycle);
        let cas = match req.kind {
            RequestKind::Read => t.t_cl,
            RequestKind::Write => t.t_cwl,
        };
        let done = read_cycle + cas + t.t_bl;

        self.last_read = Some((read_cycle, d.group));
        self.bus_free = done;
        let bank = &mut self.banks[flat];
        bank.next_read = read_cycle + t.t_ccd_l;
        // READ→PRE spacing folded into tRAS tracking (next_pre set at ACT);
        // writes additionally respect the write-recovery window.
        let recovery = match req.kind {
            RequestKind::Read => t.t_bl,
            RequestKind::Write => t.t_cwl + t.t_bl + t.t_wr,
        };
        bank.next_pre = bank.next_pre.max(read_cycle + recovery);

        match hit_kind {
            0 => stats.row_hits += 1,
            1 => stats.row_misses += 1,
            _ => stats.row_empty += 1,
        }
        stats.reads += 1;
        stats.latency_sum += done - req.arrival.min(done);
        done
    }

    fn record_act(&mut self, flat: usize, group: usize, row: u64, act: u64) {
        let t = self.cfg.timing;
        let bank = &mut self.banks[flat];
        bank.open_row = Some(row);
        bank.next_act = act + t.t_rc;
        bank.next_read = act + t.t_rcd;
        bank.next_pre = act + t.t_ras();
        self.last_act_group[group] = Some(act);
        self.last_act_rank = Some(act);
        self.act_history.push_back(act);
        if self.act_history.len() > 4 {
            self.act_history.pop_front();
        }
    }

    /// Runs a request trace through the rank with FR-FCFS scheduling and
    /// returns aggregate statistics. The simulator keeps the configured
    /// reorder window of outstanding requests; within the window, row hits
    /// are served before misses (first-ready), ties broken by age (FCFS).
    pub fn run(&mut self, requests: &[Request]) -> DramStats {
        let mut stats = DramStats::default();
        let mut window: VecDeque<Request> = VecDeque::new();
        let mut next = 0usize;
        let mut last_done = 0u64;

        while next < requests.len() || !window.is_empty() {
            while window.len() < self.cfg.window && next < requests.len() {
                window.push_back(requests[next]);
                next += 1;
            }
            // FR-FCFS pick: oldest row hit, else oldest.
            let mut pick = 0usize;
            let mut picked_hit = false;
            for (i, req) in window.iter().enumerate() {
                let (hit, _) = self.estimate(req);
                if hit {
                    pick = i;
                    picked_hit = true;
                    break;
                }
            }
            if !picked_hit {
                pick = 0;
            }
            let req = window.remove(pick).expect("window nonempty");
            let done = self.execute(&req, &mut stats);
            last_done = last_done.max(done);
            // Advance time to when the command stream can accept more work;
            // issuing back-to-back is allowed, so only move `now` forward
            // modestly (the data bus constraint serializes reads anyway).
            self.now = self.now.max(req.arrival);
        }
        stats.total_cycles = last_done;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> RankSim {
        RankSim::new(DramConfig::ddr4_2400())
    }

    #[test]
    fn sequential_reads_mostly_hit() {
        let mut s = sim();
        // 256 sequential lines: after each bank's first access, subsequent
        // same-row accesses hit.
        let reqs: Vec<Request> = (0..256u64).map(|i| Request::read(i * 64)).collect();
        let stats = s.run(&reqs);
        assert_eq!(stats.reads, 256);
        assert!(
            stats.row_hit_rate() > 0.8,
            "hit rate {}",
            stats.row_hit_rate()
        );
    }

    #[test]
    fn random_rows_mostly_miss() {
        let mut s = sim();
        let cfg = DramConfig::ddr4_2400();
        // Stride of one full row stripe: every access opens a new row in
        // the same bank.
        let stride = (cfg.banks() * (cfg.row_bytes / cfg.access_bytes) * cfg.access_bytes) as u64;
        let reqs: Vec<Request> = (0..64u64).map(|i| Request::read(i * stride)).collect();
        let stats = s.run(&reqs);
        assert_eq!(stats.row_hits, 0, "row-stride trace cannot hit");
        assert_eq!(stats.row_misses + stats.row_empty, 64);
    }

    #[test]
    fn hits_are_faster_than_misses() {
        let cfg = DramConfig::ddr4_2400();
        let stride = (cfg.banks() * (cfg.row_bytes / cfg.access_bytes) * cfg.access_bytes) as u64;
        let hits = sim().run(
            &(0..256u64)
                .map(|i| Request::read(i % 4 * 64))
                .collect::<Vec<_>>(),
        );
        let misses = sim().run(
            &(0..256u64)
                .map(|i| Request::read(i * stride))
                .collect::<Vec<_>>(),
        );
        assert!(
            hits.total_cycles < misses.total_cycles,
            "hits {} !< misses {}",
            hits.total_cycles,
            misses.total_cycles
        );
        assert!(hits.avg_latency() < misses.avg_latency());
    }

    #[test]
    fn bandwidth_bounded_by_peak() {
        let cfg = DramConfig::ddr4_2400();
        let reqs: Vec<Request> = (0..4096u64).map(|i| Request::read(i * 64)).collect();
        let stats = sim().run(&reqs);
        let bw = stats.bandwidth_gbps(cfg.access_bytes, cfg.clock_mhz);
        assert!(
            bw <= cfg.peak_bandwidth_gbps() + 0.1,
            "bw {bw} exceeds peak"
        );
        assert!(
            bw > 0.5 * cfg.peak_bandwidth_gbps(),
            "sequential bw {bw} too low"
        );
    }

    #[test]
    fn single_access_latency_matches_timing() {
        let mut s = sim();
        let stats = s.run(&[Request::read(0)]);
        let t = DramTimingProbe::table3();
        // Closed bank: ACT@0 → READ@tRCD → data done at tRCD+tCL+tBL.
        assert_eq!(stats.total_cycles, t.rcd + t.cl + t.bl);
    }

    struct DramTimingProbe {
        rcd: u64,
        cl: u64,
        bl: u64,
    }
    impl DramTimingProbe {
        fn table3() -> Self {
            let t = crate::DramTiming::table3();
            DramTimingProbe {
                rcd: t.t_rcd,
                cl: t.t_cl,
                bl: t.t_bl,
            }
        }
    }

    #[test]
    fn frfcfs_prefers_hits() {
        // Interleave two streams: row-hit stream on bank 0 and a row-miss
        // stream on the same bank. FR-FCFS should finish faster than strict
        // FIFO would (we verify hits get counted despite interleaving).
        let cfg = DramConfig::ddr4_2400();
        let stride = (cfg.banks() * (cfg.row_bytes / cfg.access_bytes) * cfg.access_bytes) as u64;
        let mut reqs = Vec::new();
        for i in 0..32u64 {
            reqs.push(Request::read(i % 2 * 64)); // same row, hits
            reqs.push(Request::read((i + 2) * stride)); // conflicting rows
        }
        let stats = RankSim::new(cfg).run(&reqs);
        assert!(
            stats.row_hits >= 20,
            "FR-FCFS should preserve hits: {stats:?}"
        );
    }

    #[test]
    fn deterministic() {
        let reqs: Vec<Request> = (0..128u64).map(|i| Request::read(i * 7919 * 64)).collect();
        let a = sim().run(&reqs);
        let b = sim().run(&reqs);
        assert_eq!(a, b);
    }

    #[test]
    fn arrival_times_respected() {
        let mut s = sim();
        let stats = s.run(&[Request::read_at(0, 1000)]);
        assert!(stats.total_cycles >= 1000);
    }
}

#[cfg(test)]
mod refresh_write_tests {
    use super::*;

    #[test]
    fn refreshes_occur_on_long_traces() {
        let cfg = DramConfig::ddr4_2400();
        let mut sim = RankSim::new(cfg);
        // Enough sequential reads to run well past several tREFI windows.
        let reqs: Vec<Request> = (0..8192u64).map(|i| Request::read(i * 64)).collect();
        let stats = sim.run(&reqs);
        assert!(
            sim.refreshes() >= 2,
            "expected refreshes on a {}-cycle trace",
            stats.total_cycles
        );
    }

    #[test]
    fn refresh_adds_latency() {
        let base = DramConfig::ddr4_2400();
        let mut no_refresh = base;
        no_refresh.timing.t_refi = u64::MAX;
        let reqs: Vec<Request> = (0..8192u64).map(|i| Request::read(i * 64)).collect();
        let with = RankSim::new(base).run(&reqs);
        let without = RankSim::new(no_refresh).run(&reqs);
        assert!(with.total_cycles > without.total_cycles);
        // Refresh overhead is bounded (~tRFC/tREFI ≈ 4.5%).
        let overhead = with.total_cycles as f64 / without.total_cycles as f64;
        assert!(overhead < 1.10, "overhead {overhead}");
    }

    #[test]
    fn writes_complete_and_block_precharge_longer() {
        let cfg = DramConfig::ddr4_2400();
        let stride = (cfg.banks() * (cfg.row_bytes / cfg.access_bytes) * cfg.access_bytes) as u64;
        // Write then read a conflicting row in the same bank: the write
        // recovery window delays the precharge.
        let rw = RankSim::new(cfg).run(&[Request::write(0), Request::read(stride)]);
        let rr = RankSim::new(cfg).run(&[Request::read(0), Request::read(stride)]);
        assert_eq!(rw.reads, 2);
        assert!(
            rw.total_cycles > rr.total_cycles,
            "write recovery must cost cycles"
        );
    }

    #[test]
    fn sequential_writes_stream() {
        let cfg = DramConfig::ddr4_2400();
        let reqs: Vec<Request> = (0..256u64).map(|i| Request::write(i * 64)).collect();
        let stats = RankSim::new(cfg).run(&reqs);
        assert_eq!(stats.reads, 256);
        assert!(stats.row_hit_rate() > 0.8);
    }
}
