//! Physical-address decomposition for the rank simulator.
//!
//! Addresses are byte addresses within one rank's capacity. The interleave
//! order is `row : bank : bank-group : column : offset` (bank-group bits
//! lowest among the bank bits so that consecutive lines rotate across bank
//! groups — the standard BG-interleaved mapping that lets back-to-back
//! reads use the shorter `tCCD_S`).

use crate::DramConfig;
use serde::{Deserialize, Serialize};

/// A decoded rank-local address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecodedAddr {
    /// Bank group index.
    pub group: usize,
    /// Bank index within the group.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line) index within the row.
    pub column: usize,
}

impl DecodedAddr {
    /// Flat bank identifier (`group * banks_per_group + bank`).
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        self.group * cfg.banks_per_group + self.bank
    }
}

/// Maps byte addresses to (group, bank, row, column).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AddressMapping {
    cfg: DramConfig,
}

impl AddressMapping {
    /// Creates the mapping for a configuration.
    pub fn new(cfg: DramConfig) -> Self {
        AddressMapping { cfg }
    }

    /// Decodes a byte address.
    pub fn decode(&self, addr: u64) -> DecodedAddr {
        let line = addr / self.cfg.access_bytes as u64;
        let lines_per_row = (self.cfg.row_bytes / self.cfg.access_bytes) as u64;
        let group = (line % self.cfg.bank_groups as u64) as usize;
        let line = line / self.cfg.bank_groups as u64;
        let bank = (line % self.cfg.banks_per_group as u64) as usize;
        let line = line / self.cfg.banks_per_group as u64;
        let column = (line % lines_per_row) as usize;
        let row = line / lines_per_row;
        DecodedAddr {
            group,
            bank,
            row,
            column,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(DramConfig::ddr4_2400())
    }

    #[test]
    fn consecutive_lines_rotate_groups() {
        let m = mapping();
        let a = m.decode(0);
        let b = m.decode(64);
        let c = m.decode(128);
        assert_eq!(a.group, 0);
        assert_eq!(b.group, 1);
        assert_eq!(c.group, 2);
    }

    #[test]
    fn same_line_same_decode() {
        let m = mapping();
        assert_eq!(m.decode(100), m.decode(64)); // both in line 1
    }

    #[test]
    fn row_changes_after_full_stripe() {
        let m = mapping();
        let cfg = DramConfig::ddr4_2400();
        // One full row across all banks: 16 banks × 128 lines/row × 64 B.
        let stride = (cfg.banks() * (cfg.row_bytes / cfg.access_bytes) * cfg.access_bytes) as u64;
        let a = m.decode(0);
        let b = m.decode(stride);
        assert_eq!(a.group, b.group);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.row, a.row + 1);
    }

    #[test]
    fn flat_bank_unique() {
        let cfg = DramConfig::ddr4_2400();
        let m = mapping();
        let mut seen = std::collections::HashSet::new();
        for i in 0..cfg.banks() as u64 {
            let d = m.decode(i * 64);
            assert!(seen.insert(d.flat_bank(&cfg)));
        }
    }
}
