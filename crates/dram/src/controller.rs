//! Channel-level memory controller: the full Table 3 hierarchy
//! (4 channels × 2 DIMMs × 2 ranks).
//!
//! The Rank-NMP modules never need this view — their whole point is to
//! stay below it — but the *CPU baseline* does: host LPN gathers traverse
//! the controller, where channel count bounds aggregate bandwidth. This
//! module interleaves a request stream across channels and reports the
//! aggregate, quantifying the gap between external (4-channel) and
//! internal (16-rank) bandwidth that motivates NMP.

use crate::dimm::DimmSim;
use crate::rank::Request;
use crate::DramConfig;
use serde::{Deserialize, Serialize};

/// System geometry above the rank level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemGeometry {
    /// Independent memory channels.
    pub channels: usize,
    /// DIMMs per channel.
    pub dimms_per_channel: usize,
}

impl SystemGeometry {
    /// The paper's system: 4 channels × 2 DIMMs (× 2 ranks each).
    pub const TABLE3: SystemGeometry = SystemGeometry {
        channels: 4,
        dimms_per_channel: 2,
    };

    /// Total ranks in the system.
    pub fn ranks(&self) -> usize {
        self.channels * self.dimms_per_channel * 2
    }
}

/// Aggregate result of a controller-level run.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Completion cycle of the slowest channel.
    pub total_cycles: u64,
    /// Reads served.
    pub reads: u64,
    /// Aggregate sustained bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Per-channel completion cycles.
    pub channel_cycles: [u64; 8],
}

/// The host-side memory controller.
#[derive(Clone, Copy, Debug)]
pub struct MemoryController {
    cfg: DramConfig,
    geometry: SystemGeometry,
}

impl MemoryController {
    /// Creates the controller for a geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry exceeds 8 channels (fixed report width).
    pub fn new(cfg: DramConfig, geometry: SystemGeometry) -> Self {
        assert!(geometry.channels <= 8, "at most 8 channels supported");
        MemoryController { cfg, geometry }
    }

    /// The paper's configuration.
    pub fn table3() -> Self {
        MemoryController::new(DramConfig::ddr4_2400(), SystemGeometry::TABLE3)
    }

    /// Runs a request stream, line-interleaved across channels (the
    /// standard XOR-free channel hash: consecutive lines rotate channels),
    /// each channel serving its share through a shared-bus [`DimmSim`].
    pub fn run(&self, requests: &[Request]) -> ControllerStats {
        let ch_count = self.geometry.channels;
        let mut per_channel: Vec<Vec<Request>> = vec![Vec::new(); ch_count];
        for req in requests {
            let line = req.addr / self.cfg.access_bytes as u64;
            let ch = (line % ch_count as u64) as usize;
            per_channel[ch].push(Request {
                addr: req.addr / ch_count as u64,
                ..*req
            });
        }
        let mut channel_cycles = [0u64; 8];
        let mut total = 0u64;
        let mut reads = 0u64;
        for (ch, reqs) in per_channel.iter().enumerate() {
            let stats = DimmSim::new(self.cfg).run(reqs);
            // One DIMM active per channel in this model; the host sees the
            // shared-bus discipline.
            channel_cycles[ch] = stats.shared_bus_cycles;
            total = total.max(stats.shared_bus_cycles);
            reads += stats.rank0.reads + stats.rank1.reads;
        }
        let seconds = total as f64 / (self.cfg.clock_mhz * 1e6);
        let bandwidth_gbps = if total == 0 {
            0.0
        } else {
            reads as f64 * self.cfg.access_bytes as f64 / seconds / 1e9
        };
        ControllerStats {
            total_cycles: total,
            reads,
            bandwidth_gbps,
            channel_cycles,
        }
    }

    /// The external-vs-internal bandwidth ratio for a request stream: how
    /// much aggregate bandwidth rank-level NMP exposes beyond what the
    /// host controller can extract from the same devices.
    pub fn nmp_bandwidth_advantage(&self, requests: &[Request]) -> f64 {
        let host = self.run(requests);
        // Internal view: every rank serves its own share locally.
        let ranks = self.geometry.ranks();
        let mut per_rank: Vec<Vec<Request>> = vec![Vec::new(); ranks];
        for req in requests {
            let line = req.addr / self.cfg.access_bytes as u64;
            let r = (line % ranks as u64) as usize;
            per_rank[r].push(Request {
                addr: req.addr / ranks as u64,
                ..*req
            });
        }
        let internal_cycles = per_rank
            .iter()
            .map(|reqs| crate::RankSim::new(self.cfg).run(reqs).total_cycles)
            .max()
            .unwrap_or(0);
        if internal_cycles == 0 {
            return 1.0;
        }
        host.total_cycles as f64 / internal_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> Vec<Request> {
        (0..n).map(|i| Request::read(i * 64)).collect()
    }

    #[test]
    fn geometry_totals() {
        assert_eq!(SystemGeometry::TABLE3.ranks(), 16);
    }

    #[test]
    fn all_requests_served() {
        let mc = MemoryController::table3();
        let s = mc.run(&stream(1024));
        assert_eq!(s.reads, 1024);
    }

    #[test]
    fn channels_balance_interleaved_stream() {
        let mc = MemoryController::table3();
        let s = mc.run(&stream(4096));
        let active: Vec<u64> = s
            .channel_cycles
            .iter()
            .copied()
            .filter(|&c| c > 0)
            .collect();
        assert_eq!(active.len(), 4);
        let max = *active.iter().max().unwrap() as f64;
        let min = *active.iter().min().unwrap() as f64;
        assert!(max / min < 1.2, "imbalance {max}/{min}");
    }

    #[test]
    fn aggregate_bandwidth_scales_with_channels() {
        // 4 channels must beat 1 channel on the same stream.
        let cfg = DramConfig::ddr4_2400();
        let four = MemoryController::new(
            cfg,
            SystemGeometry {
                channels: 4,
                dimms_per_channel: 2,
            },
        );
        let one = MemoryController::new(
            cfg,
            SystemGeometry {
                channels: 1,
                dimms_per_channel: 2,
            },
        );
        let reqs = stream(4096);
        assert!(four.run(&reqs).total_cycles < one.run(&reqs).total_cycles);
    }

    #[test]
    fn nmp_bandwidth_advantage_is_real() {
        // 16 ranks computing locally vs 4 external channels: the §5.1
        // argument. For a balanced stream the advantage approaches
        // ranks/channels × shared-bus overheads.
        let mc = MemoryController::table3();
        let adv = mc.nmp_bandwidth_advantage(&stream(8192));
        assert!(adv > 2.0, "advantage {adv}");
        assert!(adv < 16.0, "advantage {adv} implausibly high");
    }

    #[test]
    fn bandwidth_bounded_by_system_peak() {
        let mc = MemoryController::table3();
        let s = mc.run(&stream(16384));
        let peak = 4.0 * 19.2; // 4 channels × per-channel DDR4-2400 peak
        assert!(
            s.bandwidth_gbps <= peak + 0.5,
            "bw {} vs peak {peak}",
            s.bandwidth_gbps
        );
    }
}
