//! Session-level properties of the cache-blocked extension path: a
//! [`CotSession`] running the recommended (tiled + packed-bit) kernels
//! still satisfies the Δ-correlation invariant on every staged batch,
//! and its output stream is bit-identical to the naive-kernel session
//! with the same seed.

use ironman_ot::ferret::{FerretConfig, LpnKernel};
use ironman_ot::params::FerretParams;
use ironman_ot::session::CotSession;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random session seeds: the tiled+packed session's staged batches
    /// all verify `z = y ⊕ x·Δ`, and match the naive-kernel session
    /// bit for bit (the kernels only reorder XOR accumulation).
    #[test]
    fn tiled_session_correlates_and_matches_naive(seed in any::<u64>()) {
        let naive_cfg = FerretConfig::new(FerretParams::toy());
        let tiled_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            ..naive_cfg.clone()
        };
        let naive = CotSession::spawn(&naive_cfg, seed, 1);
        let tiled = CotSession::spawn(&tiled_cfg, seed, 1);
        prop_assert_eq!(naive.delta(), tiled.delta());
        let delta = tiled.delta();
        for _ in 0..2 {
            let a = naive.recv().expect("naive session alive");
            let b = tiled.recv().expect("tiled session alive");
            prop_assert_eq!(&a.z, &b.z);
            prop_assert_eq!(&a.x, &b.x);
            prop_assert_eq!(&a.y, &b.y);
            for i in 0..b.len() {
                prop_assert_eq!(b.z[i], b.y[i] ^ delta.and_bit(b.x[i]), "COT {}", i);
            }
        }
    }
}
