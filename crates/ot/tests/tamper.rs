//! Failure injection: protocols built on these channels must not silently
//! accept corrupted or truncated transcripts — corruption must surface as
//! a framing error or a violated output correlation.

use ironman_ot::channel::{ChannelError, LocalChannel, Transport};
use ironman_ot::cot::verify_correlation;
use ironman_ot::dealer::Dealer;
use ironman_ot::ferret::{run_extension, FerretConfig};
use ironman_ot::params::FerretParams;
use ironman_ot::spcot::{spcot_recv, spcot_send, verify_spcot, SpcotConfig};
use ironman_prg::Block;

/// A transport that corrupts message number `target` (counting sent
/// messages). Every 16-byte block of the payload is flipped: corrupting a
/// *single* OT message half would be undetectable whenever the receiver's
/// choice discards that half — which is exactly OT privacy, not a bug.
struct Tamper {
    inner: LocalChannel,
    sent: usize,
    target: usize,
}

impl Transport for Tamper {
    fn send_bytes(&mut self, mut bytes: Vec<u8>) -> Result<(), ChannelError> {
        if self.sent == self.target && !bytes.is_empty() {
            for chunk_start in (0..bytes.len()).step_by(16) {
                bytes[chunk_start] ^= 0x80;
            }
        }
        self.sent += 1;
        self.inner.send_bytes(bytes)
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, ChannelError> {
        self.inner.recv_bytes()
    }

    fn stats(&self) -> ironman_ot::channel::ChannelStats {
        self.inner.stats()
    }
}

fn run_tampered_spcot(target: usize) -> Result<(), usize> {
    let cfg = SpcotConfig::ironman(256, Block::from(5u128));
    let mut dealer = Dealer::new(3);
    let delta = dealer.random_delta();
    let (mut sb, mut rb) = dealer.deal_cot(delta, cfg.base_cots_needed());
    let seed = dealer.random_block();

    let (a, b) = LocalChannel::pair();
    let mut sender_ch = Tamper {
        inner: a,
        sent: 0,
        target,
    };
    let mut receiver_ch = b;
    let (s_out, r_out) = std::thread::scope(|scope| {
        let s = scope.spawn(move || {
            let mut tweak = 0;
            spcot_send(&mut sender_ch, &cfg, &mut sb, seed, &mut tweak).unwrap()
        });
        let r = scope.spawn(move || {
            let mut tweak = 0;
            spcot_recv(&mut receiver_ch, &cfg, &mut rb, 77, &mut tweak).unwrap()
        });
        (s.join().unwrap(), r.join().unwrap())
    });
    verify_spcot(delta, &s_out, &r_out)
}

#[test]
fn corrupting_any_sender_message_breaks_the_correlation() {
    // Whatever sender message is corrupted — an OT payload, a masked
    // message batch, or the final masked leaf sum — the output COT
    // correlation must fail verification (never silently pass).
    for target in 0..6 {
        assert!(
            run_tampered_spcot(target).is_err(),
            "tampering with sender message {target} went undetected"
        );
    }
}

#[test]
fn untampered_control_case_passes() {
    // Sanity: the same harness with an out-of-range target is clean.
    assert!(run_tampered_spcot(usize::MAX).is_ok());
}

#[test]
fn truncated_block_message_is_a_framing_error() {
    let (mut a, mut b) = LocalChannel::pair();
    a.send_bytes(vec![0u8; 15]).unwrap(); // one byte short of a block
    assert!(matches!(
        b.recv_block(),
        Err(ChannelError::Malformed { .. })
    ));
}

#[test]
fn truncated_bit_vector_is_a_framing_error() {
    let (mut a, mut b) = LocalChannel::pair();
    // Claim 100 bits but ship only one payload byte.
    let mut bytes = 100u64.to_le_bytes().to_vec();
    bytes.push(0xFF);
    a.send_bytes(bytes).unwrap();
    assert!(matches!(b.recv_bits(), Err(ChannelError::Malformed { .. })));
}

#[test]
fn dealer_base_corruption_is_caught_by_verification() {
    let mut dealer = Dealer::new(8);
    let delta = dealer.random_delta();
    let (s, mut r) = dealer.deal_cot(delta, 64);
    // Flip one receiver block: exactly one index must be reported.
    let mut rb = r.rb().to_vec();
    rb[17] ^= Block::from(2u128);
    r = ironman_ot::cot::CotReceiver::new(r.bits().to_vec(), rb);
    assert_eq!(verify_correlation(&s, &r).unwrap_err().index, 17);
}

#[test]
fn extension_outputs_are_never_trivially_structured() {
    // Weak-randomness smoke test on the real pipeline: no duplicate z
    // blocks, no all-zero blocks, in a full extension.
    let out = run_extension(&FerretConfig::new(FerretParams::toy()), 21);
    let mut seen = std::collections::HashSet::new();
    for &z in &out.z {
        assert_ne!(z, Block::ZERO);
        assert!(seen.insert(z), "duplicate output block");
    }
}
