//! The Ferret-style PCG OT-extension main loop (paper §2.3, Fig. 3a).
//!
//! One extension turns `k + t·log2(ℓ)` base COT correlations into `n` fresh
//! correlations:
//!
//! 1. **SPCOT phase** — `t` GGM trees are built and punctured interactively
//!    ([`crate::spcot`]); tree `i` contributes a one-hot stripe of the
//!    length-`n` noise vector `u` and the corresponding `w`/`v` blocks.
//! 2. **LPN phase** — both parties locally encode their pre-generated
//!    vectors through the fixed sparse matrix `A` and XOR onto the SPCOT
//!    outputs: sender `z = r·A ⊕ w`; receiver `x = e·A ⊕ u`,
//!    `y = s·A ⊕ v`. The result is `n` COTs with `z = y ⊕ x·Δ`.
//! 3. **Bootstrap** — the first `k + t·log2(ℓ)` outputs are retained as the
//!    next iteration's base correlations; the rest are handed to the
//!    application.
//!
//! Both the plain and the locality-sorted LPN matrices are supported; they
//! produce bit-identical outputs (§5.3's correctness argument is checked in
//! the tests).

use crate::channel::{ChannelError, ChannelStats, Transport};
use crate::cot::{CotReceiver, CotSender};
use crate::dealer::Dealer;
use crate::params::FerretParams;
use crate::spcot::{spcot_recv, spcot_send, SpcotConfig};
use crate::spcot_batch::{spcot_batch_recv_into, spcot_batch_send_into};
use ironman_ggm::Arity;
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{encoder, LpnMatrix, PackedBits, SortedLpnMatrix, DEFAULT_ROW_WEIGHT};
use ironman_prg::{Block, PrgCounter, PrgKind};
use serde::{Deserialize, Serialize};

/// Which LPN kernel family the extension's online encode runs — the
/// traversals of `ironman_lpn` over the same matrix, bit-identical in
/// output and interchangeable per party (the choice never touches the
/// wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpnKernel {
    /// Row-major gathers, separate passes per output vector — the CPU
    /// baseline shape of Fig. 1(c).
    Naive,
    /// Cache-blocked (tile-major) gathers from the matrix's precomputed
    /// [`ironman_lpn::TileSchedule`]; the receiver's two halves run as
    /// one fused pass ([`encoder::CotPairLane`]). The software twin of
    /// the paper's memory-side cache (§5.3).
    Tiled,
}

/// Full configuration of a Ferret session (must be identical on both
/// parties: it pins the LPN matrix, tree shape and PRG).
#[derive(Clone, Debug)]
pub struct FerretConfig {
    /// Table 4 parameter set.
    pub params: FerretParams,
    /// GGM tree arity.
    pub arity: Arity,
    /// PRG kind for tree expansion.
    pub prg: PrgKind,
    /// Session key (drives all PRG keys).
    pub session_key: Block,
    /// Seed of the fixed LPN matrix.
    pub lpn_seed: Block,
    /// Row weight `d` of the LPN matrix (the paper uses 10).
    pub row_weight: usize,
    /// Optional compile-time index sorting (§5.3). `None` = plain CSR.
    pub sort: Option<SortConfig>,
    /// LPN kernel family for the online encode (output-identical; see
    /// [`LpnKernel`]).
    pub kernel: LpnKernel,
    /// Level-batched SPCOT (one message per GGM level across all `t`
    /// trees, as production Ferret implementations do) instead of one
    /// conversation per tree. Outputs are identical either way.
    pub batched_spcot: bool,
}

impl FerretConfig {
    /// Ironman defaults (4-ary ChaCha8 trees, unsorted matrix) for a
    /// parameter set.
    pub fn new(params: FerretParams) -> Self {
        FerretConfig {
            params,
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            session_key: Block::from(0x1203_4567u128),
            lpn_seed: Block::from(0x004c_504e_u128),
            row_weight: DEFAULT_ROW_WEIGHT,
            sort: None,
            kernel: LpnKernel::Naive,
            batched_spcot: true,
        }
    }

    /// The fastest known (matrix kind × kernel) combination for `params`
    /// on the reference single-core box, per the checked-in
    /// `BENCH_extension.json` kernel head-to-head:
    ///
    /// * the **tiled** kernels win decisively (≥1.5× the naive composite
    ///   at the 2^20 row) once the LPN block input `k · 16 B` spills the
    ///   L2-class window — every Table-4 row qualifies;
    /// * at toy scale the whole input is cache-resident and the two
    ///   kernels tie, so the naive encoder keeps its simpler code path;
    /// * the §5.3 **sorted** matrix never wins in software — its
    ///   look-ahead order targets the NMP memory-side cache, and on a CPU
    ///   the row scatter it adds costs more than the locality it buys
    ///   (`blocks_sorted` measures ~0.5× naive) — so the unsorted matrix
    ///   is recommended for every set.
    ///
    /// Serving-path constructors (`CotSession`-backed pools, the bench
    /// and example binaries) build their configs through this.
    pub fn recommended(params: FerretParams) -> Self {
        /// Block-input bytes above which the tiled kernels win (the
        /// L2-class boundary between the toy and Table-4 regimes on the
        /// bench table; the exact crossover is far from both).
        const TILED_INPUT_BYTES: usize = 1 << 20;
        let kernel = if params.k * Block::BYTES >= TILED_INPUT_BYTES {
            LpnKernel::Tiled
        } else {
            LpnKernel::Naive
        };
        FerretConfig {
            kernel,
            ..FerretConfig::new(params)
        }
    }

    /// The CPU-baseline configuration (binary AES trees), as profiled in
    /// Fig. 1(b).
    pub fn ferret_baseline(params: FerretParams) -> Self {
        FerretConfig {
            arity: Arity::BINARY,
            prg: PrgKind::Aes,
            ..FerretConfig::new(params)
        }
    }

    /// Base COTs each party must hold before an extension:
    /// `k` LPN inputs + `t · log2(ℓ)` SPCOT consumptions.
    pub fn base_cots_required(&self) -> usize {
        self.params.k + self.params.t * self.params.leaves.trailing_zeros() as usize
    }

    /// Outputs available to the application per extension.
    pub fn usable_outputs(&self) -> usize {
        self.params.n - self.base_cots_required()
    }

    fn spcot_config(&self) -> SpcotConfig {
        SpcotConfig {
            arity: self.arity,
            prg: self.prg,
            leaves: self.params.leaves,
            session_key: self.session_key,
        }
    }

    fn build_matrix(&self) -> MatrixKind {
        let plain =
            LpnMatrix::generate(self.params.n, self.params.k, self.row_weight, self.lpn_seed);
        let kind = match self.sort {
            Some(cfg) => {
                MatrixKind::Sorted(Box::new(SortedLpnMatrix::sort(&plain, cfg)), self.kernel)
            }
            None => MatrixKind::Plain(plain, self.kernel),
        };
        if self.kernel == LpnKernel::Tiled {
            // Build the tile schedule now (offline, cached on the
            // matrix) so no extension pays for it on the hot path.
            match &kind {
                MatrixKind::Plain(m, _) => {
                    m.tile_schedule();
                }
                MatrixKind::Sorted(s, _) => {
                    s.tile_schedule();
                }
            }
        }
        kind
    }
}

/// The session's fixed matrix plus the kernel family that traverses it.
/// Every combination produces bit-identical outputs; only the memory
/// access order differs.
#[derive(Clone, Debug)]
enum MatrixKind {
    Plain(LpnMatrix, LpnKernel),
    Sorted(Box<SortedLpnMatrix>, LpnKernel),
}

impl MatrixKind {
    fn encode_blocks(&self, input: &[Block], acc: &mut [Block]) {
        match self {
            MatrixKind::Plain(m, LpnKernel::Naive) => encoder::encode_blocks(m, input, acc),
            MatrixKind::Plain(m, LpnKernel::Tiled) => m.tile_schedule().encode_blocks(input, acc),
            MatrixKind::Sorted(s, LpnKernel::Naive) => s.encode_blocks(input, acc),
            MatrixKind::Sorted(s, LpnKernel::Tiled) => s.encode_blocks_tiled(input, acc),
        }
    }

    /// The receiver's online encode: `x ^= e·A` (packed bits) and
    /// `y ^= s·A` (blocks). The tiled kernels run both halves as one
    /// fused pass over the index stream; the naive kernels run the
    /// legacy separate row-major passes.
    fn encode_receiver(&self, e: &PackedBits, s: &[Block], x: &mut PackedBits, y: &mut [Block]) {
        match self {
            MatrixKind::Plain(m, LpnKernel::Naive) => {
                encoder::encode_bits_packed(m, e, x);
                encoder::encode_blocks(m, s, y);
            }
            MatrixKind::Plain(m, LpnKernel::Tiled) => {
                m.tile_schedule().encode_cot_pair(s, e, y, x);
            }
            MatrixKind::Sorted(srt, LpnKernel::Naive) => {
                srt.encode_bits_packed(e, x);
                srt.encode_blocks(s, y);
            }
            MatrixKind::Sorted(srt, LpnKernel::Tiled) => {
                srt.encode_cot_pair_tiled(s, e, y, x);
            }
        }
    }
}

/// The sender's long-lived extension state.
#[derive(Debug)]
pub struct FerretSender {
    cfg: FerretConfig,
    base: CotSender,
    matrix: MatrixKind,
    seeds: Dealer,
    tweak: u64,
    prg_counter: PrgCounter,
}

impl FerretSender {
    /// Creates the sender from its base correlations.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != cfg.base_cots_required()`.
    pub fn new(cfg: FerretConfig, base: CotSender, seed: u64) -> Self {
        assert_eq!(
            base.len(),
            cfg.base_cots_required(),
            "sender base must hold exactly k + t*log2(l) correlations"
        );
        let matrix = cfg.build_matrix();
        FerretSender {
            cfg,
            base,
            matrix,
            seeds: Dealer::new(seed ^ 0x5e4d),
            tweak: 0,
            prg_counter: PrgCounter::new(),
        }
    }

    /// The global correlation offset.
    pub fn delta(&self) -> Block {
        self.base.delta()
    }

    /// PRG calls consumed so far (all extensions).
    pub fn prg_counter(&self) -> PrgCounter {
        self.prg_counter
    }

    /// Runs one extension, returning the application's `n − k − t·log2(ℓ)`
    /// fresh `r0` blocks (new correlations under the same `Δ`).
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    pub fn extend<T: Transport + ?Sized>(
        &mut self,
        ch: &mut T,
    ) -> Result<Vec<Block>, ChannelError> {
        let p = self.cfg.params;
        let spcot_cfg = self.cfg.spcot_config();
        let spcot_budget = p.t * p.leaves.trailing_zeros() as usize;
        let mut spcot_base = self.base.split_off_front(spcot_budget);
        // What remains in self.base are the k LPN inputs, borrowed
        // directly at encode time (no staging copy).
        debug_assert_eq!(self.base.len(), p.k);

        // SPCOT phase: t trees, stripes assigned round-robin; each
        // tree's leaves accumulate straight into the LPN accumulator
        // stripe (no per-tree leaf vectors on the batched path).
        let stripes = p.stripes();
        let mut w_full = vec![Block::ZERO; p.n];
        if self.cfg.batched_spcot {
            let seeds: Vec<Block> = (0..p.t).map(|_| self.seeds.random_block()).collect();
            let prg_counter = &mut self.prg_counter;
            spcot_batch_send_into(
                ch,
                &spcot_cfg,
                &mut spcot_base,
                &seeds,
                &mut self.tweak,
                |i, leaves, counter| {
                    *prg_counter += counter;
                    let start = (i % stripes) * p.leaves;
                    let width = p.leaves.min(p.n - start);
                    Block::xor_into(&mut w_full[start..start + width], &leaves[..width]);
                },
            )?;
        } else {
            for i in 0..p.t {
                let seed = self.seeds.random_block();
                let out = spcot_send(ch, &spcot_cfg, &mut spcot_base, seed, &mut self.tweak)?;
                self.prg_counter += out.counter;
                let start = (i % stripes) * p.leaves;
                let width = p.leaves.min(p.n - start);
                Block::xor_into(&mut w_full[start..start + width], &out.w[..width]);
            }
        }

        // LPN phase: z = r·A ⊕ w.
        let mut z = w_full;
        self.matrix.encode_blocks(self.base.r0(), &mut z);

        // Bootstrap: retain the front as next iteration's base.
        let required = self.cfg.base_cots_required();
        let output = z.split_off(required);
        self.base = CotSender::new(self.base.delta(), z);
        Ok(output)
    }
}

/// The receiver's long-lived extension state.
///
/// The bit half of the base correlations lives **packed**
/// ([`PackedBits`]) for the receiver's whole lifetime: the constructor
/// packs the dealt choice bits once, every extension's `x = e·A ⊕ u`
/// runs entirely on packed words, and bits are only unpacked at the
/// output boundary (the application's `Vec<bool>`) plus the few
/// `t·log2(ℓ)` bits the SPCOT layer consumes.
#[derive(Debug)]
pub struct FerretReceiver {
    cfg: FerretConfig,
    /// Choice bits of the base correlations (length `k + t·log2(ℓ)`).
    base_bits: PackedBits,
    /// Blocks of the base correlations (same length).
    base_rb: Vec<Block>,
    matrix: MatrixKind,
    alphas: Dealer,
    tweak: u64,
    prg_counter: PrgCounter,
    /// `(SPCOT, LPN)` nanoseconds of the most recent extension — the
    /// per-phase split the session trace surfaces (zeros under the
    /// telemetry `noop` feature, where the stopwatch never reads the
    /// clock).
    last_phase_nanos: (u64, u64),
}

impl FerretReceiver {
    /// Creates the receiver from its base correlations.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != cfg.base_cots_required()`.
    pub fn new(cfg: FerretConfig, base: CotReceiver, seed: u64) -> Self {
        assert_eq!(
            base.len(),
            cfg.base_cots_required(),
            "receiver base must hold exactly k + t*log2(l) correlations"
        );
        let matrix = cfg.build_matrix();
        let base_bits = PackedBits::from_bools(base.bits());
        let base_rb = base.rb().to_vec();
        FerretReceiver {
            cfg,
            base_bits,
            base_rb,
            matrix,
            alphas: Dealer::new(seed ^ 0xa1fa),
            tweak: 0,
            prg_counter: PrgCounter::new(),
            last_phase_nanos: (0, 0),
        }
    }

    /// PRG calls consumed so far (all extensions).
    pub fn prg_counter(&self) -> PrgCounter {
        self.prg_counter
    }

    /// `(SPCOT, LPN)` nanoseconds of the most recent
    /// [`FerretReceiver::extend`] — the phase split behind the paper's
    /// Fig. 1c-style latency breakdowns. Zeros before the first
    /// extension and under the telemetry `noop` feature.
    pub fn last_phase_nanos(&self) -> (u64, u64) {
        self.last_phase_nanos
    }

    /// Runs one extension, returning the application's fresh `(x, y)`
    /// correlations: `z = y ⊕ x·Δ` against the sender's output.
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    pub fn extend<T: Transport + ?Sized>(
        &mut self,
        ch: &mut T,
    ) -> Result<(Vec<bool>, Vec<Block>), ChannelError> {
        let p = self.cfg.params;
        let spcot_cfg = self.cfg.spcot_config();
        let spcot_budget = p.t * p.leaves.trailing_zeros() as usize;
        // SPCOT consumes the first `budget` base correlations (the only
        // bits unpacked this extension besides the output boundary);
        // the remaining k stay packed as the LPN input `e`.
        let mut spcot_bits = Vec::with_capacity(spcot_budget);
        self.base_bits
            .extend_bools(0, spcot_budget, &mut spcot_bits);
        let mut spcot_base = CotReceiver::new(spcot_bits, self.base_rb[..spcot_budget].to_vec());

        // SPCOT phase: the one-hot noise bits land directly in the
        // packed x accumulator and each tree's leaves XOR straight into
        // the y accumulator stripe (no per-tree vectors on the batched
        // path).
        let stripes = p.stripes();
        let spcot_watch = ironman_telemetry::Stopwatch::start();
        let mut x = PackedBits::zeros(p.n);
        let mut y = vec![Block::ZERO; p.n];
        let stripe_width = |i: usize| {
            let start = (i % stripes) * p.leaves;
            (start, p.leaves.min(p.n - start))
        };
        if self.cfg.batched_spcot {
            let alphas: Vec<usize> = (0..p.t)
                .map(|i| self.alphas.random_index(stripe_width(i).1))
                .collect();
            let prg_counter = &mut self.prg_counter;
            spcot_batch_recv_into(
                ch,
                &spcot_cfg,
                &mut spcot_base,
                &alphas,
                &mut self.tweak,
                |i, alpha, leaves, counter| {
                    *prg_counter += counter;
                    let (start, width) = stripe_width(i);
                    x.xor_bit(start + alpha, true);
                    Block::xor_into(&mut y[start..start + width], &leaves[..width]);
                },
            )?;
        } else {
            for i in 0..p.t {
                let (start, width) = stripe_width(i);
                let alpha = self.alphas.random_index(width);
                let out = spcot_recv(ch, &spcot_cfg, &mut spcot_base, alpha, &mut self.tweak)?;
                self.prg_counter += out.counter;
                x.xor_bit(start + out.alpha, true);
                Block::xor_into(&mut y[start..start + width], &out.v[..width]);
            }
        }

        let spcot_nanos = spcot_watch.elapsed_nanos();

        // LPN phase: x = e·A ⊕ u, y = s·A ⊕ v (one fused pass under the
        // tiled kernels).
        let lpn_watch = ironman_telemetry::Stopwatch::start();
        let e = self.base_bits.slice(spcot_budget, p.k);
        self.matrix
            .encode_receiver(&e, &self.base_rb[spcot_budget..], &mut x, &mut y);
        self.last_phase_nanos = (spcot_nanos, lpn_watch.elapsed_nanos());

        // Bootstrap: the front `k + t·log2(ℓ)` outputs become the next
        // iteration's base (bits stay packed); the rest unpack at the
        // application boundary.
        let required = self.cfg.base_cots_required();
        let out_y = y.split_off(required);
        let mut out_x = Vec::with_capacity(p.n - required);
        x.extend_bools(required, p.n - required, &mut out_x);
        self.base_bits = x.slice(0, required);
        self.base_rb = y;
        Ok((out_x, out_y))
    }
}

/// The result of [`run_extension`]: matched sender/receiver outputs plus
/// accounting, for tests and benches.
#[derive(Clone, Debug)]
pub struct FerretOutput {
    /// The global offset `Δ`.
    pub delta: Block,
    /// Sender outputs `z` (one per usable COT).
    pub z: Vec<Block>,
    /// Receiver choice bits `x`.
    pub x: Vec<bool>,
    /// Receiver blocks `y` with `z = y ⊕ x·Δ`.
    pub y: Vec<Block>,
    /// Sender communication stats.
    pub sender_stats: ChannelStats,
    /// Receiver communication stats.
    pub receiver_stats: ChannelStats,
    /// Sender PRG calls.
    pub sender_prg: PrgCounter,
    /// Receiver PRG calls.
    pub receiver_prg: PrgCounter,
}

impl FerretOutput {
    /// Checks `z = y ⊕ x·Δ` on every output correlation.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violation.
    pub fn verify(&self) -> Result<(), usize> {
        for i in 0..self.z.len() {
            if self.z[i] != self.y[i] ^ self.delta.and_bit(self.x[i]) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Number of usable output COTs.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the output batch is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// Convenience harness: deals fresh bases, runs one extension on two
/// threads, and returns the matched outputs.
pub fn run_extension(cfg: &FerretConfig, seed: u64) -> FerretOutput {
    run_extensions(cfg, seed, 1)
        .pop()
        .expect("one iteration requested")
}

/// Runs `iterations` consecutive extensions over one session (exercising
/// the bootstrap) and returns each iteration's outputs.
///
/// # Panics
///
/// Panics if `iterations == 0` or a protocol thread fails.
pub fn run_extensions(cfg: &FerretConfig, seed: u64, iterations: usize) -> Vec<FerretOutput> {
    let (cs, cr) = crate::channel::LocalChannel::pair();
    run_extensions_over(cfg, seed, iterations, cs, cr)
}

/// [`run_extensions`] over an arbitrary pre-connected transport pair (e.g.
/// `ironman-net`'s TCP loopback endpoints): deals fresh bases, runs the
/// two parties on their own threads across the given transports, and
/// returns each iteration's matched outputs with that transport's real
/// byte/round accounting.
///
/// # Panics
///
/// Panics if `iterations == 0` or a protocol thread fails.
pub fn run_extensions_over<TS, TR>(
    cfg: &FerretConfig,
    seed: u64,
    iterations: usize,
    sender_ch: TS,
    receiver_ch: TR,
) -> Vec<FerretOutput>
where
    TS: crate::channel::Transport + Send,
    TR: crate::channel::Transport + Send,
{
    assert!(iterations > 0, "need at least one iteration");
    let mut dealer = Dealer::new(seed);
    let delta = dealer.random_delta();
    let required = cfg.base_cots_required();
    let (s_base, r_base) = dealer.deal_cot(delta, required);
    let cfg_s = cfg.clone();
    let cfg_r = cfg.clone();

    let (sender_iters, receiver_iters, s_stats, r_stats) = crate::channel::run_protocol_over(
        sender_ch,
        receiver_ch,
        move |ch| {
            let mut sender = FerretSender::new(cfg_s, s_base, seed);
            let mut outs = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                outs.push((
                    sender.extend(ch).expect("sender extension failed"),
                    sender.prg_counter(),
                ));
            }
            outs
        },
        move |ch| {
            let mut receiver = FerretReceiver::new(cfg_r, r_base, seed);
            let mut outs = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                outs.push((
                    receiver.extend(ch).expect("receiver extension failed"),
                    receiver.prg_counter(),
                ));
            }
            outs
        },
    );

    sender_iters
        .into_iter()
        .zip(receiver_iters)
        .map(|((z, s_prg), ((x, y), r_prg))| FerretOutput {
            delta,
            z,
            x,
            y,
            sender_stats: s_stats,
            receiver_stats: r_stats,
            sender_prg: s_prg,
            receiver_prg: r_prg,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_extension_verifies() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let out = run_extension(&cfg, 1);
        assert_eq!(out.len(), cfg.usable_outputs());
        out.verify().expect("output COTs must be correlated");
    }

    #[test]
    fn baseline_binary_aes_verifies() {
        let cfg = FerretConfig::ferret_baseline(FerretParams::toy());
        run_extension(&cfg, 2).verify().unwrap();
    }

    #[test]
    fn all_arities_verify() {
        for arity in Arity::SWEEP {
            let cfg = FerretConfig {
                arity,
                ..FerretConfig::new(FerretParams::toy())
            };
            run_extension(&cfg, 3)
                .verify()
                .unwrap_or_else(|i| panic!("{arity}: COT {i} broken"));
        }
    }

    #[test]
    fn sorted_matrix_matches_plain() {
        let plain_cfg = FerretConfig::new(FerretParams::toy());
        let sorted_cfg = FerretConfig {
            sort: Some(SortConfig::default()),
            ..plain_cfg.clone()
        };
        let plain = run_extension(&plain_cfg, 4);
        let sorted = run_extension(&sorted_cfg, 4);
        // Same randomness → bit-identical outputs despite reordered memory
        // accesses (the §5.3 correctness claim).
        assert_eq!(plain.z, sorted.z);
        assert_eq!(plain.x, sorted.x);
        assert_eq!(plain.y, sorted.y);
        sorted.verify().unwrap();
    }

    #[test]
    fn tiled_kernel_matches_naive() {
        // Same randomness through both kernel families ⇒ bit-identical
        // outputs: the tile schedule only reorders XOR accumulation.
        let naive_cfg = FerretConfig::new(FerretParams::toy());
        let tiled_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            ..naive_cfg.clone()
        };
        let naive = run_extensions(&naive_cfg, 40, 2);
        let tiled = run_extensions(&tiled_cfg, 40, 2);
        for (a, b) in naive.iter().zip(&tiled) {
            assert_eq!(a.z, b.z);
            assert_eq!(a.x, b.x);
            assert_eq!(a.y, b.y);
        }
        tiled.last().unwrap().verify().unwrap();
    }

    #[test]
    fn tiled_sorted_matches_plain() {
        // The full combination: §5.3 sorting composed with tiling.
        let plain_cfg = FerretConfig::new(FerretParams::toy());
        let both_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            sort: Some(SortConfig::default()),
            ..plain_cfg.clone()
        };
        let plain = run_extension(&plain_cfg, 41);
        let both = run_extension(&both_cfg, 41);
        assert_eq!(plain.z, both.z);
        assert_eq!(plain.x, both.x);
        assert_eq!(plain.y, both.y);
        both.verify().unwrap();
    }

    #[test]
    fn mixed_kernel_parties_interoperate() {
        // The kernel choice never touches the wire, so a tiled party
        // correlates with a naive peer.
        let naive_cfg = FerretConfig::new(FerretParams::toy());
        let tiled_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            ..naive_cfg.clone()
        };
        let mut dealer = Dealer::new(42);
        let delta = dealer.random_delta();
        let (s_base, r_base) = dealer.deal_cot(delta, naive_cfg.base_cots_required());
        let (out_z, (out_x, out_y), _, _) = crate::channel::run_protocol(
            move |ch| {
                let mut sender = FerretSender::new(tiled_cfg, s_base, 42);
                sender.extend(ch).expect("sender extension")
            },
            move |ch| {
                let mut receiver = FerretReceiver::new(naive_cfg, r_base, 42);
                receiver.extend(ch).expect("receiver extension")
            },
        );
        for i in 0..out_z.len() {
            assert_eq!(out_z[i], out_y[i] ^ delta.and_bit(out_x[i]), "index {i}");
        }
    }

    #[test]
    fn recommended_picks_tiled_for_table4() {
        for p in FerretParams::TABLE4 {
            let cfg = FerretConfig::recommended(p);
            assert_eq!(cfg.kernel, LpnKernel::Tiled, "{p}");
            assert!(cfg.sort.is_none(), "software sort never wins ({p})");
        }
        // Toy-scale inputs are cache-resident; the simple path stays.
        assert_eq!(
            FerretConfig::recommended(FerretParams::toy()).kernel,
            LpnKernel::Naive
        );
    }

    #[test]
    fn multi_iteration_bootstrap() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let outs = run_extensions(&cfg, 5, 3);
        assert_eq!(outs.len(), 3);
        for (i, out) in outs.iter().enumerate() {
            out.verify()
                .unwrap_or_else(|j| panic!("iteration {i}, COT {j} broken"));
            assert_eq!(out.len(), cfg.usable_outputs());
        }
        // Outputs across iterations must differ (fresh randomness).
        assert_ne!(outs[0].z, outs[1].z);
    }

    #[test]
    fn mixed_fanout_params_verify() {
        // toy_large uses ℓ=512 (4^4·2 with quad trees → mixed final level).
        let cfg = FerretConfig::new(FerretParams::toy_large());
        run_extension(&cfg, 6).verify().unwrap();
    }

    #[test]
    fn noise_bits_present() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let out = run_extension(&cfg, 7);
        let ones = out.x.iter().filter(|&&b| b).count();
        // x = e·A ⊕ u is pseudorandom: expect a roughly balanced bit vector.
        let n = out.x.len();
        assert!(
            ones > n / 4 && ones < 3 * n / 4,
            "x looks degenerate: {ones}/{n}"
        );
    }

    #[test]
    fn quad_chacha_much_cheaper_than_binary_aes() {
        let quad = run_extension(&FerretConfig::new(FerretParams::toy()), 8);
        let bin = run_extension(&FerretConfig::ferret_baseline(FerretParams::toy()), 8);
        assert!(
            bin.sender_prg.total() > 5 * quad.sender_prg.total(),
            "expected ~6x call reduction: binary {} vs quad {}",
            bin.sender_prg.total(),
            quad.sender_prg.total()
        );
    }
}
