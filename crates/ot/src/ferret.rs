//! The Ferret-style PCG OT-extension main loop (paper §2.3, Fig. 3a).
//!
//! One extension turns `k + t·log2(ℓ)` base COT correlations into `n` fresh
//! correlations:
//!
//! 1. **SPCOT phase** — `t` GGM trees are built and punctured interactively
//!    ([`crate::spcot`]); tree `i` contributes a one-hot stripe of the
//!    length-`n` noise vector `u` and the corresponding `w`/`v` blocks.
//! 2. **LPN phase** — both parties locally encode their pre-generated
//!    vectors through the fixed sparse matrix `A` and XOR onto the SPCOT
//!    outputs: sender `z = r·A ⊕ w`; receiver `x = e·A ⊕ u`,
//!    `y = s·A ⊕ v`. The result is `n` COTs with `z = y ⊕ x·Δ`.
//! 3. **Bootstrap** — the first `k + t·log2(ℓ)` outputs are retained as the
//!    next iteration's base correlations; the rest are handed to the
//!    application.
//!
//! Both the plain and the locality-sorted LPN matrices are supported; they
//! produce bit-identical outputs (§5.3's correctness argument is checked in
//! the tests).

use crate::channel::{ChannelError, ChannelStats, Transport};
use crate::cot::{CotReceiver, CotSender};
use crate::dealer::Dealer;
use crate::params::FerretParams;
use crate::spcot::{spcot_recv, spcot_send, SpcotConfig};
use crate::spcot_batch::{spcot_batch_recv, spcot_batch_send};
use ironman_ggm::Arity;
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{encoder, LpnMatrix, SortedLpnMatrix, DEFAULT_ROW_WEIGHT};
use ironman_prg::{Block, PrgCounter, PrgKind};

/// Full configuration of a Ferret session (must be identical on both
/// parties: it pins the LPN matrix, tree shape and PRG).
#[derive(Clone, Debug)]
pub struct FerretConfig {
    /// Table 4 parameter set.
    pub params: FerretParams,
    /// GGM tree arity.
    pub arity: Arity,
    /// PRG kind for tree expansion.
    pub prg: PrgKind,
    /// Session key (drives all PRG keys).
    pub session_key: Block,
    /// Seed of the fixed LPN matrix.
    pub lpn_seed: Block,
    /// Row weight `d` of the LPN matrix (the paper uses 10).
    pub row_weight: usize,
    /// Optional compile-time index sorting (§5.3). `None` = plain CSR.
    pub sort: Option<SortConfig>,
    /// Level-batched SPCOT (one message per GGM level across all `t`
    /// trees, as production Ferret implementations do) instead of one
    /// conversation per tree. Outputs are identical either way.
    pub batched_spcot: bool,
}

impl FerretConfig {
    /// Ironman defaults (4-ary ChaCha8 trees, unsorted matrix) for a
    /// parameter set.
    pub fn new(params: FerretParams) -> Self {
        FerretConfig {
            params,
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            session_key: Block::from(0x1203_4567u128),
            lpn_seed: Block::from(0x004c_504e_u128),
            row_weight: DEFAULT_ROW_WEIGHT,
            sort: None,
            batched_spcot: true,
        }
    }

    /// The CPU-baseline configuration (binary AES trees), as profiled in
    /// Fig. 1(b).
    pub fn ferret_baseline(params: FerretParams) -> Self {
        FerretConfig {
            arity: Arity::BINARY,
            prg: PrgKind::Aes,
            ..FerretConfig::new(params)
        }
    }

    /// Base COTs each party must hold before an extension:
    /// `k` LPN inputs + `t · log2(ℓ)` SPCOT consumptions.
    pub fn base_cots_required(&self) -> usize {
        self.params.k + self.params.t * self.params.leaves.trailing_zeros() as usize
    }

    /// Outputs available to the application per extension.
    pub fn usable_outputs(&self) -> usize {
        self.params.n - self.base_cots_required()
    }

    fn spcot_config(&self) -> SpcotConfig {
        SpcotConfig {
            arity: self.arity,
            prg: self.prg,
            leaves: self.params.leaves,
            session_key: self.session_key,
        }
    }

    fn build_matrix(&self) -> MatrixKind {
        let plain =
            LpnMatrix::generate(self.params.n, self.params.k, self.row_weight, self.lpn_seed);
        match self.sort {
            Some(cfg) => MatrixKind::Sorted(Box::new(SortedLpnMatrix::sort(&plain, cfg))),
            None => MatrixKind::Plain(plain),
        }
    }
}

#[derive(Clone, Debug)]
enum MatrixKind {
    Plain(LpnMatrix),
    Sorted(Box<SortedLpnMatrix>),
}

impl MatrixKind {
    fn encode_blocks(&self, input: &[Block], acc: &mut [Block]) {
        match self {
            MatrixKind::Plain(m) => encoder::encode_blocks(m, input, acc),
            MatrixKind::Sorted(s) => s.encode_blocks(input, acc),
        }
    }

    fn encode_bits(&self, input: &[bool], acc: &mut [bool]) {
        match self {
            MatrixKind::Plain(m) => encoder::encode_bits(m, input, acc),
            MatrixKind::Sorted(s) => s.encode_bits(input, acc),
        }
    }
}

/// The sender's long-lived extension state.
#[derive(Debug)]
pub struct FerretSender {
    cfg: FerretConfig,
    base: CotSender,
    matrix: MatrixKind,
    seeds: Dealer,
    tweak: u64,
    prg_counter: PrgCounter,
}

impl FerretSender {
    /// Creates the sender from its base correlations.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != cfg.base_cots_required()`.
    pub fn new(cfg: FerretConfig, base: CotSender, seed: u64) -> Self {
        assert_eq!(
            base.len(),
            cfg.base_cots_required(),
            "sender base must hold exactly k + t*log2(l) correlations"
        );
        let matrix = cfg.build_matrix();
        FerretSender {
            cfg,
            base,
            matrix,
            seeds: Dealer::new(seed ^ 0x5e4d),
            tweak: 0,
            prg_counter: PrgCounter::new(),
        }
    }

    /// The global correlation offset.
    pub fn delta(&self) -> Block {
        self.base.delta()
    }

    /// PRG calls consumed so far (all extensions).
    pub fn prg_counter(&self) -> PrgCounter {
        self.prg_counter
    }

    /// Runs one extension, returning the application's `n − k − t·log2(ℓ)`
    /// fresh `r0` blocks (new correlations under the same `Δ`).
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    pub fn extend<T: Transport + ?Sized>(
        &mut self,
        ch: &mut T,
    ) -> Result<Vec<Block>, ChannelError> {
        let p = self.cfg.params;
        let spcot_cfg = self.cfg.spcot_config();
        let spcot_budget = p.t * p.leaves.trailing_zeros() as usize;
        let mut spcot_base = self.base.split_off_front(spcot_budget);
        // What remains in self.base are the k LPN inputs.
        let r: Vec<Block> = self.base.r0().to_vec();
        debug_assert_eq!(r.len(), p.k);

        // SPCOT phase: t trees, stripes assigned round-robin.
        let stripes = p.stripes();
        let mut w_full = vec![Block::ZERO; p.n];
        let outs = if self.cfg.batched_spcot {
            let seeds: Vec<Block> = (0..p.t).map(|_| self.seeds.random_block()).collect();
            spcot_batch_send(ch, &spcot_cfg, &mut spcot_base, &seeds, &mut self.tweak)?
        } else {
            let mut outs = Vec::with_capacity(p.t);
            for _ in 0..p.t {
                let seed = self.seeds.random_block();
                outs.push(spcot_send(
                    ch,
                    &spcot_cfg,
                    &mut spcot_base,
                    seed,
                    &mut self.tweak,
                )?);
            }
            outs
        };
        for (i, out) in outs.into_iter().enumerate() {
            self.prg_counter += out.counter;
            let stripe = i % stripes;
            let start = stripe * p.leaves;
            let width = p.leaves.min(p.n - start);
            for (j, &leaf) in out.w[..width].iter().enumerate() {
                w_full[start + j] ^= leaf;
            }
        }

        // LPN phase: z = r·A ⊕ w.
        let mut z = w_full;
        self.matrix.encode_blocks(&r, &mut z);

        // Bootstrap: retain the front as next iteration's base.
        let required = self.cfg.base_cots_required();
        let output = z.split_off(required);
        self.base = CotSender::new(self.base.delta(), z);
        Ok(output)
    }
}

/// The receiver's long-lived extension state.
#[derive(Debug)]
pub struct FerretReceiver {
    cfg: FerretConfig,
    base: CotReceiver,
    matrix: MatrixKind,
    alphas: Dealer,
    tweak: u64,
    prg_counter: PrgCounter,
}

impl FerretReceiver {
    /// Creates the receiver from its base correlations.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != cfg.base_cots_required()`.
    pub fn new(cfg: FerretConfig, base: CotReceiver, seed: u64) -> Self {
        assert_eq!(
            base.len(),
            cfg.base_cots_required(),
            "receiver base must hold exactly k + t*log2(l) correlations"
        );
        let matrix = cfg.build_matrix();
        FerretReceiver {
            cfg,
            base,
            matrix,
            alphas: Dealer::new(seed ^ 0xa1fa),
            tweak: 0,
            prg_counter: PrgCounter::new(),
        }
    }

    /// PRG calls consumed so far (all extensions).
    pub fn prg_counter(&self) -> PrgCounter {
        self.prg_counter
    }

    /// Runs one extension, returning the application's fresh `(x, y)`
    /// correlations: `z = y ⊕ x·Δ` against the sender's output.
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    pub fn extend<T: Transport + ?Sized>(
        &mut self,
        ch: &mut T,
    ) -> Result<(Vec<bool>, Vec<Block>), ChannelError> {
        let p = self.cfg.params;
        let spcot_cfg = self.cfg.spcot_config();
        let spcot_budget = p.t * p.leaves.trailing_zeros() as usize;
        let mut spcot_base = self.base.split_off_front(spcot_budget);
        let e: Vec<bool> = self.base.bits().to_vec();
        let s: Vec<Block> = self.base.rb().to_vec();
        debug_assert_eq!(e.len(), p.k);

        let stripes = p.stripes();
        let mut u_full = vec![false; p.n];
        let mut v_full = vec![Block::ZERO; p.n];
        let stripe_width = |i: usize| {
            let start = (i % stripes) * p.leaves;
            (start, p.leaves.min(p.n - start))
        };
        let outs = if self.cfg.batched_spcot {
            let alphas: Vec<usize> = (0..p.t)
                .map(|i| self.alphas.random_index(stripe_width(i).1))
                .collect();
            spcot_batch_recv(ch, &spcot_cfg, &mut spcot_base, &alphas, &mut self.tweak)?
        } else {
            let mut outs = Vec::with_capacity(p.t);
            for i in 0..p.t {
                let alpha = self.alphas.random_index(stripe_width(i).1);
                outs.push(spcot_recv(
                    ch,
                    &spcot_cfg,
                    &mut spcot_base,
                    alpha,
                    &mut self.tweak,
                )?);
            }
            outs
        };
        for (i, out) in outs.into_iter().enumerate() {
            let (start, width) = stripe_width(i);
            self.prg_counter += out.counter;
            u_full[start + out.alpha] ^= true;
            for (j, &leaf) in out.v[..width].iter().enumerate() {
                v_full[start + j] ^= leaf;
            }
        }

        // LPN phase: x = e·A ⊕ u, y = s·A ⊕ v.
        let mut x = u_full;
        let mut y = v_full;
        self.matrix.encode_bits(&e, &mut x);
        self.matrix.encode_blocks(&s, &mut y);

        let required = self.cfg.base_cots_required();
        let out_x = x.split_off(required);
        let out_y = y.split_off(required);
        self.base = CotReceiver::new(x, y);
        Ok((out_x, out_y))
    }
}

/// The result of [`run_extension`]: matched sender/receiver outputs plus
/// accounting, for tests and benches.
#[derive(Clone, Debug)]
pub struct FerretOutput {
    /// The global offset `Δ`.
    pub delta: Block,
    /// Sender outputs `z` (one per usable COT).
    pub z: Vec<Block>,
    /// Receiver choice bits `x`.
    pub x: Vec<bool>,
    /// Receiver blocks `y` with `z = y ⊕ x·Δ`.
    pub y: Vec<Block>,
    /// Sender communication stats.
    pub sender_stats: ChannelStats,
    /// Receiver communication stats.
    pub receiver_stats: ChannelStats,
    /// Sender PRG calls.
    pub sender_prg: PrgCounter,
    /// Receiver PRG calls.
    pub receiver_prg: PrgCounter,
}

impl FerretOutput {
    /// Checks `z = y ⊕ x·Δ` on every output correlation.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violation.
    pub fn verify(&self) -> Result<(), usize> {
        for i in 0..self.z.len() {
            if self.z[i] != self.y[i] ^ self.delta.and_bit(self.x[i]) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Number of usable output COTs.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the output batch is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// Convenience harness: deals fresh bases, runs one extension on two
/// threads, and returns the matched outputs.
pub fn run_extension(cfg: &FerretConfig, seed: u64) -> FerretOutput {
    run_extensions(cfg, seed, 1)
        .pop()
        .expect("one iteration requested")
}

/// Runs `iterations` consecutive extensions over one session (exercising
/// the bootstrap) and returns each iteration's outputs.
///
/// # Panics
///
/// Panics if `iterations == 0` or a protocol thread fails.
pub fn run_extensions(cfg: &FerretConfig, seed: u64, iterations: usize) -> Vec<FerretOutput> {
    let (cs, cr) = crate::channel::LocalChannel::pair();
    run_extensions_over(cfg, seed, iterations, cs, cr)
}

/// [`run_extensions`] over an arbitrary pre-connected transport pair (e.g.
/// `ironman-net`'s TCP loopback endpoints): deals fresh bases, runs the
/// two parties on their own threads across the given transports, and
/// returns each iteration's matched outputs with that transport's real
/// byte/round accounting.
///
/// # Panics
///
/// Panics if `iterations == 0` or a protocol thread fails.
pub fn run_extensions_over<TS, TR>(
    cfg: &FerretConfig,
    seed: u64,
    iterations: usize,
    sender_ch: TS,
    receiver_ch: TR,
) -> Vec<FerretOutput>
where
    TS: crate::channel::Transport + Send,
    TR: crate::channel::Transport + Send,
{
    assert!(iterations > 0, "need at least one iteration");
    let mut dealer = Dealer::new(seed);
    let delta = dealer.random_delta();
    let required = cfg.base_cots_required();
    let (s_base, r_base) = dealer.deal_cot(delta, required);
    let cfg_s = cfg.clone();
    let cfg_r = cfg.clone();

    let (sender_iters, receiver_iters, s_stats, r_stats) = crate::channel::run_protocol_over(
        sender_ch,
        receiver_ch,
        move |ch| {
            let mut sender = FerretSender::new(cfg_s, s_base, seed);
            let mut outs = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                outs.push((
                    sender.extend(ch).expect("sender extension failed"),
                    sender.prg_counter(),
                ));
            }
            outs
        },
        move |ch| {
            let mut receiver = FerretReceiver::new(cfg_r, r_base, seed);
            let mut outs = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                outs.push((
                    receiver.extend(ch).expect("receiver extension failed"),
                    receiver.prg_counter(),
                ));
            }
            outs
        },
    );

    sender_iters
        .into_iter()
        .zip(receiver_iters)
        .map(|((z, s_prg), ((x, y), r_prg))| FerretOutput {
            delta,
            z,
            x,
            y,
            sender_stats: s_stats,
            receiver_stats: r_stats,
            sender_prg: s_prg,
            receiver_prg: r_prg,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_extension_verifies() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let out = run_extension(&cfg, 1);
        assert_eq!(out.len(), cfg.usable_outputs());
        out.verify().expect("output COTs must be correlated");
    }

    #[test]
    fn baseline_binary_aes_verifies() {
        let cfg = FerretConfig::ferret_baseline(FerretParams::toy());
        run_extension(&cfg, 2).verify().unwrap();
    }

    #[test]
    fn all_arities_verify() {
        for arity in Arity::SWEEP {
            let cfg = FerretConfig {
                arity,
                ..FerretConfig::new(FerretParams::toy())
            };
            run_extension(&cfg, 3)
                .verify()
                .unwrap_or_else(|i| panic!("{arity}: COT {i} broken"));
        }
    }

    #[test]
    fn sorted_matrix_matches_plain() {
        let plain_cfg = FerretConfig::new(FerretParams::toy());
        let sorted_cfg = FerretConfig {
            sort: Some(SortConfig::default()),
            ..plain_cfg.clone()
        };
        let plain = run_extension(&plain_cfg, 4);
        let sorted = run_extension(&sorted_cfg, 4);
        // Same randomness → bit-identical outputs despite reordered memory
        // accesses (the §5.3 correctness claim).
        assert_eq!(plain.z, sorted.z);
        assert_eq!(plain.x, sorted.x);
        assert_eq!(plain.y, sorted.y);
        sorted.verify().unwrap();
    }

    #[test]
    fn multi_iteration_bootstrap() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let outs = run_extensions(&cfg, 5, 3);
        assert_eq!(outs.len(), 3);
        for (i, out) in outs.iter().enumerate() {
            out.verify()
                .unwrap_or_else(|j| panic!("iteration {i}, COT {j} broken"));
            assert_eq!(out.len(), cfg.usable_outputs());
        }
        // Outputs across iterations must differ (fresh randomness).
        assert_ne!(outs[0].z, outs[1].z);
    }

    #[test]
    fn mixed_fanout_params_verify() {
        // toy_large uses ℓ=512 (4^4·2 with quad trees → mixed final level).
        let cfg = FerretConfig::new(FerretParams::toy_large());
        run_extension(&cfg, 6).verify().unwrap();
    }

    #[test]
    fn noise_bits_present() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let out = run_extension(&cfg, 7);
        let ones = out.x.iter().filter(|&&b| b).count();
        // x = e·A ⊕ u is pseudorandom: expect a roughly balanced bit vector.
        let n = out.x.len();
        assert!(
            ones > n / 4 && ones < 3 * n / 4,
            "x looks degenerate: {ones}/{n}"
        );
    }

    #[test]
    fn quad_chacha_much_cheaper_than_binary_aes() {
        let quad = run_extension(&FerretConfig::new(FerretParams::toy()), 8);
        let bin = run_extension(&FerretConfig::ferret_baseline(FerretParams::toy()), 8);
        assert!(
            bin.sender_prg.total() > 5 * quad.sender_prg.total(),
            "expected ~6x call reduction: binary {} vs quad {}",
            bin.sender_prg.total(),
            quad.sender_prg.total()
        );
    }
}
