//! The Ferret-style PCG OT-extension main loop (paper §2.3, Fig. 3a).
//!
//! One extension turns `k + t·log2(ℓ)` base COT correlations into `n` fresh
//! correlations:
//!
//! 1. **SPCOT phase** — `t` GGM trees are built and punctured interactively
//!    ([`crate::spcot`]); tree `i` contributes a one-hot stripe of the
//!    length-`n` noise vector `u` and the corresponding `w`/`v` blocks.
//! 2. **LPN phase** — both parties locally encode their pre-generated
//!    vectors through the fixed sparse matrix `A` and XOR onto the SPCOT
//!    outputs: sender `z = r·A ⊕ w`; receiver `x = e·A ⊕ u`,
//!    `y = s·A ⊕ v`. The result is `n` COTs with `z = y ⊕ x·Δ`.
//! 3. **Bootstrap** — the first `k + t·log2(ℓ)` outputs are retained as the
//!    next iteration's base correlations; the rest are handed to the
//!    application.
//!
//! Both the plain and the locality-sorted LPN matrices are supported; they
//! produce bit-identical outputs (§5.3's correctness argument is checked in
//! the tests).

use crate::channel::{ChannelError, ChannelStats, Transport};
use crate::cot::{CotReceiver, CotSender};
use crate::dealer::Dealer;
use crate::params::FerretParams;
use crate::spcot::{spcot_recv, spcot_send, SpcotConfig};
use crate::spcot_batch::{spcot_batch_recv_into, spcot_batch_send_into};
use ironman_ggm::Arity;
use ironman_lpn::sorting::SortConfig;
use ironman_lpn::{
    simd, LpnMatrix, PackedBits, SimdLevel, SimdMode, SortedLpnMatrix, DEFAULT_ROW_WEIGHT,
};
use ironman_prg::{Block, PrgCounter, PrgKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which LPN kernel family the extension's online encode runs — the
/// traversals of `ironman_lpn` over the same matrix, bit-identical in
/// output and interchangeable per party (the choice never touches the
/// wire).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LpnKernel {
    /// Row-major gathers, separate passes per output vector — the CPU
    /// baseline shape of Fig. 1(c).
    Naive,
    /// Cache-blocked (tile-major) gathers from the matrix's precomputed
    /// [`ironman_lpn::TileSchedule`]; the receiver's two halves run as
    /// one fused pass ([`ironman_lpn::encoder::CotPairLane`]). The software twin of
    /// the paper's memory-side cache (§5.3).
    Tiled,
    /// The measured winner at Table-4 scale: the block half runs
    /// tile-major (its `k · 16 B` input spills L2, so blocking pays) and
    /// the packed-bit half runs row-major as its own pass (its `k`-bit
    /// input is L1-resident, where tiling's bucket bookkeeping only adds
    /// overhead). Separate passes beat the fused [`LpnKernel::Tiled`]
    /// pair under both SIMD tiers — the fused lane drags the
    /// cache-resident bit gathers through the block half's tile walk.
    Split,
}

/// Full configuration of a Ferret session (must be identical on both
/// parties: it pins the LPN matrix, tree shape and PRG).
#[derive(Clone, Debug)]
pub struct FerretConfig {
    /// Table 4 parameter set.
    pub params: FerretParams,
    /// GGM tree arity.
    pub arity: Arity,
    /// PRG kind for tree expansion.
    pub prg: PrgKind,
    /// Session key (drives all PRG keys).
    pub session_key: Block,
    /// Seed of the fixed LPN matrix.
    pub lpn_seed: Block,
    /// Row weight `d` of the LPN matrix (the paper uses 10).
    pub row_weight: usize,
    /// Optional compile-time index sorting (§5.3). `None` = plain CSR.
    pub sort: Option<SortConfig>,
    /// LPN kernel family for the online encode (output-identical; see
    /// [`LpnKernel`]).
    pub kernel: LpnKernel,
    /// Level-batched SPCOT (one message per GGM level across all `t`
    /// trees, as production Ferret implementations do) instead of one
    /// conversation per tree. Outputs are identical either way.
    pub batched_spcot: bool,
    /// SIMD dispatch policy for the plain-matrix LPN kernels
    /// (output-identical; local to each party, never on the wire). The
    /// default [`SimdMode::Auto`] uses the widest tier the CPU offers;
    /// `IRONMAN_SIMD=scalar` in the environment forces scalar regardless.
    pub simd: SimdMode,
    /// A prebuilt LPN matrix to share instead of generating one per
    /// party. Matrix generation dominates session-spawn latency at
    /// Table-4 scale and every party's matrix is identical (a pure
    /// function of the config), so pools prebuild once and hand the
    /// `Arc` to every shard via this field. `None` (the default)
    /// generates on demand. Local-only state: it never affects outputs
    /// or the wire, but it must have been built from a config with the
    /// same matrix parameters — [`FerretConfig::build_matrix`]
    /// panics on a fingerprint mismatch rather than silently desync the
    /// parties.
    pub shared_matrix: Option<SharedLpnMatrix>,
}

impl FerretConfig {
    /// Ironman defaults (4-ary ChaCha8 trees, unsorted matrix) for a
    /// parameter set.
    pub fn new(params: FerretParams) -> Self {
        FerretConfig {
            params,
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            session_key: Block::from(0x1203_4567u128),
            lpn_seed: Block::from(0x004c_504e_u128),
            row_weight: DEFAULT_ROW_WEIGHT,
            sort: None,
            kernel: LpnKernel::Naive,
            batched_spcot: true,
            simd: SimdMode::Auto,
            shared_matrix: None,
        }
    }

    /// The fastest known (matrix kind × kernel) combination for `params`
    /// on the reference single-core box, regenerated from the per-lane
    /// head-to-head in `BENCH_extension.json` (the `kernels[]` rows; the
    /// shape below is `n = 2^18`, `k = 168 000`, `d = 10`, best-of-5 ms):
    ///
    /// | pass | scalar row | scalar tiled | wide row | wide tiled |
    /// |---|---|---|---|---|
    /// | blocks (`s·A`)      | 5.27 | **3.97** | 4.25 | **3.85** |
    /// | packed bits (`e·A`) | **2.87** | 5.52 | **2.47** | 5.34 |
    /// | fused COT pair      | 9.74 | 7.88 | 7.49 | 8.02 |
    ///
    /// * the **block** half wins tiled under both SIMD tiers — its
    ///   `k · 16 B` input spills the L2-class window at every Table-4
    ///   row, so cache-blocking pays;
    /// * the **packed-bit** half wins row-major — its `k`-bit input is
    ///   L1-resident, so the tile walk's bucket bookkeeping only adds
    ///   cost (tiled bits measure ~2× slower);
    /// * the **fused** pair loses to running the two winning passes
    ///   separately (wide: 3.85 + 2.47 = 6.32 vs 7.49 fused), so the
    ///   receiver's best shape is [`LpnKernel::Split`] — which also
    ///   gives the sender's single block pass the tiled traversal;
    /// * the §5.3 **sorted** matrix never wins in software — its
    ///   look-ahead order targets the NMP memory-side cache, and on a CPU
    ///   the row scatter it adds costs more than the locality it buys
    ///   (`blocks_sorted` measures ~0.5× naive) — so the unsorted matrix
    ///   is recommended for every set;
    /// * at toy scale the whole input is cache-resident and the kernels
    ///   tie, so the naive encoder keeps its simpler code path.
    ///
    /// SIMD stays [`SimdMode::Auto`]: the wide tier wins or ties every
    /// lane it covers and `IRONMAN_SIMD=scalar` remains the escape hatch.
    ///
    /// Serving-path constructors (`CotSession`-backed pools, the bench
    /// and example binaries) build their configs through this.
    pub fn recommended(params: FerretParams) -> Self {
        /// Block-input bytes above which the cache-blocked block pass
        /// wins (the L2-class boundary between the toy and Table-4
        /// regimes on the bench table; the exact crossover is far from
        /// both).
        const TILED_INPUT_BYTES: usize = 1 << 20;
        let kernel = if params.k * Block::BYTES >= TILED_INPUT_BYTES {
            LpnKernel::Split
        } else {
            LpnKernel::Naive
        };
        FerretConfig {
            kernel,
            ..FerretConfig::new(params)
        }
    }

    /// The CPU-baseline configuration (binary AES trees), as profiled in
    /// Fig. 1(b).
    pub fn ferret_baseline(params: FerretParams) -> Self {
        FerretConfig {
            arity: Arity::BINARY,
            prg: PrgKind::Aes,
            ..FerretConfig::new(params)
        }
    }

    /// Base COTs each party must hold before an extension:
    /// `k` LPN inputs + `t · log2(ℓ)` SPCOT consumptions.
    pub fn base_cots_required(&self) -> usize {
        self.params.k + self.params.t * self.params.leaves.trailing_zeros() as usize
    }

    /// Outputs available to the application per extension.
    pub fn usable_outputs(&self) -> usize {
        self.params.n - self.base_cots_required()
    }

    fn spcot_config(&self) -> SpcotConfig {
        SpcotConfig {
            arity: self.arity,
            prg: self.prg,
            leaves: self.params.leaves,
            session_key: self.session_key,
        }
    }

    /// Prebuilds the shared LPN matrix for this config if not already
    /// present, returning a cheap handle to it. Pools call this **once**
    /// before cloning the config across parties and shards, so N shards
    /// (2N party threads) generate one matrix instead of 2N — the
    /// dominant spawn cost at Table-4 scale.
    pub fn ensure_shared_matrix(&mut self) -> &SharedLpnMatrix {
        if self.shared_matrix.is_none() {
            self.shared_matrix = Some(SharedLpnMatrix::build(self));
        }
        self.shared_matrix
            .as_ref()
            .expect("just ensured the shared matrix")
    }

    fn build_matrix(&self) -> SessionMatrix {
        let repr = match &self.shared_matrix {
            Some(shared) => {
                assert_eq!(
                    shared.fingerprint,
                    MatrixFingerprint::of(self),
                    "shared matrix was prebuilt for a different LPN configuration"
                );
                shared.repr.clone()
            }
            None => SharedLpnMatrix::build(self).repr,
        };
        if self.kernel != LpnKernel::Naive {
            // Build the tile schedule now (offline, cached on the
            // matrix) so no extension pays for it on the hot path. A
            // shared matrix caches it once for every session.
            match &repr {
                MatrixRepr::Plain(m) => {
                    m.tile_schedule();
                }
                MatrixRepr::Sorted(s) => {
                    s.tile_schedule();
                }
            }
        }
        SessionMatrix {
            repr,
            kernel: self.kernel,
            level: self.simd.resolve(),
        }
    }
}

/// The matrix-generation inputs a [`SharedLpnMatrix`] was built from;
/// [`FerretConfig::build_matrix`] refuses a shared matrix whose
/// fingerprint disagrees with the config consuming it (a silent mismatch
/// would desynchronize the parties' LPN encodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MatrixFingerprint {
    rows: usize,
    cols: usize,
    weight: usize,
    seed: Block,
    sort: Option<SortConfig>,
}

impl MatrixFingerprint {
    fn of(cfg: &FerretConfig) -> Self {
        MatrixFingerprint {
            rows: cfg.params.n,
            cols: cfg.params.k,
            weight: cfg.row_weight,
            seed: cfg.lpn_seed,
            sort: cfg.sort,
        }
    }
}

/// A prebuilt, reference-counted LPN matrix (plus its cached tile
/// schedule) shared across sessions whose configs pin the same matrix.
/// Cloning is an `Arc` bump; see [`FerretConfig::ensure_shared_matrix`].
#[derive(Clone, Debug)]
pub struct SharedLpnMatrix {
    repr: MatrixRepr,
    fingerprint: MatrixFingerprint,
}

impl SharedLpnMatrix {
    /// Generates the matrix `cfg` pins (ignoring any shared matrix
    /// already attached to `cfg`).
    pub fn build(cfg: &FerretConfig) -> Self {
        let plain = LpnMatrix::generate(cfg.params.n, cfg.params.k, cfg.row_weight, cfg.lpn_seed);
        let repr = match cfg.sort {
            Some(sort_cfg) => MatrixRepr::Sorted(Arc::new(SortedLpnMatrix::sort(&plain, sort_cfg))),
            None => MatrixRepr::Plain(Arc::new(plain)),
        };
        SharedLpnMatrix {
            repr,
            fingerprint: MatrixFingerprint::of(cfg),
        }
    }

    /// The matrix-plus-schedule heap bytes this handle keeps alive —
    /// what each additional sharing session *avoids* allocating.
    pub fn working_set_bytes(&self) -> u64 {
        match &self.repr {
            MatrixRepr::Plain(m) => m.working_set_bytes(),
            MatrixRepr::Sorted(s) => s.matrix().working_set_bytes(),
        }
    }
}

/// The session's matrix storage: an `Arc` either to the plain CSR matrix
/// or to its §5.3-sorted form, shared freely across party threads and
/// shards (the matrix is immutable after generation; its lazily built
/// tile schedule sits behind a `OnceLock`).
#[derive(Clone, Debug)]
enum MatrixRepr {
    Plain(Arc<LpnMatrix>),
    Sorted(Arc<SortedLpnMatrix>),
}

/// The session's fixed matrix plus the kernel family and SIMD tier that
/// traverse it. Every combination produces bit-identical outputs; only
/// the memory access order and instruction selection differ.
#[derive(Clone, Debug)]
struct SessionMatrix {
    repr: MatrixRepr,
    kernel: LpnKernel,
    level: SimdLevel,
}

impl SessionMatrix {
    /// The sender's (and the receiver's block-half) encode: `acc ^= input·A`.
    /// `Tiled` and `Split` agree here — both run the cache-blocked
    /// traversal, which wins for the block operand at every Table-4 row.
    fn encode_blocks(&self, input: &[Block], acc: &mut [Block]) {
        match (&self.repr, self.kernel) {
            (MatrixRepr::Plain(m), LpnKernel::Naive) => {
                simd::encode_blocks(self.level, m, input, acc)
            }
            (MatrixRepr::Plain(m), LpnKernel::Tiled | LpnKernel::Split) => {
                simd::encode_blocks_tiled(self.level, m.tile_schedule(), input, acc)
            }
            (MatrixRepr::Sorted(s), LpnKernel::Naive) => s.encode_blocks(input, acc),
            (MatrixRepr::Sorted(s), LpnKernel::Tiled | LpnKernel::Split) => {
                s.encode_blocks_tiled(input, acc)
            }
        }
    }

    /// The receiver's online encode: `x ^= e·A` (packed bits) and
    /// `y ^= s·A` (blocks). `Tiled` runs both halves as one fused pass
    /// over the index stream; `Naive` runs the legacy separate
    /// row-major passes. `Split` is level-aware, following the measured
    /// winners: the `Wide` lanes software-prefetch their gather columns,
    /// which makes the fused *row-major* pair pass fastest (one index
    /// stream, both operands prefetched); without prefetch the scalar
    /// tier instead wants the block half tile-major and the
    /// (L1-resident) bit half row-major. The sorted matrix keeps its
    /// scalar traversals (§5.3 ordering never wins in software, so it
    /// gets no SIMD lanes; `Split` there falls back to the fused tiled
    /// pass).
    fn encode_receiver(&self, e: &PackedBits, s: &[Block], x: &mut PackedBits, y: &mut [Block]) {
        match (&self.repr, self.kernel) {
            (MatrixRepr::Plain(m), LpnKernel::Naive) => {
                simd::encode_bits_packed(self.level, m, e, x);
                simd::encode_blocks(self.level, m, s, y);
            }
            (MatrixRepr::Plain(m), LpnKernel::Tiled) => {
                simd::encode_cot_pair_tiled(self.level, m.tile_schedule(), s, e, y, x);
            }
            (MatrixRepr::Plain(m), LpnKernel::Split) => match self.level {
                SimdLevel::Wide => simd::encode_cot_pair(self.level, m, s, e, y, x),
                SimdLevel::Scalar => {
                    simd::encode_blocks_tiled(self.level, m.tile_schedule(), s, y);
                    simd::encode_bits_packed(self.level, m, e, x);
                }
            },
            (MatrixRepr::Sorted(srt), LpnKernel::Naive) => {
                srt.encode_bits_packed(e, x);
                srt.encode_blocks(s, y);
            }
            (MatrixRepr::Sorted(srt), LpnKernel::Tiled | LpnKernel::Split) => {
                srt.encode_cot_pair_tiled(s, e, y, x);
            }
        }
    }
}

/// The sender's long-lived extension state.
#[derive(Debug)]
pub struct FerretSender {
    cfg: FerretConfig,
    base: CotSender,
    matrix: SessionMatrix,
    seeds: Dealer,
    tweak: u64,
    prg_counter: PrgCounter,
}

impl FerretSender {
    /// Creates the sender from its base correlations.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != cfg.base_cots_required()`.
    pub fn new(cfg: FerretConfig, base: CotSender, seed: u64) -> Self {
        assert_eq!(
            base.len(),
            cfg.base_cots_required(),
            "sender base must hold exactly k + t*log2(l) correlations"
        );
        let matrix = cfg.build_matrix();
        FerretSender {
            cfg,
            base,
            matrix,
            seeds: Dealer::new(seed ^ 0x5e4d),
            tweak: 0,
            prg_counter: PrgCounter::new(),
        }
    }

    /// The global correlation offset.
    pub fn delta(&self) -> Block {
        self.base.delta()
    }

    /// PRG calls consumed so far (all extensions).
    pub fn prg_counter(&self) -> PrgCounter {
        self.prg_counter
    }

    /// Runs one extension, returning the application's `n − k − t·log2(ℓ)`
    /// fresh `r0` blocks (new correlations under the same `Δ`).
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    pub fn extend<T: Transport + ?Sized>(
        &mut self,
        ch: &mut T,
    ) -> Result<Vec<Block>, ChannelError> {
        let p = self.cfg.params;
        let spcot_cfg = self.cfg.spcot_config();
        let spcot_budget = p.t * p.leaves.trailing_zeros() as usize;
        let mut spcot_base = self.base.split_off_front(spcot_budget);
        // What remains in self.base are the k LPN inputs, borrowed
        // directly at encode time (no staging copy).
        debug_assert_eq!(self.base.len(), p.k);

        // SPCOT phase: t trees, stripes assigned round-robin; each
        // tree's leaves accumulate straight into the LPN accumulator
        // stripe (no per-tree leaf vectors on the batched path).
        let stripes = p.stripes();
        let mut w_full = vec![Block::ZERO; p.n];
        if self.cfg.batched_spcot {
            let seeds: Vec<Block> = (0..p.t).map(|_| self.seeds.random_block()).collect();
            let prg_counter = &mut self.prg_counter;
            spcot_batch_send_into(
                ch,
                &spcot_cfg,
                &mut spcot_base,
                &seeds,
                &mut self.tweak,
                |i, leaves, counter| {
                    *prg_counter += counter;
                    let start = (i % stripes) * p.leaves;
                    let width = p.leaves.min(p.n - start);
                    Block::xor_into(&mut w_full[start..start + width], &leaves[..width]);
                },
            )?;
        } else {
            for i in 0..p.t {
                let seed = self.seeds.random_block();
                let out = spcot_send(ch, &spcot_cfg, &mut spcot_base, seed, &mut self.tweak)?;
                self.prg_counter += out.counter;
                let start = (i % stripes) * p.leaves;
                let width = p.leaves.min(p.n - start);
                Block::xor_into(&mut w_full[start..start + width], &out.w[..width]);
            }
        }

        // LPN phase: z = r·A ⊕ w.
        let mut z = w_full;
        self.matrix.encode_blocks(self.base.r0(), &mut z);

        // Bootstrap: retain the front as next iteration's base.
        let required = self.cfg.base_cots_required();
        let output = z.split_off(required);
        self.base = CotSender::new(self.base.delta(), z);
        Ok(output)
    }
}

/// The receiver's long-lived extension state.
///
/// The bit half of the base correlations lives **packed**
/// ([`PackedBits`]) for the receiver's whole lifetime: the constructor
/// packs the dealt choice bits once, every extension's `x = e·A ⊕ u`
/// runs entirely on packed words, and bits are only unpacked at the
/// output boundary (the application's `Vec<bool>`) plus the few
/// `t·log2(ℓ)` bits the SPCOT layer consumes.
#[derive(Debug)]
pub struct FerretReceiver {
    cfg: FerretConfig,
    /// Choice bits of the base correlations (length `k + t·log2(ℓ)`).
    base_bits: PackedBits,
    /// Blocks of the base correlations (same length).
    base_rb: Vec<Block>,
    matrix: SessionMatrix,
    alphas: Dealer,
    tweak: u64,
    prg_counter: PrgCounter,
    /// `(SPCOT, LPN)` nanoseconds of the most recent extension — the
    /// per-phase split the session trace surfaces (zeros under the
    /// telemetry `noop` feature, where the stopwatch never reads the
    /// clock).
    last_phase_nanos: (u64, u64),
}

impl FerretReceiver {
    /// Creates the receiver from its base correlations.
    ///
    /// # Panics
    ///
    /// Panics if `base.len() != cfg.base_cots_required()`.
    pub fn new(cfg: FerretConfig, base: CotReceiver, seed: u64) -> Self {
        assert_eq!(
            base.len(),
            cfg.base_cots_required(),
            "receiver base must hold exactly k + t*log2(l) correlations"
        );
        let matrix = cfg.build_matrix();
        let base_bits = PackedBits::from_bools(base.bits());
        let base_rb = base.rb().to_vec();
        FerretReceiver {
            cfg,
            base_bits,
            base_rb,
            matrix,
            alphas: Dealer::new(seed ^ 0xa1fa),
            tweak: 0,
            prg_counter: PrgCounter::new(),
            last_phase_nanos: (0, 0),
        }
    }

    /// PRG calls consumed so far (all extensions).
    pub fn prg_counter(&self) -> PrgCounter {
        self.prg_counter
    }

    /// `(SPCOT, LPN)` nanoseconds of the most recent
    /// [`FerretReceiver::extend`] — the phase split behind the paper's
    /// Fig. 1c-style latency breakdowns. Zeros before the first
    /// extension and under the telemetry `noop` feature.
    pub fn last_phase_nanos(&self) -> (u64, u64) {
        self.last_phase_nanos
    }

    /// Runs one extension, returning the application's fresh `(x, y)`
    /// correlations: `z = y ⊕ x·Δ` against the sender's output.
    ///
    /// # Errors
    ///
    /// Propagates channel failures.
    pub fn extend<T: Transport + ?Sized>(
        &mut self,
        ch: &mut T,
    ) -> Result<(Vec<bool>, Vec<Block>), ChannelError> {
        let p = self.cfg.params;
        let spcot_cfg = self.cfg.spcot_config();
        let spcot_budget = p.t * p.leaves.trailing_zeros() as usize;
        // SPCOT consumes the first `budget` base correlations (the only
        // bits unpacked this extension besides the output boundary);
        // the remaining k stay packed as the LPN input `e`.
        let mut spcot_bits = Vec::with_capacity(spcot_budget);
        self.base_bits
            .extend_bools(0, spcot_budget, &mut spcot_bits);
        let mut spcot_base = CotReceiver::new(spcot_bits, self.base_rb[..spcot_budget].to_vec());

        // SPCOT phase: the one-hot noise bits land directly in the
        // packed x accumulator and each tree's leaves XOR straight into
        // the y accumulator stripe (no per-tree vectors on the batched
        // path).
        let stripes = p.stripes();
        let spcot_watch = ironman_telemetry::Stopwatch::start();
        let mut x = PackedBits::zeros(p.n);
        let mut y = vec![Block::ZERO; p.n];
        let stripe_width = |i: usize| {
            let start = (i % stripes) * p.leaves;
            (start, p.leaves.min(p.n - start))
        };
        if self.cfg.batched_spcot {
            let alphas: Vec<usize> = (0..p.t)
                .map(|i| self.alphas.random_index(stripe_width(i).1))
                .collect();
            let prg_counter = &mut self.prg_counter;
            spcot_batch_recv_into(
                ch,
                &spcot_cfg,
                &mut spcot_base,
                &alphas,
                &mut self.tweak,
                |i, alpha, leaves, counter| {
                    *prg_counter += counter;
                    let (start, width) = stripe_width(i);
                    x.xor_bit(start + alpha, true);
                    Block::xor_into(&mut y[start..start + width], &leaves[..width]);
                },
            )?;
        } else {
            for i in 0..p.t {
                let (start, width) = stripe_width(i);
                let alpha = self.alphas.random_index(width);
                let out = spcot_recv(ch, &spcot_cfg, &mut spcot_base, alpha, &mut self.tweak)?;
                self.prg_counter += out.counter;
                x.xor_bit(start + out.alpha, true);
                Block::xor_into(&mut y[start..start + width], &out.v[..width]);
            }
        }

        let spcot_nanos = spcot_watch.elapsed_nanos();

        // LPN phase: x = e·A ⊕ u, y = s·A ⊕ v (one fused pass under the
        // tiled kernels).
        let lpn_watch = ironman_telemetry::Stopwatch::start();
        let e = self.base_bits.slice(spcot_budget, p.k);
        self.matrix
            .encode_receiver(&e, &self.base_rb[spcot_budget..], &mut x, &mut y);
        self.last_phase_nanos = (spcot_nanos, lpn_watch.elapsed_nanos());

        // Bootstrap: the front `k + t·log2(ℓ)` outputs become the next
        // iteration's base (bits stay packed); the rest unpack at the
        // application boundary.
        let required = self.cfg.base_cots_required();
        let out_y = y.split_off(required);
        let mut out_x = Vec::with_capacity(p.n - required);
        x.extend_bools(required, p.n - required, &mut out_x);
        self.base_bits = x.slice(0, required);
        self.base_rb = y;
        Ok((out_x, out_y))
    }
}

/// The result of [`run_extension`]: matched sender/receiver outputs plus
/// accounting, for tests and benches.
#[derive(Clone, Debug)]
pub struct FerretOutput {
    /// The global offset `Δ`.
    pub delta: Block,
    /// Sender outputs `z` (one per usable COT).
    pub z: Vec<Block>,
    /// Receiver choice bits `x`.
    pub x: Vec<bool>,
    /// Receiver blocks `y` with `z = y ⊕ x·Δ`.
    pub y: Vec<Block>,
    /// Sender communication stats.
    pub sender_stats: ChannelStats,
    /// Receiver communication stats.
    pub receiver_stats: ChannelStats,
    /// Sender PRG calls.
    pub sender_prg: PrgCounter,
    /// Receiver PRG calls.
    pub receiver_prg: PrgCounter,
}

impl FerretOutput {
    /// Checks `z = y ⊕ x·Δ` on every output correlation.
    ///
    /// # Errors
    ///
    /// Returns the index of the first violation.
    pub fn verify(&self) -> Result<(), usize> {
        for i in 0..self.z.len() {
            if self.z[i] != self.y[i] ^ self.delta.and_bit(self.x[i]) {
                return Err(i);
            }
        }
        Ok(())
    }

    /// Number of usable output COTs.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the output batch is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// Convenience harness: deals fresh bases, runs one extension on two
/// threads, and returns the matched outputs.
pub fn run_extension(cfg: &FerretConfig, seed: u64) -> FerretOutput {
    run_extensions(cfg, seed, 1)
        .pop()
        .expect("one iteration requested")
}

/// Runs `iterations` consecutive extensions over one session (exercising
/// the bootstrap) and returns each iteration's outputs.
///
/// # Panics
///
/// Panics if `iterations == 0` or a protocol thread fails.
pub fn run_extensions(cfg: &FerretConfig, seed: u64, iterations: usize) -> Vec<FerretOutput> {
    let (cs, cr) = crate::channel::LocalChannel::pair();
    run_extensions_over(cfg, seed, iterations, cs, cr)
}

/// [`run_extensions`] over an arbitrary pre-connected transport pair (e.g.
/// `ironman-net`'s TCP loopback endpoints): deals fresh bases, runs the
/// two parties on their own threads across the given transports, and
/// returns each iteration's matched outputs with that transport's real
/// byte/round accounting.
///
/// # Panics
///
/// Panics if `iterations == 0` or a protocol thread fails.
pub fn run_extensions_over<TS, TR>(
    cfg: &FerretConfig,
    seed: u64,
    iterations: usize,
    sender_ch: TS,
    receiver_ch: TR,
) -> Vec<FerretOutput>
where
    TS: crate::channel::Transport + Send,
    TR: crate::channel::Transport + Send,
{
    assert!(iterations > 0, "need at least one iteration");
    let mut dealer = Dealer::new(seed);
    let delta = dealer.random_delta();
    let required = cfg.base_cots_required();
    let (s_base, r_base) = dealer.deal_cot(delta, required);
    // Both parties pin the identical matrix: build it once and hand each
    // thread the Arc instead of paying two generations.
    let mut cfg = cfg.clone();
    cfg.ensure_shared_matrix();
    let cfg_s = cfg.clone();
    let cfg_r = cfg;

    let (sender_iters, receiver_iters, s_stats, r_stats) = crate::channel::run_protocol_over(
        sender_ch,
        receiver_ch,
        move |ch| {
            let mut sender = FerretSender::new(cfg_s, s_base, seed);
            let mut outs = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                outs.push((
                    sender.extend(ch).expect("sender extension failed"),
                    sender.prg_counter(),
                ));
            }
            outs
        },
        move |ch| {
            let mut receiver = FerretReceiver::new(cfg_r, r_base, seed);
            let mut outs = Vec::with_capacity(iterations);
            for _ in 0..iterations {
                outs.push((
                    receiver.extend(ch).expect("receiver extension failed"),
                    receiver.prg_counter(),
                ));
            }
            outs
        },
    );

    sender_iters
        .into_iter()
        .zip(receiver_iters)
        .map(|((z, s_prg), ((x, y), r_prg))| FerretOutput {
            delta,
            z,
            x,
            y,
            sender_stats: s_stats,
            receiver_stats: r_stats,
            sender_prg: s_prg,
            receiver_prg: r_prg,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_extension_verifies() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let out = run_extension(&cfg, 1);
        assert_eq!(out.len(), cfg.usable_outputs());
        out.verify().expect("output COTs must be correlated");
    }

    #[test]
    fn baseline_binary_aes_verifies() {
        let cfg = FerretConfig::ferret_baseline(FerretParams::toy());
        run_extension(&cfg, 2).verify().unwrap();
    }

    #[test]
    fn all_arities_verify() {
        for arity in Arity::SWEEP {
            let cfg = FerretConfig {
                arity,
                ..FerretConfig::new(FerretParams::toy())
            };
            run_extension(&cfg, 3)
                .verify()
                .unwrap_or_else(|i| panic!("{arity}: COT {i} broken"));
        }
    }

    #[test]
    fn sorted_matrix_matches_plain() {
        let plain_cfg = FerretConfig::new(FerretParams::toy());
        let sorted_cfg = FerretConfig {
            sort: Some(SortConfig::default()),
            ..plain_cfg.clone()
        };
        let plain = run_extension(&plain_cfg, 4);
        let sorted = run_extension(&sorted_cfg, 4);
        // Same randomness → bit-identical outputs despite reordered memory
        // accesses (the §5.3 correctness claim).
        assert_eq!(plain.z, sorted.z);
        assert_eq!(plain.x, sorted.x);
        assert_eq!(plain.y, sorted.y);
        sorted.verify().unwrap();
    }

    #[test]
    fn tiled_kernel_matches_naive() {
        // Same randomness through both kernel families ⇒ bit-identical
        // outputs: the tile schedule only reorders XOR accumulation.
        let naive_cfg = FerretConfig::new(FerretParams::toy());
        let tiled_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            ..naive_cfg.clone()
        };
        let naive = run_extensions(&naive_cfg, 40, 2);
        let tiled = run_extensions(&tiled_cfg, 40, 2);
        for (a, b) in naive.iter().zip(&tiled) {
            assert_eq!(a.z, b.z);
            assert_eq!(a.x, b.x);
            assert_eq!(a.y, b.y);
        }
        tiled.last().unwrap().verify().unwrap();
    }

    #[test]
    fn tiled_sorted_matches_plain() {
        // The full combination: §5.3 sorting composed with tiling.
        let plain_cfg = FerretConfig::new(FerretParams::toy());
        let both_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            sort: Some(SortConfig::default()),
            ..plain_cfg.clone()
        };
        let plain = run_extension(&plain_cfg, 41);
        let both = run_extension(&both_cfg, 41);
        assert_eq!(plain.z, both.z);
        assert_eq!(plain.x, both.x);
        assert_eq!(plain.y, both.y);
        both.verify().unwrap();
    }

    #[test]
    fn mixed_kernel_parties_interoperate() {
        // The kernel choice never touches the wire, so a tiled party
        // correlates with a naive peer.
        let naive_cfg = FerretConfig::new(FerretParams::toy());
        let tiled_cfg = FerretConfig {
            kernel: LpnKernel::Tiled,
            ..naive_cfg.clone()
        };
        let mut dealer = Dealer::new(42);
        let delta = dealer.random_delta();
        let (s_base, r_base) = dealer.deal_cot(delta, naive_cfg.base_cots_required());
        let (out_z, (out_x, out_y), _, _) = crate::channel::run_protocol(
            move |ch| {
                let mut sender = FerretSender::new(tiled_cfg, s_base, 42);
                sender.extend(ch).expect("sender extension")
            },
            move |ch| {
                let mut receiver = FerretReceiver::new(naive_cfg, r_base, 42);
                receiver.extend(ch).expect("receiver extension")
            },
        );
        for i in 0..out_z.len() {
            assert_eq!(out_z[i], out_y[i] ^ delta.and_bit(out_x[i]), "index {i}");
        }
    }

    #[test]
    fn recommended_picks_split_for_table4() {
        for p in FerretParams::TABLE4 {
            let cfg = FerretConfig::recommended(p);
            assert_eq!(cfg.kernel, LpnKernel::Split, "{p}");
            assert!(cfg.sort.is_none(), "software sort never wins ({p})");
            assert_eq!(cfg.simd, SimdMode::Auto, "{p}");
        }
        // Toy-scale inputs are cache-resident; the simple path stays.
        assert_eq!(
            FerretConfig::recommended(FerretParams::toy()).kernel,
            LpnKernel::Naive
        );
    }

    #[test]
    fn split_kernel_matches_naive() {
        // Split only reorders the receiver's two passes (and tiles the
        // block half) ⇒ bit-identical outputs, bootstrap included.
        let naive_cfg = FerretConfig::new(FerretParams::toy());
        let split_cfg = FerretConfig {
            kernel: LpnKernel::Split,
            ..naive_cfg.clone()
        };
        let naive = run_extensions(&naive_cfg, 44, 2);
        let split = run_extensions(&split_cfg, 44, 2);
        for (a, b) in naive.iter().zip(&split) {
            assert_eq!(a.z, b.z);
            assert_eq!(a.x, b.x);
            assert_eq!(a.y, b.y);
        }
        split.last().unwrap().verify().unwrap();
    }

    #[test]
    fn split_sorted_matches_plain() {
        // Split on a sorted matrix falls back to the fused tiled pass.
        let plain_cfg = FerretConfig::new(FerretParams::toy());
        let cfg = FerretConfig {
            kernel: LpnKernel::Split,
            sort: Some(SortConfig::default()),
            ..plain_cfg.clone()
        };
        let plain = run_extension(&plain_cfg, 45);
        let split = run_extension(&cfg, 45);
        assert_eq!(plain.z, split.z);
        assert_eq!(plain.x, split.x);
        assert_eq!(plain.y, split.y);
    }

    #[test]
    fn forced_scalar_matches_auto() {
        // The SIMD tier is pure instruction selection: outputs must be
        // bit-identical whichever tier dispatch lands on.
        let auto_cfg = FerretConfig {
            kernel: LpnKernel::Split,
            ..FerretConfig::new(FerretParams::toy())
        };
        let scalar_cfg = FerretConfig {
            simd: SimdMode::ForceScalar,
            ..auto_cfg.clone()
        };
        let auto = run_extension(&auto_cfg, 46);
        let scalar = run_extension(&scalar_cfg, 46);
        assert_eq!(auto.z, scalar.z);
        assert_eq!(auto.x, scalar.x);
        assert_eq!(auto.y, scalar.y);
    }

    #[test]
    fn shared_matrix_produces_identical_outputs() {
        // (The "one generate for N consumers" count is asserted in
        // `ironman-core`'s single-test `shared_matrix` binary, where the
        // process-global counter is race-free.)
        let mut cfg = FerretConfig::new(FerretParams::toy());
        cfg.ensure_shared_matrix();
        assert!(cfg.shared_matrix.is_some());
        run_extensions(&cfg, 47, 2)
            .last()
            .unwrap()
            .verify()
            .unwrap();
        // Outputs are identical to the generate-per-party path.
        let fresh = FerretConfig::new(FerretParams::toy());
        assert_eq!(run_extension(&fresh, 48).z, run_extension(&cfg, 48).z);
    }

    #[test]
    #[should_panic(expected = "different LPN configuration")]
    fn shared_matrix_fingerprint_mismatch_rejected() {
        let mut cfg = FerretConfig::new(FerretParams::toy());
        cfg.ensure_shared_matrix();
        // Retarget the config at a different matrix without rebuilding.
        let stale = FerretConfig {
            lpn_seed: Block::from(0xdead_beefu128),
            ..cfg
        };
        let _ = stale.build_matrix();
    }

    #[test]
    fn multi_iteration_bootstrap() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let outs = run_extensions(&cfg, 5, 3);
        assert_eq!(outs.len(), 3);
        for (i, out) in outs.iter().enumerate() {
            out.verify()
                .unwrap_or_else(|j| panic!("iteration {i}, COT {j} broken"));
            assert_eq!(out.len(), cfg.usable_outputs());
        }
        // Outputs across iterations must differ (fresh randomness).
        assert_ne!(outs[0].z, outs[1].z);
    }

    #[test]
    fn mixed_fanout_params_verify() {
        // toy_large uses ℓ=512 (4^4·2 with quad trees → mixed final level).
        let cfg = FerretConfig::new(FerretParams::toy_large());
        run_extension(&cfg, 6).verify().unwrap();
    }

    #[test]
    fn noise_bits_present() {
        let cfg = FerretConfig::new(FerretParams::toy());
        let out = run_extension(&cfg, 7);
        let ones = out.x.iter().filter(|&&b| b).count();
        // x = e·A ⊕ u is pseudorandom: expect a roughly balanced bit vector.
        let n = out.x.len();
        assert!(
            ones > n / 4 && ones < 3 * n / 4,
            "x looks degenerate: {ones}/{n}"
        );
    }

    #[test]
    fn quad_chacha_much_cheaper_than_binary_aes() {
        let quad = run_extension(&FerretConfig::new(FerretParams::toy()), 8);
        let bin = run_extension(&FerretConfig::ferret_baseline(FerretParams::toy()), 8);
        assert!(
            bin.sender_prg.total() > 5 * quad.sender_prg.total(),
            "expected ~6x call reduction: binary {} vs quad {}",
            bin.sender_prg.total(),
            quad.sender_prg.total()
        );
    }
}
