//! Ideal base-correlation dealer.
//!
//! PCG-style OTE bootstraps from a small number of base COT correlations
//! produced once by public-key OT in the paper's initialization phase
//! (excluded from every measurement in §6, as is standard). We substitute
//! an ideal trusted dealer that samples correlations with exactly the right
//! distribution; see DESIGN.md's substitution table.
//!
//! The dealer is deterministic in its seed so experiments are reproducible.

use crate::cot::{CotReceiver, CotSender};
use ironman_prg::{Aes128, Block};

/// A deterministic dealer of base COT correlations.
///
/// # Example
///
/// ```
/// use ironman_ot::dealer::Dealer;
/// use ironman_ot::cot::verify_correlation;
///
/// let mut dealer = Dealer::new(1234);
/// let delta = dealer.random_delta();
/// let (s, r) = dealer.deal_cot(delta, 32);
/// assert!(verify_correlation(&s, &r).is_ok());
/// ```
#[derive(Clone, Debug)]
pub struct Dealer {
    prf: Aes128,
    counter: u128,
}

impl Dealer {
    /// Creates a dealer with a reproducible seed.
    pub fn new(seed: u64) -> Self {
        Dealer {
            prf: Aes128::new(Block::from(seed as u128 | 1 << 127)),
            counter: 0,
        }
    }

    /// Draws the next pseudorandom block.
    pub fn random_block(&mut self) -> Block {
        self.counter += 1;
        self.prf.encrypt_block(Block::from(self.counter))
    }

    /// Draws a pseudorandom bit.
    pub fn random_bit(&mut self) -> bool {
        self.random_block().lsb()
    }

    /// Draws a uniformly-ish random index in `0..bound` (rejection-free
    /// modular reduction; the tiny bias is irrelevant for workloads).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn random_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        (self.random_block().mix() % bound as u64) as usize
    }

    /// Draws a global correlation offset `Δ` (forced nonzero).
    pub fn random_delta(&mut self) -> Block {
        loop {
            let d = self.random_block();
            if d != Block::ZERO {
                return d;
            }
        }
    }

    /// Deals `count` COT correlations under `delta` with random choice bits.
    pub fn deal_cot(&mut self, delta: Block, count: usize) -> (CotSender, CotReceiver) {
        let mut r0 = Vec::with_capacity(count);
        let mut bits = Vec::with_capacity(count);
        let mut rb = Vec::with_capacity(count);
        for _ in 0..count {
            let r = self.random_block();
            let b = self.random_bit();
            r0.push(r);
            bits.push(b);
            rb.push(r ^ delta.and_bit(b));
        }
        (CotSender::new(delta, r0), CotReceiver::new(bits, rb))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cot::verify_correlation;

    #[test]
    fn deterministic_in_seed() {
        let mut a = Dealer::new(7);
        let mut b = Dealer::new(7);
        assert_eq!(a.random_block(), b.random_block());
        assert_eq!(a.random_block(), b.random_block());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Dealer::new(7);
        let mut b = Dealer::new(8);
        assert_ne!(a.random_block(), b.random_block());
    }

    #[test]
    fn dealt_cots_verify() {
        let mut d = Dealer::new(3);
        let delta = d.random_delta();
        let (s, r) = d.deal_cot(delta, 128);
        assert!(verify_correlation(&s, &r).is_ok());
        assert_eq!(s.len(), 128);
    }

    #[test]
    fn choice_bits_are_mixed() {
        let mut d = Dealer::new(3);
        let delta = d.random_delta();
        let (_, r) = d.deal_cot(delta, 256);
        let ones = r.bits().iter().filter(|&&b| b).count();
        assert!(
            (64..192).contains(&ones),
            "bits look non-random: {ones}/256"
        );
    }

    #[test]
    fn random_index_in_bounds() {
        let mut d = Dealer::new(5);
        for _ in 0..100 {
            assert!(d.random_index(10) < 10);
        }
    }
}
