//! Level-batched SPCOT: all `t` trees of an extension advance through
//! their GGM levels together, with one message per level instead of one
//! conversation per tree.
//!
//! Production Ferret implementations batch this way; it collapses the
//! round count from `O(t · depth)` to `O(depth)` — decisive under WAN RTTs
//! (Fig. 7(c)'s regime) and exactly the execution shape the Ironman DIMM
//! module's inter-tree parallelism (§4.3) assumes. The per-tree *outputs*
//! are identical to the sequential protocol of [`crate::spcot`]: batching
//! only reorders messages.

use crate::channel::{ChannelError, Transport};
use crate::chosen::{recv_chosen, send_chosen};
use crate::cot::{CotReceiver, CotSender};
use crate::spcot::{SpcotConfig, SpcotReceiverOutput, SpcotSenderOutput};
use ironman_ggm::{Arity, GgmTree, LevelShape, PuncturedTree};
use ironman_prg::{tree_prg::build_tree_prg, Aes128, Block, PrgCounter};

/// Inner pad-tree PRG (shared with the sequential (m−1)-out-of-m OT).
fn pad_prg(session_key: Block) -> ironman_prg::AesTreePrg {
    ironman_prg::AesTreePrg::new(session_key ^ Block::from(0x6d6f74u128), 2)
}

fn level_seed(session_key: Block, outer_seed: Block, lvl: usize) -> Block {
    Aes128::new(session_key ^ Block::from(0x1e7e1u128))
        .encrypt_block(outer_seed ^ Block::from(lvl as u128))
}

/// Sender side: runs `seeds.len()` SPCOTs with per-level batching.
///
/// # Errors
///
/// Propagates channel failures.
pub fn spcot_batch_send<T: Transport + ?Sized>(
    ch: &mut T,
    cfg: &SpcotConfig,
    base: &mut CotSender,
    seeds: &[Block],
    tweak: &mut u64,
) -> Result<Vec<SpcotSenderOutput>, ChannelError> {
    let mut outs = Vec::with_capacity(seeds.len());
    spcot_batch_send_into(ch, cfg, base, seeds, tweak, |_, leaves, counter| {
        outs.push(SpcotSenderOutput {
            w: leaves.to_vec(),
            counter,
        });
    })?;
    Ok(outs)
}

/// [`spcot_batch_send`] without intermediate leaf vectors: `sink` is
/// handed each tree's index, its leaf slice (borrowed from the expanded
/// tree) and its PRG counter, and accumulates wherever the caller wants
/// — the extension loop XORs straight into its length-`n` LPN
/// accumulator stripe.
///
/// # Errors
///
/// Propagates channel failures.
pub fn spcot_batch_send_into<T: Transport + ?Sized>(
    ch: &mut T,
    cfg: &SpcotConfig,
    base: &mut CotSender,
    seeds: &[Block],
    tweak: &mut u64,
    mut sink: impl FnMut(usize, &[Block], PrgCounter),
) -> Result<(), ChannelError> {
    let prg = build_tree_prg(cfg.prg, cfg.session_key, cfg.arity.get());
    let trees: Vec<GgmTree> = seeds
        .iter()
        .map(|&s| GgmTree::expand(prg.as_ref(), s, cfg.arity, cfg.leaves))
        .collect();
    let sums: Vec<Vec<Vec<Block>>> = trees.iter().map(|t| t.level_sums()).collect();
    let shape = LevelShape::new(cfg.arity, cfg.leaves);

    for (lvl, &fanout) in shape.fanouts().iter().enumerate() {
        if fanout == 2 {
            // One chosen-OT batch covering every tree's (K0, K1).
            let pairs: Vec<(Block, Block)> = sums.iter().map(|s| (s[lvl][0], s[lvl][1])).collect();
            send_chosen(ch, base, &pairs, *tweak)?;
            *tweak += pairs.len() as u64;
        } else {
            // Batched (f−1)-out-of-f OT: per inner level one chosen-OT
            // batch across trees, then one message with all masked sums.
            let inner = pad_prg(cfg.session_key);
            let pad_trees: Vec<GgmTree> = seeds
                .iter()
                .map(|&s| {
                    GgmTree::expand(
                        &inner,
                        level_seed(cfg.session_key, s, lvl),
                        Arity::BINARY,
                        fanout,
                    )
                })
                .collect();
            let inner_depth = fanout.trailing_zeros() as usize;
            for inner_lvl in 0..inner_depth {
                let pairs: Vec<(Block, Block)> = pad_trees
                    .iter()
                    .map(|t| {
                        let s = t.level_sums();
                        (s[inner_lvl][0], s[inner_lvl][1])
                    })
                    .collect();
                send_chosen(ch, base, &pairs, *tweak)?;
                *tweak += pairs.len() as u64;
            }
            let mut masked = Vec::with_capacity(seeds.len() * fanout);
            for (sum, pad) in sums.iter().zip(pad_trees.iter()) {
                for (j, &k) in sum[lvl].iter().enumerate() {
                    masked.push(k ^ pad.leaves()[j]);
                }
            }
            ch.send_blocks(&masked)?;
        }
    }
    // One message with every tree's masked leaf sum (step ④, batched).
    let finals: Vec<Block> = trees.iter().map(|t| base.delta() ^ t.leaf_sum()).collect();
    ch.send_blocks(&finals)?;

    for (i, t) in trees.iter().enumerate() {
        sink(i, t.leaves(), t.counter());
    }
    Ok(())
}

/// Receiver side of the batched protocol.
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if any `alpha` is out of range for `cfg.leaves`.
pub fn spcot_batch_recv<T: Transport + ?Sized>(
    ch: &mut T,
    cfg: &SpcotConfig,
    base: &mut CotReceiver,
    alphas: &[usize],
    tweak: &mut u64,
) -> Result<Vec<SpcotReceiverOutput>, ChannelError> {
    let mut outs = Vec::with_capacity(alphas.len());
    spcot_batch_recv_into(ch, cfg, base, alphas, tweak, |_, alpha, leaves, counter| {
        outs.push(SpcotReceiverOutput {
            alpha,
            v: leaves.to_vec(),
            counter,
        });
    })?;
    Ok(outs)
}

/// [`spcot_batch_recv`] without intermediate leaf vectors: `sink` is
/// handed each tree's index, its punctured position `α`, its recovered
/// leaf slice and its PRG counter (see [`spcot_batch_send_into`]).
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if any `alpha` is out of range for `cfg.leaves`.
pub fn spcot_batch_recv_into<T: Transport + ?Sized>(
    ch: &mut T,
    cfg: &SpcotConfig,
    base: &mut CotReceiver,
    alphas: &[usize],
    tweak: &mut u64,
    mut sink: impl FnMut(usize, usize, &[Block], PrgCounter),
) -> Result<(), ChannelError> {
    let prg = build_tree_prg(cfg.prg, cfg.session_key, cfg.arity.get());
    let shape = LevelShape::new(cfg.arity, cfg.leaves);
    let digits: Vec<Vec<usize>> = alphas.iter().map(|&a| shape.digits(a)).collect();
    let inner_shape_cache: Vec<usize> = shape.fanouts().to_vec();

    // Collected per-tree, per-level branch sums.
    let mut level_sums: Vec<Vec<Vec<Block>>> = alphas
        .iter()
        .map(|_| Vec::with_capacity(shape.depth()))
        .collect();

    for (lvl, &fanout) in inner_shape_cache.iter().enumerate() {
        if fanout == 2 {
            let choices: Vec<bool> = digits.iter().map(|d| d[lvl] == 0).collect();
            let got = recv_chosen(ch, base, &choices, *tweak)?;
            *tweak += choices.len() as u64;
            for (t, sums) in level_sums.iter_mut().enumerate() {
                let mut s = vec![Block::ZERO; 2];
                s[1 - digits[t][lvl]] = got[t];
                sums.push(s);
            }
        } else {
            let inner = pad_prg(cfg.session_key);
            let inner_depth = fanout.trailing_zeros() as usize;
            let inner_shape = LevelShape::new(Arity::BINARY, fanout);
            let inner_digits: Vec<Vec<usize>> =
                digits.iter().map(|d| inner_shape.digits(d[lvl])).collect();
            // Per inner level, one chosen-OT batch across trees.
            let mut inner_sums: Vec<Vec<Block>> = vec![Vec::new(); alphas.len()];
            for inner_lvl in 0..inner_depth {
                let choices: Vec<bool> = inner_digits.iter().map(|d| d[inner_lvl] == 0).collect();
                let got = recv_chosen(ch, base, &choices, *tweak)?;
                *tweak += choices.len() as u64;
                for (t, s) in inner_sums.iter_mut().enumerate() {
                    s.push(got[t]);
                }
            }
            let masked = ch.recv_blocks()?;
            assert_eq!(masked.len(), alphas.len() * fanout, "masked sum batch size");
            for (t, sums) in level_sums.iter_mut().enumerate() {
                let pads = PuncturedTree::reconstruct(
                    &inner,
                    Arity::BINARY,
                    fanout,
                    digits[t][lvl],
                    |l, j| {
                        debug_assert_ne!(j, inner_digits[t][l]);
                        inner_sums[t][l]
                    },
                );
                let mut s = vec![Block::ZERO; fanout];
                for j in 0..fanout {
                    if j != digits[t][lvl] {
                        s[j] = masked[t * fanout + j] ^ pads.leaves()[j];
                    }
                }
                sums.push(s);
            }
        }
    }

    let finals = ch.recv_blocks()?;
    assert_eq!(finals.len(), alphas.len(), "final masked-sum batch size");
    for (t, &alpha) in alphas.iter().enumerate() {
        let mut punct =
            PuncturedTree::reconstruct(prg.as_ref(), cfg.arity, cfg.leaves, alpha, |l, j| {
                debug_assert_ne!(j, digits[t][l]);
                level_sums[t][l][j]
            });
        punct.recover_punctured(finals[t]);
        sink(t, alpha, punct.leaves(), punct.counter());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::run_protocol;
    use crate::dealer::Dealer;
    use crate::spcot::{spcot_recv, spcot_send, verify_spcot};
    use ironman_prg::PrgKind;

    fn setup(
        cfg: &SpcotConfig,
        trees: usize,
        seed: u64,
    ) -> (Block, CotSender, CotReceiver, Vec<Block>, Vec<usize>) {
        let mut dealer = Dealer::new(seed);
        let delta = dealer.random_delta();
        let (sb, rb) = dealer.deal_cot(delta, trees * cfg.base_cots_needed());
        let seeds: Vec<Block> = (0..trees).map(|_| dealer.random_block()).collect();
        let alphas: Vec<usize> = (0..trees)
            .map(|_| dealer.random_index(cfg.leaves))
            .collect();
        (delta, sb, rb, seeds, alphas)
    }

    fn run_batched(
        cfg: SpcotConfig,
        trees: usize,
        seed: u64,
    ) -> (
        Block,
        Vec<SpcotSenderOutput>,
        Vec<SpcotReceiverOutput>,
        u64,
        u64,
    ) {
        let (delta, mut sb, mut rb, seeds, alphas) = setup(&cfg, trees, seed);
        let (s_out, r_out, s_stats, _) = run_protocol(
            move |ch| {
                let mut tweak = 0;
                spcot_batch_send(ch, &cfg, &mut sb, &seeds, &mut tweak).unwrap()
            },
            move |ch| {
                let mut tweak = 0;
                spcot_batch_recv(ch, &cfg, &mut rb, &alphas, &mut tweak).unwrap()
            },
        );
        (delta, s_out, r_out, s_stats.messages_sent, s_stats.rounds)
    }

    #[test]
    fn batched_outputs_are_correlated_binary() {
        let cfg = SpcotConfig::ferret_baseline(128, Block::from(1u128));
        let (delta, s, r, _, _) = run_batched(cfg, 12, 1);
        for (so, ro) in s.iter().zip(r.iter()) {
            verify_spcot(delta, so, ro).unwrap();
        }
    }

    #[test]
    fn batched_outputs_are_correlated_quad() {
        let cfg = SpcotConfig::ironman(256, Block::from(2u128));
        let (delta, s, r, _, _) = run_batched(cfg, 16, 2);
        for (so, ro) in s.iter().zip(r.iter()) {
            verify_spcot(delta, so, ro).unwrap();
        }
    }

    #[test]
    fn batched_equals_sequential_outputs() {
        // Same seeds/alphas through both protocol shapes: identical w and v.
        let cfg = SpcotConfig::ironman(64, Block::from(3u128));
        let trees = 6;
        let (_, mut sb, mut rb, seeds, alphas) = setup(&cfg, trees, 3);
        let seeds2 = seeds.clone();
        let alphas2 = alphas.clone();
        let (batch_s, batch_r, _, _) = run_protocol(
            {
                let mut sb = sb.clone();
                let seeds = seeds.clone();
                move |ch| {
                    let mut tweak = 0;
                    spcot_batch_send(ch, &cfg, &mut sb, &seeds, &mut tweak).unwrap()
                }
            },
            {
                let mut rb = rb.clone();
                let alphas = alphas.clone();
                move |ch| {
                    let mut tweak = 0;
                    spcot_batch_recv(ch, &cfg, &mut rb, &alphas, &mut tweak).unwrap()
                }
            },
        );
        let (seq_s, seq_r, _, _) = run_protocol(
            move |ch| {
                let mut tweak = 0;
                seeds2
                    .iter()
                    .map(|&s| spcot_send(ch, &cfg, &mut sb, s, &mut tweak).unwrap())
                    .collect::<Vec<_>>()
            },
            move |ch| {
                let mut tweak = 0;
                alphas2
                    .iter()
                    .map(|&a| spcot_recv(ch, &cfg, &mut rb, a, &mut tweak).unwrap())
                    .collect::<Vec<_>>()
            },
        );
        for t in 0..trees {
            assert_eq!(batch_s[t].w, seq_s[t].w, "tree {t} sender output");
            assert_eq!(batch_r[t].v, seq_r[t].v, "tree {t} receiver output");
        }
    }

    #[test]
    fn batching_collapses_message_count() {
        let cfg = SpcotConfig::ironman(256, Block::from(4u128));
        let trees = 16;
        let (_, batch_msgs) = {
            let (_, _, _, msgs, _) = run_batched(cfg, trees, 4);
            ((), msgs)
        };
        // Sequential: every tree repeats the per-level conversation.
        let (_, mut sb, mut rb, seeds, alphas) = setup(&cfg, trees, 4);
        let (_, _, s_stats, _) = run_protocol(
            move |ch| {
                let mut tweak = 0;
                for &s in &seeds {
                    spcot_send(ch, &cfg, &mut sb, s, &mut tweak).unwrap();
                }
            },
            move |ch| {
                let mut tweak = 0;
                for &a in &alphas {
                    spcot_recv(ch, &cfg, &mut rb, a, &mut tweak).unwrap();
                }
            },
        );
        assert!(
            batch_msgs * 4 < s_stats.messages_sent,
            "batched {batch_msgs} messages vs sequential {}",
            s_stats.messages_sent
        );
    }

    #[test]
    fn mixed_fanout_batch() {
        // ℓ = 512 with quad trees: four 4-ary levels + one binary level.
        let cfg = SpcotConfig {
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            leaves: 512,
            session_key: Block::from(5u128),
        };
        let (delta, s, r, _, _) = run_batched(cfg, 8, 5);
        for (so, ro) in s.iter().zip(r.iter()) {
            verify_spcot(delta, so, ro).unwrap();
        }
    }
}
