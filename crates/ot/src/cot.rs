//! Correlated-OT (COT) correlation types.
//!
//! A COT correlation (Fig. 2 of the paper) gives the sender two strings
//! `r0, r1` with `r1 = r0 ⊕ Δ` for a global offset `Δ`, and gives the
//! receiver a random bit `b` together with `r_b = r0 ⊕ b·Δ`. The sender
//! side is fully described by `(Δ, r0)`; the receiver side by `(b, r_b)`.

use ironman_prg::Block;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The sender's share of a batch of COT correlations: the global `Δ` and
/// one `r0` block per correlation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CotSender {
    delta: Block,
    r0: Vec<Block>,
}

/// The receiver's share of a batch of COT correlations: choice bits and the
/// corresponding `r_b` blocks.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CotReceiver {
    bits: Vec<bool>,
    rb: Vec<Block>,
}

/// Error returned when a COT batch fails its correlation check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorrelationError {
    /// Index of the first violating correlation.
    pub index: usize,
}

impl fmt::Display for CorrelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "COT correlation violated at index {}", self.index)
    }
}

impl std::error::Error for CorrelationError {}

impl CotSender {
    /// Wraps the sender's share of a COT batch.
    pub fn new(delta: Block, r0: Vec<Block>) -> Self {
        CotSender { delta, r0 }
    }

    /// The global correlation offset `Δ`.
    pub fn delta(&self) -> Block {
        self.delta
    }

    /// The `r0` strings.
    pub fn r0(&self) -> &[Block] {
        &self.r0
    }

    /// Number of correlations in the batch.
    pub fn len(&self) -> usize {
        self.r0.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.r0.is_empty()
    }

    /// The message pair `(r0, r1 = r0 ⊕ Δ)` of correlation `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn pair(&self, i: usize) -> (Block, Block) {
        let r0 = self.r0[i];
        (r0, r0 ^ self.delta)
    }

    /// Splits off the first `count` correlations into a new batch
    /// (consuming them from `self`). Used to feed sub-protocols.
    ///
    /// # Panics
    ///
    /// Panics if `count > len()`.
    pub fn split_off_front(&mut self, count: usize) -> CotSender {
        assert!(
            count <= self.r0.len(),
            "cannot split {count} of {}",
            self.r0.len()
        );
        let rest = self.r0.split_off(count);
        let front = std::mem::replace(&mut self.r0, rest);
        CotSender {
            delta: self.delta,
            r0: front,
        }
    }
}

impl CotReceiver {
    /// Wraps the receiver's share of a COT batch.
    ///
    /// # Panics
    ///
    /// Panics if `bits` and `rb` lengths differ.
    pub fn new(bits: Vec<bool>, rb: Vec<Block>) -> Self {
        assert_eq!(bits.len(), rb.len(), "choice bits and blocks must align");
        CotReceiver { bits, rb }
    }

    /// The choice bits `b`.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The received strings `r_b`.
    pub fn rb(&self) -> &[Block] {
        &self.rb
    }

    /// Number of correlations in the batch.
    pub fn len(&self) -> usize {
        self.rb.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.rb.is_empty()
    }

    /// Splits off the first `count` correlations (see
    /// [`CotSender::split_off_front`]).
    ///
    /// # Panics
    ///
    /// Panics if `count > len()`.
    pub fn split_off_front(&mut self, count: usize) -> CotReceiver {
        assert!(
            count <= self.rb.len(),
            "cannot split {count} of {}",
            self.rb.len()
        );
        let rest_bits = self.bits.split_off(count);
        let rest_rb = self.rb.split_off(count);
        let front_bits = std::mem::replace(&mut self.bits, rest_bits);
        let front_rb = std::mem::replace(&mut self.rb, rest_rb);
        CotReceiver {
            bits: front_bits,
            rb: front_rb,
        }
    }
}

/// Checks the COT correlation `r_b = r0 ⊕ b·Δ` across a batch pair.
///
/// # Errors
///
/// Returns the index of the first violation.
///
/// # Example
///
/// ```
/// use ironman_ot::cot::{verify_correlation, CotReceiver, CotSender};
/// use ironman_prg::Block;
///
/// let delta = Block::from(0xffu128);
/// let s = CotSender::new(delta, vec![Block::from(1u128)]);
/// let r = CotReceiver::new(vec![true], vec![Block::from(1u128) ^ delta]);
/// assert!(verify_correlation(&s, &r).is_ok());
/// ```
pub fn verify_correlation(s: &CotSender, r: &CotReceiver) -> Result<(), CorrelationError> {
    assert_eq!(s.len(), r.len(), "batch sizes must match");
    for i in 0..s.len() {
        let expect = s.r0[i] ^ s.delta.and_bit(r.bits[i]);
        if r.rb[i] != expect {
            return Err(CorrelationError { index: i });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(delta: u128, n: usize) -> (CotSender, CotReceiver) {
        let delta = Block::from(delta);
        let r0: Vec<Block> = (0..n as u128)
            .map(|i| Block::from(i * 0x1111 + 7))
            .collect();
        let bits: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
        let rb: Vec<Block> = r0
            .iter()
            .zip(&bits)
            .map(|(&r, &b)| r ^ delta.and_bit(b))
            .collect();
        (CotSender::new(delta, r0), CotReceiver::new(bits, rb))
    }

    #[test]
    fn valid_batch_verifies() {
        let (s, r) = sample(0xdead, 16);
        assert!(verify_correlation(&s, &r).is_ok());
    }

    #[test]
    fn corrupted_batch_detected() {
        let (s, mut r) = sample(0xdead, 16);
        r.rb[5] ^= Block::from(1u128);
        assert_eq!(verify_correlation(&s, &r).unwrap_err().index, 5);
    }

    #[test]
    fn pair_has_delta_offset() {
        let (s, _) = sample(0xabc, 4);
        let (r0, r1) = s.pair(2);
        assert_eq!(r0 ^ r1, s.delta());
    }

    #[test]
    fn split_preserves_correlation() {
        let (mut s, mut r) = sample(0x77, 10);
        let sf = s.split_off_front(4);
        let rf = r.split_off_front(4);
        assert_eq!(sf.len(), 4);
        assert_eq!(s.len(), 6);
        assert!(verify_correlation(&sf, &rf).is_ok());
        assert!(verify_correlation(&s, &r).is_ok());
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn oversplit_panics() {
        let (mut s, _) = sample(1, 3);
        let _ = s.split_off_front(4);
    }

    #[test]
    fn empty_checks() {
        let (s, r) = sample(1, 0);
        assert!(s.is_empty() && r.is_empty());
        assert!(verify_correlation(&s, &r).is_ok());
    }
}
