//! Byte-counting duplex channels and a two-thread protocol executor.
//!
//! Every protocol in this workspace speaks through [`Transport`], so the
//! bytes and round trips of each execution are measured directly. The
//! paper's Fig. 7(b–c) (communication/latency vs. tree arity) and Fig. 16
//! (unified-architecture communication reduction) are regenerated from
//! these counters combined with the `ironman-perf` network model.

use ironman_prg::Block;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::mpsc;

/// Error type for channel operations.
#[derive(Debug)]
pub enum ChannelError {
    /// The peer hung up before the expected message arrived.
    Disconnected,
    /// A received message had an unexpected length.
    Malformed {
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        actual: usize,
    },
    /// An underlying socket/stream failure (networked transports).
    Io(std::io::Error),
    /// The peer answered with a service-level rejection (the connection
    /// itself is healthy; retrying elsewhere would hit the same answer).
    Service(String),
    /// A request asked for more than the peer (or a client-side limit)
    /// can serve in one message; split it instead of sending it.
    RequestTooLarge {
        /// Largest size one request may carry.
        max: u64,
        /// Size actually requested.
        requested: u64,
    },
    /// The peer fenced a request made under a stale cluster-membership
    /// epoch: the caller's routing view is out of date. Sync the
    /// directory delta, re-resolve, and retry — the server is healthy.
    WrongEpoch {
        /// The peer's current directory epoch.
        current: u64,
    },
    /// An operation hit its deadline (`SO_RCVTIMEO`/`SO_SNDTIMEO` or a
    /// connect timeout) before the peer answered. Distinct from hard IO
    /// errors: the peer may be alive but slow, so callers back off or
    /// fail over rather than treating the session as corrupt.
    TimedOut,
    /// The peer is up but degraded (e.g. supply-starved) and declined to
    /// serve; it hints when a retry is worth attempting. Honoring the
    /// hint instead of hammering is what keeps a brownout from becoming
    /// a retry storm.
    Unavailable {
        /// Suggested minimum wait before retrying this peer, in
        /// milliseconds.
        retry_after_ms: u64,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::Disconnected => write!(f, "channel peer disconnected"),
            ChannelError::Malformed { expected, actual } => {
                write!(
                    f,
                    "malformed message: expected {expected} bytes, got {actual}"
                )
            }
            ChannelError::Io(e) => write!(f, "channel I/O error: {e}"),
            ChannelError::Service(msg) => write!(f, "service error: {msg}"),
            ChannelError::RequestTooLarge { max, requested } => {
                write!(f, "request of {requested} exceeds per-request limit {max}")
            }
            ChannelError::WrongEpoch { current } => {
                write!(f, "request fenced: peer is at directory epoch {current}")
            }
            ChannelError::TimedOut => write!(f, "operation timed out before the peer answered"),
            ChannelError::Unavailable { retry_after_ms } => {
                write!(f, "peer unavailable; retry after {retry_after_ms} ms")
            }
        }
    }
}

impl std::error::Error for ChannelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChannelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ChannelError {
    fn from(e: std::io::Error) -> Self {
        // A peer closing its socket surfaces as EOF/broken-pipe; fold those
        // into the logical Disconnected case the protocols already handle.
        // Socket deadlines surface as TimedOut on some platforms and
        // WouldBlock on others (Unix read timeouts): both mean "deadline
        // hit", neither means the stream is corrupt.
        match e.kind() {
            std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe => ChannelError::Disconnected,
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => ChannelError::TimedOut,
            _ => ChannelError::Io(e),
        }
    }
}

/// Packs a bit vector into the canonical framing shared by every transport:
/// an 8-byte little-endian bit count followed by the LSB-first packed bits.
///
/// [`Transport::send_bits`] and the `ironman-net` wire codec both use this
/// layout, so local and socket paths serialize identically.
pub fn encode_bits(bits: &[bool]) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode_bits_into(bits, &mut bytes);
    bytes
}

/// Appending form of [`encode_bits`] for serialization hot paths: writes
/// the identical framing onto the end of `out`, reusing its allocation.
pub fn encode_bits_into(bits: &[bool], out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + bits.len().div_ceil(8) + 8, 0);
    out[start..start + 8].copy_from_slice(&(bits.len() as u64).to_le_bytes());
    let packed = &mut out[start + 8..];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
}

/// Inverse of [`encode_bits`].
///
/// # Errors
///
/// Returns [`ChannelError::Malformed`] when the header is truncated or the
/// payload length disagrees with the declared bit count.
pub fn decode_bits(bytes: &[u8]) -> Result<Vec<bool>, ChannelError> {
    let mut bits = Vec::new();
    decode_bits_into(bytes, &mut bits)?;
    Ok(bits)
}

/// Buffer-reusing form of [`decode_bits`]: clears `out` and fills it with
/// the decoded bits, keeping its allocation.
///
/// # Errors
///
/// Same failure modes as [`decode_bits`].
pub fn decode_bits_into(bytes: &[u8], out: &mut Vec<bool>) -> Result<(), ChannelError> {
    if bytes.len() < 8 {
        return Err(ChannelError::Malformed {
            expected: 8,
            actual: bytes.len(),
        });
    }
    let len = u64::from_le_bytes(bytes[..8].try_into().expect("8-byte header")) as usize;
    if bytes.len() != len.div_ceil(8) + 8 {
        return Err(ChannelError::Malformed {
            expected: len.div_ceil(8) + 8,
            actual: bytes.len(),
        });
    }
    out.clear();
    out.reserve(len);
    out.extend((0..len).map(|i| bytes[8 + i / 8] >> (i % 8) & 1 == 1));
    Ok(())
}

/// Communication statistics of one endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Bytes sent by this endpoint.
    pub bytes_sent: u64,
    /// Bytes received by this endpoint.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Communication rounds: number of send→receive direction switches
    /// observed at this endpoint (a proxy for RTT count).
    pub rounds: u64,
}

impl ChannelStats {
    /// Total traffic through this endpoint in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }
}

/// A duplex message transport with accounting.
///
/// Blanket helpers serialize [`Block`]s, bit vectors and integers; all
/// protocol messages go through [`Transport::send_bytes`] /
/// [`Transport::recv_bytes`] so accounting is exact.
pub trait Transport {
    /// Sends one message.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Disconnected`] if the peer is gone.
    fn send_bytes(&mut self, bytes: Vec<u8>) -> Result<(), ChannelError>;

    /// Receives one message (blocking).
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError::Disconnected`] if the peer is gone.
    fn recv_bytes(&mut self) -> Result<Vec<u8>, ChannelError>;

    /// Accounting snapshot.
    fn stats(&self) -> ChannelStats;

    /// Sends a single block.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    fn send_block(&mut self, b: Block) -> Result<(), ChannelError> {
        self.send_bytes(b.to_le_bytes().to_vec())
    }

    /// Receives a single block.
    ///
    /// # Errors
    ///
    /// Fails on disconnect or if the message is not exactly 16 bytes.
    fn recv_block(&mut self) -> Result<Block, ChannelError> {
        let bytes = self.recv_bytes()?;
        let arr: [u8; 16] = bytes
            .as_slice()
            .try_into()
            .map_err(|_| ChannelError::Malformed {
                expected: 16,
                actual: bytes.len(),
            })?;
        Ok(Block::from_le_bytes(arr))
    }

    /// Sends a slice of blocks as one message.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    fn send_blocks(&mut self, blocks: &[Block]) -> Result<(), ChannelError> {
        let mut bytes = Vec::with_capacity(blocks.len() * 16);
        for b in blocks {
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        self.send_bytes(bytes)
    }

    /// Receives a block vector sent with [`Transport::send_blocks`].
    ///
    /// # Errors
    ///
    /// Fails on disconnect or if the payload is not a multiple of 16 bytes.
    fn recv_blocks(&mut self) -> Result<Vec<Block>, ChannelError> {
        let bytes = self.recv_bytes()?;
        if bytes.len() % 16 != 0 {
            return Err(ChannelError::Malformed {
                expected: bytes.len().div_ceil(16) * 16,
                actual: bytes.len(),
            });
        }
        Ok(bytes
            .chunks_exact(16)
            .map(|c| Block::from_le_bytes(c.try_into().expect("16-byte chunk")))
            .collect())
    }

    /// Sends one bit (as one byte; the paper's comm model also rounds bits
    /// up to transport granularity).
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    fn send_bit(&mut self, bit: bool) -> Result<(), ChannelError> {
        self.send_bytes(vec![bit as u8])
    }

    /// Receives one bit.
    ///
    /// # Errors
    ///
    /// Fails on disconnect or wrong length.
    fn recv_bit(&mut self) -> Result<bool, ChannelError> {
        let bytes = self.recv_bytes()?;
        if bytes.len() != 1 {
            return Err(ChannelError::Malformed {
                expected: 1,
                actual: bytes.len(),
            });
        }
        Ok(bytes[0] != 0)
    }

    /// Sends a packed bit vector.
    ///
    /// # Errors
    ///
    /// Propagates transport errors.
    fn send_bits(&mut self, bits: &[bool]) -> Result<(), ChannelError> {
        self.send_bytes(encode_bits(bits))
    }

    /// Receives a packed bit vector.
    ///
    /// # Errors
    ///
    /// Fails on disconnect or malformed framing.
    fn recv_bits(&mut self) -> Result<Vec<bool>, ChannelError> {
        decode_bits(&self.recv_bytes()?)
    }
}

/// In-memory transport endpoint (one half of a duplex pair).
#[derive(Debug)]
pub struct LocalChannel {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    stats: ChannelStats,
    sent_since_recv: bool,
}

impl LocalChannel {
    /// Creates a connected duplex pair.
    ///
    /// # Example
    ///
    /// ```
    /// use ironman_ot::channel::{LocalChannel, Transport};
    /// use ironman_prg::Block;
    ///
    /// let (mut a, mut b) = LocalChannel::pair();
    /// a.send_block(Block::from(7u128)).unwrap();
    /// assert_eq!(b.recv_block().unwrap(), Block::from(7u128));
    /// ```
    pub fn pair() -> (LocalChannel, LocalChannel) {
        let (tx_ab, rx_ab) = mpsc::channel();
        let (tx_ba, rx_ba) = mpsc::channel();
        (
            LocalChannel {
                tx: tx_ab,
                rx: rx_ba,
                stats: ChannelStats::default(),
                sent_since_recv: false,
            },
            LocalChannel {
                tx: tx_ba,
                rx: rx_ab,
                stats: ChannelStats::default(),
                sent_since_recv: false,
            },
        )
    }
}

impl Transport for LocalChannel {
    fn send_bytes(&mut self, bytes: Vec<u8>) -> Result<(), ChannelError> {
        self.stats.bytes_sent += bytes.len() as u64;
        self.stats.messages_sent += 1;
        self.sent_since_recv = true;
        self.tx.send(bytes).map_err(|_| ChannelError::Disconnected)
    }

    fn recv_bytes(&mut self) -> Result<Vec<u8>, ChannelError> {
        let bytes = self.rx.recv().map_err(|_| ChannelError::Disconnected)?;
        self.stats.bytes_received += bytes.len() as u64;
        if self.sent_since_recv {
            self.stats.rounds += 1;
            self.sent_since_recv = false;
        }
        Ok(bytes)
    }

    fn stats(&self) -> ChannelStats {
        self.stats
    }
}

/// Runs a two-party protocol: `sender_fn` and `receiver_fn` execute on their
/// own threads with connected channel endpoints, and the results plus both
/// endpoints' communication statistics are returned as
/// `(sender_out, receiver_out, sender_stats, receiver_stats)`.
///
/// # Panics
///
/// Panics if either party panics (the panic is propagated).
pub fn run_protocol<S, R, FS, FR>(
    sender_fn: FS,
    receiver_fn: FR,
) -> (S, R, ChannelStats, ChannelStats)
where
    S: Send,
    R: Send,
    FS: FnOnce(&mut LocalChannel) -> S + Send,
    FR: FnOnce(&mut LocalChannel) -> R + Send,
{
    let (cs, cr) = LocalChannel::pair();
    run_protocol_over(cs, cr, sender_fn, receiver_fn)
}

/// Runs a two-party protocol over an arbitrary pre-connected transport
/// pair — in-process channels, TCP sockets, unix sockets — returning
/// `(sender_out, receiver_out, sender_stats, receiver_stats)`.
///
/// This is the transport-generic form of [`run_protocol`]; the two
/// endpoints need not even be the same transport type (e.g. one side over
/// a socket, a loopback harness on the other).
///
/// # Panics
///
/// Panics if either party panics (the panic is propagated).
pub fn run_protocol_over<TS, TR, S, R, FS, FR>(
    mut sender_ch: TS,
    mut receiver_ch: TR,
    sender_fn: FS,
    receiver_fn: FR,
) -> (S, R, ChannelStats, ChannelStats)
where
    TS: Transport + Send,
    TR: Transport + Send,
    S: Send,
    R: Send,
    FS: FnOnce(&mut TS) -> S + Send,
    FR: FnOnce(&mut TR) -> R + Send,
{
    std::thread::scope(|scope| {
        let sender_handle = scope.spawn(move || {
            let out = sender_fn(&mut sender_ch);
            (out, sender_ch.stats())
        });
        let receiver_handle = scope.spawn(move || {
            let out = receiver_fn(&mut receiver_ch);
            (out, receiver_ch.stats())
        });
        let (s_out, s_stats) = sender_handle.join().expect("sender thread panicked");
        let (r_out, r_stats) = receiver_handle.join().expect("receiver thread panicked");
        (s_out, r_out, s_stats, r_stats)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_round_trip() {
        let (mut a, mut b) = LocalChannel::pair();
        a.send_block(Block::from(0x1234u128)).unwrap();
        assert_eq!(b.recv_block().unwrap(), Block::from(0x1234u128));
    }

    #[test]
    fn blocks_round_trip() {
        let (mut a, mut b) = LocalChannel::pair();
        let v = vec![Block::from(1u128), Block::from(2u128), Block::from(3u128)];
        a.send_blocks(&v).unwrap();
        assert_eq!(b.recv_blocks().unwrap(), v);
    }

    #[test]
    fn bits_round_trip() {
        let (mut a, mut b) = LocalChannel::pair();
        let bits = vec![true, false, true, true, false, false, false, true, true];
        a.send_bits(&bits).unwrap();
        assert_eq!(b.recv_bits().unwrap(), bits);
    }

    #[test]
    fn empty_bits_round_trip() {
        let (mut a, mut b) = LocalChannel::pair();
        a.send_bits(&[]).unwrap();
        assert_eq!(b.recv_bits().unwrap(), Vec::<bool>::new());
    }

    #[test]
    fn byte_accounting() {
        let (mut a, mut b) = LocalChannel::pair();
        a.send_block(Block::ZERO).unwrap();
        b.recv_block().unwrap();
        assert_eq!(a.stats().bytes_sent, 16);
        assert_eq!(b.stats().bytes_received, 16);
        assert_eq!(a.stats().messages_sent, 1);
    }

    #[test]
    fn round_counting() {
        let (mut a, mut b) = LocalChannel::pair();
        // a: send, send, recv => 1 round.
        a.send_bit(true).unwrap();
        a.send_bit(false).unwrap();
        b.recv_bit().unwrap();
        b.recv_bit().unwrap();
        b.send_bit(true).unwrap();
        a.recv_bit().unwrap();
        assert_eq!(a.stats().rounds, 1);
    }

    #[test]
    fn disconnect_detected() {
        let (mut a, b) = LocalChannel::pair();
        drop(b);
        assert!(matches!(a.recv_bytes(), Err(ChannelError::Disconnected)));
    }

    #[test]
    fn run_protocol_exchanges() {
        let (s, r, ss, rs) = run_protocol(
            |ch| {
                ch.send_block(Block::from(5u128)).unwrap();
                ch.recv_block().unwrap()
            },
            |ch| {
                let x = ch.recv_block().unwrap();
                ch.send_block(x ^ Block::from(1u128)).unwrap();
                x
            },
        );
        assert_eq!(r, Block::from(5u128));
        assert_eq!(s, Block::from(4u128));
        assert_eq!(ss.bytes_sent, 16);
        assert_eq!(rs.bytes_sent, 16);
    }

    #[test]
    fn malformed_block_detected() {
        let (mut a, mut b) = LocalChannel::pair();
        a.send_bytes(vec![0u8; 3]).unwrap();
        assert!(matches!(
            b.recv_block(),
            Err(ChannelError::Malformed { .. })
        ));
    }
}
