//! The SPCOT (single-point correlated OT) sub-protocol, §2.3.1 + §4.
//!
//! Sender input: the global offset `Δ` and a fresh seed. Receiver input: a
//! punctured position `α`. Outputs satisfy `w = v ⊕ u·Δ` where `u` is the
//! one-hot indicator of `α`:
//!
//! * sender: `w` — the `ℓ` GGM leaves;
//! * receiver: `v` — equal to `w` everywhere except `v[α] = w[α] ⊕ Δ`.
//!
//! The protocol is generic over tree arity and PRG (the §4.1 optimization
//! space): binary levels transfer one branch sum through a chosen
//! 1-out-of-2 OT; wider levels transfer the `m−1` non-path sums through the
//! GGM-based (m−1)-out-of-m OT of §4.2. Either way a depth-`ℓ` tree
//! consumes exactly `log2(ℓ)` base COTs.

use crate::channel::{ChannelError, Transport};
use crate::chosen::{recv_chosen, send_chosen};
use crate::cot::{CotReceiver, CotSender};
use crate::mot::{recv_all_but_one, send_all_but_one};
use ironman_ggm::{Arity, GgmTree, LevelShape, PuncturedTree};
use ironman_prg::{tree_prg::build_tree_prg, Aes128, Block, PrgCounter, PrgKind};
use serde::{Deserialize, Serialize};

/// Static configuration of one SPCOT execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpcotConfig {
    /// GGM tree arity (`m`).
    pub arity: Arity,
    /// PRG instantiation.
    pub prg: PrgKind,
    /// Leaf count `ℓ` (power of two).
    pub leaves: usize,
    /// Session key from which all PRG keys are derived.
    pub session_key: Block,
}

impl SpcotConfig {
    /// The paper's optimized configuration: 4-ary tree, ChaCha8 PRG.
    pub fn ironman(leaves: usize, session_key: Block) -> Self {
        SpcotConfig {
            arity: Arity::QUAD,
            prg: PrgKind::CHACHA8,
            leaves,
            session_key,
        }
    }

    /// The CPU-baseline configuration: binary tree, AES PRG.
    pub fn ferret_baseline(leaves: usize, session_key: Block) -> Self {
        SpcotConfig {
            arity: Arity::BINARY,
            prg: PrgKind::Aes,
            leaves,
            session_key,
        }
    }

    /// Base COTs consumed by one execution (`log2(ℓ)` regardless of arity,
    /// thanks to the GGM-based (m−1)-out-of-m OT).
    pub fn base_cots_needed(&self) -> usize {
        self.leaves.trailing_zeros() as usize
    }
}

/// Sender output of one SPCOT.
#[derive(Clone, Debug)]
pub struct SpcotSenderOutput {
    /// The leaf vector `w`.
    pub w: Vec<Block>,
    /// PRG calls consumed.
    pub counter: PrgCounter,
}

/// Receiver output of one SPCOT.
#[derive(Clone, Debug)]
pub struct SpcotReceiverOutput {
    /// The punctured position `α` (the single set bit of `u`).
    pub alpha: usize,
    /// The leaf vector `v` (with `v[α]` recovered via the masked leaf sum).
    pub v: Vec<Block>,
    /// PRG calls consumed.
    pub counter: PrgCounter,
}

/// Derives the seed of the level-`lvl` inner pad tree from the outer seed.
fn level_seed(session_key: Block, outer_seed: Block, lvl: usize) -> Block {
    Aes128::new(session_key ^ Block::from(0x1e7e1u128))
        .encrypt_block(outer_seed ^ Block::from(lvl as u128))
}

/// Runs the sender side of one SPCOT over `ch`, consuming
/// [`SpcotConfig::base_cots_needed`] correlations from `base`.
///
/// `tweak` is a monotone CRHF domain-separation counter shared by all OTs
/// of the session; it is advanced by the number of chosen OTs executed.
///
/// # Errors
///
/// Propagates channel failures.
pub fn spcot_send<T: Transport + ?Sized>(
    ch: &mut T,
    cfg: &SpcotConfig,
    base: &mut CotSender,
    seed: Block,
    tweak: &mut u64,
) -> Result<SpcotSenderOutput, ChannelError> {
    let prg = build_tree_prg(cfg.prg, cfg.session_key, cfg.arity.get());
    let tree = GgmTree::expand(prg.as_ref(), seed, cfg.arity, cfg.leaves);
    let sums = tree.level_sums();
    for (lvl, level_sums) in sums.iter().enumerate() {
        let fanout = level_sums.len();
        if fanout == 2 {
            send_chosen(ch, base, &[(level_sums[0], level_sums[1])], *tweak)?;
            *tweak += 1;
        } else {
            send_all_but_one(
                ch,
                base,
                level_sums,
                cfg.session_key,
                level_seed(cfg.session_key, seed, lvl),
                *tweak,
            )?;
            *tweak += fanout.trailing_zeros() as u64;
        }
    }
    // Step ④: masked leaf sum for the receiver's α-th node recovery.
    ch.send_block(base.delta() ^ tree.leaf_sum())?;
    Ok(SpcotSenderOutput {
        w: tree.leaves().to_vec(),
        counter: tree.counter(),
    })
}

/// Runs the receiver side of one SPCOT over `ch`.
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if `alpha >= cfg.leaves`.
pub fn spcot_recv<T: Transport + ?Sized>(
    ch: &mut T,
    cfg: &SpcotConfig,
    base: &mut CotReceiver,
    alpha: usize,
    tweak: &mut u64,
) -> Result<SpcotReceiverOutput, ChannelError> {
    let prg = build_tree_prg(cfg.prg, cfg.session_key, cfg.arity.get());
    let shape = LevelShape::new(cfg.arity, cfg.leaves);
    let digits = shape.digits(alpha);
    // Per level, obtain the non-path branch sums.
    let mut level_sums: Vec<Vec<Block>> = Vec::with_capacity(shape.depth());
    for (lvl, &fanout) in shape.fanouts().iter().enumerate() {
        if fanout == 2 {
            let got = recv_chosen(ch, base, &[digits[lvl] == 0], *tweak)?;
            *tweak += 1;
            // Store as a 2-slot vector with a hole at the path digit.
            let mut sums = vec![Block::ZERO; 2];
            sums[1 - digits[lvl]] = got[0];
            level_sums.push(sums);
        } else {
            let got = recv_all_but_one(ch, base, fanout, digits[lvl], cfg.session_key, *tweak)?;
            *tweak += fanout.trailing_zeros() as u64;
            level_sums.push(got);
        }
    }
    let mut punct =
        PuncturedTree::reconstruct(prg.as_ref(), cfg.arity, cfg.leaves, alpha, |lvl, j| {
            debug_assert_ne!(j, digits[lvl], "path branch sum must never be read");
            level_sums[lvl][j]
        });
    let masked_sum = ch.recv_block()?;
    punct.recover_punctured(masked_sum);
    let counter = punct.counter();
    Ok(SpcotReceiverOutput {
        alpha,
        v: punct.into_leaves(),
        counter,
    })
}

/// Verifies the SPCOT correlation `w = v ⊕ u·Δ` (test/diagnostic helper).
///
/// # Errors
///
/// Returns the index of the first violated leaf.
pub fn verify_spcot(
    delta: Block,
    s: &SpcotSenderOutput,
    r: &SpcotReceiverOutput,
) -> Result<(), usize> {
    assert_eq!(s.w.len(), r.v.len());
    for i in 0..s.w.len() {
        let expect = r.v[i] ^ delta.and_bit(i == r.alpha);
        if s.w[i] != expect {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::run_protocol;
    use crate::dealer::Dealer;

    fn run_spcot(
        cfg: SpcotConfig,
        alpha: usize,
        seed_val: u64,
    ) -> (Block, SpcotSenderOutput, SpcotReceiverOutput) {
        let mut dealer = Dealer::new(seed_val);
        let delta = dealer.random_delta();
        let (mut s_base, mut r_base) = dealer.deal_cot(delta, cfg.base_cots_needed());
        let seed = dealer.random_block();
        let (s_out, r_out, _, _) = run_protocol(
            move |ch| {
                let mut tweak = 0;
                spcot_send(ch, &cfg, &mut s_base, seed, &mut tweak).unwrap()
            },
            move |ch| {
                let mut tweak = 0;
                spcot_recv(ch, &cfg, &mut r_base, alpha, &mut tweak).unwrap()
            },
        );
        (delta, s_out, r_out)
    }

    #[test]
    fn binary_aes_spcot_correlation() {
        let cfg = SpcotConfig::ferret_baseline(64, Block::from(1u128));
        for alpha in [0usize, 1, 31, 63] {
            let (delta, s, r) = run_spcot(cfg, alpha, 100 + alpha as u64);
            verify_spcot(delta, &s, &r).expect("correlation must hold");
        }
    }

    #[test]
    fn quad_chacha_spcot_correlation() {
        let cfg = SpcotConfig::ironman(256, Block::from(2u128));
        for alpha in [0usize, 17, 128, 255] {
            let (delta, s, r) = run_spcot(cfg, alpha, 200 + alpha as u64);
            verify_spcot(delta, &s, &r).expect("correlation must hold");
        }
    }

    #[test]
    fn all_arities_correlation() {
        for arity in Arity::SWEEP {
            let cfg = SpcotConfig {
                arity,
                prg: PrgKind::CHACHA8,
                leaves: 1024,
                session_key: Block::from(3u128),
            };
            let (delta, s, r) = run_spcot(cfg, 513, 42);
            verify_spcot(delta, &s, &r)
                .unwrap_or_else(|i| panic!("arity {arity}: leaf {i} violated"));
        }
    }

    #[test]
    fn mixed_fanout_spcot() {
        // ℓ = 8192 with 4-ary: six 4-ary levels + one binary level.
        let cfg = SpcotConfig::ironman(8192, Block::from(4u128));
        let (delta, s, r) = run_spcot(cfg, 4097, 7);
        verify_spcot(delta, &s, &r).expect("mixed-fanout correlation must hold");
    }

    #[test]
    fn quad_uses_fewer_prg_calls_than_binary() {
        let quad = SpcotConfig::ironman(4096, Block::from(5u128));
        let bin = SpcotConfig::ferret_baseline(4096, Block::from(5u128));
        let (_, sq, _) = run_spcot(quad, 9, 1);
        let (_, sb, _) = run_spcot(bin, 9, 2);
        // 4-ary ChaCha: (ℓ−1)/3 calls; 2-ary AES: 2(ℓ−1) calls — the 6×
        // reduction of §4 (Fig. 13a).
        assert_eq!(sb.counter.total(), 2 * 4095);
        assert_eq!(sq.counter.total(), 4095 / 3);
        assert_eq!(sb.counter.total() / sq.counter.total(), 6);
    }

    #[test]
    fn base_cot_budget_is_log_leaves() {
        for (leaves, expect) in [(64usize, 6usize), (1024, 10), (8192, 13)] {
            let cfg = SpcotConfig::ironman(leaves, Block::ZERO);
            assert_eq!(cfg.base_cots_needed(), expect);
        }
    }

    #[test]
    fn wider_arity_sends_more_bytes() {
        // Fig. 7(b): online communication grows with m.
        let mut bytes = Vec::new();
        for arity in [Arity::BINARY, Arity::QUAD, Arity::new(16).unwrap()] {
            let cfg = SpcotConfig {
                arity,
                prg: PrgKind::CHACHA8,
                leaves: 1024,
                session_key: Block::from(9u128),
            };
            let mut dealer = Dealer::new(55);
            let delta = dealer.random_delta();
            let (mut s_base, mut r_base) = dealer.deal_cot(delta, cfg.base_cots_needed());
            let seed = dealer.random_block();
            let (_, _, s_stats, _) = run_protocol(
                move |ch| {
                    let mut tweak = 0;
                    spcot_send(ch, &cfg, &mut s_base, seed, &mut tweak).unwrap()
                },
                move |ch| {
                    let mut tweak = 0;
                    spcot_recv(ch, &cfg, &mut r_base, 100, &mut tweak).unwrap()
                },
            );
            bytes.push(s_stats.bytes_sent);
        }
        assert!(
            bytes[0] < bytes[1] && bytes[1] < bytes[2],
            "comm should grow with m: {bytes:?}"
        );
    }
}
