//! IKNP-style OT extension — the pre-PCG baseline (paper §2.3).
//!
//! The paper motivates PCG-style OTE by contrast with IKNP \[49\]: IKNP
//! needs `λ` bits of communication **per output COT** (linear), while
//! PCG-style extension is sub-linear; in exchange PCG costs >4.3× more
//! computation. We implement semi-honest IKNP faithfully so that trade-off
//! can be *measured* (see `tests::pcg_beats_iknp_on_communication` and the
//! `comm_comparison` bench binary).
//!
//! Protocol sketch (COT functionality, sender offset `Δ`):
//!
//! 1. **Base phase (reversed roles):** the sender acts as base-OT receiver
//!    with choice bits `Δ_1..Δ_λ`, obtaining one seed per column; the
//!    receiver owns both seeds of every column pair.
//! 2. The receiver expands each seed pair into `n`-bit columns
//!    `t_i^0, t_i^1` and sends `u_i = t_i^0 ⊕ t_i^1 ⊕ x` (its choice
//!    vector `x` masked into every column).
//! 3. The sender computes `q_i = t_i^{Δ_i} ⊕ Δ_i·u_i = t_i^0 ⊕ Δ_i·x`.
//! 4. Transposing the bit matrix gives per-row blocks
//!    `q_j = t_j ⊕ x_j·Δ`: exactly a COT batch with `r0 = t_j`.

use crate::channel::{ChannelError, Transport};
use crate::cot::{CotReceiver, CotSender};
use crate::dealer::Dealer;
use ironman_prg::{Aes128, Block};

/// Bit-matrix with `columns` of `n` bits each, stored column-major as
/// 64-bit words.
struct BitColumns {
    words_per_col: usize,
    n: usize,
    data: Vec<u64>,
}

impl BitColumns {
    fn new(n: usize, cols: usize) -> Self {
        let words_per_col = n.div_ceil(64);
        BitColumns {
            words_per_col,
            n,
            data: vec![0; words_per_col * cols],
        }
    }

    fn col_mut(&mut self, c: usize) -> &mut [u64] {
        &mut self.data[c * self.words_per_col..(c + 1) * self.words_per_col]
    }

    fn col(&self, c: usize) -> &[u64] {
        &self.data[c * self.words_per_col..(c + 1) * self.words_per_col]
    }

    /// Extracts row `j` as a 128-bit block (bit `i` of the block = bit `j`
    /// of column `i`).
    fn row_block(&self, j: usize) -> Block {
        let word = j / 64;
        let bit = j % 64;
        let mut out = 0u128;
        for c in 0..128 {
            let b = (self.col(c)[word] >> bit) & 1;
            out |= (b as u128) << c;
        }
        Block::from(out)
    }

    /// Fills column `c` with a PRG keystream derived from `seed`.
    fn fill_from_seed(&mut self, c: usize, seed: Block) {
        let aes = Aes128::new(seed);
        let words_per_col = self.words_per_col;
        let tail = self.n % 64;
        let col = self.col_mut(c);
        for (w, word) in col.iter_mut().enumerate().take(words_per_col) {
            let block = aes.encrypt_block(Block::from(w as u128));
            *word = block.to_halves().1;
        }
        // Mask tail bits beyond n for cleanliness.
        if tail != 0 {
            col[words_per_col - 1] &= (1u64 << tail) - 1;
        }
    }
}

/// Sender side of IKNP COT extension: produces `n` correlations under the
/// `Δ` encoded in its base choice bits.
///
/// `base_seeds[i]` is the seed the sender learned for column `i` (i.e.
/// seed `Δ_i` of the receiver's pair) — dealt by [`setup_base`].
///
/// # Errors
///
/// Propagates channel failures.
pub fn iknp_send<T: Transport + ?Sized>(
    ch: &mut T,
    delta: Block,
    base_seeds: &[Block; 128],
    n: usize,
) -> Result<CotSender, ChannelError> {
    let mut q = BitColumns::new(n, 128);
    for (c, &seed) in base_seeds.iter().enumerate() {
        q.fill_from_seed(c, seed);
    }
    // Receive the masked columns and fold them in where Δ_i = 1.
    let delta_bits = u128::from(delta);
    for c in 0..128 {
        let u_bytes = ch.recv_bytes()?;
        if (delta_bits >> c) & 1 == 1 {
            let words_per_col = q.words_per_col;
            let col = q.col_mut(c);
            for w in 0..words_per_col {
                let mut word = [0u8; 8];
                word.copy_from_slice(&u_bytes[8 * w..8 * w + 8]);
                col[w] ^= u64::from_le_bytes(word);
            }
        }
    }
    let r0: Vec<Block> = (0..n).map(|j| q.row_block(j)).collect();
    Ok(CotSender::new(delta, r0))
}

/// Receiver side of IKNP COT extension with choice bits `x`.
///
/// `base_pairs[i]` is the receiver's seed pair for column `i`.
///
/// # Errors
///
/// Propagates channel failures.
pub fn iknp_recv<T: Transport + ?Sized>(
    ch: &mut T,
    base_pairs: &[(Block, Block); 128],
    x: &[bool],
) -> Result<CotReceiver, ChannelError> {
    let n = x.len();
    // Pack x into words once.
    let words_per_col = n.div_ceil(64);
    let mut x_words = vec![0u64; words_per_col];
    for (j, &b) in x.iter().enumerate() {
        if b {
            x_words[j / 64] |= 1 << (j % 64);
        }
    }
    let mut t0 = BitColumns::new(n, 128);
    let mut t1 = BitColumns::new(n, 128);
    for (c, &(s0, s1)) in base_pairs.iter().enumerate() {
        t0.fill_from_seed(c, s0);
        t1.fill_from_seed(c, s1);
        // u = t0 ⊕ t1 ⊕ x, sent per column.
        let mut u_bytes = Vec::with_capacity(words_per_col * 8);
        for (w, &xw) in x_words.iter().enumerate().take(words_per_col) {
            let u = t0.col(c)[w] ^ t1.col(c)[w] ^ xw;
            u_bytes.extend_from_slice(&u.to_le_bytes());
        }
        ch.send_bytes(u_bytes)?;
    }
    let rb: Vec<Block> = (0..n).map(|j| t0.row_block(j)).collect();
    Ok(CotReceiver::new(x.to_vec(), rb))
}

/// Deals the IKNP base material: the receiver's 128 seed pairs and the
/// sender's per-column chosen seed (selected by the bits of `Δ`). In a
/// deployment this is 128 public-key OTs with the roles reversed; here the
/// ideal dealer stands in, exactly as for the Ferret init phase.
#[allow(clippy::type_complexity)]
pub fn setup_base(
    dealer: &mut Dealer,
    delta: Block,
) -> (Box<[Block; 128]>, Box<[(Block, Block); 128]>) {
    let mut sender_seeds = Box::new([Block::ZERO; 128]);
    let mut pairs = Box::new([(Block::ZERO, Block::ZERO); 128]);
    let delta_bits = u128::from(delta);
    for c in 0..128 {
        let s0 = dealer.random_block();
        let s1 = dealer.random_block();
        pairs[c] = (s0, s1);
        sender_seeds[c] = if (delta_bits >> c) & 1 == 1 { s1 } else { s0 };
    }
    (sender_seeds, pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::run_protocol;
    use crate::cot::verify_correlation;

    fn run_iknp(n: usize, seed: u64) -> (CotSender, CotReceiver, u64) {
        let mut dealer = Dealer::new(seed);
        let delta = dealer.random_delta();
        let (sender_seeds, pairs) = setup_base(&mut dealer, delta);
        let x: Vec<bool> = (0..n).map(|j| dealer.random_bit() ^ (j % 7 == 0)).collect();
        let (s, (r, bytes), _, _) = run_protocol(
            move |ch| iknp_send(ch, delta, &sender_seeds, n).unwrap(),
            move |ch| {
                let out = iknp_recv(ch, &pairs, &x).unwrap();
                (out, ch.stats().bytes_sent)
            },
        );
        (s, r, bytes)
    }

    #[test]
    fn iknp_correlation_holds() {
        let (s, r, _) = run_iknp(500, 1);
        verify_correlation(&s, &r).expect("IKNP output must be a valid COT batch");
    }

    #[test]
    fn iknp_larger_batch() {
        let (s, r, _) = run_iknp(4096, 2);
        verify_correlation(&s, &r).unwrap();
        assert_eq!(s.len(), 4096);
    }

    #[test]
    fn iknp_communication_is_linear() {
        // λ bits per OT: n=1024 → 128 columns × 16 words × 8 bytes = 16 KB.
        let (_, _, bytes_1k) = run_iknp(1024, 3);
        let (_, _, bytes_4k) = run_iknp(4096, 3);
        assert_eq!(bytes_1k, 128 * (1024 / 64) * 8);
        assert!((bytes_4k as f64 / bytes_1k as f64 - 4.0).abs() < 0.01);
    }

    #[test]
    fn pcg_beats_iknp_on_communication() {
        // The paper's §2.3 motivation, measured: per-OT bytes.
        let (_, _, iknp_bytes) = run_iknp(4096, 4);
        let iknp_per_ot = iknp_bytes as f64 / 4096.0;

        let cfg = crate::ferret::FerretConfig::new(crate::params::FerretParams::toy());
        let out = crate::ferret::run_extension(&cfg, 4);
        let pcg_per_ot =
            (out.sender_stats.bytes_sent + out.receiver_stats.bytes_sent) as f64 / out.len() as f64;
        assert!(
            pcg_per_ot < iknp_per_ot / 2.0,
            "PCG {pcg_per_ot:.2} B/OT should be well below IKNP {iknp_per_ot:.2} B/OT"
        );
    }

    #[test]
    fn choice_bits_recovered_in_output() {
        let (_, r, _) = run_iknp(256, 5);
        // The receiver's declared bits are exactly its inputs (x), and the
        // correlation test above guarantees rb matches them.
        assert_eq!(r.len(), 256);
    }

    #[test]
    fn non_multiple_of_64_width() {
        let (s, r, _) = run_iknp(100, 6);
        verify_correlation(&s, &r).unwrap();
    }
}
