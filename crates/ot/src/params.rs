//! PCG-style OT-extension parameter sets (paper Table 4).
//!
//! Each set fixes, for a target number of output OTs per protocol
//! execution, the LPN output length `n`, GGM tree size `ℓ`, pre-generated
//! COT count `k` and tree count `t`. The table also reports the bit
//! security of the underlying regular-LPN instance; we re-derive an
//! estimate with the Pooled-Gauss attack-cost formula (the dominant attack
//! for these regimes per the paper's citation \[59\]) as a constructor-time
//! guard.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One row of Table 4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FerretParams {
    /// Target OTs per protocol execution (`2^log_target`).
    pub log_target: u32,
    /// LPN output length `n`.
    pub n: usize,
    /// GGM tree leaf count `ℓ`.
    pub leaves: usize,
    /// Pre-generated COT correlations `k` (the LPN "secret" length).
    pub k: usize,
    /// Number of GGM trees per execution `t` (the regular noise weight).
    pub t: usize,
}

/// Error for parameter sets that fail validation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamError {
    /// `ℓ` must be a power of two.
    LeavesNotPowerOfTwo,
    /// A degenerate dimension (`n`, `k`, `t` or `ℓ` of zero, or `n <= k`).
    DegenerateDimensions,
    /// Estimated LPN security below the 128-bit target.
    InsecureLpn {
        /// The estimated security in bits.
        estimated_bits: f64,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::LeavesNotPowerOfTwo => write!(f, "tree leaf count must be a power of two"),
            ParamError::DegenerateDimensions => {
                write!(f, "n, k, t and leaves must be positive with n > k")
            }
            ParamError::InsecureLpn { estimated_bits } => {
                write!(
                    f,
                    "LPN instance estimated at {estimated_bits:.1} bits, below 128"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

impl FerretParams {
    /// Table 4, row for 2^20 output OTs.
    pub const OT_2POW20: FerretParams = FerretParams {
        log_target: 20,
        n: 1_221_516,
        leaves: 4096,
        k: 168_000,
        t: 480,
    };
    /// Table 4, row for 2^21 output OTs.
    pub const OT_2POW21: FerretParams = FerretParams {
        log_target: 21,
        n: 2_365_652,
        leaves: 4096,
        k: 262_000,
        t: 600,
    };
    /// Table 4, row for 2^22 output OTs.
    pub const OT_2POW22: FerretParams = FerretParams {
        log_target: 22,
        n: 4_531_924,
        leaves: 8192,
        k: 328_000,
        t: 740,
    };
    /// Table 4, row for 2^23 output OTs.
    pub const OT_2POW23: FerretParams = FerretParams {
        log_target: 23,
        n: 8_866_608,
        leaves: 8192,
        k: 452_000,
        t: 1024,
    };
    /// Table 4, row for 2^24 output OTs.
    pub const OT_2POW24: FerretParams = FerretParams {
        log_target: 24,
        n: 17_262_496,
        leaves: 8192,
        k: 480_000,
        t: 2100,
    };

    /// All Table 4 rows in order.
    pub const TABLE4: [FerretParams; 5] = [
        FerretParams::OT_2POW20,
        FerretParams::OT_2POW21,
        FerretParams::OT_2POW22,
        FerretParams::OT_2POW23,
        FerretParams::OT_2POW24,
    ];

    /// A miniature set for unit tests, doctests and CI: the same structure
    /// at a size that executes in milliseconds. **Not secure** — the
    /// security guard is deliberately skipped for toy sets.
    pub fn toy() -> FerretParams {
        FerretParams {
            log_target: 12,
            n: 5000,
            leaves: 256,
            k: 1024,
            t: 24,
        }
    }

    /// A slightly larger test set exercising the mixed-fanout tree shape.
    pub fn toy_large() -> FerretParams {
        FerretParams {
            log_target: 14,
            n: 20_000,
            leaves: 512,
            t: 48,
            k: 3000,
        }
    }

    /// Validates the structural invariants and the 128-bit LPN security of
    /// a production set.
    ///
    /// # Errors
    ///
    /// See [`ParamError`].
    pub fn validate(&self) -> Result<(), ParamError> {
        if !self.leaves.is_power_of_two() {
            return Err(ParamError::LeavesNotPowerOfTwo);
        }
        if self.n == 0 || self.k == 0 || self.t == 0 || self.n <= self.k {
            return Err(ParamError::DegenerateDimensions);
        }
        let bits = self.security_bits();
        // The Pooled-Gauss closed form tracks the paper's full estimator
        // ([59]) to within ~±5 bits; reject only sets clearly below the
        // 128-bit target.
        if bits < 125.0 {
            return Err(ParamError::InsecureLpn {
                estimated_bits: bits,
            });
        }
        Ok(())
    }

    /// Pooled-Gauss attack-cost estimate for the regular-LPN instance, in
    /// bits: `−k·log2(1 − t/n) + ω·log2(k)` with the matrix-multiplication
    /// exponent `ω = 2.8`. This tracks Table 4's reported security to
    /// within a few bits (see EXPERIMENTS.md for the side-by-side).
    pub fn security_bits(&self) -> f64 {
        let n = self.n as f64;
        let k = self.k as f64;
        let t = self.t as f64;
        let guess_cost = -k * (1.0 - t / n).log2();
        let algebra_cost = 2.8 * k.log2();
        guess_cost + algebra_cost
    }

    /// Output OTs available to the application per execution: `n − k`
    /// (k outputs are reserved to bootstrap the next iteration).
    pub fn usable_per_execution(&self) -> usize {
        self.n - self.k
    }

    /// Base COTs consumed per execution by the SPCOT layer:
    /// `t · log2(ℓ)` plus the `k` LPN inputs.
    pub fn base_cots_per_execution(&self) -> usize {
        self.t * self.leaves.trailing_zeros() as usize
    }

    /// Number of `ℓ`-wide stripes the LPN output is partitioned into; each
    /// GGM tree is assigned a stripe round-robin (`tree i → stripe i mod
    /// stripes`). For Table 4's larger rows `t·ℓ < n`, so some stripes
    /// carry no noise — harmless for COT correctness, and the security
    /// estimate already uses the printed `(n, k, t)`.
    pub fn stripes(&self) -> usize {
        self.n.div_ceil(self.leaves)
    }
}

impl fmt::Display for FerretParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "2^{} OTs (n={}, l={}, k={}, t={})",
            self.log_target, self.n, self.leaves, self.k, self.t
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_rows_validate() {
        for p in FerretParams::TABLE4 {
            p.validate().unwrap_or_else(|e| panic!("{p} failed: {e}"));
        }
    }

    #[test]
    fn security_estimates_match_table4_within_tolerance() {
        // Paper-reported security: 139.8, 141.8, 132.3, 130.2, 135.4.
        let reported = [139.8, 141.8, 132.3, 130.2, 135.4];
        for (p, &rep) in FerretParams::TABLE4.iter().zip(reported.iter()) {
            let est = p.security_bits();
            assert!(
                (est - rep).abs() < 8.0,
                "{p}: estimate {est:.1} too far from reported {rep}"
            );
        }
    }

    #[test]
    fn stripes_cover_output() {
        for p in FerretParams::TABLE4 {
            assert!(p.stripes() * p.leaves >= p.n);
            assert!((p.stripes() - 1) * p.leaves < p.n);
        }
    }

    #[test]
    fn insecure_set_rejected() {
        let weak = FerretParams {
            log_target: 10,
            n: 2048,
            leaves: 64,
            k: 512,
            t: 32,
        };
        assert!(matches!(
            weak.validate(),
            Err(ParamError::InsecureLpn { .. })
        ));
    }

    #[test]
    fn bad_leaves_rejected() {
        let bad = FerretParams {
            leaves: 100,
            ..FerretParams::OT_2POW20
        };
        assert_eq!(bad.validate(), Err(ParamError::LeavesNotPowerOfTwo));
    }

    #[test]
    fn degenerate_rejected() {
        let bad = FerretParams {
            n: 1000,
            ..FerretParams::OT_2POW20
        };
        assert_eq!(bad.validate(), Err(ParamError::DegenerateDimensions));
    }

    #[test]
    fn toy_set_structure() {
        let p = FerretParams::toy();
        assert!(p.leaves.is_power_of_two());
        assert!(p.usable_per_execution() > 0);
    }

    #[test]
    fn display_mentions_fields() {
        let s = FerretParams::OT_2POW20.to_string();
        assert!(s.contains("1221516") && s.contains("4096"));
    }
}
