//! Two-party OT-extension protocols for the Ironman reproduction.
//!
//! This crate implements the *functional* (cryptographic) layer of the
//! paper's PCG-style OT extension, faithfully to §2 of the paper:
//!
//! * [`channel`] — byte-counting duplex channels plus a two-thread protocol
//!   executor, so every protocol's communication cost is *measured*, not
//!   assumed (Fig. 7b depends on this).
//! * [`dealer`] — the ideal base-correlation dealer standing in for the
//!   one-time PKC initialization phase (excluded from all of the paper's
//!   measurements).
//! * [`cot`] — COT correlation types and the `w = v ⊕ u·Δ` invariant.
//! * [`chosen`] — chosen-message 1-out-of-2 OT from a COT correlation plus
//!   the correlation-robust hash (Fig. 2's online phase).
//! * [`mot`] — (m−1)-out-of-m OT from an m-leaf GGM tree (§4.2), consuming
//!   only `log2(m)` base COTs.
//! * [`spcot`] — the single-point COT sub-protocol over GGM trees, generic
//!   over arity and PRG (the §4.1 optimization space).
//! * [`ferret`] — the Ferret-style OTE main loop: `t` SPCOTs + LPN encoding
//!   per extension, with bootstrapping of the next iteration's base COTs.
//! * [`params`] — Table 4's parameter sets with the bit-security estimate.
//!
//! # Example: one full extension
//!
//! ```
//! use ironman_ot::ferret::{self, FerretConfig};
//! use ironman_ot::params::FerretParams;
//!
//! let params = FerretParams::toy(); // scaled-down set for tests/docs
//! let cfg = FerretConfig::new(params);
//! let out = ferret::run_extension(&cfg, 0xfeed);
//! out.verify().unwrap(); // checks w = v ⊕ u·Δ on every output COT
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod chosen;
pub mod cot;
pub mod dealer;
pub mod ferret;
pub mod iknp;
pub mod mot;
pub mod params;
pub mod session;
pub mod spcot;
pub mod spcot_batch;

pub use channel::{run_protocol, ChannelStats, LocalChannel, Transport};
pub use cot::{CotReceiver, CotSender};
pub use dealer::Dealer;
pub use params::FerretParams;
pub use session::{CotSession, SessionBatch, SessionStopped, SessionTelemetry};
