//! (m−1)-out-of-m OT from an m-leaf GGM tree (paper §4.2).
//!
//! M-ary GGM expansion needs, per level, an OT in which the receiver learns
//! the branch sums of every branch *except* the one on its punctured path.
//! Implementing that naively from `(m−1)·log2(m)` 1-out-of-2 OTs wastes
//! base correlations; the paper instead punctures an m-leaf GGM tree: the
//! sender derives m pads as the tree's leaves, the receiver reconstructs
//! all pads except pad `α` (consuming only `log2(m)` base COTs through the
//! per-level sum OTs), and the sender sends all m messages masked by their
//! pads. The receiver unmasks everything except message `α`.

use crate::channel::{ChannelError, Transport};
use crate::chosen::{recv_chosen, send_chosen};
use crate::cot::{CotReceiver, CotSender};
use ironman_ggm::{Arity, GgmTree, PuncturedTree};
use ironman_prg::{AesTreePrg, Block};

/// Number of base COTs one (m−1)-out-of-m OT consumes.
pub fn base_cots_needed(m: usize) -> usize {
    assert!(
        m.is_power_of_two() && m >= 2,
        "m must be a power of two >= 2"
    );
    m.trailing_zeros() as usize
}

/// Derives the pad-tree PRG for a given session. The inner tree is tiny
/// (m ≤ 32 leaves) so a binary AES expansion is used regardless of the
/// outer tree's PRG; this matches the paper's observation that the inner
/// OT "follows the same procedure as SPCOT" and needs no extra hardware.
fn pad_prg(session_key: Block) -> AesTreePrg {
    AesTreePrg::new(session_key ^ Block::from(0x6d6f74u128), 2)
}

/// Sender side: transfers all of `messages` except the receiver's hidden
/// index. Consumes `log2(m)` COTs from `base`.
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if `messages.len()` is not a power of two `>= 2` or `base` is too
/// short.
pub fn send_all_but_one<T: Transport + ?Sized>(
    ch: &mut T,
    base: &mut CotSender,
    messages: &[Block],
    session_key: Block,
    seed: Block,
    tweak_base: u64,
) -> Result<(), ChannelError> {
    let m = messages.len();
    let prg = pad_prg(session_key);
    let tree = GgmTree::expand(&prg, seed, Arity::BINARY, m);
    let sums = tree.level_sums();
    // Per level, offer (K_0, K_1); the receiver picks the complement of its
    // path digit via chosen OT.
    let pairs: Vec<(Block, Block)> = sums.iter().map(|s| (s[0], s[1])).collect();
    send_chosen(ch, base, &pairs, tweak_base)?;
    // Mask each message with its pad (leaf).
    let masked: Vec<Block> = messages
        .iter()
        .zip(tree.leaves())
        .map(|(&msg, &pad)| msg ^ pad)
        .collect();
    ch.send_blocks(&masked)
}

/// Receiver side: obtains `messages[j]` for every `j != alpha`; position
/// `alpha` of the returned vector is [`Block::ZERO`].
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if `m` is not a power of two `>= 2`, `alpha >= m`, or `base` is
/// too short.
pub fn recv_all_but_one<T: Transport + ?Sized>(
    ch: &mut T,
    base: &mut CotReceiver,
    m: usize,
    alpha: usize,
    session_key: Block,
    tweak_base: u64,
) -> Result<Vec<Block>, ChannelError> {
    assert!(alpha < m, "alpha {alpha} out of range for {m} messages");
    let prg = pad_prg(session_key);
    let shape_digits = ironman_ggm::LevelShape::new(Arity::BINARY, m).digits(alpha);
    // Choice per level: the complement of the path digit (we want the sum of
    // the branch we did NOT take).
    let choices: Vec<bool> = shape_digits.iter().map(|&d| d == 0).collect();
    let sums = recv_chosen(ch, base, &choices, tweak_base)?;
    let punct = PuncturedTree::reconstruct(&prg, Arity::BINARY, m, alpha, |lvl, j| {
        debug_assert_ne!(j, shape_digits[lvl]);
        sums[lvl]
    });
    let masked = ch.recv_blocks()?;
    assert_eq!(
        masked.len(),
        m,
        "sender sent {} masked messages, expected {m}",
        masked.len()
    );
    Ok(masked
        .iter()
        .zip(punct.leaves())
        .enumerate()
        .map(|(j, (&c, &pad))| if j == alpha { Block::ZERO } else { c ^ pad })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::run_protocol;
    use crate::dealer::Dealer;

    fn run_mot(m: usize, alpha: usize) -> (Vec<Block>, Vec<Block>) {
        let mut dealer = Dealer::new(77);
        let delta = dealer.random_delta();
        let (mut s_base, mut r_base) = dealer.deal_cot(delta, base_cots_needed(m));
        let messages: Vec<Block> = (0..m as u128).map(|j| Block::from(j * 31 + 5)).collect();
        let msgs2 = messages.clone();
        let session = Block::from(0x5e55u128);
        let (_, got, _, _) = run_protocol(
            move |ch| {
                send_all_but_one(ch, &mut s_base, &msgs2, session, Block::from(9u128), 0).unwrap()
            },
            move |ch| recv_all_but_one(ch, &mut r_base, m, alpha, session, 0).unwrap(),
        );
        (messages, got)
    }

    #[test]
    fn four_of_four_minus_one() {
        for alpha in 0..4 {
            let (messages, got) = run_mot(4, alpha);
            for j in 0..4 {
                if j == alpha {
                    assert_eq!(got[j], Block::ZERO);
                } else {
                    assert_eq!(got[j], messages[j], "message {j} wrong (alpha={alpha})");
                }
            }
        }
    }

    #[test]
    fn larger_arities() {
        for m in [2usize, 8, 16, 32] {
            let alpha = m / 2 + 1;
            let (messages, got) = run_mot(m, alpha % m);
            for j in 0..m {
                if j != alpha % m {
                    assert_eq!(got[j], messages[j]);
                }
            }
        }
    }

    #[test]
    fn cot_consumption_is_logarithmic() {
        assert_eq!(base_cots_needed(2), 1);
        assert_eq!(base_cots_needed(4), 2);
        assert_eq!(base_cots_needed(32), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        base_cots_needed(6);
    }
}
