//! Chosen-message 1-out-of-2 OT from COT correlations.
//!
//! This is the online conversion of Fig. 2: a COT correlation
//! `(r0, r1 = r0 ⊕ Δ)` / `(b, r_b)` is derandomized to the receiver's real
//! choice `c` (one bit of communication) and the messages are masked with
//! the correlation-robust hash. One base COT is consumed per OT.

use crate::channel::{ChannelError, Transport};
use crate::cot::{CotReceiver, CotSender};
use ironman_prg::{Block, Crhf};

/// Sends chosen messages `(m0, m1)` for a batch of OTs, consuming
/// `pairs.len()` COT correlations from `base`.
///
/// Protocol: the receiver reveals `d = c ⊕ b`; the sender transmits
/// `y_j = m_j ⊕ H(idx, r_{j ⊕ d})`; the receiver unmasks `y_c` with
/// `H(idx, r_b)` since `r_b = r_{c ⊕ d}`.
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if `base` holds fewer than `pairs.len()` correlations.
pub fn send_chosen<T: Transport + ?Sized>(
    ch: &mut T,
    base: &mut CotSender,
    pairs: &[(Block, Block)],
    tweak_base: u64,
) -> Result<(), ChannelError> {
    let batch = base.split_off_front(pairs.len());
    let crhf = Crhf::new();
    let flips = ch.recv_bits()?;
    assert_eq!(flips.len(), pairs.len(), "receiver flip count mismatch");
    let mut payload = Vec::with_capacity(2 * pairs.len());
    for (i, (&(m0, m1), &d)) in pairs.iter().zip(flips.iter()).enumerate() {
        let (r0, r1) = batch.pair(i);
        let (pad0, pad1) = if d { (r1, r0) } else { (r0, r1) };
        payload.push(m0 ^ crhf.hash(tweak_base + i as u64, pad0));
        payload.push(m1 ^ crhf.hash(tweak_base + i as u64, pad1));
    }
    ch.send_blocks(&payload)
}

/// Receives the chosen message for each OT in the batch, consuming
/// `choices.len()` COT correlations from `base`.
///
/// # Errors
///
/// Propagates channel failures.
///
/// # Panics
///
/// Panics if `base` holds fewer than `choices.len()` correlations.
pub fn recv_chosen<T: Transport + ?Sized>(
    ch: &mut T,
    base: &mut CotReceiver,
    choices: &[bool],
    tweak_base: u64,
) -> Result<Vec<Block>, ChannelError> {
    let batch = base.split_off_front(choices.len());
    let crhf = Crhf::new();
    let flips: Vec<bool> = choices
        .iter()
        .zip(batch.bits())
        .map(|(&c, &b)| c ^ b)
        .collect();
    ch.send_bits(&flips)?;
    let payload = ch.recv_blocks()?;
    assert_eq!(
        payload.len(),
        2 * choices.len(),
        "sender payload size mismatch"
    );
    Ok(choices
        .iter()
        .enumerate()
        .map(|(i, &c)| {
            let y = payload[2 * i + c as usize];
            y ^ crhf.hash(tweak_base + i as u64, batch.rb()[i])
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::run_protocol;
    use crate::dealer::Dealer;

    fn run_batch(choices: Vec<bool>, pairs: Vec<(Block, Block)>) -> Vec<Block> {
        let mut dealer = Dealer::new(42);
        let delta = dealer.random_delta();
        let (mut s_base, mut r_base) = dealer.deal_cot(delta, choices.len());
        let pairs2 = pairs.clone();
        let (_, received, _, _) = run_protocol(
            move |ch| send_chosen(ch, &mut s_base, &pairs2, 0).unwrap(),
            move |ch| recv_chosen(ch, &mut r_base, &choices, 0).unwrap(),
        );
        received
    }

    #[test]
    fn receiver_gets_chosen_messages() {
        let pairs: Vec<(Block, Block)> = (0..8u128)
            .map(|i| (Block::from(i * 2), Block::from(i * 2 + 1)))
            .collect();
        let choices: Vec<bool> = (0..8).map(|i| i % 3 == 1).collect();
        let got = run_batch(choices.clone(), pairs.clone());
        for (i, &c) in choices.iter().enumerate() {
            let expect = if c { pairs[i].1 } else { pairs[i].0 };
            assert_eq!(got[i], expect, "OT {i} returned the wrong message");
        }
    }

    #[test]
    fn all_zero_choices() {
        let pairs = vec![(Block::from(10u128), Block::from(20u128)); 4];
        let got = run_batch(vec![false; 4], pairs);
        assert!(got.iter().all(|&m| m == Block::from(10u128)));
    }

    #[test]
    fn all_one_choices() {
        let pairs = vec![(Block::from(10u128), Block::from(20u128)); 4];
        let got = run_batch(vec![true; 4], pairs);
        assert!(got.iter().all(|&m| m == Block::from(20u128)));
    }

    #[test]
    fn empty_batch() {
        let got = run_batch(vec![], vec![]);
        assert!(got.is_empty());
    }

    #[test]
    fn communication_cost_is_two_blocks_per_ot() {
        let mut dealer = Dealer::new(9);
        let delta = dealer.random_delta();
        let n = 16;
        let (mut s_base, mut r_base) = dealer.deal_cot(delta, n);
        let pairs: Vec<(Block, Block)> = (0..n as u128)
            .map(|i| (Block::from(i), Block::from(i + 100)))
            .collect();
        let choices = vec![true; n];
        let (_, _, s_stats, r_stats) = run_protocol(
            move |ch| send_chosen(ch, &mut s_base, &pairs, 0).unwrap(),
            move |ch| recv_chosen(ch, &mut r_base, &choices, 0).unwrap(),
        );
        assert_eq!(s_stats.bytes_sent, 2 * 16 * n as u64);
        // Receiver sends n flip bits (packed) + 8-byte length header.
        assert_eq!(r_stats.bytes_sent, (n as u64).div_ceil(8) + 8);
    }
}
