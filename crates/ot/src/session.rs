//! A persistent, pipelined two-party FERRET session.
//!
//! [`crate::ferret::run_extensions`] bootstraps a fresh session — dealer,
//! base correlations, LPN matrix, two protocol threads — for every call,
//! which costs several times the marginal extension itself and forces a
//! new `Δ` on every refill. [`CotSession`] instead keeps one bootstrapped
//! session alive (the deployment shape the paper's host-side streaming
//! assumes): the two party threads run [`crate::ferret::FerretSender`] /
//! [`crate::ferret::FerretReceiver`] in lockstep over an in-process
//! channel pair and push each extension's matched output into a **bounded
//! staging channel**. Consumers drain staged outputs with a plain channel
//! receive — no protocol work on their critical path — and the bound is
//! the backpressure: once `lookahead` extensions are staged, the party
//! threads block until demand drains one, so an idle session costs no CPU.
//!
//! Because the session never restarts, `Δ` is fixed for its whole
//! lifetime: every staged batch carries the same offset, and downstream
//! buffers may merge outputs across refills instead of discarding
//! session-boundary remnants.

use crate::channel::LocalChannel;
use crate::dealer::Dealer;
use crate::ferret::{FerretConfig, FerretReceiver, FerretSender};
use ironman_prg::Block;
use ironman_telemetry::{pack_phase_split, EventKind, Histogram, Stopwatch, TraceLog};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Telemetry sinks a session records into: extension and stall duration
/// histograms plus an event trace (extension edges with their
/// SPCOT/LPN phase split, stall edges). A pool passes shared handles so
/// its shard aggregates what its session measures;
/// [`CotSession::spawn`] wires fresh private ones. All recording is
/// relaxed-atomic/ring-buffer work off the consumer's critical path,
/// and compiles out entirely under the telemetry crate's `noop`
/// feature.
#[derive(Clone, Debug, Default)]
pub struct SessionTelemetry {
    /// Per-extension wall time (nanoseconds).
    pub extension: Arc<Histogram>,
    /// Consumer stall time: nanoseconds blocked on an empty staging
    /// buffer (one sample per stall, not per receive).
    pub stall: Arc<Histogram>,
    /// Extension/stall event timeline.
    pub trace: Arc<TraceLog>,
}

/// Supply-pressure counters shared between a session's party threads
/// and its consumer — the signals a pool/service surfaces through its
/// `Stats` so "demand outruns the extension rate" is observable instead
/// of inferred from latency.
#[derive(Debug, Default)]
struct SessionCounters {
    /// Extensions completed and staged by the party threads.
    extensions: AtomicU64,
    /// Consumer receives that found the staging buffer empty and had to
    /// block on the party threads (a *stall*: demand arrived faster than
    /// the session extends). Steady state for a well-provisioned pool is
    /// `stalls ≪ extensions`.
    stalls: AtomicU64,
}

/// One extension's matched output from a [`CotSession`] (all under the
/// session's fixed `Δ`).
#[derive(Clone, Debug)]
pub struct SessionBatch {
    /// Sender strings `z`.
    pub z: Vec<Block>,
    /// Receiver choice bits `x`.
    pub x: Vec<bool>,
    /// Receiver strings `y` with `z = y ⊕ x·Δ`.
    pub y: Vec<Block>,
}

impl SessionBatch {
    /// Correlations in the batch.
    pub fn len(&self) -> usize {
        self.z.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.z.is_empty()
    }
}

/// The session's party threads have exited (panic or teardown); no
/// further batches will arrive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionStopped;

impl std::fmt::Display for SessionStopped {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FERRET session threads stopped")
    }
}

impl std::error::Error for SessionStopped {}

/// A live two-party FERRET session producing extension outputs ahead of
/// demand. Dropping the handle stops both party threads and joins them.
#[derive(Debug)]
pub struct CotSession {
    delta: Block,
    per_extension: usize,
    counters: Arc<SessionCounters>,
    telemetry: SessionTelemetry,
    /// `Option` so `Drop` can hang up before joining the threads.
    out_rx: Option<mpsc::Receiver<SessionBatch>>,
    sender_thread: Option<JoinHandle<()>>,
    receiver_thread: Option<JoinHandle<()>>,
}

impl CotSession {
    /// Bootstraps a session (dealer, base correlations, both parties) and
    /// starts its two protocol threads. `seed` drives the dealer exactly
    /// as in [`crate::ferret::run_extensions`], so the output stream is
    /// bit-identical to per-call runs with the same seed. `lookahead` is
    /// the number of extensions staged ahead of demand (clamped to ≥ 1).
    /// The session records into fresh private telemetry sinks; use
    /// [`CotSession::spawn_with`] to share a pool's.
    pub fn spawn(cfg: &FerretConfig, seed: u64, lookahead: usize) -> CotSession {
        CotSession::spawn_with(cfg, seed, lookahead, SessionTelemetry::default())
    }

    /// [`CotSession::spawn`] recording into caller-provided telemetry
    /// sinks (a pool shard shares its histograms and trace so what the
    /// session measures shows up in the shard's `Stats`).
    pub fn spawn_with(
        cfg: &FerretConfig,
        seed: u64,
        lookahead: usize,
        telemetry: SessionTelemetry,
    ) -> CotSession {
        let mut dealer = Dealer::new(seed);
        let delta = dealer.random_delta();
        let (s_base, r_base) = dealer.deal_cot(delta, cfg.base_cots_required());
        let (mut cs, mut cr) = LocalChannel::pair();
        // Unbounded z hand-off: the protocol's own interactivity already
        // keeps the sender within one extension of the receiver.
        let (z_tx, z_rx) = mpsc::channel::<Vec<Block>>();
        let (out_tx, out_rx) = mpsc::sync_channel::<SessionBatch>(lookahead.max(1));
        // One matrix generation per session, not per party thread — and
        // zero if the caller (a shard pool) already prebuilt the shared
        // matrix into `cfg`.
        let mut cfg = cfg.clone();
        cfg.ensure_shared_matrix();
        let per_extension = cfg.usable_outputs();
        let cfg_s = cfg.clone();
        let cfg_r = cfg;

        let sender_thread = std::thread::spawn(move || {
            let mut sender = FerretSender::new(cfg_s, s_base, seed);
            // A channel error in either direction means the peer thread or
            // the consumer hung up: exit quietly, teardown is in progress.
            while let Ok(z) = sender.extend(&mut cs) {
                if z_tx.send(z).is_err() {
                    return;
                }
            }
        });
        let counters = Arc::new(SessionCounters::default());
        let thread_counters = Arc::clone(&counters);
        let thread_telemetry = telemetry.clone();
        let receiver_thread = std::thread::spawn(move || {
            // The receiver thread also merges: iteration i's (x, y) pairs
            // with iteration i's z (both sides run extensions in lockstep,
            // so the z queue is index-aligned).
            let mut receiver = FerretReceiver::new(cfg_r, r_base, seed);
            let mut ordinal = 0u64;
            loop {
                thread_telemetry
                    .trace
                    .push(EventKind::ExtensionStart, ordinal);
                let watch = Stopwatch::start();
                let Ok((x, y)) = receiver.extend(&mut cr) else {
                    return;
                };
                thread_telemetry.extension.record(watch.elapsed_nanos());
                let (spcot, lpn) = receiver.last_phase_nanos();
                thread_telemetry
                    .trace
                    .push(EventKind::ExtensionEnd, pack_phase_split(spcot, lpn));
                ordinal += 1;
                let Ok(z) = z_rx.recv() else { return };
                thread_counters.extensions.fetch_add(1, Ordering::Relaxed);
                if out_tx.send(SessionBatch { z, x, y }).is_err() {
                    return;
                }
            }
        });

        CotSession {
            delta,
            per_extension,
            counters,
            telemetry,
            out_rx: Some(out_rx),
            sender_thread: Some(sender_thread),
            receiver_thread: Some(receiver_thread),
        }
    }

    /// The session's fixed correlation offset `Δ`.
    pub fn delta(&self) -> Block {
        self.delta
    }

    /// Usable correlations per staged batch.
    pub fn per_extension(&self) -> usize {
        self.per_extension
    }

    /// Extensions completed and staged by the party threads so far.
    pub fn extensions_staged(&self) -> u64 {
        self.counters.extensions.load(Ordering::Relaxed)
    }

    /// Consumer receives that found the staging buffer empty and had to
    /// block — the session's supply-pressure signal (see
    /// [`CotSession::recv`]).
    pub fn consumer_stalls(&self) -> u64 {
        self.counters.stalls.load(Ordering::Relaxed)
    }

    /// Blocks for the next staged extension output. A call that finds
    /// the staging buffer empty counts one *stall* (demand outran the
    /// extension rate), observable via
    /// [`CotSession::consumer_stalls`].
    ///
    /// # Errors
    ///
    /// [`SessionStopped`] when the party threads have exited.
    pub fn recv(&self) -> Result<SessionBatch, SessionStopped> {
        let rx = self.out_rx.as_ref().expect("receiver present until drop");
        match rx.try_recv() {
            Ok(batch) => Ok(batch),
            Err(mpsc::TryRecvError::Disconnected) => Err(SessionStopped),
            Err(mpsc::TryRecvError::Empty) => {
                self.counters.stalls.fetch_add(1, Ordering::Relaxed);
                self.telemetry.trace.push(EventKind::StallStart, 0);
                let watch = Stopwatch::start();
                let batch = rx.recv().map_err(|_| SessionStopped)?;
                let stalled = watch.elapsed_nanos();
                self.telemetry.stall.record(stalled);
                self.telemetry.trace.push(EventKind::StallEnd, stalled);
                Ok(batch)
            }
        }
    }

    /// The telemetry sinks this session records into (the ones passed
    /// to [`CotSession::spawn_with`], or fresh private ones from
    /// [`CotSession::spawn`]).
    pub fn telemetry(&self) -> &SessionTelemetry {
        &self.telemetry
    }

    /// Takes a staged extension output if one is ready; `Ok(None)` when
    /// the staging buffer is merely empty (the threads are still
    /// extending), without blocking.
    ///
    /// # Errors
    ///
    /// [`SessionStopped`] when the party threads have exited — distinct
    /// from the empty case so pollers (e.g. a warm-up sweep) can react
    /// to a dead session instead of waiting for output that will never
    /// come.
    pub fn try_recv(&self) -> Result<Option<SessionBatch>, SessionStopped> {
        match self
            .out_rx
            .as_ref()
            .expect("receiver present until drop")
            .try_recv()
        {
            Ok(batch) => Ok(Some(batch)),
            Err(mpsc::TryRecvError::Empty) => Ok(None),
            Err(mpsc::TryRecvError::Disconnected) => Err(SessionStopped),
        }
    }
}

impl Drop for CotSession {
    /// Hangs up the staging channel (which unwinds both party threads:
    /// the receiver's next staged send fails, and the sender's next
    /// protocol receive disconnects) and joins them.
    fn drop(&mut self) {
        self.out_rx = None;
        for t in [self.receiver_thread.take(), self.sender_thread.take()]
            .into_iter()
            .flatten()
        {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ferret::run_extensions;
    use crate::params::FerretParams;

    fn toy_cfg() -> FerretConfig {
        FerretConfig::new(FerretParams::toy())
    }

    #[test]
    fn session_outputs_match_per_call_runs() {
        // Same seed ⇒ the persistent session's output stream is
        // bit-identical to the fresh-session API's first iterations.
        let cfg = toy_cfg();
        let reference = run_extensions(&cfg, 99, 3);
        let session = CotSession::spawn(&cfg, 99, 2);
        assert_eq!(session.delta(), reference[0].delta);
        for r in &reference {
            let staged = session.recv().unwrap();
            assert_eq!(staged.z, r.z);
            assert_eq!(staged.x, r.x);
            assert_eq!(staged.y, r.y);
        }
    }

    #[test]
    fn staged_batches_verify_under_fixed_delta() {
        let cfg = toy_cfg();
        let session = CotSession::spawn(&cfg, 7, 1);
        let delta = session.delta();
        for _ in 0..4 {
            let b = session.recv().unwrap();
            assert_eq!(b.len(), cfg.usable_outputs());
            for i in 0..b.len() {
                assert_eq!(b.z[i], b.y[i] ^ delta.and_bit(b.x[i]), "index {i}");
            }
        }
    }

    #[test]
    fn lookahead_bounds_staging() {
        // The party threads stall once `lookahead` batches are staged;
        // dropping the handle must still tear the session down cleanly.
        let cfg = toy_cfg();
        let session = CotSession::spawn(&cfg, 11, 2);
        let first = session.recv().unwrap();
        assert_eq!(first.len(), cfg.usable_outputs());
        drop(session); // joins threads; hangs if backpressure deadlocks
    }

    #[test]
    fn counters_track_extensions_and_stalls() {
        let cfg = toy_cfg();
        let session = CotSession::spawn(&cfg, 17, 1);
        for _ in 0..4 {
            session.recv().unwrap();
        }
        // Four batches consumed ⇒ at least four extensions completed.
        assert!(session.extensions_staged() >= 4);
        // A stall is counted per empty-buffer receive, never more than
        // one per consumed batch.
        assert!(session.consumer_stalls() <= 4);
    }

    #[test]
    fn try_recv_is_nonblocking() {
        let cfg = toy_cfg();
        let session = CotSession::spawn(&cfg, 13, 1);
        // Eventually a batch is staged; until then try_recv returns None
        // without blocking.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
        loop {
            if let Some(b) = session.try_recv().unwrap() {
                assert_eq!(b.len(), cfg.usable_outputs());
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never staged");
            std::thread::yield_now();
        }
    }
}
