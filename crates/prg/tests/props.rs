//! Property-based tests for the cryptographic primitives.

use ironman_prg::tree_prg::build_tree_prg;
use ironman_prg::{Aes128, Block, ChaCha, Crhf, PrgKind, PrgStream};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AES is a permutation: distinct plaintexts map to distinct
    /// ciphertexts under any key.
    #[test]
    fn aes_injective(key in any::<u128>(), a in any::<u128>(), b in any::<u128>()) {
        prop_assume!(a != b);
        let aes = Aes128::new(Block::from(key));
        prop_assert_ne!(aes.encrypt_block(Block::from(a)), aes.encrypt_block(Block::from(b)));
    }

    /// Different keys give different ciphertexts for the same plaintext
    /// (no accidental key-schedule collapse on random keys).
    #[test]
    fn aes_key_separation(k1 in any::<u128>(), k2 in any::<u128>(), pt in any::<u128>()) {
        prop_assume!(k1 != k2);
        let a = Aes128::new(Block::from(k1)).encrypt_block(Block::from(pt));
        let b = Aes128::new(Block::from(k2)).encrypt_block(Block::from(pt));
        prop_assert_ne!(a, b);
    }

    /// ChaCha determinism and sensitivity to every input word.
    #[test]
    fn chacha_counter_sensitivity(key in any::<[u8; 32]>(), ctr in any::<u32>()) {
        let c = ChaCha::new(key, 8);
        let a = c.block(ctr, [0u8; 12]);
        let b = c.block(ctr.wrapping_add(1), [0u8; 12]);
        prop_assert_eq!(a, c.block(ctr, [0u8; 12]));
        prop_assert_ne!(a, b);
    }

    /// σ is linear and σ(x) ⊕ x is injective on random samples — the two
    /// properties the MMO proof requires of the orthomorphism.
    #[test]
    fn sigma_orthomorphism(x in any::<u128>(), y in any::<u128>()) {
        let sx = Crhf::sigma(Block::from(x));
        let sy = Crhf::sigma(Block::from(y));
        prop_assert_eq!(sx ^ sy, Crhf::sigma(Block::from(x ^ y)));
        if x != y {
            prop_assert_ne!(sx ^ Block::from(x), sy ^ Block::from(y));
        }
    }

    /// Tree PRGs are deterministic functions of (kind, session key, parent).
    #[test]
    fn tree_prg_determinism(session in any::<u128>(), parent in any::<u128>(), aes in any::<bool>()) {
        let kind = if aes { PrgKind::Aes } else { PrgKind::CHACHA8 };
        let prg = build_tree_prg(kind, Block::from(session), 4);
        let mut x = [Block::ZERO; 4];
        let mut y = [Block::ZERO; 4];
        prg.expand(Block::from(parent), &mut x);
        prg.expand(Block::from(parent), &mut y);
        prop_assert_eq!(x, y);
    }

    /// Stream splitting: with_offset(k) equals skipping k elements.
    #[test]
    fn stream_offset_equivalence(seed in any::<u128>(), skip in 0usize..64) {
        let direct: Vec<Block> = PrgStream::new(Block::from(seed)).skip(skip).take(4).collect();
        let offset: Vec<Block> =
            PrgStream::with_offset(Block::from(seed), skip as u128).take(4).collect();
        prop_assert_eq!(direct, offset);
    }

    /// Block algebra: XOR forms an abelian group with and_bit as scalar
    /// multiplication by GF(2).
    #[test]
    fn block_algebra(a in any::<u128>(), b in any::<u128>(), bit in any::<bool>()) {
        let (x, y) = (Block::from(a), Block::from(b));
        prop_assert_eq!(x ^ y, y ^ x);
        prop_assert_eq!((x ^ y) ^ y, x);
        prop_assert_eq!((x ^ y).and_bit(bit), x.and_bit(bit) ^ y.and_bit(bit));
    }
}
