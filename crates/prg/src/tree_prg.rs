//! The *m*-output PRG abstraction used by GGM tree expansion.
//!
//! §2.3.1 of the paper instantiates the double-length PRG with two AES keys:
//! `G(s) = (AES_{k0}(s) ⊕ s, AES_{k1}(s) ⊕ s)`. §4.1 generalizes to an
//! m-output PRG for m-ary trees (m AES keys, or a single ChaCha call per
//! four children). [`TreePrg`] captures exactly that interface and reports
//! the primitive-call count of every expansion so the m-ary / ChaCha
//! operation-reduction claims can be measured.

use crate::chacha::CHACHA_BLOCKS_PER_CALL;
use crate::{Aes128, Block, ChaCha};
use serde::{Deserialize, Serialize};

/// Which PRG family instantiates the GGM expansion.
///
/// These are the four cells of the paper's Fig. 6 / Fig. 13(a) ablation grid
/// (combined with the tree arity, which lives in `ironman-ggm`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrgKind {
    /// AES-128 based: one block-cipher call per child.
    Aes,
    /// ChaCha based: one call per four children.
    ChaCha {
        /// Round count (the paper uses ChaCha8).
        rounds: u32,
    },
}

impl PrgKind {
    /// The paper's hardware PRG of choice.
    pub const CHACHA8: PrgKind = PrgKind::ChaCha { rounds: 8 };

    /// Blocks produced per primitive call.
    pub fn blocks_per_call(self) -> usize {
        match self {
            PrgKind::Aes => 1,
            PrgKind::ChaCha { .. } => CHACHA_BLOCKS_PER_CALL,
        }
    }

    /// Human-readable label used by bench output.
    pub fn label(self) -> &'static str {
        match self {
            PrgKind::Aes => "AES",
            PrgKind::ChaCha { rounds: 8 } => "ChaCha8",
            PrgKind::ChaCha { rounds: 12 } => "ChaCha12",
            PrgKind::ChaCha { rounds: 20 } => "ChaCha20",
            PrgKind::ChaCha { .. } => "ChaCha",
        }
    }
}

/// An *m*-output length-expanding PRG over 128-bit blocks.
///
/// Implementations must be deterministic: the same parent always expands to
/// the same children. Both the sender's local expansion and the receiver's
/// tree reconstruction (§2.3.1) rely on this.
pub trait TreePrg {
    /// Maximum children obtainable from one primitive call.
    fn blocks_per_call(&self) -> usize;

    /// Expands `parent` into `children.len()` child blocks, returning the
    /// number of primitive calls consumed.
    ///
    /// Child `j` must depend only on `(parent, j)`, so that a receiver who
    /// learns `parent` can recompute any subset of children.
    fn expand(&self, parent: Block, children: &mut [Block]) -> u64;

    /// Primitive calls needed to produce `count` children (without running
    /// the expansion).
    fn calls_for(&self, count: usize) -> u64 {
        (count as u64).div_ceil(self.blocks_per_call() as u64)
    }

    /// Which family this PRG belongs to (for counter bookkeeping).
    fn kind(&self) -> PrgKind;
}

/// AES-based m-output PRG: child `j` is `AES_{k_j}(parent) ⊕ parent`.
///
/// With two keys this is exactly the paper's baseline double-length PRG;
/// with `m` keys it is the m-ary generalization of Fig. 6(b).
///
/// # Example
///
/// ```
/// use ironman_prg::{AesTreePrg, Block, TreePrg};
///
/// let prg = AesTreePrg::new(Block::from(1u128), 2);
/// let mut kids = [Block::ZERO; 2];
/// let calls = prg.expand(Block::from(5u128), &mut kids);
/// assert_eq!(calls, 2); // one AES call per child
/// assert_ne!(kids[0], kids[1]);
/// ```
#[derive(Clone, Debug)]
pub struct AesTreePrg {
    keys: Vec<Aes128>,
}

impl AesTreePrg {
    /// Derives `arity` round-key schedules from a session key.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    pub fn new(session_key: Block, arity: usize) -> Self {
        assert!(arity > 0, "PRG arity must be positive");
        let keys = (0..arity as u128)
            .map(|j| Aes128::new(session_key ^ Block::from(j.wrapping_mul(0x9e37_79b9_7f4a_7c15))))
            .collect();
        AesTreePrg { keys }
    }

    /// Number of derived keys (the maximum supported arity).
    pub fn arity(&self) -> usize {
        self.keys.len()
    }
}

impl TreePrg for AesTreePrg {
    fn blocks_per_call(&self) -> usize {
        1
    }

    fn expand(&self, parent: Block, children: &mut [Block]) -> u64 {
        assert!(
            children.len() <= self.keys.len(),
            "requested {} children but PRG has {} keys",
            children.len(),
            self.keys.len()
        );
        for (child, key) in children.iter_mut().zip(self.keys.iter()) {
            *child = key.encrypt_block(parent) ^ parent;
        }
        children.len() as u64
    }

    fn kind(&self) -> PrgKind {
        PrgKind::Aes
    }
}

/// ChaCha-based m-output PRG: children come from the keystream of
/// `ChaCha_k(counter‖nonce = parent ⊕ segment)`, four per call.
///
/// # Example
///
/// ```
/// use ironman_prg::{Block, ChaChaTreePrg, TreePrg};
///
/// let prg = ChaChaTreePrg::new(Block::from(1u128), 8);
/// let mut kids = [Block::ZERO; 8];
/// let calls = prg.expand(Block::from(5u128), &mut kids);
/// assert_eq!(calls, 2); // eight children = two ChaCha calls
/// ```
#[derive(Clone, Debug)]
pub struct ChaChaTreePrg {
    cipher: ChaCha,
}

impl ChaChaTreePrg {
    /// Creates the PRG from a 128-bit session key and a round count
    /// (the paper's core uses 8).
    pub fn new(session_key: Block, rounds: u32) -> Self {
        ChaChaTreePrg {
            cipher: ChaCha::from_session_key(session_key, rounds),
        }
    }

    /// Round count of the underlying permutation.
    pub fn rounds(&self) -> u32 {
        self.cipher.rounds()
    }
}

impl TreePrg for ChaChaTreePrg {
    fn blocks_per_call(&self) -> usize {
        CHACHA_BLOCKS_PER_CALL
    }

    fn expand(&self, parent: Block, children: &mut [Block]) -> u64 {
        let mut calls = 0u64;
        for (segment, chunk) in children.chunks_mut(CHACHA_BLOCKS_PER_CALL).enumerate() {
            // Distinct keystream per 4-child segment: perturb the parent with
            // the segment index in the high half (the low 128 bits carry the
            // node value through counter+nonce).
            let tweak = Block::from((segment as u128) << 96);
            let out = self.cipher.expand_block(parent ^ tweak);
            chunk.copy_from_slice(&out[..chunk.len()]);
            calls += 1;
        }
        calls
    }

    fn kind(&self) -> PrgKind {
        PrgKind::ChaCha {
            rounds: self.cipher.rounds(),
        }
    }
}

/// Builds a boxed [`TreePrg`] for a given kind and arity — the factory used
/// by the GGM layer and the ablation benches.
pub fn build_tree_prg(kind: PrgKind, session_key: Block, arity: usize) -> Box<dyn TreePrg> {
    match kind {
        PrgKind::Aes => Box::new(AesTreePrg::new(session_key, arity)),
        PrgKind::ChaCha { rounds } => Box::new(ChaChaTreePrg::new(session_key, rounds)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_expand_matches_paper_formula() {
        let prg = AesTreePrg::new(Block::from(9u128), 4);
        let mut kids = [Block::ZERO; 4];
        assert_eq!(prg.expand(Block::from(1u128), &mut kids), 4);
        // child_j = AES_{k_j}(s) ⊕ s
        let k0 = Aes128::new(Block::from(9u128));
        assert_eq!(
            kids[0],
            k0.encrypt_block(Block::from(1u128)) ^ Block::from(1u128)
        );
    }

    #[test]
    fn chacha_call_counting() {
        let prg = ChaChaTreePrg::new(Block::from(2u128), 8);
        assert_eq!(prg.calls_for(1), 1);
        assert_eq!(prg.calls_for(4), 1);
        assert_eq!(prg.calls_for(5), 2);
        assert_eq!(prg.calls_for(32), 8);
    }

    #[test]
    fn expansion_is_deterministic() {
        for kind in [PrgKind::Aes, PrgKind::CHACHA8] {
            let prg = build_tree_prg(kind, Block::from(5u128), 4);
            let mut a = [Block::ZERO; 4];
            let mut b = [Block::ZERO; 4];
            prg.expand(Block::from(77u128), &mut a);
            prg.expand(Block::from(77u128), &mut b);
            assert_eq!(a, b, "{kind:?} expansion must be deterministic");
        }
    }

    #[test]
    fn children_depend_on_parent() {
        for kind in [PrgKind::Aes, PrgKind::CHACHA8] {
            let prg = build_tree_prg(kind, Block::from(5u128), 2);
            let mut a = [Block::ZERO; 2];
            let mut b = [Block::ZERO; 2];
            prg.expand(Block::from(1u128), &mut a);
            prg.expand(Block::from(2u128), &mut b);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn chacha_segments_are_distinct() {
        let prg = ChaChaTreePrg::new(Block::from(1u128), 8);
        let mut kids = [Block::ZERO; 16];
        let calls = prg.expand(Block::from(3u128), &mut kids);
        assert_eq!(calls, 4);
        for i in 0..16 {
            for j in i + 1..16 {
                assert_ne!(kids[i], kids[j], "children {i} and {j} collide");
            }
        }
    }

    #[test]
    fn prefix_consistency_across_widths() {
        // Expanding 2 children must agree with the first 2 of an 8-child
        // expansion (the receiver reconstructs partial levels).
        let prg = ChaChaTreePrg::new(Block::from(6u128), 8);
        let mut two = [Block::ZERO; 2];
        let mut eight = [Block::ZERO; 8];
        prg.expand(Block::from(10u128), &mut two);
        prg.expand(Block::from(10u128), &mut eight);
        assert_eq!(two[..], eight[..2]);
    }

    #[test]
    #[should_panic(expected = "children")]
    fn aes_overflow_arity_panics() {
        let prg = AesTreePrg::new(Block::from(1u128), 2);
        let mut kids = [Block::ZERO; 3];
        prg.expand(Block::ZERO, &mut kids);
    }

    #[test]
    fn labels() {
        assert_eq!(PrgKind::Aes.label(), "AES");
        assert_eq!(PrgKind::CHACHA8.label(), "ChaCha8");
    }
}
