//! Counter-mode PRG streams.
//!
//! Several layers need "an unbounded sequence of pseudorandom blocks from
//! one seed": the IKNP column expansion, the dealer, workload generators.
//! [`PrgStream`] provides that as an iterator over AES-CTR output, and
//! [`fill_blocks`] as the bulk form.

use crate::{Aes128, Block};

/// An infinite AES-CTR keystream over 128-bit blocks.
///
/// # Example
///
/// ```
/// use ironman_prg::stream::PrgStream;
/// use ironman_prg::Block;
///
/// let mut s = PrgStream::new(Block::from(7u128));
/// let a = s.next().unwrap();
/// let b = s.next().unwrap();
/// assert_ne!(a, b);
/// // Re-seeding restarts the stream deterministically.
/// assert_eq!(PrgStream::new(Block::from(7u128)).next().unwrap(), a);
/// ```
#[derive(Clone, Debug)]
pub struct PrgStream {
    cipher: Aes128,
    counter: u128,
}

impl PrgStream {
    /// Creates a stream from a seed.
    pub fn new(seed: Block) -> Self {
        PrgStream {
            cipher: Aes128::new(seed),
            counter: 0,
        }
    }

    /// Creates a stream starting at a given counter (for splitting one
    /// seed's stream into disjoint domains).
    pub fn with_offset(seed: Block, offset: u128) -> Self {
        PrgStream {
            cipher: Aes128::new(seed),
            counter: offset,
        }
    }

    /// The next counter value (how many blocks have been drawn plus the
    /// initial offset).
    pub fn position(&self) -> u128 {
        self.counter
    }
}

impl Iterator for PrgStream {
    type Item = Block;

    fn next(&mut self) -> Option<Block> {
        let out = self.cipher.encrypt_block(Block::from(self.counter));
        self.counter = self.counter.wrapping_add(1);
        Some(out)
    }
}

/// Fills `out` with keystream blocks derived from `seed` (one-shot bulk
/// form of [`PrgStream`]).
pub fn fill_blocks(seed: Block, out: &mut [Block]) {
    for (slot, block) in out.iter_mut().zip(PrgStream::new(seed)) {
        *slot = block;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: Vec<Block> = PrgStream::new(Block::from(1u128)).take(8).collect();
        let b: Vec<Block> = PrgStream::new(Block::from(1u128)).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn offset_streams_are_disjoint_continuations() {
        let full: Vec<Block> = PrgStream::new(Block::from(2u128)).take(10).collect();
        let tail: Vec<Block> = PrgStream::with_offset(Block::from(2u128), 5)
            .take(5)
            .collect();
        assert_eq!(&full[5..], tail.as_slice());
    }

    #[test]
    fn fill_matches_iterator() {
        let mut buf = [Block::ZERO; 6];
        fill_blocks(Block::from(3u128), &mut buf);
        let iter: Vec<Block> = PrgStream::new(Block::from(3u128)).take(6).collect();
        assert_eq!(buf.to_vec(), iter);
    }

    #[test]
    fn blocks_look_distinct() {
        let blocks: Vec<Block> = PrgStream::new(Block::from(4u128)).take(256).collect();
        let unique: std::collections::HashSet<_> = blocks.iter().collect();
        assert_eq!(unique.len(), 256);
    }

    #[test]
    fn position_tracks_draws() {
        let mut s = PrgStream::new(Block::from(5u128));
        assert_eq!(s.position(), 0);
        let _ = s.next();
        let _ = s.next();
        assert_eq!(s.position(), 2);
    }
}
