//! A from-scratch FIPS-197 AES-128 implementation (encryption only).
//!
//! The paper's baseline PRG instantiates the GGM double-length PRG with
//! AES-NI: `G(s) = (AES_{k0}(s) ⊕ s, AES_{k1}(s) ⊕ s)`. This module provides
//! a portable, table-based software equivalent. Performance of the CPU
//! baseline is modeled analytically in `ironman-perf`; what must be *exact*
//! here is the cipher itself (verified against the FIPS-197 and NIST
//! test vectors below) so that GGM trees, LPN index generation and CRHF
//! outputs are reproducible bit-for-bit across backends.

use crate::Block;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for the AES-128 key schedule.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply by `x` in GF(2^8) with the AES reduction polynomial.
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 encryption key (11 round keys).
///
/// # Example
///
/// ```
/// use ironman_prg::{Aes128, Block};
///
/// let key = Aes128::new(Block::from(0u128));
/// let ct = key.encrypt_block(Block::from(0u128));
/// // Deterministic: encrypting the same plaintext twice is identical.
/// assert_eq!(ct, key.encrypt_block(Block::from(0u128)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys of AES-128.
    ///
    /// The key block is interpreted in little-endian byte order (consistent
    /// with [`Block::to_le_bytes`]); test vectors below fix the convention.
    pub fn new(key: Block) -> Self {
        Self::from_key_bytes(key.to_le_bytes())
    }

    /// Expands a raw 16-byte key (as written in FIPS-197: `bytes[0]` is the
    /// first key byte).
    pub fn from_key_bytes(key: [u8; 16]) -> Self {
        let mut rk = [[0u8; 16]; 11];
        rk[0] = key;
        for round in 1..11 {
            let prev = rk[round - 1];
            // Rotate + substitute the last word, XOR with round constant.
            let mut temp = [prev[13], prev[14], prev[15], prev[12]];
            for t in temp.iter_mut() {
                *t = SBOX[*t as usize];
            }
            temp[0] ^= RCON[round - 1];
            for i in 0..4 {
                rk[round][i] = prev[i] ^ temp[i];
            }
            for i in 4..16 {
                rk[round][i] = prev[i] ^ rk[round][i - 4];
            }
        }
        Aes128 { round_keys: rk }
    }

    /// Encrypts one 16-byte state in place.
    fn encrypt_bytes(&self, state: &mut [u8; 16]) {
        add_round_key(state, &self.round_keys[0]);
        for round in 1..10 {
            sub_bytes(state);
            shift_rows(state);
            mix_columns(state);
            add_round_key(state, &self.round_keys[round]);
        }
        sub_bytes(state);
        shift_rows(state);
        add_round_key(state, &self.round_keys[10]);
    }

    /// Encrypts a [`Block`] (little-endian byte interpretation).
    #[inline]
    pub fn encrypt_block(&self, block: Block) -> Block {
        let mut state = block.to_le_bytes();
        self.encrypt_bytes(&mut state);
        Block::from_le_bytes(state)
    }

    /// The fixed-key "pi" permutation `π(x) = AES_0(x)` used by the
    /// correlation-robust hash; see [`crate::crhf`].
    pub fn fixed() -> Self {
        Aes128::new(Block::from(0x0123_4567_89ab_cdef_0f1e_2d3c_4b5a_6978u128))
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

/// AES organizes the 16 bytes column-major: byte `i` is row `i % 4`,
/// column `i / 4`. ShiftRows rotates row `r` left by `r`.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    // Row 1: left rotate by 1.
    state[1] = s[5];
    state[5] = s[9];
    state[9] = s[13];
    state[13] = s[1];
    // Row 2: left rotate by 2.
    state[2] = s[10];
    state[6] = s[14];
    state[10] = s[2];
    state[14] = s[6];
    // Row 3: left rotate by 3.
    state[3] = s[15];
    state[7] = s[3];
    state[11] = s[7];
    state[15] = s[11];
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let base = col * 4;
        let a0 = state[base];
        let a1 = state[base + 1];
        let a2 = state[base + 2];
        let a3 = state[base + 3];
        let all = a0 ^ a1 ^ a2 ^ a3;
        state[base] = a0 ^ all ^ xtime(a0 ^ a1);
        state[base + 1] = a1 ^ all ^ xtime(a1 ^ a2);
        state[base + 2] = a2 ^ all ^ xtime(a2 ^ a3);
        state[base + 3] = a3 ^ all ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex16(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    /// FIPS-197 Appendix B: key 2b7e1516..., plaintext 3243f6a8...
    #[test]
    fn fips197_appendix_b() {
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex16("3243f6a8885a308d313198a2e0370734");
        let expected = hex16("3925841d02dc09fbdc118597196a0b32");
        let aes = Aes128::from_key_bytes(key);
        let mut state = pt;
        aes.encrypt_bytes(&mut state);
        assert_eq!(state, expected);
    }

    /// FIPS-197 Appendix C.1: key 000102...0f, plaintext 00112233...ff.
    #[test]
    fn fips197_appendix_c1() {
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let pt = hex16("00112233445566778899aabbccddeeff");
        let expected = hex16("69c4e0d86a7b0430d8cdb78070b4c55a");
        let aes = Aes128::from_key_bytes(key);
        let mut state = pt;
        aes.encrypt_bytes(&mut state);
        assert_eq!(state, expected);
    }

    /// NIST SP 800-38A ECB-AES128 vector #1.
    #[test]
    fn nist_sp800_38a_ecb1() {
        let key = hex16("2b7e151628aed2a6abf7158809cf4f3c");
        let pt = hex16("6bc1bee22e409f96e93d7e117393172a");
        let expected = hex16("3ad77bb40d7a3660a89ecaf32466ef97");
        let aes = Aes128::from_key_bytes(key);
        let mut state = pt;
        aes.encrypt_bytes(&mut state);
        assert_eq!(state, expected);
    }

    #[test]
    fn block_interface_matches_bytes() {
        let key = hex16("000102030405060708090a0b0c0d0e0f");
        let pt = hex16("00112233445566778899aabbccddeeff");
        let aes = Aes128::from_key_bytes(key);
        let ct = aes.encrypt_block(Block::from_le_bytes(pt));
        assert_eq!(ct.to_le_bytes(), hex16("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn different_keys_differ() {
        let a = Aes128::new(Block::from(1u128));
        let b = Aes128::new(Block::from(2u128));
        let pt = Block::from(99u128);
        assert_ne!(a.encrypt_block(pt), b.encrypt_block(pt));
    }

    #[test]
    fn xtime_matches_table() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47);
        assert_eq!(xtime(0x80), 0x1b);
    }
}
