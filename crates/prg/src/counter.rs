//! Primitive-call accounting.
//!
//! The paper's SPCOT argument (Fig. 6, Fig. 7a, §4.1) is entirely about
//! *counts*: a 2-ary AES tree needs `2ℓ − 2` calls for `ℓ` leaves, an m-ary
//! tree needs `m(ℓ−1)/(m−1)`, and ChaCha divides the call count by up to 4.
//! Instead of trusting those formulas, every expansion in this workspace
//! tallies its primitive invocations into a [`PrgCounter`] so the benches
//! can *measure* the reduction factors.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// Tally of PRG primitive invocations.
///
/// # Example
///
/// ```
/// use ironman_prg::PrgCounter;
///
/// let mut c = PrgCounter::default();
/// c.add_aes(6);
/// c.add_chacha(1);
/// assert_eq!(c.total(), 7);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrgCounter {
    /// Number of AES-128 block encryptions.
    pub aes_calls: u64,
    /// Number of ChaCha block-function invocations.
    pub chacha_calls: u64,
}

impl PrgCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` AES calls.
    #[inline]
    pub fn add_aes(&mut self, n: u64) {
        self.aes_calls += n;
    }

    /// Records `n` ChaCha calls.
    #[inline]
    pub fn add_chacha(&mut self, n: u64) {
        self.chacha_calls += n;
    }

    /// Total primitive calls, irrespective of kind.
    #[inline]
    pub fn total(&self) -> u64 {
        self.aes_calls + self.chacha_calls
    }

    /// AES-equivalent operation count: the roofline in Fig. 1(c) is measured
    /// in "AES per second", and one ChaCha call produces four blocks so we
    /// weight it as four AES-equivalents when comparing throughput.
    #[inline]
    pub fn aes_equivalents(&self) -> u64 {
        self.aes_calls + 4 * self.chacha_calls
    }
}

impl Add for PrgCounter {
    type Output = PrgCounter;
    fn add(self, rhs: PrgCounter) -> PrgCounter {
        PrgCounter {
            aes_calls: self.aes_calls + rhs.aes_calls,
            chacha_calls: self.chacha_calls + rhs.chacha_calls,
        }
    }
}

impl AddAssign for PrgCounter {
    fn add_assign(&mut self, rhs: PrgCounter) {
        self.aes_calls += rhs.aes_calls;
        self.chacha_calls += rhs.chacha_calls;
    }
}

impl fmt::Display for PrgCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} AES + {} ChaCha calls",
            self.aes_calls, self.chacha_calls
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_combines() {
        let a = PrgCounter {
            aes_calls: 3,
            chacha_calls: 1,
        };
        let b = PrgCounter {
            aes_calls: 2,
            chacha_calls: 4,
        };
        let c = a + b;
        assert_eq!(c.aes_calls, 5);
        assert_eq!(c.chacha_calls, 5);
        assert_eq!(c.total(), 10);
    }

    #[test]
    fn aes_equivalents_weighting() {
        let c = PrgCounter {
            aes_calls: 2,
            chacha_calls: 3,
        };
        assert_eq!(c.aes_equivalents(), 2 + 12);
    }
}
