//! Correlation-robust hash function (CRHF).
//!
//! COT correlations `(r0, r1 = r0 ⊕ Δ)` leak their structure, so they are
//! converted into standard OT pads `(H(r0), H(r1))` with a correlation-robust
//! hash before use (Fig. 2 of the paper, following Ishai et al. \[49\]). We
//! implement the standard MMO construction over fixed-key AES:
//! `H(i, x) = π(σ(x) ⊕ i) ⊕ σ(x)` with `σ` a linear orthomorphism and `π`
//! a fixed-key AES permutation — the same construction used by production
//! OT libraries (EMP, libOTe).

use crate::{Aes128, Block};

/// A correlation-robust hash with a fixed AES permutation.
///
/// # Example
///
/// ```
/// use ironman_prg::{Block, Crhf};
///
/// let h = Crhf::new();
/// let delta = Block::from(0xffu128);
/// let r0 = Block::from(3u128);
/// // Hashes of correlated strings look unrelated:
/// assert_ne!(h.hash(0, r0) ^ h.hash(0, r0 ^ delta), delta);
/// ```
#[derive(Clone, Debug)]
pub struct Crhf {
    pi: Aes128,
}

impl Default for Crhf {
    fn default() -> Self {
        Self::new()
    }
}

impl Crhf {
    /// Creates the CRHF with the workspace's fixed permutation key.
    pub fn new() -> Self {
        Crhf {
            pi: Aes128::fixed(),
        }
    }

    /// Creates a CRHF with a caller-chosen permutation key (useful for
    /// domain separation between protocol instances).
    pub fn with_key(key: Block) -> Self {
        Crhf {
            pi: Aes128::new(key),
        }
    }

    /// The linear orthomorphism `σ(a ‖ b) = (a ⊕ b) ‖ a` (halves swapped and
    /// mixed). Linear, and `σ(x) ⊕ x` is also a permutation — the property
    /// the MMO security proof needs.
    #[inline]
    pub fn sigma(x: Block) -> Block {
        let (hi, lo) = x.to_halves();
        Block::from_halves(hi ^ lo, hi)
    }

    /// Hashes `x` under tweak `i` (typically the OT index):
    /// `H(i, x) = π(σ(x) ⊕ i) ⊕ σ(x)`.
    #[inline]
    pub fn hash(&self, index: u64, x: Block) -> Block {
        let s = Self::sigma(x) ^ Block::from(index as u128);
        self.pi.encrypt_block(s) ^ s
    }

    /// Hashes a slice of correlated blocks with their positions as tweaks —
    /// the bulk COT→ROT conversion of the online phase.
    pub fn hash_all(&self, base_index: u64, xs: &[Block]) -> Vec<Block> {
        xs.iter()
            .enumerate()
            .map(|(i, &x)| self.hash(base_index + i as u64, x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_is_linear() {
        let a = Block::from(0x1234u128);
        let b = Block::from(0x99999u128);
        assert_eq!(Crhf::sigma(a) ^ Crhf::sigma(b), Crhf::sigma(a ^ b));
    }

    #[test]
    fn sigma_is_a_permutation_on_samples() {
        // Injectivity spot check over a structured sample set.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u128 {
            assert!(seen.insert(Crhf::sigma(Block::from(i * 0x1_0001))));
        }
    }

    #[test]
    fn hash_depends_on_index() {
        let h = Crhf::new();
        let x = Block::from(42u128);
        assert_ne!(h.hash(0, x), h.hash(1, x));
    }

    #[test]
    fn hash_depends_on_input() {
        let h = Crhf::new();
        assert_ne!(h.hash(0, Block::from(1u128)), h.hash(0, Block::from(2u128)));
    }

    #[test]
    fn hash_all_matches_individual() {
        let h = Crhf::new();
        let xs = [Block::from(1u128), Block::from(2u128), Block::from(3u128)];
        let out = h.hash_all(10, &xs);
        assert_eq!(out[0], h.hash(10, xs[0]));
        assert_eq!(out[2], h.hash(12, xs[2]));
    }

    #[test]
    fn correlation_is_destroyed() {
        // For many (r0, Δ), H(r0) ⊕ H(r0 ⊕ Δ) should not equal Δ (it should
        // look random). Check no collision with Δ over a sample.
        let h = Crhf::new();
        let delta = Block::from(0xdeadbeefu128);
        for i in 0..256u128 {
            let r0 = Block::from(i * 7 + 1);
            let d = h.hash(i as u64, r0) ^ h.hash(i as u64, r0 ^ delta);
            assert_ne!(d, delta);
        }
    }
}
