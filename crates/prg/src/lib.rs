//! Cryptographic primitives for the Ironman OT-extension reproduction.
//!
//! This crate provides the building blocks that every other crate in the
//! workspace consumes:
//!
//! * [`Block`] — a 128-bit block (the unit of all COT correlations, GGM tree
//!   nodes and LPN vector elements; `λ = 128` throughout the paper).
//! * [`aes::Aes128`] — a from-scratch, table-based FIPS-197 AES-128
//!   implementation used to instantiate the paper's baseline double-length
//!   PRG `G(s) = (AES_{k0}(s) ⊕ s, AES_{k1}(s) ⊕ s)`.
//! * [`chacha::ChaCha`] — a from-scratch ChaCha permutation with a
//!   configurable round count (ChaCha8 is the paper's hardware PRG of
//!   choice; it emits 512 bits — four blocks — per call).
//! * [`TreePrg`] — the *m*-output PRG abstraction the GGM-tree layer builds
//!   on, with primitive-call accounting so that the paper's operation-count
//!   arguments (Fig. 6, Fig. 7a) can be measured rather than asserted.
//! * [`crhf::Crhf`] — the correlation-robust hash used to convert COT
//!   correlations into standard OTs (Fig. 2).
//!
//! # Example
//!
//! ```
//! use ironman_prg::{Block, ChaChaTreePrg, TreePrg};
//!
//! let prg = ChaChaTreePrg::new(Block::from(42u128), 8);
//! let mut children = [Block::ZERO; 4];
//! let calls = prg.expand(Block::from(7u128), &mut children);
//! assert_eq!(calls, 1); // one ChaCha8 call yields four child blocks
//! assert!(children.iter().all(|c| *c != Block::ZERO));
//! ```

// `deny` (not `forbid`) so [`block`] alone may opt in to the wide-XOR
// intrinsics and the little-endian wire cast behind scoped
// `#[allow(unsafe_code)]`; every other module still rejects `unsafe`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod block;
pub mod chacha;
pub mod counter;
pub mod crhf;
pub mod stream;
pub mod tree_prg;

pub use aes::Aes128;
pub use block::Block;
pub use chacha::{ChaCha, CHACHA_BLOCK_BYTES};
pub use counter::PrgCounter;
pub use crhf::Crhf;
pub use stream::PrgStream;
pub use tree_prg::{AesTreePrg, ChaChaTreePrg, PrgKind, TreePrg};
