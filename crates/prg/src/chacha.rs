//! A from-scratch ChaCha permutation with a configurable round count.
//!
//! The paper replaces the AES-based PRG with ChaCha8 in hardware (Table 2):
//! one fully pipelined ChaCha8 core emits a 512-bit keystream block — four
//! 128-bit GGM children — per call, at lower area than an AES core. We
//! implement the ChaCha block function exactly (verified against the RFC
//! 8439 ChaCha20 vector; ChaCha8/12 reuse the same quarter-round network
//! with fewer double rounds, as in the original ChaCha specification).

use crate::Block;

/// Bytes produced by one ChaCha block-function invocation (512 bits).
pub const CHACHA_BLOCK_BYTES: usize = 64;

/// Number of 128-bit [`Block`]s in one ChaCha output (the "quad-length PRG"
/// property the m-ary expansion exploits, §4.1).
pub const CHACHA_BLOCKS_PER_CALL: usize = 4;

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A keyed ChaCha instance with `rounds ∈ {8, 12, 20}`.
///
/// # Example
///
/// ```
/// use ironman_prg::ChaCha;
///
/// let c = ChaCha::new([0u8; 32], 8);
/// let out = c.block(0, [0u8; 12]);
/// assert_eq!(out.len(), 64);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha {
    key: [u32; 8],
    rounds: u32,
}

impl ChaCha {
    /// Creates a ChaCha instance from a 256-bit key.
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is not even or is zero. (The original ChaCha family
    /// is defined for even round counts; the paper uses ChaCha8.)
    pub fn new(key: [u8; 32], rounds: u32) -> Self {
        assert!(
            rounds > 0 && rounds.is_multiple_of(2),
            "ChaCha round count must be even and nonzero"
        );
        let mut words = [0u32; 8];
        for (i, word) in words.iter_mut().enumerate() {
            *word = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        ChaCha { key: words, rounds }
    }

    /// Builds a 256-bit ChaCha key by doubling a 128-bit session key. The
    /// GGM layer uses a per-session key; the parent node value is injected
    /// through the counter/nonce words, making the block function a PRG in
    /// the node value.
    pub fn from_session_key(key: Block, rounds: u32) -> Self {
        let half = key.to_le_bytes();
        let mut full = [0u8; 32];
        full[..16].copy_from_slice(&half);
        full[16..].copy_from_slice(&half);
        // Break the symmetry between the two halves so the key is not a
        // degenerate repetition.
        for b in full[16..].iter_mut() {
            *b = b.wrapping_add(0x5a);
        }
        ChaCha::new(full, rounds)
    }

    /// Number of double rounds executed per block call.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The ChaCha block function: 64 bytes of keystream for a given
    /// 32-bit counter and 96-bit nonce.
    pub fn block(&self, counter: u32, nonce: [u8; 12]) -> [u8; CHACHA_BLOCK_BYTES] {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = counter;
        for i in 0..3 {
            state[13 + i] =
                u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().expect("4-byte chunk"));
        }
        let mut working = state;
        for _ in 0..self.rounds / 2 {
            // Column round.
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; CHACHA_BLOCK_BYTES];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Runs the block function with a 128-bit input block packed into the
    /// `(counter, nonce)` words, returning four 128-bit output blocks.
    ///
    /// This is the quad-length PRG of §4.1: `PRG(s)` with `s` a GGM node.
    pub fn expand_block(&self, input: Block) -> [Block; CHACHA_BLOCKS_PER_CALL] {
        let bytes = input.to_le_bytes();
        let counter = u32::from_le_bytes(bytes[..4].try_into().expect("4-byte chunk"));
        let nonce: [u8; 12] = bytes[4..].try_into().expect("12-byte chunk");
        let stream = self.block(counter, nonce);
        let mut out = [Block::ZERO; CHACHA_BLOCKS_PER_CALL];
        for (i, chunk) in stream.chunks_exact(16).enumerate() {
            out[i] = Block::from_le_bytes(chunk.try_into().expect("16-byte chunk"));
        }
        out
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 ChaCha20 block function test vector.
    #[test]
    fn rfc8439_chacha20_block() {
        let mut key = [0u8; 32];
        for (i, byte) in key.iter_mut().enumerate() {
            *byte = i as u8;
        }
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let c = ChaCha::new(key, 20);
        let out = c.block(1, nonce);
        let expected_start = [0x10u8, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15];
        let expected_end = [0x3cu8, 0x4e];
        assert_eq!(&out[..8], &expected_start);
        assert_eq!(&out[62..], &expected_end);
        // Full first row of the expected keystream.
        let expected_row0 = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&out[..16], &expected_row0);
    }

    #[test]
    fn quarter_round_rfc8439_vector() {
        // RFC 8439 §2.1.1 quarter-round test vector.
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    #[test]
    fn round_counts_differ() {
        let key = [7u8; 32];
        let c8 = ChaCha::new(key, 8);
        let c20 = ChaCha::new(key, 20);
        assert_ne!(c8.block(0, [0u8; 12]), c20.block(0, [0u8; 12]));
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_rounds_rejected() {
        let _ = ChaCha::new([0u8; 32], 7);
    }

    #[test]
    fn expand_block_is_deterministic_and_injective_looking() {
        let c = ChaCha::from_session_key(Block::from(3u128), 8);
        let a = c.expand_block(Block::from(1u128));
        let b = c.expand_block(Block::from(2u128));
        assert_eq!(a, c.expand_block(Block::from(1u128)));
        assert_ne!(a, b);
        // The four children of one expansion are all distinct.
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(a[i], a[j]);
            }
        }
    }

    #[test]
    fn session_key_halves_not_symmetric() {
        let c = ChaCha::from_session_key(Block::from(0u128), 8);
        // Key words 0..4 and 4..8 must differ after symmetry breaking.
        assert_ne!(&c.key[..4], &c.key[4..]);
    }
}
