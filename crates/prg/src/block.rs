//! The 128-bit [`Block`] type.
//!
//! Every value that flows through the Ironman pipeline — GGM tree nodes, COT
//! correlation strings, LPN vector elements, the global offset `Δ` — is a
//! 128-bit block (`λ = 128` in the paper's notation, Table 1). The type is a
//! thin newtype over `u128` with XOR-centric arithmetic, because all protocol
//! algebra happens in GF(2)^128.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitXor, BitXorAssign, Not};

/// A 128-bit block, the universal data unit of the OT-extension pipeline.
///
/// `Block` is `Copy` and cheap; protocol code passes it by value.
///
/// # Example
///
/// ```
/// use ironman_prg::Block;
///
/// let delta = Block::from(0xdead_beefu128);
/// let r0 = Block::from(17u128);
/// let r1 = r0 ^ delta; // a COT correlation pair: r1 = r0 ⊕ Δ
/// assert_eq!(r0 ^ r1, delta);
/// ```
/// `repr(transparent)` is a wire-format commitment: a `Block` has exactly
/// the size, alignment and byte representation of its `u128`, which is what
/// lets [`Block::wire_bytes`] hand a `&[Block]` to the socket as raw bytes
/// on little-endian targets without a serialization copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(transparent)]
pub struct Block(pub u128);

impl Block {
    /// The all-zero block.
    pub const ZERO: Block = Block(0);
    /// The all-one block.
    pub const ONES: Block = Block(u128::MAX);
    /// Size of a block in bytes.
    pub const BYTES: usize = 16;
    /// Size of a block in bits (the security parameter λ).
    pub const BITS: usize = 128;

    /// Creates a block from its little-endian byte representation.
    ///
    /// # Example
    ///
    /// ```
    /// use ironman_prg::Block;
    /// let b = Block::from_le_bytes([1u8; 16]);
    /// assert_eq!(b.to_le_bytes(), [1u8; 16]);
    /// ```
    #[inline]
    pub fn from_le_bytes(bytes: [u8; 16]) -> Self {
        Block(u128::from_le_bytes(bytes))
    }

    /// Returns the little-endian byte representation.
    #[inline]
    pub fn to_le_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Appends `blocks` to `out` as consecutive 16-byte little-endian
    /// words with a single up-front reservation — the bulk form of
    /// [`Block::to_le_bytes`] used by serialization hot paths (one grown
    /// buffer, no per-element capacity checks).
    pub fn extend_le_bytes(blocks: &[Block], out: &mut Vec<u8>) {
        out.reserve(blocks.len() * Block::BYTES);
        for b in blocks {
            out.extend_from_slice(&b.to_le_bytes());
        }
    }

    /// Appends consecutive 16-byte little-endian words from `bytes` to
    /// `out` — the bulk inverse of [`Block::extend_le_bytes`].
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len()` is not a multiple of [`Block::BYTES`]
    /// (callers validate lengths before decoding).
    pub fn extend_from_le_bytes(bytes: &[u8], out: &mut Vec<Block>) {
        assert_eq!(bytes.len() % Block::BYTES, 0, "partial block");
        out.reserve(bytes.len() / Block::BYTES);
        for chunk in bytes.chunks_exact(Block::BYTES) {
            out.push(Block::from_le_bytes(
                chunk.try_into().expect("exact 16-byte chunk"),
            ));
        }
    }

    /// Builds a block from two 64-bit halves (`hi`, `lo`).
    #[inline]
    pub fn from_halves(hi: u64, lo: u64) -> Self {
        Block(((hi as u128) << 64) | lo as u128)
    }

    /// Splits the block into `(hi, lo)` 64-bit halves.
    #[inline]
    pub fn to_halves(self) -> (u64, u64) {
        ((self.0 >> 64) as u64, self.0 as u64)
    }

    /// Returns the least-significant bit, used as the "choice bit" carrier in
    /// COT-to-bit conversions.
    #[inline]
    pub fn lsb(self) -> bool {
        self.0 & 1 == 1
    }

    /// Returns the block with the least-significant bit forced to `bit`.
    #[inline]
    pub fn with_lsb(self, bit: bool) -> Self {
        Block((self.0 & !1) | bit as u128)
    }

    /// Conditionally selects `self` when `bit` is set, otherwise zero.
    ///
    /// This is the `u·Δ` operation of the COT correlation `w = v ⊕ u·Δ`
    /// (constant-time by construction: a mask, not a branch).
    #[inline]
    pub fn and_bit(self, bit: bool) -> Self {
        Block(self.0 & (bit as u128).wrapping_neg())
    }

    /// XOR-accumulates an iterator of blocks (the "XOR tree" reduction used
    /// by the unified unit and LPN encoder).
    ///
    /// # Example
    ///
    /// ```
    /// use ironman_prg::Block;
    /// let blocks = [Block::from(1u128), Block::from(2u128), Block::from(4u128)];
    /// assert_eq!(Block::xor_all(blocks.iter().copied()), Block::from(7u128));
    /// ```
    #[inline]
    pub fn xor_all<I: IntoIterator<Item = Block>>(iter: I) -> Block {
        iter.into_iter().fold(Block::ZERO, |a, b| a ^ b)
    }

    /// XORs `src` onto `dst` element-wise — the bulk word-XOR the
    /// extension pipeline uses to fold SPCOT leaf stripes into the LPN
    /// accumulator without an intermediate vector. On x86-64 with AVX2
    /// the bulk runs on 256-bit `VPXOR` lanes (two blocks per
    /// instruction); elsewhere the scalar loop autovectorizes to
    /// whatever the target offers. `IRONMAN_SIMD=scalar` forces the
    /// scalar loop (same knob as the `ironman-lpn` kernel dispatch).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ.
    #[allow(unsafe_code)]
    pub fn xor_into(dst: &mut [Block], src: &[Block]) {
        assert_eq!(dst.len(), src.len(), "slice lengths must match");
        #[cfg(target_arch = "x86_64")]
        if wide::enabled() {
            // SAFETY: AVX2 presence was verified at runtime by `enabled`.
            unsafe { wide::xor_into_avx2(dst, src) };
            return;
        }
        for (d, &s) in dst.iter_mut().zip(src) {
            *d ^= s;
        }
    }

    /// The little-endian wire bytes of `blocks` — identical to what
    /// [`Block::extend_le_bytes`] would append, without the copy where
    /// the in-memory representation already matches.
    ///
    /// On little-endian targets this is a zero-copy view of the slice
    /// (sound because `Block` is `repr(transparent)` over `u128`, whose
    /// native byte order *is* its little-endian wire order there); on
    /// big-endian targets the blocks are serialized into `fallback` and
    /// a view of it is returned. Callers pass a reusable scratch vector
    /// and treat the returned slice uniformly — the transport's vectored
    /// send path uses this to put ring-buffer COTs on the socket without
    /// a staging copy.
    #[allow(unsafe_code)]
    pub fn wire_bytes<'a>(blocks: &'a [Block], fallback: &'a mut Vec<u8>) -> &'a [u8] {
        #[cfg(target_endian = "little")]
        {
            let _ = fallback;
            // SAFETY: `Block` is `repr(transparent)` over `u128`, so the
            // slice is `len * 16` contiguous initialized bytes; `u8` has
            // alignment 1 and no validity requirements. On little-endian
            // targets the native byte order equals `to_le_bytes` order.
            unsafe {
                std::slice::from_raw_parts(
                    blocks.as_ptr().cast::<u8>(),
                    std::mem::size_of_val(blocks),
                )
            }
        }
        #[cfg(not(target_endian = "little"))]
        {
            fallback.clear();
            Block::extend_le_bytes(blocks, fallback);
            fallback.as_slice()
        }
    }

    /// Interprets the block as a pair of `u64`s and mixes them with an
    /// avalanche step. Used only for non-cryptographic hashing in tests and
    /// workload generators.
    #[inline]
    pub fn mix(self) -> u64 {
        let (hi, lo) = self.to_halves();
        let mut x = hi ^ lo.rotate_left(31);
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x ^= x >> 32;
        x
    }
}

/// The AVX2 bulk-XOR lane for [`Block::xor_into`]: 256-bit unaligned
/// loads/XORs/stores over pairs of blocks, with a scalar tail for an odd
/// final block. Feature presence is runtime-checked once per process
/// (honoring the `IRONMAN_SIMD=scalar` force-scalar knob shared with the
/// `ironman-lpn` kernels).
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod wide {
    use super::Block;
    use std::arch::x86_64::{_mm256_loadu_si256, _mm256_storeu_si256, _mm256_xor_si256};
    use std::sync::OnceLock;

    /// Whether the AVX2 path runs: feature detected and not force-disabled.
    pub(super) fn enabled() -> bool {
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            match std::env::var("IRONMAN_SIMD") {
                Ok(v) if v.eq_ignore_ascii_case("scalar") || v == "off" || v == "0" => {
                    return false;
                }
                _ => {}
            }
            std::arch::is_x86_feature_detected!("avx2")
        })
    }

    /// # Safety
    ///
    /// Caller must have verified AVX2 is available (see [`enabled`]).
    #[target_feature(enable = "avx2")]
    pub(super) fn xor_into_avx2(dst: &mut [Block], src: &[Block]) {
        debug_assert_eq!(dst.len(), src.len());
        let pairs = dst.len() / 2;
        let dp = dst.as_mut_ptr().cast::<u8>();
        let sp = src.as_ptr().cast::<u8>();
        for i in 0..pairs {
            let off = i * 32;
            // SAFETY: `off + 32 <= len * 16` for both slices (pairs =
            // len / 2), `Block` is plain bytes (`repr(transparent)` over
            // `u128`), and the unaligned intrinsics have no alignment
            // requirement. `dst` and `src` are distinct borrows, so the
            // regions cannot overlap.
            unsafe {
                let a = _mm256_loadu_si256(dp.add(off).cast());
                let b = _mm256_loadu_si256(sp.add(off).cast());
                _mm256_storeu_si256(dp.add(off).cast(), _mm256_xor_si256(a, b));
            }
        }
        if dst.len() % 2 == 1 {
            let last = dst.len() - 1;
            dst[last] ^= src[last];
        }
    }
}

impl From<u128> for Block {
    #[inline]
    fn from(v: u128) -> Self {
        Block(v)
    }
}

impl From<Block> for u128 {
    #[inline]
    fn from(b: Block) -> Self {
        b.0
    }
}

impl From<[u8; 16]> for Block {
    #[inline]
    fn from(bytes: [u8; 16]) -> Self {
        Block::from_le_bytes(bytes)
    }
}

impl BitXor for Block {
    type Output = Block;
    #[inline]
    fn bitxor(self, rhs: Block) -> Block {
        Block(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for Block {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Block) {
        self.0 ^= rhs.0;
    }
}

impl BitAnd for Block {
    type Output = Block;
    #[inline]
    fn bitand(self, rhs: Block) -> Block {
        Block(self.0 & rhs.0)
    }
}

impl BitAndAssign for Block {
    #[inline]
    fn bitand_assign(&mut self, rhs: Block) {
        self.0 &= rhs.0;
    }
}

impl Not for Block {
    type Output = Block;
    #[inline]
    fn not(self) -> Block {
        Block(!self.0)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Block({:032x})", self.0)
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::LowerHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_xor_identity() {
        let b = Block::from(0x1234_5678_9abc_def0u128);
        assert_eq!(b ^ Block::ZERO, b);
        assert_eq!(b ^ b, Block::ZERO);
    }

    #[test]
    fn and_bit_selects() {
        let b = Block::from(0xffu128);
        assert_eq!(b.and_bit(true), b);
        assert_eq!(b.and_bit(false), Block::ZERO);
    }

    #[test]
    fn halves_round_trip() {
        let b = Block::from_halves(0xdead_beef, 0xcafe_babe);
        assert_eq!(b.to_halves(), (0xdead_beef, 0xcafe_babe));
    }

    #[test]
    fn bytes_round_trip() {
        let mut bytes = [0u8; 16];
        for (i, byte) in bytes.iter_mut().enumerate() {
            *byte = i as u8;
        }
        assert_eq!(Block::from_le_bytes(bytes).to_le_bytes(), bytes);
    }

    #[test]
    fn lsb_manipulation() {
        let b = Block::from(6u128);
        assert!(!b.lsb());
        assert!(b.with_lsb(true).lsb());
        assert_eq!(b.with_lsb(true).with_lsb(false), b);
    }

    #[test]
    fn xor_all_empty_is_zero() {
        assert_eq!(Block::xor_all(std::iter::empty()), Block::ZERO);
    }

    #[test]
    fn xor_into_matches_elementwise() {
        let src: Vec<Block> = (0..9u128).map(|i| Block::from(i * 3 + 1)).collect();
        let mut dst: Vec<Block> = (0..9u128).map(|i| Block::from(i + 100)).collect();
        let expect: Vec<Block> = dst.iter().zip(&src).map(|(&d, &s)| d ^ s).collect();
        Block::xor_into(&mut dst, &src);
        assert_eq!(dst, expect);
    }

    #[test]
    #[should_panic(expected = "slice lengths")]
    fn xor_into_length_mismatch_panics() {
        let mut dst = vec![Block::ZERO; 3];
        Block::xor_into(&mut dst, &[Block::ZERO; 2]);
    }

    #[test]
    fn xor_into_matches_scalar_at_simd_widths() {
        // Lengths straddling the 2-block AVX2 stride (odd tails, empty,
        // exact multiples) all match the element-wise definition.
        for len in [0usize, 1, 2, 3, 7, 8, 31, 64, 65] {
            let src: Vec<Block> = (0..len as u128).map(|i| Block::from(i * 7 + 3)).collect();
            let mut dst: Vec<Block> = (0..len as u128).map(|i| Block::from(i + 0xFF)).collect();
            let expect: Vec<Block> = dst.iter().zip(&src).map(|(&d, &s)| d ^ s).collect();
            Block::xor_into(&mut dst, &src);
            assert_eq!(dst, expect, "len {len}");
        }
    }

    #[test]
    fn wire_bytes_matches_extend_le_bytes() {
        let blocks: Vec<Block> = (0..5u128).map(|i| Block::from(i << 64 | (i + 1))).collect();
        let mut expect = Vec::new();
        Block::extend_le_bytes(&blocks, &mut expect);
        let mut fallback = Vec::new();
        assert_eq!(Block::wire_bytes(&blocks, &mut fallback), expect.as_slice());
        assert!(Block::wire_bytes(&[], &mut fallback).is_empty());
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(
            format!("{}", Block::from(0xabu128)),
            format!("{:032x}", 0xabu128)
        );
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Block::ZERO).is_empty());
    }
}
