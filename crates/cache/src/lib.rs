//! Set-associative memory-side cache model.
//!
//! Each Rank-NMP module in Ironman carries a memory-side SRAM cache
//! (§5.1.2, §5.3) in front of its DRAM rank, holding 64-byte lines of the
//! LPN input vector. The paper evaluates 32 KB–2 MB capacities (Fig. 14)
//! and deploys 256 KB or 1 MB. This crate models that cache: configurable
//! capacity/associativity/line size, LRU replacement, and hit/miss
//! accounting. It is deliberately independent of the DRAM model — the NMP
//! simulator composes the two (miss stream → `ironman_dram::RankSim`).
//!
//! # Example
//!
//! ```
//! use ironman_cache::{Cache, CacheConfig};
//!
//! let mut c = Cache::new(CacheConfig::kb(256));
//! assert!(!c.access(0));  // cold miss
//! assert!(c.access(32));  // same 64-byte line: hit
//! assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Line size in bytes (64 to match the DRAM burst, §6.3).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in NMP cycles (grows with capacity; Fig. 14's
    /// "longer cache access latencies" beyond 1 MB).
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A `kb`-kilobyte cache with 64-byte lines and 8-way associativity,
    /// with a hit latency that scales logarithmically with capacity
    /// (1 cycle at ≤64 KB, +1 per doubling beyond).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (fewer than one set).
    pub fn kb(kb: usize) -> Self {
        let capacity = kb * 1024;
        let hit_latency = 1 + (capacity / (64 * 1024)).max(1).ilog2() as u64;
        let cfg = CacheConfig {
            capacity_bytes: capacity,
            line_bytes: 64,
            ways: 8,
            hit_latency,
        };
        assert!(cfg.sets() >= 1, "cache too small for its associativity");
        cfg
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.line_bytes * self.ways)
    }

    /// Total lines.
    pub fn lines(&self) -> usize {
        self.capacity_bytes / self.line_bytes
    }
}

/// Hit/miss accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative, LRU, read-allocate cache model.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    stats: CacheStats,
    clock: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        Cache {
            ways: vec![
                Way {
                    tag: 0,
                    valid: false,
                    last_use: 0
                };
                cfg.sets() * cfg.ways
            ],
            cfg,
            stats: CacheStats::default(),
            clock: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (keeping contents) — used to measure steady-state
    /// hit rates after a warm-up pass.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Performs one byte-address access; returns `true` on hit. Misses
    /// allocate with LRU replacement.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let line = addr / self.cfg.line_bytes as u64;
        let sets = self.cfg.sets() as u64;
        let set = (line % sets) as usize;
        let tag = line / sets;
        let base = set * self.cfg.ways;
        let ways = &mut self.ways[base..base + self.cfg.ways];

        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // LRU victim: an invalid way if any, else the least recently used.
        let victim = ways
            .iter_mut()
            .min_by_key(|w| if w.valid { w.last_use } else { 0 })
            .expect("cache has at least one way");
        victim.valid = true;
        victim.tag = tag;
        victim.last_use = self.clock;
        false
    }

    /// Runs a whole trace of byte addresses, returning `(stats, misses)`
    /// where `misses` is the miss address stream (for DRAM replay).
    pub fn run_trace<I: IntoIterator<Item = u64>>(&mut self, trace: I) -> (CacheStats, Vec<u64>) {
        let before = self.stats;
        let mut misses = Vec::new();
        for addr in trace {
            if !self.access(addr) {
                misses.push(addr);
            }
        }
        let after = self.stats;
        (
            CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            },
            misses,
        )
    }
}

/// SRAM area model for the memory-side cache in mm² at 40 nm, calibrated to
/// the paper's deployed points: Ironman-NMP totals 1.482 mm² with 256 KB and
/// 2.995 mm² with 1 MB of cache (Table 6), i.e. the cache costs ≈2.017 mm²/MB
/// plus a small fixed controller overhead.
pub fn sram_area_mm2(capacity_bytes: usize) -> f64 {
    const MM2_PER_MB: f64 = 2.017;
    const CONTROLLER_MM2: f64 = 0.05;
    CONTROLLER_MM2 + MM2_PER_MB * capacity_bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = CacheConfig::kb(256);
        assert_eq!(c.lines(), 4096);
        assert_eq!(c.sets(), 512);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(CacheConfig::kb(32));
        assert!(!c.access(128));
        assert!(c.access(128));
        assert!(c.access(129)); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_within_set() {
        // Build a tiny direct-mapped-ish config: 2 ways, 2 sets.
        let cfg = CacheConfig {
            capacity_bytes: 256,
            line_bytes: 64,
            ways: 2,
            hit_latency: 1,
        };
        let mut c = Cache::new(cfg);
        let sets = cfg.sets() as u64; // 2
                                      // Three distinct tags mapping to set 0.
        let a = 0;
        let b = 64 * sets;
        let d = 2 * 64 * sets;
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // refresh a; b is now LRU
        assert!(!c.access(d)); // evicts b
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn hit_rate_never_exceeds_one() {
        let mut c = Cache::new(CacheConfig::kb(64));
        for i in 0..10_000u64 {
            c.access(i * 37 % 8192 * 64);
        }
        let s = c.stats();
        assert!(s.hits <= s.accesses());
        assert!((0.0..=1.0).contains(&s.hit_rate()));
    }

    #[test]
    fn bigger_cache_hits_more() {
        let trace: Vec<u64> = (0..50_000u64).map(|i| (i * 7919) % 16384 * 64).collect();
        let (small, _) = Cache::new(CacheConfig::kb(32)).run_trace(trace.iter().copied());
        let (large, _) = Cache::new(CacheConfig::kb(1024)).run_trace(trace.iter().copied());
        assert!(
            large.hit_rate() > small.hit_rate(),
            "1MB {:.3} should beat 32KB {:.3}",
            large.hit_rate(),
            small.hit_rate()
        );
    }

    #[test]
    fn miss_stream_matches_count() {
        let mut c = Cache::new(CacheConfig::kb(32));
        let trace: Vec<u64> = (0..1000u64).map(|i| i * 64 * 131).collect();
        let (stats, misses) = c.run_trace(trace);
        assert_eq!(stats.misses as usize, misses.len());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = Cache::new(CacheConfig::kb(32));
        c.access(0);
        c.reset_stats();
        assert_eq!(c.stats().accesses(), 0);
        assert!(c.access(0), "contents must survive a stats reset");
    }

    #[test]
    fn hit_latency_grows_with_capacity() {
        assert!(CacheConfig::kb(2048).hit_latency > CacheConfig::kb(64).hit_latency);
    }

    #[test]
    fn area_model_matches_table6_deltas() {
        // Table 6: 1.482 mm² (256 KB) vs 2.995 mm² (1 MB): Δ = 1.513 mm² for
        // 768 KB of SRAM.
        let delta = sram_area_mm2(1024 * 1024) - sram_area_mm2(256 * 1024);
        assert!((delta - 1.513).abs() < 0.01, "delta {delta}");
    }
}
