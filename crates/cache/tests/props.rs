//! Property-based tests for the memory-side cache model.

use ironman_cache::{Cache, CacheConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Accounting invariants: hits + misses = accesses, hit rate bounded.
    #[test]
    fn accounting_invariants(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
        let mut c = Cache::new(CacheConfig::kb(32));
        for a in &addrs {
            c.access(*a);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), addrs.len() as u64);
        prop_assert!((0.0..=1.0).contains(&s.hit_rate()));
    }

    /// Immediately repeated accesses always hit.
    #[test]
    fn repeat_hits(addr in any::<u64>()) {
        let mut c = Cache::new(CacheConfig::kb(32));
        c.access(addr);
        prop_assert!(c.access(addr));
        prop_assert!(c.access(addr ^ 1)); // same line for even addr...
    }

    /// A trace touching at most `lines` distinct lines fits in a cache of
    /// that many lines: second pass is all hits.
    #[test]
    fn working_set_fits(offsets in proptest::collection::vec(0u64..64, 1..64)) {
        let cfg = CacheConfig::kb(64); // 1024 lines >> 64 distinct lines
        let mut c = Cache::new(cfg);
        for o in &offsets {
            c.access(o * 64);
        }
        c.reset_stats();
        for o in &offsets {
            prop_assert!(c.access(o * 64), "warm access to line {o} missed");
        }
    }

    /// Monotonicity: a strictly larger cache never produces more misses on
    /// the same trace (holds for LRU with nested capacities at the same
    /// associativity discipline when sets double).
    #[test]
    fn bigger_is_not_worse(seed in any::<u64>()) {
        let trace: Vec<u64> =
            (0..4000u64).map(|i| (i.wrapping_mul(seed | 1)) % 2_000_000 / 64 * 64).collect();
        let (small, _) = Cache::new(CacheConfig::kb(64)).run_trace(trace.iter().copied());
        let (large, _) = Cache::new(CacheConfig::kb(1024)).run_trace(trace.iter().copied());
        prop_assert!(large.hits >= small.hits.saturating_sub(small.hits / 10),
            "1MB ({}) much worse than 64KB ({})", large.hits, small.hits);
    }
}

#[test]
fn odd_address_same_line_hits() {
    let mut c = Cache::new(CacheConfig::kb(32));
    c.access(64);
    assert!(c.access(65));
    assert!(c.access(127));
    assert!(!c.access(128));
}
