//! Property-based membership invariants (proptest): consistent-hash
//! reshuffle on `join`/`leave` is *minimal* (only sessions homed on the
//! changed server move), epochs are strictly monotone across arbitrary
//! mutation sequences, and delta sync always converges a follower to the
//! leader's routing.
//!
//! The replication block below exercises the v9 `apply_delta` conflict
//! edges: vector deltas commute (out-of-order delivery converges), are
//! idempotent (duplicate delivery is a no-op), a stale delta arriving
//! after a full-snapshot fallback cannot regress the replica, and two
//! independently-mutating replicas converge bidirectionally to one
//! membership and one epoch vector.

use ironman_cluster::{Directory, ServerEntry, ServerId};
use proptest::prelude::*;
use std::net::SocketAddr;

fn addr(octet: u64) -> SocketAddr {
    format!("10.1.{}.{}:7000", octet / 256, octet % 256)
        .parse()
        .expect("valid addr")
}

fn fleet(n: usize, salt: u64) -> Directory {
    Directory::bootstrap((0..n).map(|i| ServerEntry {
        addr: addr(salt * 40 + i as u64 + 1),
        name: format!("m{i}"),
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Joining a server moves a session's home only if it moves *to the
    /// joined server*: nobody else's arc changed.
    #[test]
    fn join_reshuffle_is_minimal(
        n in 1usize..6,
        salt in 0u64..4,
        sessions in proptest::collection::vec(any::<u32>(), 1..60),
    ) {
        let dir = fleet(n, salt);
        let before = dir.snapshot();
        let joined = dir.join(addr(salt * 40 + 39), "late");
        let after = dir.snapshot();
        for s in &sessions {
            let session = format!("session-{s}");
            let old = before.home(&session).unwrap();
            let new = after.home(&session).unwrap();
            prop_assert!(
                new == old || new == joined,
                "session moved {old:?} -> {new:?}, but only moves to {joined:?} are allowed"
            );
        }
    }

    /// Removing a server moves only the sessions that were homed on it;
    /// every other session keeps its home.
    #[test]
    fn leave_reshuffle_is_minimal(
        n in 2usize..6,
        salt in 0u64..4,
        victim_seed in any::<u64>(),
        sessions in proptest::collection::vec(any::<u32>(), 1..60),
    ) {
        let dir = fleet(n, salt);
        let before = dir.snapshot();
        let members: Vec<ServerId> = before.members().iter().map(|m| m.id).collect();
        let victim = members[(victim_seed % members.len() as u64) as usize];
        prop_assert!(dir.leave(victim));
        let after = dir.snapshot();
        for s in &sessions {
            let session = format!("session-{s}");
            let old = before.home(&session).unwrap();
            let new = after.home(&session).unwrap();
            if old == victim {
                prop_assert!(new != victim, "session still homed on the removed server");
            } else {
                prop_assert_eq!(new, old, "session moved although its home stayed");
            }
        }
    }

    /// Epochs are strictly monotone over any mutation sequence, and every
    /// *effective* mutation bumps exactly once.
    #[test]
    fn epochs_are_strictly_monotone(
        ops in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let dir = fleet(2, 9);
        let mut last = dir.epoch();
        for op in &ops {
            let ids: Vec<ServerId> = dir.snapshot().members().iter().map(|m| m.id).collect();
            let joined = match op % 5 {
                0 => {
                    // A join of an address that is already a live Up
                    // member is deliberately a no-op (no epoch bump);
                    // only a genuinely new/healing join must advance.
                    let a = addr(200 + (op % 30));
                    let already_up = dir
                        .snapshot()
                        .members()
                        .iter()
                        .any(|m| m.addr == a && m.state == ironman_cluster::MemberState::Up);
                    dir.join(a, "j");
                    !already_up
                }
                1 if ids.len() > 1 => { dir.leave(ids[(op / 5) as usize % ids.len()]); false }
                2 if !ids.is_empty() => { dir.drain(ids[(op / 5) as usize % ids.len()]); false }
                3 if !ids.is_empty() => { dir.mark_suspect(ids[(op / 5) as usize % ids.len()]); false }
                4 if !ids.is_empty() => { dir.mark_up(ids[(op / 5) as usize % ids.len()]); false }
                _ => false,
            };
            let now = dir.epoch();
            prop_assert!(now >= last, "epoch went backwards: {last} -> {now}");
            if joined {
                prop_assert!(now > last, "a join must strictly advance the epoch");
            }
            last = now;
        }
    }

    /// After any mutation run, a follower syncing by delta (or full
    /// snapshot fallback) routes identically to the leader.
    #[test]
    fn delta_sync_converges_routing(
        ops in proptest::collection::vec(any::<u64>(), 0..30),
        sessions in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let dir = fleet(3, 21);
        let follower = Directory::from_snapshot(&dir.snapshot());
        for op in &ops {
            let ids: Vec<ServerId> = dir.snapshot().members().iter().map(|m| m.id).collect();
            match op % 4 {
                0 => { dir.join(addr(600 + (op % 20)), "j"); }
                1 if ids.len() > 1 => { dir.leave(ids[(op / 4) as usize % ids.len()]); }
                2 if !ids.is_empty() => { dir.drain(ids[(op / 4) as usize % ids.len()]); }
                3 if !ids.is_empty() => { dir.mark_up(ids[(op / 4) as usize % ids.len()]); }
                _ => {}
            }
        }
        let delta = dir.delta_since(follower.epoch());
        follower.apply_delta(&delta);
        prop_assert_eq!(follower.epoch(), dir.epoch());
        let leader_snap = dir.snapshot();
        let follower_snap = follower.snapshot();
        prop_assert_eq!(leader_snap.len(), follower_snap.len());
        for s in &sessions {
            let session = format!("session-{s}");
            prop_assert_eq!(leader_snap.home(&session), follower_snap.home(&session));
        }
    }
}

// ---------------------------------------------------------------------
// v9 replication conflict edges.
// ---------------------------------------------------------------------

/// One scripted replica mutation. Joins go through `join_as` on a small
/// shared id range so two independently-mutating replicas race
/// conflicting writes *for the same id* — the interesting merge edge —
/// instead of allocator-fresh ids that can never collide.
fn replica_mutate(dir: &Directory, op: u64, lane: u64) {
    let ids: Vec<ServerId> = dir.snapshot().members().iter().map(|m| m.id).collect();
    let pick = |ids: &[ServerId]| ids[(op / 7) as usize % ids.len()];
    match op % 7 {
        0 | 5 => {
            dir.join_as(
                ServerId(50 + (op / 7) % 4),
                addr(700 + lane * 50 + op % 40),
                "r",
                1 + (op % 3) as u32,
            );
        }
        1 if ids.len() > 1 => {
            dir.leave(pick(&ids));
        }
        2 if !ids.is_empty() => {
            dir.drain(pick(&ids));
        }
        3 if !ids.is_empty() => {
            dir.mark_suspect(pick(&ids));
        }
        4 if !ids.is_empty() => {
            dir.mark_up(pick(&ids));
        }
        _ => {}
    }
}

/// A replica's observable state, comparison-friendly: sorted member
/// tuples plus the epoch vector. Two replicas with equal fingerprints
/// route identically (the ring is a pure function of the members).
fn fingerprint(dir: &Directory) -> (Vec<String>, Vec<(u64, u64)>) {
    let snap = dir.snapshot();
    let mut members: Vec<String> = snap
        .members()
        .iter()
        .map(|m| {
            format!(
                "{}|{}|{}|{:?}|{}",
                m.id.0, m.addr, m.name, m.state, m.weight
            )
        })
        .collect();
    members.sort();
    (members, dir.epoch_vector())
}

/// A fresh replica bootstrapped from `base`'s full snapshot.
fn seeded_replica(origin: u64, base: &Directory) -> Directory {
    let replica = Directory::new_replica(ServerId(origin));
    replica.apply_delta(&base.delta_since(0));
    replica
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Out-of-order anti-entropy delivery converges. Deltas are fetched
    /// the way the protocol fetches them — each against the vector the
    /// follower holds at fetch time — but *applied* in an arbitrary
    /// later order (racing in-flight pulls, stale re-delivery) while
    /// the leader keeps mutating; one fresh pull at the end must land
    /// the follower exactly on the leader.
    #[test]
    fn out_of_order_racing_pulls_converge(
        ops in proptest::collection::vec(any::<u64>(), 1..40),
        schedule in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let base = fleet(3, 11);
        let leader = seeded_replica(90, &base);
        let follower = seeded_replica(91, &base);
        let mut pending: Vec<ironman_net::DirectoryDelta> = Vec::new();
        for (op, choice) in ops.iter().zip(schedule.iter().cycle()) {
            replica_mutate(&leader, *op, 0);
            match choice % 3 {
                0 => pending.push(leader.delta_by_vector(&follower.epoch_vector())),
                1 if !pending.is_empty() => {
                    let delta = pending.remove((choice / 3) as usize % pending.len());
                    follower.apply_delta(&delta);
                }
                _ => {}
            }
        }
        // Drain the in-flight deltas newest-first — the maximally
        // reordered delivery — then complete one clean pull.
        for delta in pending.drain(..).rev() {
            follower.apply_delta(&delta);
        }
        follower.apply_delta(&leader.delta_by_vector(&follower.epoch_vector()));
        prop_assert_eq!(fingerprint(&follower), fingerprint(&leader));
    }

    /// Duplicate delivery is a no-op: re-applying a delta the replica
    /// has already merged reports no change and perturbs nothing.
    #[test]
    fn duplicate_delta_is_idempotent(
        ops in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let base = fleet(3, 12);
        let leader = seeded_replica(90, &base);
        let follower = seeded_replica(91, &base);
        for op in &ops {
            replica_mutate(&leader, *op, 0);
        }
        let delta = leader.delta_by_vector(&follower.epoch_vector());
        follower.apply_delta(&delta);
        let once = fingerprint(&follower);
        prop_assert!(!follower.apply_delta(&delta), "duplicate delta claimed changes");
        prop_assert_eq!(fingerprint(&follower), once);
    }

    /// A stale incremental delta arriving *after* the replica has
    /// bootstrapped from a newer full-snapshot fallback cannot regress
    /// it: every stale record loses to a stamp (or tombstone) the
    /// snapshot already carried, or is rejected as covered-but-unknown.
    #[test]
    fn stale_delta_after_snapshot_fallback_cannot_regress(
        early in proptest::collection::vec(any::<u64>(), 1..20),
        late in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let base = fleet(3, 13);
        let leader = seeded_replica(90, &base);
        let follower = Directory::new_replica(ServerId(91));
        for op in &early {
            replica_mutate(&leader, *op, 0);
        }
        // In flight while the follower instead bootstraps from a full
        // snapshot taken after further churn (leaves included, so the
        // stale delta carries records the snapshot has since removed).
        let stale = leader.delta_by_vector(&follower.epoch_vector());
        for op in &late {
            replica_mutate(&leader, *op, 0);
        }
        // Grind suspect/up flaps until the change log truncates past
        // epoch 0 — only then is a from-zero delta a genuine snapshot
        // fallback rather than an incremental replay.
        while !leader.delta_since(0).full {
            let id = leader.snapshot().members()[0].id;
            leader.mark_suspect(id);
            leader.mark_up(id);
        }
        let full = leader.delta_since(0);
        prop_assert!(full.full, "a from-zero delta must be a snapshot fallback");
        follower.apply_delta(&full);
        let synced = fingerprint(&follower);
        prop_assert!(!follower.apply_delta(&stale), "stale delta claimed changes");
        prop_assert_eq!(fingerprint(&follower), synced);
    }

    /// Two replicas mutating independently — including conflicting
    /// writes to the *same* member ids — converge to one membership and
    /// one epoch vector after bidirectional anti-entropy, regardless of
    /// what either side did.
    #[test]
    fn bidirectional_gossip_converges(
        ops_a in proptest::collection::vec(any::<u64>(), 0..30),
        ops_b in proptest::collection::vec(any::<u64>(), 0..30),
    ) {
        let base = fleet(3, 14);
        let a = seeded_replica(90, &base);
        let b = seeded_replica(91, &base);
        for op in &ops_a {
            replica_mutate(&a, *op, 0);
        }
        for op in &ops_b {
            replica_mutate(&b, *op, 1);
        }
        for _ in 0..2 {
            b.apply_delta(&a.delta_by_vector(&b.epoch_vector()));
            a.apply_delta(&b.delta_by_vector(&a.epoch_vector()));
        }
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
    }
}
