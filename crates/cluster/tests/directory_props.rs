//! Property-based membership invariants (proptest): consistent-hash
//! reshuffle on `join`/`leave` is *minimal* (only sessions homed on the
//! changed server move), epochs are strictly monotone across arbitrary
//! mutation sequences, and delta sync always converges a follower to the
//! leader's routing.

use ironman_cluster::{Directory, ServerEntry, ServerId};
use proptest::prelude::*;
use std::net::SocketAddr;

fn addr(octet: u64) -> SocketAddr {
    format!("10.1.{}.{}:7000", octet / 256, octet % 256)
        .parse()
        .expect("valid addr")
}

fn fleet(n: usize, salt: u64) -> Directory {
    Directory::bootstrap((0..n).map(|i| ServerEntry {
        addr: addr(salt * 40 + i as u64 + 1),
        name: format!("m{i}"),
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Joining a server moves a session's home only if it moves *to the
    /// joined server*: nobody else's arc changed.
    #[test]
    fn join_reshuffle_is_minimal(
        n in 1usize..6,
        salt in 0u64..4,
        sessions in proptest::collection::vec(any::<u32>(), 1..60),
    ) {
        let dir = fleet(n, salt);
        let before = dir.snapshot();
        let joined = dir.join(addr(salt * 40 + 39), "late");
        let after = dir.snapshot();
        for s in &sessions {
            let session = format!("session-{s}");
            let old = before.home(&session).unwrap();
            let new = after.home(&session).unwrap();
            prop_assert!(
                new == old || new == joined,
                "session moved {old:?} -> {new:?}, but only moves to {joined:?} are allowed"
            );
        }
    }

    /// Removing a server moves only the sessions that were homed on it;
    /// every other session keeps its home.
    #[test]
    fn leave_reshuffle_is_minimal(
        n in 2usize..6,
        salt in 0u64..4,
        victim_seed in any::<u64>(),
        sessions in proptest::collection::vec(any::<u32>(), 1..60),
    ) {
        let dir = fleet(n, salt);
        let before = dir.snapshot();
        let members: Vec<ServerId> = before.members().iter().map(|m| m.id).collect();
        let victim = members[(victim_seed % members.len() as u64) as usize];
        prop_assert!(dir.leave(victim));
        let after = dir.snapshot();
        for s in &sessions {
            let session = format!("session-{s}");
            let old = before.home(&session).unwrap();
            let new = after.home(&session).unwrap();
            if old == victim {
                prop_assert!(new != victim, "session still homed on the removed server");
            } else {
                prop_assert_eq!(new, old, "session moved although its home stayed");
            }
        }
    }

    /// Epochs are strictly monotone over any mutation sequence, and every
    /// *effective* mutation bumps exactly once.
    #[test]
    fn epochs_are_strictly_monotone(
        ops in proptest::collection::vec(any::<u64>(), 1..40),
    ) {
        let dir = fleet(2, 9);
        let mut last = dir.epoch();
        for op in &ops {
            let ids: Vec<ServerId> = dir.snapshot().members().iter().map(|m| m.id).collect();
            let joined = match op % 5 {
                0 => {
                    // A join of an address that is already a live Up
                    // member is deliberately a no-op (no epoch bump);
                    // only a genuinely new/healing join must advance.
                    let a = addr(200 + (op % 30));
                    let already_up = dir
                        .snapshot()
                        .members()
                        .iter()
                        .any(|m| m.addr == a && m.state == ironman_cluster::MemberState::Up);
                    dir.join(a, "j");
                    !already_up
                }
                1 if ids.len() > 1 => { dir.leave(ids[(op / 5) as usize % ids.len()]); false }
                2 if !ids.is_empty() => { dir.drain(ids[(op / 5) as usize % ids.len()]); false }
                3 if !ids.is_empty() => { dir.mark_suspect(ids[(op / 5) as usize % ids.len()]); false }
                4 if !ids.is_empty() => { dir.mark_up(ids[(op / 5) as usize % ids.len()]); false }
                _ => false,
            };
            let now = dir.epoch();
            prop_assert!(now >= last, "epoch went backwards: {last} -> {now}");
            if joined {
                prop_assert!(now > last, "a join must strictly advance the epoch");
            }
            last = now;
        }
    }

    /// After any mutation run, a follower syncing by delta (or full
    /// snapshot fallback) routes identically to the leader.
    #[test]
    fn delta_sync_converges_routing(
        ops in proptest::collection::vec(any::<u64>(), 0..30),
        sessions in proptest::collection::vec(any::<u32>(), 1..20),
    ) {
        let dir = fleet(3, 21);
        let follower = Directory::from_snapshot(&dir.snapshot());
        for op in &ops {
            let ids: Vec<ServerId> = dir.snapshot().members().iter().map(|m| m.id).collect();
            match op % 4 {
                0 => { dir.join(addr(600 + (op % 20)), "j"); }
                1 if ids.len() > 1 => { dir.leave(ids[(op / 4) as usize % ids.len()]); }
                2 if !ids.is_empty() => { dir.drain(ids[(op / 4) as usize % ids.len()]); }
                3 if !ids.is_empty() => { dir.mark_up(ids[(op / 4) as usize % ids.len()]); }
                _ => {}
            }
        }
        let delta = dir.delta_since(follower.epoch());
        follower.apply_delta(&delta);
        prop_assert_eq!(follower.epoch(), dir.epoch());
        let leader_snap = dir.snapshot();
        let follower_snap = follower.snapshot();
        prop_assert_eq!(leader_snap.len(), follower_snap.len());
        for s in &sessions {
            let session = format!("session-{s}");
            prop_assert_eq!(leader_snap.home(&session), follower_snap.home(&session));
        }
    }
}
