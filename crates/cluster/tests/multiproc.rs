//! Multi-process replication survival (wire v9): real `fleet_server`
//! child processes — each carrying its own [`Directory`] replica,
//! converged by anti-entropy gossip — driven through a partition-capable
//! TCP proxy built on `ironman-net`'s [`FaultInjector`] blackhole
//! primitive.
//!
//! The churn test partitions one member (its advertised address is the
//! proxy; blackholing the proxy makes it SYN-accepting-but-silent to
//! the whole fleet), mutates membership on **both** sides of the cut —
//! the majority island admits a brand-new member and health-evicts the
//! unreachable victim; the victim island evicts a majority member — then
//! heals and requires every replica to converge to one per-origin epoch
//! vector and one membership, with the conflicting evictions resolved by
//! the deterministic merge rule plus gossip self-rejoin. A client
//! streams correlations throughout and must see zero errors and exact
//! consume-once accounting.
//!
//! The warm-standby test runs in-process: two replicated fleets, one
//! with standby pre-warming (each server's gossiper keeps its ring
//! successor's pool warm), one cold, and asserts crash failover reaches
//! its first correlation measurably faster when the successor was kept
//! warm.

use ironman_cluster::{
    ClusterClient, ClusterServerConfig, Directory, Gossiper, GossiperConfig, LocalCluster,
    UNATTRIBUTED,
};
use ironman_core::{Backend, Engine};
use ironman_net::{
    CotClient, CotServiceConfig, FaultInjector, FaultPlan, MemberWireState, OpTimeouts,
    EPOCH_UNAWARE,
};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Convergence/propagation wait ceiling: `MULTIPROC_WAIT_SECS` (the CI
/// runtime bound — a wedged fleet fails within a few multiples of it),
/// default 30. Generous because CI containers stall; the waits exit as
/// soon as their condition holds, so the happy path never sees it.
fn wait() -> Duration {
    let secs = std::env::var("MULTIPROC_WAIT_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    Duration::from_secs(secs)
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + wait();
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

// ---------------------------------------------------------------------
// The partition-capable TCP proxy.
// ---------------------------------------------------------------------

/// A loopback TCP proxy whose pumps read through a shared
/// [`FaultInjector`]: arming `blackhole` makes the proxied server
/// SYN-accepting-but-silent (connects succeed, bytes vanish) — the
/// failure shape of a network partition, delivered to an unmodified
/// child process.
struct Proxy {
    addr: SocketAddr,
    injector: FaultInjector,
    upstream: Arc<Mutex<Option<SocketAddr>>>,
    stop: Arc<AtomicBool>,
}

impl Proxy {
    fn spawn() -> Proxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
        listener.set_nonblocking(true).expect("nonblocking accept");
        let addr = listener.local_addr().expect("proxy addr");
        let injector = FaultInjector::new(0xB1AC_401E);
        let upstream: Arc<Mutex<Option<SocketAddr>>> = Arc::new(Mutex::new(None));
        let stop = Arc::new(AtomicBool::new(false));
        {
            let injector = injector.clone();
            let upstream = Arc::clone(&upstream);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || loop {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                match listener.accept() {
                    Ok((conn, _)) => {
                        let Some(up) = *upstream.lock().unwrap_or_else(|p| p.into_inner()) else {
                            continue; // upstream not wired yet: refuse by drop
                        };
                        let Ok(back) = TcpStream::connect(up) else {
                            continue;
                        };
                        let (c2, b2) = match (conn.try_clone(), back.try_clone()) {
                            (Ok(c), Ok(b)) => (c, b),
                            _ => continue,
                        };
                        let inj = injector.clone();
                        let s = Arc::clone(&stop);
                        std::thread::spawn(move || pump(conn, back, &inj, &s));
                        let inj = injector.clone();
                        let s = Arc::clone(&stop);
                        std::thread::spawn(move || pump(b2, c2, &inj, &s));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            });
        }
        Proxy {
            addr,
            injector,
            upstream,
            stop,
        }
    }

    fn set_upstream(&self, addr: SocketAddr) {
        *self.upstream.lock().unwrap_or_else(|p| p.into_inner()) = Some(addr);
    }

    /// Drops the cut: every proxied byte stream goes silent (reads
    /// block, writes vanish) until [`Proxy::heal`].
    fn partition(&self) {
        self.injector.set_plan(FaultPlan {
            blackhole: true,
            ..FaultPlan::default()
        });
    }

    /// Lifts the cut. Connections that lived through the blackhole are
    /// torn down (their frame state is garbage); fresh dials flow clean.
    fn heal(&self) {
        self.injector.clear();
    }

    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }
}

/// One proxy direction: bytes from `src` (read through the injector) to
/// `dst`. Socket read timeouts keep the thread responsive to `stop`;
/// injected `TimedOut` (a blackhole hitting its cap, or healing
/// mid-read) closes the connection — the peers redial clean.
fn pump(src: TcpStream, mut dst: TcpStream, injector: &FaultInjector, stop: &AtomicBool) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(100)));
    let mut faulty = injector.wrap(src);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match faulty.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(_) => break,
        }
    }
    let _ = faulty.get_ref().shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

// ---------------------------------------------------------------------
// Child-process management.
// ---------------------------------------------------------------------

/// One `fleet_server` child process plus its stdin control channel.
struct FleetProc {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
    /// The address the child actually bound (dial this to bypass any
    /// proxy it advertises).
    bound: SocketAddr,
}

impl FleetProc {
    fn spawn(id: u64, extra: &[&str]) -> FleetProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_fleet_server"))
            .args(["--id", &id.to_string(), "--gossip-ms", "10", "--health"])
            .args(extra)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn fleet_server");
        let stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read LISTENING line");
        let bound = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("LISTENING prefix")
            .parse()
            .expect("bound address");
        FleetProc {
            child,
            stdin,
            stdout,
            bound,
        }
    }

    /// Sends one control line and asserts the child's acknowledgement.
    fn control(&mut self, cmd: &str, expect: &str) {
        writeln!(self.stdin, "{cmd}").expect("write control line");
        self.stdin.flush().expect("flush control line");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("read ack");
        assert_eq!(line.trim(), expect, "unexpected ack for {cmd:?}");
    }

    /// Graceful shutdown: close the control pipe, reap the child.
    fn stop(mut self) {
        drop(self.stdin);
        let _ = self.child.wait();
    }
}

/// A replica's per-origin epoch vector plus its live member ids.
type ReplicaView = (Vec<(u64, u64)>, BTreeSet<u64>);

/// One direct (proxy-bypassing) anti-entropy probe of a child's replica:
/// its per-origin epoch vector and live member ids.
fn probe_replica(bound: SocketAddr) -> Option<ReplicaView> {
    let mut client =
        CotClient::connect_timeout(bound, "probe", EPOCH_UNAWARE, Duration::from_millis(500))
            .ok()?;
    let delta = client.gossip(UNATTRIBUTED, Vec::new()).ok()?;
    let live: BTreeSet<u64> = delta
        .members
        .iter()
        .filter(|m| m.state != MemberWireState::Left)
        .map(|m| m.id)
        .collect();
    Some((delta.vector, live))
}

// ---------------------------------------------------------------------
// The partition/heal churn test.
// ---------------------------------------------------------------------

#[test]
fn multiprocess_fleet_survives_partition_and_heals_to_one_vector() {
    // The victim (id 2) advertises the proxy; everyone reaches it only
    // through the blackhole-capable path. Its own dials go out direct —
    // an asymmetric cut, the nastier shape for convergence because the
    // victim keeps merging the majority's writes while none of its own
    // escape.
    let proxy = Proxy::spawn();
    let mut a = FleetProc::spawn(0, &[]);
    let mut b = FleetProc::spawn(1, &[]);
    let proxy_addr = proxy.addr.to_string();
    let mut victim = FleetProc::spawn(2, &["--advertise", &proxy_addr]);
    proxy.set_upstream(victim.bound);
    // D's *process* starts now so its address can sit in everyone's
    // rendezvous list (pull-only gossip: a member is only discovered by
    // being pulled from, so the list must cover future joiners). It
    // stays a non-member — serving but never announcing — until its own
    // SEEDS line arrives mid-partition; pulls from it until then merge
    // an empty delta.
    let mut d = FleetProc::spawn(3, &[]);

    // Every member needs the full rendezvous list, and the parent only
    // has it once every child has bound — hence the stdin handshake
    // rather than spawn-time flags.
    let seeds = format!("{},{},{},{}", a.bound, b.bound, proxy.addr, d.bound);
    a.control(&format!("SEEDS {seeds}"), "READY");
    b.control(&format!("SEEDS {seeds}"), "READY");
    victim.control(&format!("SEEDS {seeds}"), "READY");

    for p in [&a, &b, &victim] {
        wait_until("initial 3-member convergence", || {
            probe_replica(p.bound).is_some_and(|(_, live)| live == BTreeSet::from([0, 1, 2]))
        });
    }

    // The test's own fleet view: an observer gossiper over the majority
    // seeds (never announces, so the fleet never sees a phantom member).
    let view = Arc::new(Directory::new());
    let observer = Gossiper::spawn(
        Arc::clone(&view),
        GossiperConfig {
            interval: Duration::from_millis(10),
            timeout: Duration::from_millis(300),
            seeds: vec![a.bound, b.bound],
            ..GossiperConfig::default()
        },
    );
    wait_until("observer view convergence", || view.snapshot().len() == 3);

    // Client load across the whole churn: streamed subscriptions with
    // exact consume-once accounting, failing over through the cut
    // without surfacing a single error.
    let consumed = Arc::new(AtomicU64::new(0));
    let requested = Arc::new(AtomicU64::new(0));
    let stop_load = Arc::new(AtomicBool::new(false));
    let load = {
        let view = Arc::clone(&view);
        let consumed = Arc::clone(&consumed);
        let requested = Arc::clone(&requested);
        let stop_load = Arc::clone(&stop_load);
        std::thread::spawn(move || -> Result<(), String> {
            let mut client = ClusterClient::connect(view, "churn-load")
                .map_err(|e| format!("connect: {e:?}"))?;
            client.set_op_timeouts(OpTimeouts::uniform(Duration::from_millis(300)));
            client.set_failover_cooldown(Duration::from_millis(150));
            while !stop_load.load(Ordering::SeqCst) {
                let total = 1024u64;
                let summary = client
                    .stream_cots(total, 128, |batch| {
                        consumed.fetch_add(batch.len() as u64, Ordering::SeqCst);
                    })
                    .map_err(|e| format!("stream_cots: {e:?}"))?;
                if summary.cots != total {
                    return Err(format!("short stream: {} of {total}", summary.cots));
                }
                requested.fetch_add(total, Ordering::SeqCst);
            }
            Ok(())
        })
    };
    // Let the load establish itself before the cut.
    wait_until("pre-partition progress", || {
        requested.load(Ordering::SeqCst) >= 2048
    });

    // ----- Partition. -----
    proxy.partition();

    // Majority-side mutation #1: a brand-new member joins the fleet
    // (D's process was up all along; only now does it announce).
    let majority_seeds = format!("{},{}", a.bound, b.bound);
    d.control(&format!("SEEDS {majority_seeds}"), "READY");

    // Minority-side mutation: the victim island evicts majority member 1
    // (from where it sits, B went silent too). Observe it applied right
    // away: the tombstone is an LWW record like any other, so a
    // concurrent majority-side restamp of member 1 (say a suspect/up
    // flap under load) may legitimately override it later through the
    // victim's still-working outbound pulls — the conflict rule, not a
    // bug — and post-heal convergence below is correct either way.
    victim.control("LEAVE 1", "OK");
    wait_until("victim island applied its own eviction of 1", || {
        probe_replica(victim.bound).is_some_and(|(_, live)| !live.contains(&1))
    });

    // Majority-side mutation #2 arrives on its own: the health checkers
    // strike the blackholed victim out, and the eviction is issued by
    // the lease holder (lowest live id) alone.
    wait_until("the joiner reaches the majority replicas", || {
        probe_replica(a.bound).is_some_and(|(_, live)| live.contains(&3))
    });
    wait_until("majority evicts the victim", || {
        probe_replica(a.bound).is_some_and(|(_, live)| !live.contains(&2))
    });

    // ----- Heal. -----
    proxy.heal();

    // Convergence: one epoch vector, one membership, on every replica —
    // the victim re-announced itself over its own tombstone, member 1
    // re-announced over the victim's, and the late joiner spread
    // everywhere.
    let bounds = [a.bound, b.bound, victim.bound, d.bound];
    wait_until("post-heal convergence to one vector", || {
        let mut probes = Vec::new();
        for bound in bounds {
            match probe_replica(bound) {
                Some(p) => probes.push(p),
                None => return false,
            }
        }
        let (v0, live0) = &probes[0];
        *live0 == BTreeSet::from([0, 1, 2, 3])
            && probes.iter().all(|(v, live)| v == v0 && live == live0)
    });

    // The load lived through the whole churn without a visible error and
    // the accounting is exact: every correlation requested was consumed
    // exactly once.
    wait_until("post-heal progress", || {
        requested.load(Ordering::SeqCst) >= 6144
    });
    stop_load.store(true, Ordering::SeqCst);
    load.join()
        .expect("load thread")
        .expect("churn load saw a client-visible error");
    assert_eq!(
        consumed.load(Ordering::SeqCst),
        requested.load(Ordering::SeqCst),
        "consume-once accounting broke across failovers"
    );

    observer.stop();
    proxy.stop();
    for p in [a, b, victim, d] {
        p.stop();
    }
}

// ---------------------------------------------------------------------
// Warm-standby failover timing.
// ---------------------------------------------------------------------

/// Kills a streaming session's home server and measures the wall time
/// from the kill to the first post-failover correlation, on a fleet
/// whose gossipers do (`standby`) or don't pre-warm ring successors.
/// Inline (non-pipelined) supply with no warm-up refiller, so the only
/// way a failover target has buffered correlations is the standby warm.
fn failover_first_chunk(standby: bool) -> Duration {
    let engine = Engine::new(
        FerretConfig::new(FerretParams::toy_large()),
        Backend::ironman_default(),
    );
    let mut cluster = LocalCluster::spawn_replicated(
        3,
        &engine,
        &ClusterServerConfig {
            service: CotServiceConfig {
                pipelined: false,
                ..CotServiceConfig::default()
            },
            warmup: None,
        },
        GossiperConfig {
            interval: Duration::from_millis(5),
            standby,
            standby_watermark: 4096,
            standby_max_refills: 2,
            ..GossiperConfig::default()
        },
    )
    .expect("spawn replicated fleet");
    let directory = cluster.directory();
    let deadline = Instant::now() + wait();
    while directory.snapshot().len() != 3 {
        assert!(Instant::now() < deadline, "observer view never converged");
        std::thread::sleep(Duration::from_millis(5));
    }

    // Pick a session whose ring-order failover target IS the home's
    // standby successor (the successor inherits the *most* arcs, not
    // necessarily this one), so the two fleets differ only in whether
    // that target was pre-warmed.
    let snapshot = directory.snapshot();
    let (session, home, target) = (0..)
        .map(|i| format!("failover-probe-{i}"))
        .find_map(|s| {
            let route = snapshot.route(&s);
            let home = *route.first()?;
            let successor = snapshot.successor(home)?;
            (route.get(1) == Some(&successor)).then_some((s, home, successor))
        })
        .expect("some session fails over onto the ring successor");

    if standby {
        // The home's gossiper warms its successor each sweep; wait for
        // enough buffered supply to serve the post-failover request
        // without an inline extension.
        let deadline = Instant::now() + wait();
        while cluster
            .server(target)
            .expect("target running")
            .pool()
            .available()
            < 2048
        {
            assert!(Instant::now() < deadline, "standby never warmed successor");
            std::thread::sleep(Duration::from_millis(5));
        }
    } else {
        assert_eq!(
            cluster
                .server(target)
                .expect("target running")
                .pool()
                .available(),
            0,
            "cold fleet must start cold"
        );
    }

    let mut client = ClusterClient::connect(directory, &session).expect("connect");
    client.set_failover_cooldown(Duration::from_millis(100));
    assert_eq!(client.home(), Some(home));

    cluster.kill_server(home);
    let watch = Instant::now();
    let batches = client.request_cots(2048).expect("post-failover request");
    let elapsed = watch.elapsed();
    assert_eq!(
        batches.iter().map(|b| b.len() as u64).sum::<u64>(),
        2048,
        "failover request short-changed"
    );
    assert!(
        client.served_for(target) >= 2048,
        "failover missed the ring successor"
    );
    cluster.shutdown();
    elapsed
}

#[test]
fn warm_standby_failover_beats_cold_failover_to_first_chunk() {
    let cold = failover_first_chunk(false);
    let warm = failover_first_chunk(true);
    // The cold path pays at least one inline toy_large extension; the
    // warm path is a buffer cursor bump plus a reconnect. Strict
    // inequality keeps the assertion honest under CI load while the
    // printed pair documents the actual margin.
    println!("failover to first chunk: cold {cold:?}, warm {warm:?}");
    assert!(
        warm < cold,
        "warm-standby failover ({warm:?}) not faster than cold ({cold:?})"
    );
}
