//! Concurrency hammer: 8 consumer threads drain a `SharedCotPool` while
//! the warm-up refiller races them on the same shards. Every batch must
//! still verify, counters must balance, and nothing may deadlock or
//! poison a shard.

use ironman_cluster::{Warmup, WarmupConfig};
use ironman_core::{Backend, Engine, SharedCotPool};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::sync::Arc;
use std::time::Duration;

#[test]
fn eight_threads_hammer_pool_under_warmup() {
    const THREADS: usize = 8;
    const TAKES_PER_THREAD: usize = 12;
    const BATCH: usize = 333;

    let engine = Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let pool = Arc::new(SharedCotPool::new(&engine, 4, 0xFEED));
    let warmup = Warmup::spawn(
        Arc::clone(&pool),
        WarmupConfig {
            low_watermark: usize::MAX,
            // An aggressive sweep cadence maximizes interleaving with the
            // consumer threads; consumers keep shards below watermark, so
            // the adaptive back-off (bounded here anyway) stays reset.
            interval: Duration::from_micros(200),
            max_interval: Duration::from_micros(800),
        },
    );

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                for _ in 0..TAKES_PER_THREAD {
                    let batch = pool.take(BATCH);
                    assert_eq!(batch.len(), BATCH);
                    batch.verify().expect("correlation holds under contention");
                }
            });
        }
    });

    warmup.stop();

    // Counter sanity after the race: occupancy sums match, per-shard
    // extension counts sum to the total, and warm-up did real work.
    assert_eq!(
        pool.shard_occupancy().iter().sum::<usize>(),
        pool.available()
    );
    assert_eq!(
        pool.shard_extensions().iter().sum::<usize>(),
        pool.extensions_run()
    );
    assert!(pool.warmup_refills() > 0, "refiller never won a sweep");
    assert!(pool.extensions_run() as u64 >= pool.warmup_refills());

    // The pool is still fully serviceable afterwards.
    pool.take(BATCH).verify().unwrap();
}
