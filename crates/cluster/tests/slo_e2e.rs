//! Observability-plane end-to-end: a 3-server fleet under live load
//! with SLO burn-rate alerting and the scrape exporter. The supply-floor
//! alert must stay inactive while the fleet is healthy, fire when the
//! fleet is killed (crash semantics — the health checker evicts), and
//! resolve after replacements heal it; the exporter's `/metrics` output
//! must parse as Prometheus text exposition with the required families,
//! including per-server model-vs-measured headroom gauges. Run by
//! `scripts/ci.sh`.

use ironman_cluster::{
    AlertState, BurnWindows, ClusterClient, ClusterServerConfig, FleetExporterConfig,
    FleetObserverConfig, HeadroomModel, HealthConfig, LocalCluster, SloKind, SloSpec, WarmupConfig,
};
use ironman_core::{Backend, Engine};
use ironman_net::{http_get, CotServiceConfig};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parsed Prometheus text sample: family name, rendered label set,
/// value.
struct Sample {
    family: String,
    labels: String,
    value: f64,
}

/// Parses (and validates) Prometheus text exposition: every sample line
/// must have the `name{labels} value` shape, a preceding `# TYPE`, and
/// a finite value. Panics with the offending line on any violation.
fn parse_prometheus(body: &str) -> Vec<Sample> {
    let mut typed: HashSet<String> = HashSet::new();
    let mut samples = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let keyword = words.next().unwrap_or("");
            let family = words.next().unwrap_or("");
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword: {line}"
            );
            if keyword == "TYPE" {
                let kind = words.next().unwrap_or("");
                assert!(
                    kind == "gauge" || kind == "counter",
                    "unknown metric type in: {line}"
                );
                typed.insert(family.to_string());
            }
            continue;
        }
        let (name_part, value_part) = match line.find('}') {
            Some(close) => (&line[..=close], line[close + 1..].trim()),
            None => {
                let mut it = line.splitn(2, ' ');
                (it.next().unwrap(), it.next().unwrap_or("").trim())
            }
        };
        let (family, labels) = match name_part.find('{') {
            Some(open) => {
                assert!(name_part.ends_with('}'), "unterminated labels: {line}");
                (
                    &name_part[..open],
                    name_part[open + 1..name_part.len() - 1].to_string(),
                )
            }
            None => (name_part, String::new()),
        };
        assert!(
            !family.is_empty()
                && family
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "bad family name in: {line}"
        );
        assert!(
            typed.contains(family),
            "sample without a preceding # TYPE: {line}"
        );
        let value: f64 = value_part
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in: {line}"));
        assert!(value.is_finite(), "non-finite value exported: {line}");
        samples.push(Sample {
            family: family.to_string(),
            labels,
            value,
        });
    }
    samples
}

fn by_family(samples: &[Sample]) -> HashMap<&str, Vec<&Sample>> {
    let mut map: HashMap<&str, Vec<&Sample>> = HashMap::new();
    for s in samples {
        map.entry(s.family.as_str()).or_default().push(s);
    }
    map
}

fn scrape_metrics(addr: SocketAddr) -> Vec<Sample> {
    let (status, body) = http_get(addr, "/metrics").expect("exporter reachable");
    assert_eq!(status, 200, "metrics endpoint errored");
    parse_prometheus(&body)
}

fn supply_alert(cluster: &LocalCluster) -> Option<(AlertState, Option<f64>)> {
    cluster
        .observer_handle()
        .expect("observer enabled")
        .alerts()
        .into_iter()
        .find(|a| a.slo == "supply-floor")
        .map(|a| (a.state, a.fast_value))
}

fn await_state(
    cluster: &LocalCluster,
    want: AlertState,
    deadline: Duration,
    why: &str,
) -> AlertState {
    let by = Instant::now() + deadline;
    loop {
        if let Some((state, _)) = supply_alert(cluster) {
            if state == want {
                return state;
            }
            assert!(
                Instant::now() < by,
                "{why}: stuck in {state:?}, want {want:?}"
            );
        } else {
            assert!(Instant::now() < by, "{why}: alert never evaluated");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn supply_slo_fires_on_fleet_kill_and_resolves_on_heal() {
    let engine = Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let cfg = ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0x510u64,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    };
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    // Eviction is permanent (rejoin is manual), so the strike budget
    // must ride out CPU-starvation bursts on a loaded one-core CI box:
    // with `evict_after: 3` a healthy member that missed three 10 ms
    // probes during an extension burst was gone for good and the
    // "all three up" scrape below could never succeed. Eight strikes
    // still evicts a killed server within seconds in phase 2.
    cluster.enable_health(HealthConfig {
        interval: Duration::from_millis(10),
        suspect_after: 2,
        evict_after: 8,
        ..HealthConfig::default()
    });
    // Tight burn windows so the whole lifecycle fits a test: a healthy
    // fleet under load supplies far above 1000 COTs/s; a dead fleet
    // supplies exactly zero.
    cluster.enable_observer(FleetObserverConfig {
        interval: Duration::from_millis(20),
        slos: vec![
            SloSpec::new(
                "supply-floor",
                SloKind::SupplyRate {
                    min_cots_per_sec: 1000.0,
                },
            )
            .with_windows(BurnWindows {
                fast: Duration::from_secs(1),
                slow: Duration::from_secs(3),
                clear_for: Duration::from_secs(1),
            }),
            // A latency objective no toy fleet can violate: exercises
            // multi-SLO evaluation and export alongside the burn.
            SloSpec::new(
                "push-p99",
                SloKind::ChunkPushP99 {
                    max_nanos: u64::MAX / 2,
                },
            ),
        ],
        ..FleetObserverConfig::default()
    });
    let exporter_addr = cluster
        .enable_exporter(FleetExporterConfig {
            window: Duration::from_secs(1),
            model: Some(HeadroomModel::xeon(FerretParams::toy())),
        })
        .expect("exporter binds");

    // Outage-tolerant load: keeps the pools draining (so warm-up keeps
    // extending — supply is demand-driven) and survives the full-fleet
    // kill with plain retries.
    let stop = Arc::new(AtomicBool::new(false));
    let directory = cluster.directory();
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let directory = Arc::clone(&directory);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client =
                    ClusterClient::connect(directory, &format!("slo-load-{w}")).expect("connect");
                while !stop.load(Ordering::SeqCst) {
                    match client.request_cots(300) {
                        Ok(batches) => {
                            for batch in batches {
                                drop(batch);
                            }
                        }
                        Err(_) => std::thread::sleep(Duration::from_millis(5)),
                    }
                }
            })
        })
        .collect();

    // Phase 1 — healthy: the alert must evaluate with real supply signal
    // and stay quiet.
    let healthy_by = Instant::now() + Duration::from_secs(30);
    loop {
        if let Some((state, Some(fast))) = supply_alert(&cluster) {
            if state == AlertState::Inactive && fast > 1000.0 {
                break;
            }
        }
        assert!(
            Instant::now() < healthy_by,
            "healthy fleet never measured supply above the floor: {:?}",
            supply_alert(&cluster)
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // The healthy exporter output: required families present, three
    // servers up, per-server headroom gauges populated and consistent.
    // A member can be transiently suspect under full-bore load (a missed
    // probe), so poll for a scrape that saw the whole fleet.
    let samples = {
        let by = Instant::now() + Duration::from_secs(30);
        loop {
            let samples = scrape_metrics(exporter_addr);
            let ups: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.family == "ironman_server_up")
                .collect();
            if ups.len() == 3 && ups.iter().all(|s| s.value == 1.0) {
                break samples;
            }
            assert!(
                Instant::now() < by,
                "exporter never saw all three members up"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    let fam = by_family(&samples);
    for required in [
        "ironman_scrape_epoch",
        "ironman_fleet_available_cots",
        "ironman_fleet_supply_cots_per_second",
        "ironman_fleet_served_cots_per_second",
        "ironman_server_up",
        "ironman_server_uptime_seconds",
        "ironman_server_cots_served_total",
        "ironman_server_extensions_total",
        "ironman_server_supply_cots_per_second",
        "ironman_server_predicted_supply_cots_per_second",
        "ironman_server_supply_utilization",
        "ironman_server_headroom_cots_per_second",
        "ironman_server_model_drift_cots_per_second",
        "ironman_slo_state",
        "ironman_slo_burning",
        "ironman_observer_scrape_p99_nanoseconds",
    ] {
        assert!(
            fam.get(required).is_some_and(|v| !v.is_empty()),
            "missing required metric family {required}"
        );
    }
    let ups = &fam["ironman_server_up"];
    assert_eq!(ups.len(), 3, "three members exported");
    assert!(ups.iter().all(|s| s.value == 1.0), "all members up");
    let headroom = &fam["ironman_server_headroom_cots_per_second"];
    assert_eq!(headroom.len(), 3, "headroom gauge per server");
    for h in &fam["ironman_server_predicted_supply_cots_per_second"] {
        assert!(
            h.value > 0.0,
            "model predicts a positive ceiling: {}",
            h.labels
        );
    }
    for u in &fam["ironman_server_supply_utilization"] {
        assert!(u.value >= 0.0, "utilization cannot be negative");
    }
    assert!(
        fam["ironman_slo_state"]
            .iter()
            .any(|s| s.labels.contains("supply-floor") && s.value == 0.0),
        "healthy supply alert exports as inactive"
    );

    // The human page renders too.
    let (status, page) = http_get(exporter_addr, "/fleet").expect("fleet page");
    assert_eq!(status, 200);
    assert!(
        page.contains("ironman fleet") && page.contains("supply"),
        "{page}"
    );
    let (status, _) = http_get(exporter_addr, "/nope").expect("reachable");
    assert_eq!(status, 404);

    // Phase 2 — kill the whole fleet (crash semantics; the health
    // checker evicts). Fleet supply collapses to zero, so the fast
    // window burns, the slow window agrees, and the alert fires.
    for id in cluster.server_ids() {
        cluster.kill_server(id);
    }
    await_state(
        &cluster,
        AlertState::Firing,
        Duration::from_secs(30),
        "fleet kill",
    );

    // While firing, the exporter must say so.
    let samples = scrape_metrics(exporter_addr);
    let fam = by_family(&samples);
    assert!(
        fam["ironman_slo_state"]
            .iter()
            .any(|s| s.labels.contains("supply-floor") && s.value == 2.0),
        "firing alert exports state 2"
    );
    assert!(
        fam["ironman_slo_burning"]
            .iter()
            .any(|s| s.labels.contains("supply-floor")
                && s.labels.contains("fast")
                && s.value == 1.0),
        "fast window exports as burning"
    );

    // Phase 3 — heal: replacements join, warm-up refills from empty and
    // load resumes, so supply recovers and the alert resolves after the
    // hysteresis interval.
    for _ in 0..3 {
        cluster.spawn_server().expect("replacement joins");
    }
    await_state(
        &cluster,
        AlertState::Resolved,
        Duration::from_secs(60),
        "fleet heal",
    );

    stop.store(true, Ordering::SeqCst);
    for w in workers {
        w.join().expect("load worker");
    }
    let samples = scrape_metrics(exporter_addr);
    let fam = by_family(&samples);
    assert!(
        fam["ironman_slo_state"]
            .iter()
            .any(|s| s.labels.contains("supply-floor") && s.value == 3.0),
        "resolved alert exports state 3 (fired-and-recovered stays visible)"
    );
    cluster.shutdown();
}
