//! Multi-server loopback end-to-end: a 3-server fleet with warm-up, a
//! routed client doing one-shot, split, and streaming requests, and
//! failover when the home server dies.

use ironman_cluster::{ClusterClient, ClusterServerConfig, LocalCluster, WarmupConfig};
use ironman_core::{Backend, Engine};
use ironman_net::CotServiceConfig;
use ironman_ot::channel::ChannelError;
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::time::Duration;

fn toy_engine() -> Engine {
    Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    )
}

fn warm_cluster_cfg() -> ClusterServerConfig {
    ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0x0C1u64,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    }
}

#[test]
fn three_server_fleet_serves_routed_and_split_requests() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");
    let directory = cluster.directory();

    let mut client = ClusterClient::connect(directory, "e2e-router").expect("connect");
    let max = client.max_request().expect("connected") as usize;

    // In-limit request: single batch, single (home) server.
    let small = client.request_cots(max / 2).unwrap();
    assert_eq!(small.len(), 1);
    assert_eq!(small[0].len(), max / 2);
    small[0].verify().unwrap();
    let after_small = client.served_per_server();
    assert_eq!(after_small[client.home()], (max / 2) as u64);

    // Oversized request: transparently split across servers, every chunk
    // within the per-server limit, total exact, every batch verified.
    let want = 2 * max + 7;
    let split = client.request_cots(want).unwrap();
    assert!(
        split.len() >= 3,
        "expected >= 3 chunks, got {}",
        split.len()
    );
    let mut total = 0usize;
    for batch in &split {
        assert!(batch.len() <= max);
        batch.verify().unwrap();
        total += batch.len();
    }
    assert_eq!(total, want);
    // The spill actually spread beyond the home server.
    let spread = client
        .served_per_server()
        .iter()
        .filter(|&&cots| cots > 0)
        .count();
    assert!(spread >= 2, "spill never left the home server");

    // Per-shard observability: the stats request reports every shard and
    // the warm-up refills that filled them.
    let mut warm_refills = 0;
    for (_, stats) in client.stats_all() {
        let stats = stats.expect("all servers reachable");
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.shard_stats.len(), 2);
        assert_eq!(
            stats.available,
            stats.shard_stats.iter().map(|s| s.available).sum::<u64>()
        );
        warm_refills += stats.warmup_refills;
    }
    assert!(warm_refills > 0, "warm-up never refilled any server");

    cluster.shutdown();
}

#[test]
fn streaming_subscription_over_the_fleet() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");

    let mut client = ClusterClient::connect(cluster.directory(), "e2e-streamer").expect("connect");
    // A total that is deliberately not a multiple of the chunk size, so
    // the remainder path is exercised too.
    let total = 10 * 256 + 99;
    let mut seen = 0u64;
    let summary = client
        .stream_cots(total, 256, |batch| {
            batch.verify().unwrap();
            seen += batch.len() as u64;
        })
        .unwrap();
    assert_eq!(summary.cots, total);
    assert_eq!(seen, total);
    // 10 pushed chunks; the 99-COT remainder is served one-shot and does
    // not count as a pushed chunk.
    assert_eq!(summary.chunks, 10);

    // Regression: a zero-sized chunk is a typed rejection, not a
    // divide-by-zero panic.
    assert!(matches!(
        client.stream_cots(100, 0, |_| {}),
        Err(ChannelError::RequestTooLarge { .. })
    ));

    // The raw subscription handle also feeds the per-server load
    // counters (spill routing must see streamed load).
    let served_before: u64 = client.served_per_server().iter().sum();
    let mut sub = client.subscribe(128, 4).unwrap();
    while let Some(batch) = sub.next_chunk().unwrap() {
        batch.verify().unwrap();
    }
    let sub_summary = sub.finish().unwrap();
    assert_eq!(sub_summary.cots, 4 * 128);
    let served_after: u64 = client.served_per_server().iter().sum();
    assert_eq!(served_after, served_before + 4 * 128);

    cluster.shutdown();
}

#[test]
fn failover_routes_around_a_dead_home_server() {
    let engine = toy_engine();
    // No warm-up: this test is about routing, not refill.
    let cfg = ClusterServerConfig {
        service: CotServiceConfig {
            shards: 1,
            seed: 0xDEAD,
            ..CotServiceConfig::default()
        },
        warmup: None,
    };
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    let directory = cluster.directory();
    let session = "failover-session";
    let home = directory.home(session);

    // Kill the session's home server before the client ever connects.
    cluster.shutdown_server(home);

    let mut client = ClusterClient::connect(directory.clone(), session).expect("connect");
    let batches = client.request_cots(100).unwrap();
    assert_eq!(batches.len(), 1);
    batches[0].verify().unwrap();
    // The correlations came from a fallback, not the dead home.
    let served = client.served_per_server();
    assert_eq!(served[home], 0);
    assert_eq!(served.iter().sum::<u64>(), 100);

    // Streaming also routes around the dead home.
    let summary = client
        .stream_cots(500, 100, |b| b.verify().unwrap())
        .unwrap();
    assert_eq!(summary.cots, 500);

    cluster.shutdown();
}

#[test]
fn shutting_down_multiple_servers_keeps_indices_stable() {
    let engine = toy_engine();
    let cfg = ClusterServerConfig::default();
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    let directory = cluster.directory();
    // Regression: killing index 0 then index 2 used to shift the vec and
    // panic (or kill the wrong server).
    cluster.shutdown_server(0);
    cluster.shutdown_server(2);
    // Only directory index 1 is left; any session must end up there.
    let mut client = ClusterClient::connect(directory.clone(), "survivor").expect("connect");
    let batches = client.request_cots(64).unwrap();
    batches[0].verify().unwrap();
    assert_eq!(client.served_per_server()[1], 64);
    cluster.shutdown();
}

#[test]
fn fleet_wide_outage_surfaces_an_error() {
    let engine = toy_engine();
    let cfg = ClusterServerConfig::default();
    let cluster = LocalCluster::spawn(2, &engine, &cfg).expect("spawn fleet");
    let directory = cluster.directory();
    cluster.shutdown();

    // Every server is gone: connect must fail with a connectivity error,
    // not hang or panic.
    match ClusterClient::connect(directory, "doomed") {
        Err(ChannelError::Io(_) | ChannelError::Disconnected) => {}
        other => panic!("expected connectivity error, got {other:?}"),
    }
}

#[test]
fn two_clients_share_the_fleet() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");
    cluster.wait_warm(1, Duration::from_secs(30));
    let directory = cluster.directory();

    let threads: Vec<_> = (0..2)
        .map(|id| {
            let directory = directory.clone();
            std::thread::spawn(move || {
                let mut client =
                    ClusterClient::connect(directory, &format!("shared-{id}")).expect("connect");
                let mut got = 0u64;
                for _ in 0..4 {
                    for batch in client.request_cots(700).expect("request") {
                        batch.verify().expect("verified");
                        got += batch.len() as u64;
                    }
                }
                got
            })
        })
        .collect();
    let total: u64 = threads.into_iter().map(|t| t.join().expect("client")).sum();
    assert_eq!(total, 2 * 4 * 700);

    let final_stats = cluster.shutdown();
    let cots_served: u64 = final_stats.iter().map(|s| s.cots_served).sum();
    assert_eq!(cots_served, total);
}
