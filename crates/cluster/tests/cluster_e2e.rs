//! Multi-server loopback end-to-end: a dynamic 3-server fleet with
//! warm-up, a routed client doing one-shot, split, and streaming
//! requests, failover when the home server dies — including **mid
//! subscription** — and the epoch fence (`WrongEpoch` →
//! `DirectoryUpdate` → re-resolve) for clients whose membership view
//! went stale.

use ironman_cluster::{
    ClusterClient, ClusterServerConfig, Directory, FleetWarmupConfig, LocalCluster, WarmupConfig,
};
use ironman_core::{Backend, Engine};
use ironman_net::CotServiceConfig;
use ironman_ot::channel::ChannelError;
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::sync::Arc;
use std::time::Duration;

fn toy_engine() -> Engine {
    Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    )
}

fn warm_cluster_cfg() -> ClusterServerConfig {
    ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0x0C1u64,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    }
}

#[test]
fn three_server_fleet_serves_routed_and_split_requests() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");

    let mut client = ClusterClient::connect(cluster.directory(), "e2e-router").expect("connect");
    let max = client.max_request().expect("connected") as usize;
    let home = client.home().expect("non-empty fleet");

    // In-limit request: single batch, single (home) server.
    let small = client.request_cots(max / 2).unwrap();
    assert_eq!(small.len(), 1);
    assert_eq!(small[0].len(), max / 2);
    small[0].verify().unwrap();
    assert_eq!(client.served_for(home), (max / 2) as u64);

    // Oversized request: transparently split across servers, every chunk
    // within the per-server limit, total exact, every batch verified.
    let want = 2 * max + 7;
    let split = client.request_cots(want).unwrap();
    assert!(
        split.len() >= 3,
        "expected >= 3 chunks, got {}",
        split.len()
    );
    let mut total = 0usize;
    for batch in &split {
        assert!(batch.len() <= max);
        batch.verify().unwrap();
        total += batch.len();
    }
    assert_eq!(total, want);
    // The spill actually spread beyond the home server.
    let spread = client
        .served_per_server()
        .iter()
        .filter(|&&(_, cots)| cots > 0)
        .count();
    assert!(spread >= 2, "spill never left the home server");

    // The coalescing visitor path delivers the same totals through one
    // reused batch (no owned batch per chunk).
    let served_before = client.served_total();
    let mut visited = 0u64;
    let chunks = client
        .request_cots_with(want, |batch| {
            batch.verify().unwrap();
            assert!(batch.len() <= max);
            visited += batch.len() as u64;
        })
        .unwrap();
    assert!(chunks >= 3);
    assert_eq!(visited, want as u64);
    assert_eq!(client.served_total(), served_before + want as u64);

    // Per-shard observability: the stats request reports every shard and
    // the warm-up refills that filled them, plus the directory epoch
    // every member agrees on.
    let epoch = cluster.directory().epoch();
    let mut warm_refills = 0;
    for (_, _, stats) in client.stats_all() {
        let stats = stats.expect("all servers reachable");
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.shard_stats.len(), 2);
        assert_eq!(
            stats.available,
            stats.shard_stats.iter().map(|s| s.available).sum::<u64>()
        );
        assert_eq!(stats.directory_epoch, epoch);
        warm_refills += stats.warmup_refills;
    }
    assert!(warm_refills > 0, "warm-up never refilled any server");

    cluster.shutdown();
}

#[test]
fn streaming_subscription_over_the_fleet() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");

    let mut client = ClusterClient::connect(cluster.directory(), "e2e-streamer").expect("connect");
    // A total that is deliberately not a multiple of the chunk size, so
    // the remainder path is exercised too.
    let total = 10 * 256 + 99;
    let mut seen = 0u64;
    let summary = client
        .stream_cots(total, 256, |batch| {
            batch.verify().unwrap();
            seen += batch.len() as u64;
        })
        .unwrap();
    assert_eq!(summary.cots, total);
    assert_eq!(seen, total);
    // 10 pushed chunks; the 99-COT remainder is served one-shot and does
    // not count as a pushed chunk.
    assert_eq!(summary.chunks, 10);

    // Regression: a zero-sized chunk is a typed rejection, not a
    // divide-by-zero panic.
    assert!(matches!(
        client.stream_cots(100, 0, |_| {}),
        Err(ChannelError::RequestTooLarge { .. })
    ));

    // The raw subscription handle also feeds the per-server load
    // counters (spill routing must see streamed load).
    let served_before = client.served_total();
    let mut sub = client.subscribe(128, 4).unwrap();
    while let Some(batch) = sub.next_chunk().unwrap() {
        batch.verify().unwrap();
    }
    let sub_summary = sub.finish().unwrap();
    assert_eq!(sub_summary.cots, 4 * 128);
    assert_eq!(client.served_total(), served_before + 4 * 128);

    cluster.shutdown();
}

#[test]
fn failover_routes_around_a_dead_home_server() {
    let engine = toy_engine();
    // No warm-up: this test is about routing, not refill.
    let cfg = ClusterServerConfig {
        service: CotServiceConfig {
            shards: 1,
            seed: 0xDEAD,
            ..CotServiceConfig::default()
        },
        warmup: None,
    };
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    let directory = cluster.directory();
    let session = "failover-session";
    let home = directory.snapshot().home(session).expect("non-empty");

    // Crash the session's home server before the client ever connects —
    // the directory still lists it (nobody told it), so the client must
    // discover the corpse by failing to connect.
    cluster.kill_server(home);

    let mut client = ClusterClient::connect(directory, session).expect("connect");
    let batches = client.request_cots(100).unwrap();
    assert_eq!(batches.len(), 1);
    batches[0].verify().unwrap();
    // The correlations came from a fallback, not the dead home.
    assert_eq!(client.served_for(home), 0);
    assert_eq!(client.served_total(), 100);

    // Streaming also routes around the dead home.
    let summary = client
        .stream_cots(500, 100, |b| b.verify().unwrap())
        .unwrap();
    assert_eq!(summary.cots, 500);

    cluster.shutdown();
}

#[test]
fn killing_servers_keeps_ids_stable_and_survivor_serves() {
    let engine = toy_engine();
    let cfg = ClusterServerConfig::default();
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    let ids = cluster.server_ids();
    // Kill two of three by stable id; the ids of the remaining server do
    // not shift.
    cluster.kill_server(ids[0]);
    cluster.kill_server(ids[2]);
    assert_eq!(cluster.server_ids(), vec![ids[1]]);
    let mut client = ClusterClient::connect(cluster.directory(), "survivor").expect("connect");
    let batches = client.request_cots(64).unwrap();
    batches[0].verify().unwrap();
    assert_eq!(client.served_for(ids[1]), 64);
    cluster.shutdown();
}

#[test]
fn fleet_wide_outage_surfaces_an_error() {
    let engine = toy_engine();
    let cfg = ClusterServerConfig::default();
    let cluster = LocalCluster::spawn(2, &engine, &cfg).expect("spawn fleet");
    let directory = cluster.directory();
    cluster.shutdown();

    // Every server is gone: connect must fail with a connectivity error,
    // not hang or panic.
    match ClusterClient::connect(directory, "doomed") {
        Err(ChannelError::Io(_) | ChannelError::Disconnected) => {}
        other => panic!("expected connectivity error, got {other:?}"),
    }
}

#[test]
fn two_clients_share_the_fleet() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");
    cluster.wait_warm(1, Duration::from_secs(30));
    let directory = cluster.directory();

    let threads: Vec<_> = (0..2)
        .map(|id| {
            let directory = Arc::clone(&directory);
            std::thread::spawn(move || {
                let mut client =
                    ClusterClient::connect(directory, &format!("shared-{id}")).expect("connect");
                let mut got = 0u64;
                for _ in 0..4 {
                    for batch in client.request_cots(700).expect("request") {
                        batch.verify().expect("verified");
                        got += batch.len() as u64;
                    }
                }
                got
            })
        })
        .collect();
    let total: u64 = threads.into_iter().map(|t| t.join().expect("client")).sum();
    assert_eq!(total, 2 * 4 * 700);

    let final_stats = cluster.shutdown();
    let cots_served: u64 = final_stats.iter().map(|s| s.cots_served).sum();
    assert_eq!(cots_served, total);
}

#[test]
fn stale_client_is_fenced_synced_and_rerouted() {
    // The wire-v4 tentpole path, end to end: a client whose *private*
    // directory falls behind the fleet's is fenced with WrongEpoch, pulls
    // the DirectoryUpdate delta, applies it, re-resolves, and serves —
    // all inside one request_cots call.
    let engine = toy_engine();
    let mut cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");
    let shared = cluster.directory();

    // The client's view is a snapshot clone, NOT the shared directory:
    // membership changes leave it stale until a server's delta lands.
    let follower = Arc::new(Directory::from_snapshot(&shared.snapshot()));
    let mut client = ClusterClient::connect(Arc::clone(&follower), "stale-view").expect("connect");
    let home = client.home().expect("non-empty");
    client.request_cots(64).unwrap()[0].verify().unwrap();

    // Drain the client's home (epoch bump in the shared directory only)
    // and add a fresh server. The follower still routes to the drained
    // home; the server must fence and re-educate it.
    cluster.drain_server(home);
    cluster.spawn_server().expect("replacement joins");
    let fleet_epoch = shared.epoch();
    assert!(client.epoch() < fleet_epoch, "client view must be stale");

    let served_on_home = client.served_for(home);
    let batches = client.request_cots(64).unwrap();
    batches[0].verify().unwrap();
    // The fence + delta brought the client current...
    assert_eq!(client.epoch(), fleet_epoch);
    // ...and the new work avoided the draining home.
    assert_eq!(client.served_for(home), served_on_home);

    cluster.shutdown();
}

#[test]
fn kill_mid_subscription_resumes_on_new_home_with_exact_accounting() {
    let engine = toy_engine();
    let mut cluster = LocalCluster::spawn(3, &engine, &warm_cluster_cfg()).expect("spawn fleet");
    let directory = cluster.directory();

    let mut client =
        ClusterClient::connect(Arc::clone(&directory), "doomed-stream").expect("connect");
    let home = client.home().expect("non-empty");

    const BATCH: usize = 200;
    const TOTAL: u64 = 40 * BATCH as u64 + 57;
    let mut seen = 0u64;
    let mut chunks_seen = 0u64;
    let mut killed = false;
    let summary = client
        .stream_cots(TOTAL, BATCH, |batch| {
            batch.verify().unwrap();
            seen += batch.len() as u64;
            chunks_seen += 1;
            // Kill the serving home after a few chunks, mid-stream. The
            // eviction bumps the epoch; the stream must resume on the new
            // home for exactly the remainder.
            if !killed && seen >= 3 * BATCH as u64 {
                cluster.kill_server(home);
                directory.leave(home);
                killed = true;
            }
        })
        .expect("stream survives the kill");
    assert!(killed, "the kill never triggered");
    // Zero lost, zero duplicated: the consumer saw exactly the total.
    assert_eq!(seen, TOTAL);
    assert_eq!(summary.cots, TOTAL);
    assert_eq!(summary.chunks, chunks_seen.min(40));
    // The resumed portion really came from a different server.
    assert!(client.served_for(home) >= 3 * BATCH as u64);
    assert!(client.served_total() >= TOTAL);
    let others: u64 = client
        .served_per_server()
        .iter()
        .filter(|&&(id, _)| id != home)
        .map(|&(_, cots)| cots)
        .sum();
    assert!(others > 0, "resume never left the dead home");

    cluster.shutdown();
}

#[test]
fn fleet_warmup_steers_refills_toward_the_demand_backlog() {
    let engine = toy_engine();
    // No per-server warm-up: every refill is the fleet controller's
    // doing, so the per-shard warm_refills counters measure its steering
    // and nothing else.
    let cfg = ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0x57EE,
            ..CotServiceConfig::default()
        },
        warmup: None,
    };
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    cluster.enable_fleet_warmup(FleetWarmupConfig {
        budget: 2,
        interval: Duration::from_millis(2),
        max_interval: Duration::from_millis(8),
        ..FleetWarmupConfig::default()
    });
    // Let the controller top every shard up to the full merge-refill
    // watermark (2 extensions per shard) first: with zero deficit and
    // zero backlog everywhere, every weight is zero and the controller
    // spends nothing — the steering delta below is pure demand response.
    let watermark_per_server = 2 * 2 * engine.config().usable_outputs();
    assert!(
        cluster.wait_warm(watermark_per_server, Duration::from_secs(120)),
        "controller never warmed the idle fleet"
    );

    let mut client = ClusterClient::connect(cluster.directory(), "hungry").expect("connect");
    let home = client.home().expect("non-empty");
    let warm_before: Vec<(u64, u64)> = client
        .stats_all()
        .iter()
        .map(|(id, _, stats)| {
            let s = stats.as_ref().expect("reachable");
            (id.0, s.shard_stats.iter().map(|sh| sh.warm_refills).sum())
        })
        .collect();

    // One server gets all the subscription demand; its peers stay idle.
    let total = 60_000u64;
    let summary = client
        .stream_cots(total, 1500, |b| b.verify().unwrap())
        .expect("stream");
    assert_eq!(summary.cots, total);

    // Give the controller time to respond to the drain: its budget must
    // flow to the demand-loaded server until it is back above watermark
    // (the idle peers have zero weight and receive nothing meanwhile).
    let deadline = std::time::Instant::now() + Duration::from_secs(120);
    while cluster.server(home).expect("home runs").pool().available() < watermark_per_server {
        assert!(
            std::time::Instant::now() < deadline,
            "controller never restored the drained server"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut home_delta = 0u64;
    let mut peer_deltas = Vec::new();
    for (id, _, stats) in client.stats_all() {
        let s = stats.expect("reachable");
        let warm: u64 = s.shard_stats.iter().map(|sh| sh.warm_refills).sum();
        let before = warm_before
            .iter()
            .find(|&&(bid, _)| bid == id.0)
            .map_or(0, |&(_, w)| w);
        let delta = warm - before;
        if id == home {
            home_delta = delta;
        } else {
            peer_deltas.push(delta);
        }
    }
    // The drained server's shards received a measurably larger share of
    // the refill budget than the idle peers' (who were already at
    // watermark and carried no backlog).
    for &peer in &peer_deltas {
        assert!(
            home_delta >= 2 * peer.max(1),
            "steering failed: home got {home_delta} refills vs peers {peer_deltas:?}"
        );
    }
    assert!(
        home_delta > 0,
        "the demand-loaded server was never refilled"
    );

    cluster.shutdown();
}
