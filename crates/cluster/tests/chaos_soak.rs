//! Seeded chaos soak: the v8 fault-tolerance invariants proven
//! end-to-end against a live loopback fleet under a scripted
//! [`ChaosSchedule`] — injected stalls, connection resets, corrupt
//! frames, a fleet-wide supply starvation, and a heal.
//!
//! Invariants under test:
//!
//! 1. **Consume-once accounting** — every streaming call either
//!    delivers exactly what it promised or fails typed with its partial
//!    progress visible; the consumer never sees a correlation twice.
//! 2. **Bounded blocking** — with the whole fleet blackholed, a client
//!    call fails typed within its deadlines plus one backoff step, and
//!    the fleet recovers promptly after heal.
//! 3. **Graceful degradation** — a starved fleet declines with
//!    `Unavailable { retry_after_ms }` hints (honored by the client),
//!    the supply SLO fires during the outage and resolves after heal.
//! 4. **Slow-consumer guard** — a stuck subscriber is evicted within
//!    the push write deadline without disturbing a healthy stream on
//!    the same server.
//!
//! Run by `scripts/ci.sh`; `CHAOS_SOAK_SECS` stretches the scripted
//! soak (default 2 s — the CI quick mode).

use ironman_cluster::{
    AlertState, BurnWindows, ChaosAction, ChaosSchedule, ClusterClient, ClusterServerConfig,
    FleetObserverConfig, LocalCluster, SloKind, SloSpec, WarmupConfig,
};
use ironman_core::{Backend, Engine};
use ironman_net::{CotServiceConfig, FaultPlan, OpTimeouts, Request, RetryPolicy, TcpTransport};
use ironman_ot::channel::{ChannelError, Transport};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn toy_engine() -> Engine {
    Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    )
}

fn warm_cfg(seed: u64) -> ClusterServerConfig {
    ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    }
}

/// The scripted soak length: `CHAOS_SOAK_SECS` (clamped to [1, 600]),
/// defaulting to the 2 s CI quick mode.
fn soak_duration() -> Duration {
    let secs = std::env::var("CHAOS_SOAK_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(2.0);
    Duration::from_secs_f64(secs.clamp(1.0, 600.0))
}

/// Invariant 1: exact consume-once accounting through the full chaos
/// script — stalls past the read deadline, resets at a byte budget,
/// bit-flipped frames, a rolling fleet-wide starvation, then heal.
#[test]
fn seeded_chaos_soak_keeps_consume_once_accounting() {
    let engine = toy_engine();
    let mut cluster = LocalCluster::spawn(3, &engine, &warm_cfg(0xC405)).expect("spawn fleet");
    let ids = cluster.server_ids();
    let (a, b, c) = (ids[0], ids[1], ids[2]);
    let t = soak_duration();
    let frac = |x: f64| t.mul_f64(x);

    // Stalls longer than the client's 500 ms read deadline surface as
    // typed timeouts; resets as IO errors; bit flips as malformed
    // frames. All three are connectivity-class: fail over, not hang.
    // Every plan also carries a benign 1 ms read latency so that ANY
    // traffic on a faulted server counts an injection — the client's
    // consistent-hash home is seed-dependent, and the no-op check below
    // must not hinge on which server it lands on.
    let jitter = Duration::from_millis(1);
    let stall_plan = FaultPlan {
        read_latency: jitter,
        stall_probability: 0.05,
        stall: Duration::from_millis(700),
        ..FaultPlan::default()
    };
    let reset_plan = FaultPlan {
        read_latency: jitter,
        reset_after_bytes: Some(96 * 1024),
        ..FaultPlan::default()
    };
    let flip_plan = FaultPlan {
        read_latency: jitter,
        flip_probability: 0.0005,
        ..FaultPlan::default()
    };
    let mut schedule = ChaosSchedule::new()
        .at(frac(0.10), ChaosAction::Faults(a, stall_plan))
        .at(frac(0.20), ChaosAction::Faults(b, reset_plan))
        .at(frac(0.40), ChaosAction::HealAll)
        .at(frac(0.50), ChaosAction::Faults(c, flip_plan))
        // Rolling starvation: briefly the whole fleet declines with
        // retry hints, which the client must honor (cooldown, failover,
        // at most one budgeted backoff per call).
        .at(frac(0.60), ChaosAction::Starve(a, frac(0.15)))
        .at(frac(0.62), ChaosAction::Starve(b, frac(0.12)))
        .at(frac(0.64), ChaosAction::Starve(c, frac(0.10)))
        .at(frac(0.85), ChaosAction::HealAll);

    let mut client = ClusterClient::connect(cluster.directory(), "chaos-soak").expect("connect");
    client.set_op_timeouts(OpTimeouts::uniform(Duration::from_millis(500)));
    client.set_failover_cooldown(Duration::from_millis(50));
    client.set_retry_policy(RetryPolicy::new(
        Duration::from_millis(10),
        Duration::from_millis(250),
        0xC405,
    ));

    let mut ok_calls = 0u64;
    let mut failed_calls = 0u64;
    let hard_stop = Instant::now() + t + Duration::from_secs(120);
    // Runs to the end of the script AND at least ten clean calls: under
    // heavy CPU contention the wall-clock script can elapse within a
    // handful of slow calls, and the post-heal tail must still prove
    // the fleet serves. The hard stop above bounds a genuine wedge.
    while !schedule.is_done() || schedule.elapsed() < t || ok_calls < 10 {
        schedule.step(&mut cluster);
        let want = 240u64;
        let mut delta = 0u64;
        let started = Instant::now();
        let outcome = client.stream_cots(want, 40, |chunk| delta += chunk.len() as u64);
        let spent = started.elapsed();
        assert!(
            spent < Duration::from_secs(30),
            "a chaos-era call must stay bounded, took {spent:?}"
        );
        match outcome {
            Ok(summary) => {
                // Nothing lost: the callback saw exactly the promised
                // total, and the summary agrees.
                assert_eq!(summary.cots, want, "stream accounting drifted");
                assert_eq!(delta, want, "consume-once: callback total");
                ok_calls += 1;
            }
            Err(e) => {
                // Nothing duplicated: a failed call's partial progress
                // never exceeds what was asked for.
                assert!(delta <= want, "duplicated correlations under {e}");
                failed_calls += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        assert!(
            Instant::now() < hard_stop,
            "soak wedged (ok={ok_calls} failed={failed_calls})"
        );
    }

    assert!(
        ok_calls >= 10,
        "the fleet must keep serving through chaos (ok={ok_calls}, failed={failed_calls})"
    );

    // Chaos plumbing end-to-end, decoupled from script timing: under
    // CPU contention a short script's arm/heal offsets can collapse
    // into one `step()` batch with no traffic in between, so counter
    // checks must not hinge on the scripted windows. Arm a benign
    // latency fault fleet-wide, serve through it — every read on every
    // server now counts an injection.
    for id in cluster.server_ids() {
        assert!(cluster.inject_faults(
            id,
            FaultPlan {
                read_latency: jitter,
                ..FaultPlan::default()
            }
        ));
    }
    let mut tail = 0u64;
    client
        .stream_cots(40, 40, |chunk| tail += chunk.len() as u64)
        .expect("latency-only faults must not break serving");
    assert_eq!(tail, 40);
    // A server thread already parked in a read when the plan armed
    // completes that read un-gated, so one exchange can legitimately
    // count zero injections — keep serving until the counter moves.
    let faults_by = Instant::now() + Duration::from_secs(20);
    loop {
        let faults: u64 = cluster
            .server_ids()
            .iter()
            .map(|&id| cluster.server(id).expect("live").stats().faults_injected)
            .sum();
        if faults > 0 {
            break;
        }
        assert!(
            Instant::now() < faults_by,
            "no faults fired — the injection gate is dead"
        );
        client
            .request_cots(8)
            .expect("latency-only faults must not break serving");
    }

    // And the degradation path: starve the whole fleet, watch the
    // typed decline arrive and get honored (counted, hinted cooldown).
    for id in cluster.server_ids() {
        assert!(cluster.starve_server(id, Duration::from_secs(600)));
    }
    let _ = client.request_cots(8);
    let unavailable: u64 = cluster
        .server_ids()
        .iter()
        .map(|&id| cluster.server(id).expect("live").stats().unavailable_sent)
        .sum();
    assert!(
        unavailable > 0 && client.unavailable_seen() > 0,
        "starvation declines were sent ({unavailable}) and honored ({})",
        client.unavailable_seen()
    );
    cluster.heal_all();
    cluster.shutdown();
}

/// Invariant 2: with every server blackholed, a client call fails
/// *typed* within its deadlines plus one backoff step — and after heal
/// the fleet serves again promptly.
#[test]
fn blackholed_fleet_fails_typed_within_deadline_and_recovers() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(2, &engine, &warm_cfg(0xB1AC)).expect("spawn fleet");
    let mut client =
        ClusterClient::connect(cluster.directory(), "blackhole-probe").expect("connect");
    client.set_op_timeouts(OpTimeouts::uniform(Duration::from_millis(300)));
    client.set_failover_cooldown(Duration::from_millis(50));
    client.set_retry_policy(RetryPolicy::new(
        Duration::from_millis(10),
        Duration::from_millis(200),
        7,
    ));
    client.request_cots(16).expect("healthy fleet serves");

    for id in cluster.server_ids() {
        assert!(cluster.inject_faults(
            id,
            FaultPlan {
                blackhole: true,
                ..FaultPlan::default()
            }
        ));
    }
    // A server thread already blocked in a read when the plan arms
    // completes that read clean, so the first exchange after arming may
    // still serve; loop until the blackhole bites.
    let mut first_err = None;
    for _ in 0..50 {
        let started = Instant::now();
        match client.request_cots(16) {
            Ok(_) => continue,
            Err(e) => {
                let spent = started.elapsed();
                // Worst case: 2 servers x (read deadline, then redial:
                // connect + handshake read) x 2 sweeps + one capped
                // backoff — all 300 ms units, well under 6 s.
                assert!(
                    spent < Duration::from_secs(6),
                    "call blocked past deadline + one backoff: {spent:?}"
                );
                first_err = Some(e);
                break;
            }
        }
    }
    let e = first_err.expect("a blackholed fleet must fail");
    assert!(
        matches!(
            e,
            ChannelError::TimedOut | ChannelError::Io(_) | ChannelError::Disconnected
        ),
        "blackhole must surface typed, got {e}"
    );
    assert!(client.timeouts_seen() > 0, "deadline expiries are counted");
    assert!(
        client.retries_spent() >= 1,
        "one budgeted backoff sweep was spent"
    );
    assert!(
        client.retry_backoff().count() >= 1,
        "the backoff sleep was recorded"
    );

    cluster.heal_all();
    client.heal();
    let recovered_by = Instant::now() + Duration::from_secs(30);
    loop {
        if client.request_cots(16).is_ok() {
            break;
        }
        assert!(
            Instant::now() < recovered_by,
            "fleet never recovered after heal"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster.shutdown();
}

/// Invariant 3: a fleet-wide *starvation* outage (servers alive but
/// declining with `Unavailable` hints) burns the supply SLO into
/// `Firing`, and it resolves after the heal — the injected-outage
/// variant of the kill-based SLO e2e.
#[test]
fn supply_slo_fires_during_starvation_and_resolves_after_heal() {
    let engine = toy_engine();
    let mut cluster = LocalCluster::spawn(2, &engine, &warm_cfg(0x510B)).expect("spawn fleet");
    cluster.enable_observer(FleetObserverConfig {
        interval: Duration::from_millis(20),
        slos: vec![SloSpec::new(
            "supply-floor",
            SloKind::SupplyRate {
                min_cots_per_sec: 1000.0,
            },
        )
        .with_windows(BurnWindows {
            fast: Duration::from_secs(1),
            slow: Duration::from_secs(3),
            clear_for: Duration::from_secs(1),
        })],
        ..FleetObserverConfig::default()
    });
    let handle = cluster.observer_handle().expect("observer running");

    // Outage-tolerant load: keeps pools draining so supply is
    // demand-driven, and rides the starvation on typed declines.
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let directory = cluster.directory();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut client = ClusterClient::connect(directory, "soak-load").expect("connect");
            client.set_failover_cooldown(Duration::from_millis(20));
            let mut unavailable_seen_any = false;
            while !stop.load(Ordering::SeqCst) {
                if client.request_cots(300).is_err() {
                    std::thread::sleep(Duration::from_millis(5));
                }
                unavailable_seen_any |= client.unavailable_seen() > 0;
            }
            unavailable_seen_any
        })
    };

    let state_of = |handle: &ironman_cluster::FleetHandle| {
        handle
            .alerts()
            .into_iter()
            .find(|a| a.slo == "supply-floor")
            .map(|a| a.state)
    };
    let await_state = |want: AlertState, deadline: Duration, why: &str| {
        let by = Instant::now() + deadline;
        while state_of(&handle) != Some(want) {
            assert!(
                Instant::now() < by,
                "{why}: stuck in {:?}, want {want:?}",
                state_of(&handle)
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // Healthy first: the alert must evaluate and stay quiet under load.
    let healthy_by = Instant::now() + Duration::from_secs(30);
    while state_of(&handle) != Some(AlertState::Inactive) {
        assert!(
            Instant::now() < healthy_by,
            "supply alert never evaluated on the healthy fleet"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Injected outage: both servers decline serving (control ops — the
    // observer's Stats scrapes — still answer). Demand stops draining
    // pools, extensions stop, supply collapses, the alert fires.
    for id in cluster.server_ids() {
        assert!(cluster.starve_server(id, Duration::from_secs(600)));
    }
    await_state(
        AlertState::Firing,
        Duration::from_secs(30),
        "starvation outage",
    );

    // Heal: declines lift, load drains pools again, supply recovers,
    // and the alert resolves after the hysteresis window.
    cluster.heal_all();
    await_state(AlertState::Resolved, Duration::from_secs(60), "heal");

    stop.store(true, Ordering::SeqCst);
    let worker_saw_unavailable = worker.join().expect("load worker");
    assert!(
        worker_saw_unavailable,
        "the load client never observed an Unavailable decline"
    );
    let unavailable_sent: u64 = cluster
        .server_ids()
        .iter()
        .map(|&id| cluster.server(id).expect("live").stats().unavailable_sent)
        .sum();
    assert!(unavailable_sent > 0, "servers never declined while starved");
    cluster.shutdown();
}

/// Invariant 4: a stuck subscriber (huge credit grant, never reads) is
/// evicted within the push write deadline while a healthy stream on the
/// same server delivers its full total undisturbed.
#[test]
fn stuck_subscriber_eviction_leaves_healthy_streams_undisturbed() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(1, &engine, &warm_cfg(0x5709)).expect("spawn fleet");
    let id = cluster.server_ids()[0];
    let server = cluster.server(id).expect("live server");
    server
        .service()
        .set_subscriber_write_timeout(Duration::from_millis(150));

    // The stuck subscriber, over the raw wire: a huge up-front credit
    // grant keeps the server pushing until the socket buffers fill and
    // the write deadline evicts it. Never reads a byte.
    let max = server.pool().max_request() as u64;
    let stream = TcpStream::connect(server.addr()).expect("connect raw");
    let mut raw = TcpTransport::from_stream(stream).expect("handshake");
    raw.send_bytes(
        Request::Subscribe {
            batch: max,
            credits: 10_000,
        }
        .encode(),
    )
    .expect("send subscribe");
    raw.flush().expect("flush subscribe");

    // A healthy stream on the same server, concurrent with the stuck
    // one, must deliver exactly its total.
    let mut client = ClusterClient::connect(cluster.directory(), "healthy-peer").expect("connect");
    let mut consumed = 0u64;
    let summary = client
        .stream_cots(500, 50, |chunk| consumed += chunk.len() as u64)
        .expect("healthy stream rides out the eviction");
    assert_eq!(summary.cots, 500);
    assert_eq!(consumed, 500, "healthy stream disturbed");

    let by = Instant::now() + Duration::from_secs(30);
    while server.stats().subscribers_evicted == 0 {
        assert!(
            Instant::now() < by,
            "stuck subscriber never evicted past the write deadline"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = server.stats();
    assert_eq!(
        stats.subscribers_evicted, 1,
        "exactly the stuck subscriber was evicted"
    );
    // Keep the raw handle alive until after the eviction was observed,
    // so the close is the server's doing, not ours.
    drop(raw);
    cluster.shutdown();
}
