//! Membership-churn smoke: a 3-server fleet under live one-shot +
//! streaming load survives one server being killed (the health checker
//! evicts it) and a replacement joining — **no client request returns an
//! error**, subscriptions resume with exact accounting, and `Stats`
//! shows the directory epoch advanced on every survivor. This is the
//! acceptance scenario of the dynamic-membership control plane, run by
//! `scripts/ci.sh`.

use ironman_cluster::{
    ClusterClient, ClusterServerConfig, HealthConfig, LocalCluster, WarmupConfig,
};
use ironman_core::{Backend, Engine};
use ironman_net::CotServiceConfig;
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn fleet_survives_kill_and_rejoin_under_load() {
    let engine = Engine::new(
        FerretConfig::new(FerretParams::toy()),
        Backend::ironman_default(),
    );
    let cfg = ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0xC4A0,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    };
    let mut cluster = LocalCluster::spawn(3, &engine, &cfg).expect("spawn fleet");
    // A single failed probe only suspects (a blip recovers); a dead
    // server is evicted within ~3 probe intervals.
    cluster.enable_health(HealthConfig {
        interval: Duration::from_millis(10),
        suspect_after: 1,
        evict_after: 3,
        ..HealthConfig::default()
    });
    let directory = cluster.directory();
    let epoch_before = directory.epoch();

    let stop = Arc::new(AtomicBool::new(false));
    // Two one-shot workers hammer the fleet for the whole churn window;
    // every request must succeed (failover + epoch resync are internal).
    let oneshot_workers: Vec<_> = (0..2)
        .map(|w| {
            let directory = Arc::clone(&directory);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = ClusterClient::connect(directory, &format!("churn-oneshot-{w}"))
                    .expect("connect");
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    for batch in client.request_cots(400).expect("one-shot under churn") {
                        batch.verify().expect("verified under churn");
                        served += batch.len() as u64;
                    }
                }
                served
            })
        })
        .collect();
    // One streaming worker runs a long subscription across the kill.
    let streamer = {
        let directory = Arc::clone(&directory);
        std::thread::spawn(move || {
            let mut client = ClusterClient::connect(directory, "churn-streamer").expect("connect");
            let total = 120_000u64;
            let mut seen = 0u64;
            let summary = client
                .stream_cots(total, 800, |batch| {
                    batch.verify().expect("stream chunk verified");
                    seen += batch.len() as u64;
                    // Throttle so the subscription is guaranteed to still
                    // be in flight when the kill lands.
                    std::thread::sleep(Duration::from_millis(1));
                })
                .expect("stream survives churn");
            assert_eq!(summary.cots, total, "stream accounting mismatch");
            assert_eq!(seen, total, "consumer saw a different total");
            total
        })
    };

    // Let the load build, then kill one server *without* telling the
    // directory — the health checker must notice and evict it.
    std::thread::sleep(Duration::from_millis(150));
    let victim = cluster.server_ids()[0];
    cluster.kill_server(victim);
    let evicted_by = Instant::now() + Duration::from_secs(20);
    while directory.snapshot().member(victim).is_some() {
        assert!(
            Instant::now() < evicted_by,
            "health checker never evicted the dead server"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // A replacement joins mid-load.
    let replacement = cluster.spawn_server().expect("replacement joins");
    std::thread::sleep(Duration::from_millis(150));

    stop.store(true, Ordering::SeqCst);
    let oneshot_total: u64 = oneshot_workers
        .into_iter()
        .map(|t| t.join().expect("one-shot worker"))
        .sum();
    let streamed = streamer.join().expect("streamer");
    assert!(oneshot_total > 0, "one-shot load never ran");
    assert_eq!(streamed, 120_000);

    // Let the health checker settle (every member healthy means no
    // further epoch movement) before reading the fleet-wide epoch.
    std::thread::sleep(Duration::from_millis(100));

    // Every survivor observed the advanced epoch (kill eviction + join,
    // at minimum two bumps past the baseline).
    let final_epoch = directory.epoch();
    assert!(
        final_epoch >= epoch_before + 2,
        "epoch must advance on eviction and join"
    );
    let mut observer =
        ClusterClient::connect(Arc::clone(&directory), "churn-observer").expect("connect");
    let mut survivors = 0;
    for (id, _, stats) in observer.stats_all() {
        let stats = stats.unwrap_or_else(|| panic!("survivor {id} unreachable"));
        assert_eq!(
            stats.directory_epoch, final_epoch,
            "survivor {id} reports a stale epoch"
        );
        survivors += 1;
    }
    assert_eq!(survivors, 3, "two originals plus the replacement");
    assert!(directory.snapshot().member(replacement).is_some());

    cluster.shutdown();
}
