//! Fleet telemetry end-to-end: a 3-server loopback fleet serving real
//! traffic, scraped into one [`FleetSnapshot`] whose merged latency
//! quantiles must bracket the per-server ones — the property that makes
//! the fleet-wide roll-up trustworthy for steering decisions.

use ironman_cluster::directory::ServerId;
use ironman_cluster::{
    observe, ClusterServerConfig, FleetObserverConfig, FleetSnapshot, LocalCluster,
    ServerObservation, WarmupConfig, WindowBaseline,
};
use ironman_net::{CotClient, CotServiceConfig, LatencyStats};
use ironman_telemetry::HistogramSnapshot;
use std::time::{Duration, Instant};

fn toy_engine() -> ironman_core::Engine {
    ironman_core::Engine::new(
        ironman_ot::ferret::FerretConfig::new(ironman_ot::params::FerretParams::toy()),
        ironman_core::Backend::ironman_default(),
    )
}

fn observed_cluster_cfg() -> ClusterServerConfig {
    ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0x0B5u64,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    }
}

/// Drives a few one-shot requests through every member directly, so
/// every server has request→first-byte (and extension) samples to
/// contribute to the scrape.
fn exercise_every_server(cluster: &LocalCluster) {
    let snapshot = cluster.directory().snapshot();
    for member in snapshot.members() {
        let mut client = CotClient::connect(member.addr, "observe-driver").expect("connect member");
        for _ in 0..4 {
            client.request_cots(48).expect("serve").verify().unwrap();
        }
    }
}

/// The merge-bounds property, per quantile: a merged quantile must lie
/// within `[min, max]` of the non-empty inputs' same quantile.
fn assert_merged_brackets(merged: &HistogramSnapshot, inputs: &[&HistogramSnapshot], what: &str) {
    let present: Vec<&&HistogramSnapshot> = inputs.iter().filter(|h| !h.is_empty()).collect();
    if present.is_empty() {
        assert!(
            merged.is_empty(),
            "{what}: merged samples from empty inputs"
        );
        return;
    }
    assert_eq!(
        merged.count(),
        present.iter().map(|h| h.count()).sum::<u64>(),
        "{what}: merged count must be the sum of the inputs'"
    );
    for q in [0.50, 0.90, 0.99, 0.999] {
        let qs: Vec<u64> = present.iter().map(|h| h.quantile(q)).collect();
        let (lo, hi) = (
            *qs.iter().min().expect("non-empty"),
            *qs.iter().max().expect("non-empty"),
        );
        let got = merged.quantile(q);
        assert!(
            (lo..=hi).contains(&got),
            "{what}: merged q{q} = {got} outside its inputs' span [{lo}, {hi}] ({qs:?})"
        );
    }
    assert_eq!(
        merged.max(),
        present.iter().map(|h| h.max()).max().expect("non-empty"),
        "{what}: merged max must be the largest input max"
    );
}

fn assert_latency_brackets(merged: &LatencyStats, per_server: &[&LatencyStats]) {
    let field = |f: fn(&LatencyStats) -> &HistogramSnapshot| -> Vec<&HistogramSnapshot> {
        per_server.iter().map(|l| f(l)).collect()
    };
    assert_merged_brackets(
        &merged.request_first_byte,
        &field(|l| &l.request_first_byte),
        "request_first_byte",
    );
    assert_merged_brackets(&merged.chunk_push, &field(|l| &l.chunk_push), "chunk_push");
    assert_merged_brackets(&merged.extension, &field(|l| &l.extension), "extension");
    assert_merged_brackets(&merged.stall, &field(|l| &l.stall), "stall");
}

#[test]
fn fleet_scrape_merges_and_merged_quantiles_bound_per_server_ones() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &observed_cluster_cfg()).expect("spawn fleet");
    exercise_every_server(&cluster);

    let directory = cluster.directory();
    let fleet = observe::scrape(&directory, Duration::from_millis(500));
    assert_eq!(fleet.epoch, directory.epoch());
    assert_eq!(
        fleet.servers.len(),
        3,
        "all three live members must be scraped"
    );

    // Under the telemetry no-op build the histograms are (correctly)
    // empty; the scrape shape above still holds, and the bracket checks
    // below degrade to asserting emptiness everywhere.
    let per_server: Vec<&LatencyStats> = fleet.servers.iter().map(|s| &s.latency).collect();
    let measuring = per_server.iter().any(|l| !l.request_first_byte.is_empty());
    if measuring {
        assert!(
            per_server.iter().all(|l| !l.request_first_byte.is_empty()),
            "every exercised server must have request latency samples"
        );
    }
    assert_latency_brackets(&fleet.latency, &per_server);

    // The scalar roll-ups agree with their inputs too.
    assert_eq!(
        fleet.available,
        fleet.servers.iter().map(|s| s.available).sum::<u64>()
    );
    cluster.shutdown();
}

#[test]
fn background_observer_publishes_snapshots_on_cadence() {
    let engine = toy_engine();
    let mut cluster = LocalCluster::spawn(3, &engine, &observed_cluster_cfg()).expect("spawn");
    exercise_every_server(&cluster);
    cluster.enable_observer(FleetObserverConfig {
        interval: Duration::from_millis(5),
        ..FleetObserverConfig::default()
    });

    // The observer must publish a complete fleet view within a few
    // sweeps — and keep it fresh (epoch tracks the directory).
    let deadline = Instant::now() + Duration::from_secs(30);
    let fleet = loop {
        assert!(
            Instant::now() < deadline,
            "observer never published a 3-server snapshot"
        );
        if let Some(snap) = cluster.observer().expect("enabled").latest() {
            if snap.servers.len() == 3 {
                break snap;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(fleet.epoch, cluster.directory().epoch());
    let per_server: Vec<&LatencyStats> = fleet.servers.iter().map(|s| &s.latency).collect();
    assert_latency_brackets(&fleet.latency, &per_server);

    // The cost of observing is itself observed: one scrape-latency
    // sample per completed sweep (empty only under the no-op build).
    let scrape = cluster.observer().expect("enabled").scrape_latency();
    let measuring = per_server.iter().any(|l| !l.request_first_byte.is_empty());
    if measuring {
        assert!(!scrape.is_empty(), "scrape latency must be recorded");
        assert!(scrape.p50() > 0);
    }

    // The v7 handle derives a windowed view from the retained series
    // (once a second sweep has landed).
    let handle = cluster.observer_handle().expect("enabled");
    while handle.series_len() < 2 {
        assert!(Instant::now() < deadline, "series never retained history");
        std::thread::sleep(Duration::from_millis(5));
    }
    let window = handle
        .window(Duration::from_secs(5))
        .expect("two scrapes retained");
    assert!(window.to_nanos > window.from_nanos);
    assert_eq!(window.servers.len(), 3);
    assert!(window.supply_cots_per_sec >= 0.0);
    cluster.shutdown();
}

const SEC: u64 = 1_000_000_000;

fn obs(id: u64, extensions: u64, served: u64, uptime: u64) -> ServerObservation {
    ServerObservation {
        id: ServerId(id),
        directory_epoch: 0,
        cots_served: served,
        extensions_run: extensions,
        cots_per_extension: 10,
        available: 0,
        pending_stream_cots: 0,
        shards: 1,
        uptime_nanos: uptime,
        subscribers_evicted: 0,
        unavailable_sent: 0,
        faults_injected: 0,
        latency: LatencyStats::default(),
    }
}

fn snapshot_at(at: u64, servers: Vec<ServerObservation>) -> FleetSnapshot {
    FleetSnapshot {
        at_nanos: at,
        epoch: 1,
        servers,
        ..FleetSnapshot::default()
    }
}

/// Membership churn inside a window: a server present in both snapshots
/// gets an exact delta, a fresh join degrades to a since-start average,
/// and a server gone from the later snapshot contributes no row —
/// never a synthesized zero, never a negative rate.
#[test]
fn windowed_delta_handles_absent_and_joined_members() {
    let earlier = snapshot_at(
        10 * SEC,
        vec![obs(1, 100, 1_000, 10 * SEC), obs(2, 40, 400, 10 * SEC)],
    );
    let later = snapshot_at(
        12 * SEC,
        vec![obs(2, 50, 500, 12 * SEC), obs(3, 6, 60, 3 * SEC)],
    );
    let window = later.delta(&earlier);
    assert_eq!(window.servers.len(), 2, "absent server 1 has no row");
    assert!(window.servers.iter().all(|s| s.id != ServerId(1)));

    let full = window
        .servers
        .iter()
        .find(|s| s.id == ServerId(2))
        .expect("server 2 windowed");
    assert_eq!(full.baseline, WindowBaseline::Full);
    assert_eq!(full.span_nanos, 2 * SEC);
    // Δ10 extensions × 10 COTs each over 2 s.
    assert!((full.supply_cots_per_sec - 50.0).abs() < 1e-9);
    assert!((full.served_cots_per_sec - 50.0).abs() < 1e-9);

    let joined = window
        .servers
        .iter()
        .find(|s| s.id == ServerId(3))
        .expect("server 3 windowed");
    assert_eq!(joined.baseline, WindowBaseline::Joined);
    assert_eq!(joined.span_nanos, 3 * SEC, "joined span = its uptime");
    // 6 extensions × 10 COTs over its 3 s of life.
    assert!((joined.supply_cots_per_sec - 20.0).abs() < 1e-9);

    assert!(
        (window.supply_cots_per_sec - (full.supply_cots_per_sec + joined.supply_cots_per_sec))
            .abs()
            < 1e-9,
        "fleet supply is the sum of the per-server rates"
    );
}

/// A restart (uptime goes down) must degrade to since-restart averages
/// instead of producing negative deltas from the reset counters.
#[test]
fn windowed_delta_detects_restart() {
    let earlier = snapshot_at(60 * SEC, vec![obs(7, 900, 9_000, 60 * SEC)]);
    // Counters went *down* and so did uptime: the server restarted
    // 4 s ago and has run 8 extensions since.
    let later = snapshot_at(62 * SEC, vec![obs(7, 8, 80, 4 * SEC)]);
    let window = later.delta(&earlier);
    let sw = &window.servers[0];
    assert_eq!(sw.baseline, WindowBaseline::Restarted);
    assert_eq!(sw.span_nanos, 4 * SEC);
    assert!((sw.supply_cots_per_sec - 20.0).abs() < 1e-9);
    assert!((sw.served_cots_per_sec - 20.0).abs() < 1e-9);
    assert!(sw.supply_cots_per_sec >= 0.0 && sw.served_cots_per_sec >= 0.0);
}

/// A zero-uptime joined server (scraped in its first instant) must not
/// divide by zero.
#[test]
fn windowed_delta_zero_span_is_zero_rate() {
    let earlier = snapshot_at(SEC, Vec::new());
    let later = snapshot_at(2 * SEC, vec![obs(9, 5, 50, 0)]);
    let window = later.delta(&earlier);
    let sw = &window.servers[0];
    assert_eq!(sw.baseline, WindowBaseline::Joined);
    assert_eq!(sw.supply_cots_per_sec, 0.0);
    assert_eq!(sw.served_cots_per_sec, 0.0);
    assert_eq!(sw.stall_ratio, 0.0);
}
