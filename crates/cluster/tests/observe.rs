//! Fleet telemetry end-to-end: a 3-server loopback fleet serving real
//! traffic, scraped into one [`FleetSnapshot`] whose merged latency
//! quantiles must bracket the per-server ones — the property that makes
//! the fleet-wide roll-up trustworthy for steering decisions.

use ironman_cluster::{
    observe, ClusterServerConfig, FleetObserverConfig, LocalCluster, WarmupConfig,
};
use ironman_net::{CotClient, CotServiceConfig, LatencyStats};
use ironman_telemetry::HistogramSnapshot;
use std::time::{Duration, Instant};

fn toy_engine() -> ironman_core::Engine {
    ironman_core::Engine::new(
        ironman_ot::ferret::FerretConfig::new(ironman_ot::params::FerretParams::toy()),
        ironman_core::Backend::ironman_default(),
    )
}

fn observed_cluster_cfg() -> ClusterServerConfig {
    ClusterServerConfig {
        service: CotServiceConfig {
            shards: 2,
            seed: 0x0B5u64,
            ..CotServiceConfig::default()
        },
        warmup: Some(WarmupConfig::default()),
    }
}

/// Drives a few one-shot requests through every member directly, so
/// every server has request→first-byte (and extension) samples to
/// contribute to the scrape.
fn exercise_every_server(cluster: &LocalCluster) {
    let snapshot = cluster.directory().snapshot();
    for member in snapshot.members() {
        let mut client = CotClient::connect(member.addr, "observe-driver").expect("connect member");
        for _ in 0..4 {
            client.request_cots(48).expect("serve").verify().unwrap();
        }
    }
}

/// The merge-bounds property, per quantile: a merged quantile must lie
/// within `[min, max]` of the non-empty inputs' same quantile.
fn assert_merged_brackets(merged: &HistogramSnapshot, inputs: &[&HistogramSnapshot], what: &str) {
    let present: Vec<&&HistogramSnapshot> = inputs.iter().filter(|h| !h.is_empty()).collect();
    if present.is_empty() {
        assert!(
            merged.is_empty(),
            "{what}: merged samples from empty inputs"
        );
        return;
    }
    assert_eq!(
        merged.count(),
        present.iter().map(|h| h.count()).sum::<u64>(),
        "{what}: merged count must be the sum of the inputs'"
    );
    for q in [0.50, 0.90, 0.99, 0.999] {
        let qs: Vec<u64> = present.iter().map(|h| h.quantile(q)).collect();
        let (lo, hi) = (
            *qs.iter().min().expect("non-empty"),
            *qs.iter().max().expect("non-empty"),
        );
        let got = merged.quantile(q);
        assert!(
            (lo..=hi).contains(&got),
            "{what}: merged q{q} = {got} outside its inputs' span [{lo}, {hi}] ({qs:?})"
        );
    }
    assert_eq!(
        merged.max(),
        present.iter().map(|h| h.max()).max().expect("non-empty"),
        "{what}: merged max must be the largest input max"
    );
}

fn assert_latency_brackets(merged: &LatencyStats, per_server: &[&LatencyStats]) {
    let field = |f: fn(&LatencyStats) -> &HistogramSnapshot| -> Vec<&HistogramSnapshot> {
        per_server.iter().map(|l| f(l)).collect()
    };
    assert_merged_brackets(
        &merged.request_first_byte,
        &field(|l| &l.request_first_byte),
        "request_first_byte",
    );
    assert_merged_brackets(&merged.chunk_push, &field(|l| &l.chunk_push), "chunk_push");
    assert_merged_brackets(&merged.extension, &field(|l| &l.extension), "extension");
    assert_merged_brackets(&merged.stall, &field(|l| &l.stall), "stall");
}

#[test]
fn fleet_scrape_merges_and_merged_quantiles_bound_per_server_ones() {
    let engine = toy_engine();
    let cluster = LocalCluster::spawn(3, &engine, &observed_cluster_cfg()).expect("spawn fleet");
    exercise_every_server(&cluster);

    let directory = cluster.directory();
    let fleet = observe::scrape(&directory, Duration::from_millis(500));
    assert_eq!(fleet.epoch, directory.epoch());
    assert_eq!(
        fleet.servers.len(),
        3,
        "all three live members must be scraped"
    );

    // Under the telemetry no-op build the histograms are (correctly)
    // empty; the scrape shape above still holds, and the bracket checks
    // below degrade to asserting emptiness everywhere.
    let per_server: Vec<&LatencyStats> = fleet.servers.iter().map(|s| &s.latency).collect();
    let measuring = per_server.iter().any(|l| !l.request_first_byte.is_empty());
    if measuring {
        assert!(
            per_server.iter().all(|l| !l.request_first_byte.is_empty()),
            "every exercised server must have request latency samples"
        );
    }
    assert_latency_brackets(&fleet.latency, &per_server);

    // The scalar roll-ups agree with their inputs too.
    assert_eq!(
        fleet.available,
        fleet.servers.iter().map(|s| s.available).sum::<u64>()
    );
    cluster.shutdown();
}

#[test]
fn background_observer_publishes_snapshots_on_cadence() {
    let engine = toy_engine();
    let mut cluster = LocalCluster::spawn(3, &engine, &observed_cluster_cfg()).expect("spawn");
    exercise_every_server(&cluster);
    cluster.enable_observer(FleetObserverConfig {
        interval: Duration::from_millis(5),
        ..FleetObserverConfig::default()
    });

    // The observer must publish a complete fleet view within a few
    // sweeps — and keep it fresh (epoch tracks the directory).
    let deadline = Instant::now() + Duration::from_secs(30);
    let fleet = loop {
        assert!(
            Instant::now() < deadline,
            "observer never published a 3-server snapshot"
        );
        if let Some(snap) = cluster.observer().expect("enabled").latest() {
            if snap.servers.len() == 3 {
                break snap;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    };
    assert_eq!(fleet.epoch, cluster.directory().epoch());
    let per_server: Vec<&LatencyStats> = fleet.servers.iter().map(|s| &s.latency).collect();
    assert_latency_brackets(&fleet.latency, &per_server);

    // The cost of observing is itself observed: one scrape-latency
    // sample per completed sweep (empty only under the no-op build).
    let scrape = cluster.observer().expect("enabled").scrape_latency();
    let measuring = per_server.iter().any(|l| !l.request_first_byte.is_empty());
    if measuring {
        assert!(!scrape.is_empty(), "scrape latency must be recorded");
        assert!(scrape.p50() > 0);
    }
    cluster.shutdown();
}
