//! Declarative SLOs with multi-window burn-rate alerting.
//!
//! An operator states objectives over the fleet's *windowed* telemetry —
//! "chunk-push p99 stays under 2 ms", "the fleet supplies at least 1 M
//! COTs/s", "stall time stays under 5% of wall time" — and the
//! [`SloEngine`] evaluates them against the observer's retained
//! [`TimeSeries`] of [`FleetSnapshot`]s after every scrape.
//!
//! Evaluation is multi-window burn-rate (the SRE alerting shape): each
//! objective is checked over a *fast* window and a *slow* window
//! simultaneously. A violation on the fast window alone arms the alert
//! ([`AlertState::Pending`]) — something is burning right now, but it
//! might be a spike. The slow window agreeing promotes it to
//! [`AlertState::Firing`] — the burn is sustained and an operator should
//! look. Both windows staying clear for a hysteresis interval resolves
//! it ([`AlertState::Resolved`]) — a flapping signal cannot re-fire its
//! way through the clear period. The result: short spikes never page,
//! real burns page within the fast window, recovery is announced once.
//!
//! [`TimeSeries`]: ironman_telemetry::TimeSeries
//! [`FleetSnapshot`]: crate::FleetSnapshot

use crate::observe::FleetSnapshot;
use ironman_telemetry::TimeSeries;
use std::sync::Arc;
use std::time::Duration;

/// The fast/slow evaluation windows and the hysteresis interval of one
/// SLO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurnWindows {
    /// The fast window: violation here arms the alert. Defaults to 5 s.
    pub fast: Duration,
    /// The slow window: violation here *and* on the fast window fires
    /// the alert. Defaults to 60 s.
    pub slow: Duration,
    /// How long both windows must stay clear before a firing alert
    /// resolves. Defaults to the fast window.
    pub clear_for: Duration,
}

impl Default for BurnWindows {
    fn default() -> Self {
        BurnWindows {
            fast: Duration::from_secs(5),
            slow: Duration::from_secs(60),
            clear_for: Duration::from_secs(5),
        }
    }
}

/// What an SLO bounds, and where the bound sits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SloKind {
    /// Windowed p99 of the fleet's chunk-push latency must stay at or
    /// under `max_nanos`. Not evaluated (never burns) over windows with
    /// no chunk pushes — an idle fleet has no latency to violate.
    ChunkPushP99 {
        /// The p99 bound in nanoseconds.
        max_nanos: u64,
    },
    /// The fleet's windowed COT supply rate (extensions × outputs per
    /// extension, per second) must stay at or above `min_cots_per_sec`.
    SupplyRate {
        /// The supply floor in correlations per second.
        min_cots_per_sec: f64,
    },
    /// The fleet's windowed stall ratio (consumer-stall time per second
    /// of wall time) must stay at or under `max_ratio`.
    StallRatio {
        /// The stall-ratio ceiling (1.0 = one shard's worth of
        /// continuous stalling).
        max_ratio: f64,
    },
}

impl SloKind {
    /// The configured bound, as a number (for display/export).
    pub fn threshold(&self) -> f64 {
        match *self {
            SloKind::ChunkPushP99 { max_nanos } => max_nanos as f64,
            SloKind::SupplyRate { min_cots_per_sec } => min_cots_per_sec,
            SloKind::StallRatio { max_ratio } => max_ratio,
        }
    }

    /// The windowed value this objective is judged on, or `None` when
    /// the window carries no evaluable signal.
    fn measure(&self, series: &TimeSeries<Arc<FleetSnapshot>>, window: Duration) -> Option<f64> {
        let latest = series.latest()?;
        let window_nanos = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        let base = series.baseline(latest.at_nanos, window_nanos)?;
        if base.at_nanos >= latest.at_nanos {
            return None;
        }
        let w = latest.value.delta(&base.value);
        match *self {
            SloKind::ChunkPushP99 { .. } => {
                if w.latency.chunk_push.is_empty() {
                    None
                } else {
                    Some(w.latency.chunk_push.p99() as f64)
                }
            }
            SloKind::SupplyRate { .. } => Some(w.supply_cots_per_sec),
            SloKind::StallRatio { .. } => Some(w.stall_ratio),
        }
    }

    /// Whether `value` violates the objective.
    fn violated(&self, value: f64) -> bool {
        match *self {
            SloKind::ChunkPushP99 { max_nanos } => value > max_nanos as f64,
            SloKind::SupplyRate { min_cots_per_sec } => value < min_cots_per_sec,
            SloKind::StallRatio { max_ratio } => value > max_ratio,
        }
    }
}

/// One declared objective: a name (stable label for alerts and metric
/// export), the bound, and its evaluation windows.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// Stable display/export name (`supply-floor`, `push-p99`, ...).
    pub name: String,
    /// The objective.
    pub kind: SloKind,
    /// Fast/slow windows and hysteresis.
    pub windows: BurnWindows,
}

impl SloSpec {
    /// A named objective with default windows (5 s fast / 60 s slow).
    pub fn new(name: impl Into<String>, kind: SloKind) -> SloSpec {
        SloSpec {
            name: name.into(),
            kind,
            windows: BurnWindows::default(),
        }
    }

    /// The same objective with custom windows.
    pub fn with_windows(mut self, windows: BurnWindows) -> SloSpec {
        self.windows = windows;
        self
    }
}

/// The lifecycle of one alert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// No burn observed.
    Inactive,
    /// The fast window is burning; the slow window has not (yet)
    /// agreed. Spikes die here.
    Pending,
    /// Both windows burning: a sustained violation.
    Firing,
    /// Previously firing; both windows have stayed clear through the
    /// hysteresis interval. Sticky until the next burn (so "it fired
    /// and recovered" remains visible), when it re-arms through
    /// [`AlertState::Pending`].
    Resolved,
}

impl AlertState {
    /// Stable numeric encoding for metric export
    /// (0 inactive, 1 pending, 2 firing, 3 resolved).
    pub fn as_gauge(&self) -> u8 {
        match self {
            AlertState::Inactive => 0,
            AlertState::Pending => 1,
            AlertState::Firing => 2,
            AlertState::Resolved => 3,
        }
    }

    /// Display name (`inactive`/`pending`/`firing`/`resolved`).
    pub fn name(&self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// One SLO's current evaluation, published after every scrape.
#[derive(Clone, Debug)]
pub struct AlertView {
    /// The spec's stable name.
    pub slo: String,
    /// Current lifecycle state.
    pub state: AlertState,
    /// When the current state was entered (monotonic nanoseconds).
    pub since_nanos: u64,
    /// Whether the fast window currently violates the objective.
    pub fast_burning: bool,
    /// Whether the slow window currently violates the objective.
    pub slow_burning: bool,
    /// The measured value over the fast window (`None`: no signal).
    pub fast_value: Option<f64>,
    /// The measured value over the slow window (`None`: no signal).
    pub slow_value: Option<f64>,
    /// The configured bound.
    pub threshold: f64,
}

struct Entry {
    spec: SloSpec,
    state: AlertState,
    since: u64,
    /// While firing: when both windows last went clear (hysteresis
    /// anchor); `None` while still burning.
    clear_since: Option<u64>,
}

/// Evaluates a set of [`SloSpec`]s against the observer's retained
/// series, advancing each alert's state machine per evaluation. Owned
/// by the observer's scrape loop; read via the published
/// [`AlertView`]s.
pub struct SloEngine {
    entries: Vec<Entry>,
}

impl SloEngine {
    /// An engine over `specs` (all alerts start
    /// [`AlertState::Inactive`]).
    pub fn new(specs: Vec<SloSpec>) -> SloEngine {
        SloEngine {
            entries: specs
                .into_iter()
                .map(|spec| Entry {
                    spec,
                    state: AlertState::Inactive,
                    since: 0,
                    clear_since: None,
                })
                .collect(),
        }
    }

    /// Whether no SLOs are configured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Evaluates every objective over the retained series at `now`
    /// (the latest scrape's timestamp) and advances the state machines.
    pub fn evaluate(
        &mut self,
        series: &TimeSeries<Arc<FleetSnapshot>>,
        now: u64,
    ) -> Vec<AlertView> {
        self.entries
            .iter_mut()
            .map(|entry| {
                let fast_value = entry.spec.kind.measure(series, entry.spec.windows.fast);
                let slow_value = entry.spec.kind.measure(series, entry.spec.windows.slow);
                let fast_burning = fast_value.is_some_and(|v| entry.spec.kind.violated(v));
                let slow_burning = slow_value.is_some_and(|v| entry.spec.kind.violated(v));
                let next = match entry.state {
                    AlertState::Inactive | AlertState::Resolved if fast_burning => {
                        AlertState::Pending
                    }
                    AlertState::Pending if fast_burning && slow_burning => AlertState::Firing,
                    AlertState::Pending if !fast_burning => AlertState::Inactive,
                    AlertState::Firing if !fast_burning && !slow_burning => {
                        // Hysteresis: both windows must stay clear for
                        // `clear_for` before the alert resolves.
                        let clear_anchor = *entry.clear_since.get_or_insert(now);
                        let clear_nanos = u64::try_from(entry.spec.windows.clear_for.as_nanos())
                            .unwrap_or(u64::MAX);
                        if now.saturating_sub(clear_anchor) >= clear_nanos {
                            AlertState::Resolved
                        } else {
                            AlertState::Firing
                        }
                    }
                    AlertState::Firing => {
                        // Still (or again) burning: restart the clear
                        // clock.
                        entry.clear_since = None;
                        AlertState::Firing
                    }
                    state => state,
                };
                if next != entry.state {
                    entry.state = next;
                    entry.since = now;
                    if next != AlertState::Firing {
                        entry.clear_since = None;
                    }
                }
                AlertView {
                    slo: entry.spec.name.clone(),
                    state: entry.state,
                    since_nanos: entry.since,
                    fast_burning,
                    slow_burning,
                    fast_value,
                    slow_value,
                    threshold: entry.spec.kind.threshold(),
                }
            })
            .collect()
    }
}

impl std::fmt::Debug for SloEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SloEngine")
            .field("slos", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::ServerId;
    use crate::observe::ServerObservation;
    use ironman_net::LatencyStats;

    const SEC: u64 = 1_000_000_000;

    /// A synthetic snapshot supplying `rate` COTs/s cumulatively up to
    /// time `at` (single server, 1 COT per extension for easy math).
    fn supply_snapshot(at: u64, cumulative_cots: u64) -> Arc<FleetSnapshot> {
        Arc::new(FleetSnapshot {
            at_nanos: at,
            epoch: 1,
            servers: vec![ServerObservation {
                id: ServerId(1),
                directory_epoch: 0,
                cots_served: 0,
                extensions_run: cumulative_cots,
                cots_per_extension: 1,
                available: 0,
                pending_stream_cots: 0,
                shards: 1,
                uptime_nanos: at,
                subscribers_evicted: 0,
                unavailable_sent: 0,
                faults_injected: 0,
                latency: LatencyStats::default(),
            }],
            latency: LatencyStats::default(),
            available: 0,
            pending_stream_cots: 0,
        })
    }

    fn engine_with_floor(min: f64) -> SloEngine {
        SloEngine::new(vec![SloSpec::new(
            "supply-floor",
            SloKind::SupplyRate {
                min_cots_per_sec: min,
            },
        )
        .with_windows(BurnWindows {
            fast: Duration::from_secs(2),
            slow: Duration::from_secs(6),
            clear_for: Duration::from_secs(2),
        })])
    }

    /// Drives the full lifecycle: healthy → burn → pending → firing →
    /// heal → hysteresis → resolved → re-burn re-arms.
    #[test]
    fn alert_lifecycle() {
        let mut series = TimeSeries::new(64);
        let mut engine = engine_with_floor(100.0);
        let mut cum = 0u64;
        let mut at = 0u64;
        let mut step =
            |series: &mut TimeSeries<Arc<FleetSnapshot>>, engine: &mut SloEngine, rate: u64| {
                at += SEC;
                cum += rate;
                series.push(at, supply_snapshot(at, cum));
                let views = engine.evaluate(series, at);
                views[0].state
            };
        // Healthy supply: stays inactive.
        for _ in 0..8 {
            assert_eq!(step(&mut series, &mut engine, 200), AlertState::Inactive);
        }
        // Supply collapses. The first bad second still shares the fast
        // window with a good one (rate lands exactly on the floor); the
        // second leaves the 2 s window all-burn -> pending.
        step(&mut series, &mut engine, 0);
        let s = step(&mut series, &mut engine, 0);
        assert_eq!(s, AlertState::Pending);
        // Slow window (6 s) catches up -> firing.
        let mut state = s;
        for _ in 0..8 {
            state = step(&mut series, &mut engine, 0);
        }
        assert_eq!(state, AlertState::Firing);
        // Supply heals; hysteresis holds firing until both windows are
        // clear for clear_for.
        let mut seen_firing_while_clear = false;
        for _ in 0..12 {
            state = step(&mut series, &mut engine, 200);
            if state == AlertState::Firing {
                seen_firing_while_clear = true;
            }
            if state == AlertState::Resolved {
                break;
            }
        }
        assert!(seen_firing_while_clear, "hysteresis never held");
        assert_eq!(state, AlertState::Resolved);
        // A new burn re-arms from resolved.
        for _ in 0..3 {
            state = step(&mut series, &mut engine, 0);
        }
        assert!(
            state == AlertState::Pending || state == AlertState::Firing,
            "resolved alert must re-arm, got {state:?}"
        );
    }

    /// A one-evaluation spike arms pending but never fires, then goes
    /// back to inactive.
    #[test]
    fn spike_does_not_fire() {
        let mut series = TimeSeries::new(64);
        // Slow window long enough that one bad second cannot drag it
        // under the floor.
        let mut engine = SloEngine::new(vec![SloSpec::new(
            "supply-floor",
            SloKind::SupplyRate {
                min_cots_per_sec: 100.0,
            },
        )
        .with_windows(BurnWindows {
            fast: Duration::from_secs(1),
            slow: Duration::from_secs(30),
            clear_for: Duration::from_secs(2),
        })]);
        let mut cum = 0u64;
        let mut at = 0u64;
        let mut states = Vec::new();
        for rate in [300u64, 300, 300, 300, 300, 0, 300, 300, 300] {
            at += SEC;
            cum += rate;
            series.push(at, supply_snapshot(at, cum));
            states.push(engine.evaluate(&series, at)[0].state);
        }
        assert!(states.contains(&AlertState::Pending), "{states:?}");
        assert!(!states.contains(&AlertState::Firing), "{states:?}");
        assert_eq!(*states.last().unwrap(), AlertState::Inactive);
    }

    /// An idle fleet (no chunk pushes) never burns a latency SLO.
    #[test]
    fn latency_slo_needs_signal() {
        let mut series = TimeSeries::new(16);
        let mut engine = SloEngine::new(vec![SloSpec::new(
            "push-p99",
            SloKind::ChunkPushP99 { max_nanos: 1 },
        )]);
        for t in 1..6u64 {
            series.push(t * SEC, supply_snapshot(t * SEC, 0));
            let views = engine.evaluate(&series, t * SEC);
            assert_eq!(views[0].state, AlertState::Inactive);
            assert_eq!(views[0].fast_value, None);
        }
    }
}
