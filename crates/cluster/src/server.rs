//! Cluster-side server composition: a [`CotService`] attached to the
//! shared [`Directory`] (so it can fence stale epochs and answer
//! membership syncs), plus the [`LocalCluster`] helper that runs a whole
//! *dynamic* fleet in one process for tests, benches, and demos —
//! servers join, drain, die, and get replaced while clients keep
//! serving.

use crate::directory::{Directory, ServerId};
use crate::exporter::{FleetExporter, FleetExporterConfig};
use crate::health::{HealthChecker, HealthConfig};
use crate::observe::{FleetHandle, FleetObserver, FleetObserverConfig};
use crate::warmup::{FleetWarmup, FleetWarmupConfig, Warmup, WarmupConfig};
use ironman_core::{Engine, SharedCotPool};
use ironman_net::{CotService, CotServiceConfig, DirectoryView, FaultPlan, ServiceStats};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one [`ClusterServer`].
#[derive(Clone, Debug, Default)]
pub struct ClusterServerConfig {
    /// The underlying service configuration (shards, seed).
    pub service: CotServiceConfig,
    /// Per-server warm-up refiller; `None` serves cold (extensions
    /// inline on demand) unless a fleet-level [`FleetWarmup`] steers
    /// refills from outside — the preferred fleet shape, since it
    /// balances refill capacity across servers by demand.
    pub warmup: Option<WarmupConfig>,
}

/// One member of the fleet: a running COT service (directory-attached
/// when spawned with one) with an optional per-server warm-up refiller.
#[derive(Debug)]
pub struct ClusterServer {
    service: CotService,
    warmup: Option<Warmup>,
}

impl ClusterServer {
    /// Binds `addr` and starts the service (and, if configured, its
    /// warm-up refiller). With a directory attached, the service fences
    /// stale-epoch sessions and answers `Sync` with membership deltas;
    /// registering the server *in* that directory is the caller's move
    /// (bind first, then [`Directory::join`] with the bound address).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        engine: &Engine,
        cfg: ClusterServerConfig,
        directory: Option<Arc<Directory>>,
    ) -> std::io::Result<ClusterServer> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(cfg.service.build_pool(engine));
        let view = directory.map(|d| d as Arc<dyn DirectoryView>);
        let service = CotService::serve_on_with(listener, Arc::clone(&pool), view);
        let warmup = cfg.warmup.map(|wcfg| Warmup::spawn(pool, wcfg));
        Ok(ClusterServer { service, warmup })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.service.addr()
    }

    /// The pool backing this server.
    pub fn pool(&self) -> &Arc<SharedCotPool> {
        self.service.pool()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// The underlying running service — the chaos and degradation hooks
    /// (`set_faults`, `set_unavailable_for`, subscriber write deadlines)
    /// live there.
    pub fn service(&self) -> &CotService {
        &self.service
    }

    /// Stops the warm-up refiller (if any) and the service; returns the
    /// final statistics.
    pub fn shutdown(self) -> ServiceStats {
        if let Some(warmup) = self.warmup {
            warmup.stop();
        }
        self.service.shutdown()
    }
}

/// A whole dynamic fleet on loopback: N [`ClusterServer`]s (each an
/// independent FERRET dealer with its own `Δ` stream) registered in one
/// shared [`Directory`], plus optional health checking and fleet-level
/// warm-up. Servers are keyed by their stable [`ServerId`]; killing one
/// and joining a replacement is the membership-churn scenario the epoch
/// fence exists for.
#[derive(Debug)]
pub struct LocalCluster {
    directory: Arc<Directory>,
    servers: HashMap<ServerId, ClusterServer>,
    engine: Engine,
    cfg: ClusterServerConfig,
    /// Servers spawned so far (drives per-server seed derivation, so a
    /// replacement never shares a correlation stream with any earlier
    /// server).
    spawned: u64,
    health: Option<HealthChecker>,
    fleet_warmup: Option<FleetWarmup>,
    observer: Option<FleetObserver>,
    exporter: Option<FleetExporter>,
}

impl LocalCluster {
    /// Spawns `n` servers on ephemeral loopback ports, all joined into a
    /// fresh shared directory (epoch `n` afterwards). Server `i` uses
    /// `cfg.service.seed` offset by a per-spawn multiplier, so no two
    /// servers — original or replacement — share a correlation stream.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn(n: usize, engine: &Engine, cfg: &ClusterServerConfig) -> std::io::Result<Self> {
        assert!(n > 0, "cluster needs at least one server");
        let mut cluster = LocalCluster {
            directory: Arc::new(Directory::new()),
            servers: HashMap::new(),
            engine: engine.clone(),
            cfg: cfg.clone(),
            spawned: 0,
            health: None,
            fleet_warmup: None,
            observer: None,
            exporter: None,
        };
        for _ in 0..n {
            cluster.spawn_server()?;
        }
        Ok(cluster)
    }

    /// Spawns one more server and joins it into the directory (an epoch
    /// bump every client observes) — the "replacement joins" half of
    /// membership churn. Returns its stable id.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_server(&mut self) -> std::io::Result<ServerId> {
        let mut server_cfg = self.cfg.clone();
        server_cfg.service.seed = self
            .cfg
            .service
            .seed
            .wrapping_add(0x517c_c1b7_2722_0a95u64.wrapping_mul(self.spawned + 1));
        self.spawned += 1;
        let server = ClusterServer::spawn(
            "127.0.0.1:0",
            &self.engine,
            server_cfg,
            Some(Arc::clone(&self.directory)),
        )?;
        let id = self
            .directory
            .join(server.addr(), &format!("local-{}", self.spawned - 1));
        self.servers.insert(id, server);
        Ok(id)
    }

    /// The shared control-plane directory (clients, the health checker,
    /// and the fleet warm-up controller all hold the same one).
    pub fn directory(&self) -> Arc<Directory> {
        Arc::clone(&self.directory)
    }

    /// Stable ids of the currently running servers, sorted.
    pub fn server_ids(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The running server with id `id`, if any.
    pub fn server(&self, id: ServerId) -> Option<&ClusterServer> {
        self.servers.get(&id)
    }

    /// Starts a health checker over the fleet's directory: probe
    /// failures mark members suspect and then evict them, bumping the
    /// epoch clients re-resolve on.
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        self.health
            .get_or_insert_with(|| HealthChecker::spawn(Arc::clone(&self.directory), cfg));
    }

    /// Starts the fleet-level warm-up controller (the demand-steered
    /// replacement for per-server refillers; see [`FleetWarmup`]).
    pub fn enable_fleet_warmup(&mut self, cfg: FleetWarmupConfig) {
        self.fleet_warmup
            .get_or_insert_with(|| FleetWarmup::spawn(Arc::clone(&self.directory), cfg));
    }

    /// Starts the fleet telemetry scraper (see [`FleetObserver`]): every
    /// member's v6 `Stats` latency histograms merged into one
    /// [`crate::FleetSnapshot`] on the configured cadence, readable via
    /// [`LocalCluster::observer`].
    pub fn enable_observer(&mut self, cfg: FleetObserverConfig) {
        self.observer
            .get_or_insert_with(|| FleetObserver::spawn(Arc::clone(&self.directory), cfg));
    }

    /// The running fleet observer, if [`LocalCluster::enable_observer`]
    /// started one.
    pub fn observer(&self) -> Option<&FleetObserver> {
        self.observer.as_ref()
    }

    /// A cloneable read handle onto the observer's retained state
    /// (snapshots, windows, alerts), if the observer is running.
    pub fn observer_handle(&self) -> Option<FleetHandle> {
        self.observer.as_ref().map(FleetObserver::handle)
    }

    /// Starts the scrape exporter on an ephemeral loopback port, serving
    /// `/metrics` and `/fleet` from the observer's retained state.
    /// Requires [`LocalCluster::enable_observer`] first; returns the
    /// bound address.
    ///
    /// # Errors
    ///
    /// Bind failures, and `InvalidInput` when no observer is running.
    pub fn enable_exporter(&mut self, cfg: FleetExporterConfig) -> std::io::Result<SocketAddr> {
        if let Some(exporter) = &self.exporter {
            return Ok(exporter.addr());
        }
        let handle = self.observer_handle().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "enable_observer before enable_exporter",
            )
        })?;
        let exporter = FleetExporter::spawn("127.0.0.1:0", handle, cfg)?;
        let addr = exporter.addr();
        self.exporter = Some(exporter);
        Ok(addr)
    }

    /// The running exporter's address, if one was started.
    pub fn exporter_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(FleetExporter::addr)
    }

    /// Kills a server **without telling the directory** — crash
    /// semantics: clients discover it through connect failures and the
    /// health checker (if running) evicts it. Returns its final
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if no server with `id` is running.
    pub fn kill_server(&mut self, id: ServerId) -> ServiceStats {
        self.servers
            .remove(&id)
            .expect("server not running")
            .shutdown()
    }

    /// Gracefully removes a server: [`Directory::drain`] first (no new
    /// homes), then shutdown, then [`Directory::leave`]. Returns its
    /// final statistics.
    ///
    /// # Panics
    ///
    /// Panics if no server with `id` is running.
    pub fn remove_server(&mut self, id: ServerId) -> ServiceStats {
        self.directory.drain(id);
        let stats = self
            .servers
            .remove(&id)
            .expect("server not running")
            .shutdown();
        self.directory.leave(id);
        stats
    }

    /// Marks a server draining (it keeps serving existing sessions but
    /// receives no new homes). The server keeps running until
    /// [`LocalCluster::kill_server`]/[`LocalCluster::remove_server`].
    pub fn drain_server(&self, id: ServerId) {
        self.directory.drain(id);
    }

    /// Arms a seeded fault plan on server `id`'s data-path sessions (see
    /// `ironman-net`'s `FaultInjector`). Returns `false` if the server
    /// is not running.
    pub fn inject_faults(&self, id: ServerId, plan: FaultPlan) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().set_faults(plan);
            true
        })
    }

    /// Disarms fault injection on server `id` (in-flight injected
    /// stalls unwind on their own). Returns `false` if not running.
    pub fn heal_faults(&self, id: ServerId) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().clear_faults();
            true
        })
    }

    /// Puts server `id` into graceful degradation for `window`: serving
    /// requests are declined with `Unavailable { retry_after_ms }`
    /// (control ops still answer). Returns `false` if not running.
    pub fn starve_server(&self, id: ServerId, window: Duration) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().set_unavailable_for(window);
            true
        })
    }

    /// Lifts a [`LocalCluster::starve_server`] window early. Returns
    /// `false` if the server is not running.
    pub fn unstarve_server(&self, id: ServerId) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().clear_unavailable();
            true
        })
    }

    /// Heals every running server: disarms fault injection and lifts
    /// degradation windows fleet-wide (the chaos-drill "all clear").
    pub fn heal_all(&self) {
        for server in self.servers.values() {
            server.service().clear_faults();
            server.service().clear_unavailable();
        }
    }

    /// Blocks until every running server's pool holds at least
    /// `per_server` buffered correlations, or `timeout` passes. Returns
    /// whether the fleet got warm.
    pub fn wait_warm(&self, per_server: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .servers
                .values()
                .all(|s| s.pool().available() >= per_server)
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Shuts the whole fleet down (controllers first, then every
    /// running server); returns the final statistics of the servers
    /// that were still live.
    pub fn shutdown(mut self) -> Vec<ServiceStats> {
        if let Some(exporter) = self.exporter.take() {
            exporter.stop();
        }
        if let Some(health) = self.health.take() {
            health.stop();
        }
        if let Some(warmup) = self.fleet_warmup.take() {
            warmup.stop();
        }
        if let Some(observer) = self.observer.take() {
            observer.stop();
        }
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                self.servers
                    .remove(&id)
                    .expect("listed id is running")
                    .shutdown()
            })
            .collect()
    }
}
