//! Cluster-side server composition: a [`CotService`] attached to the
//! shared [`Directory`] (so it can fence stale epochs and answer
//! membership syncs), plus the [`LocalCluster`] helper that runs a whole
//! *dynamic* fleet in one process for tests, benches, and demos —
//! servers join, drain, die, and get replaced while clients keep
//! serving.

use crate::directory::{Directory, ServerId};
use crate::exporter::{FleetExporter, FleetExporterConfig};
use crate::gossip::{GossipIdentity, Gossiper, GossiperConfig};
use crate::health::{HealthChecker, HealthConfig};
use crate::observe::{FleetHandle, FleetObserver, FleetObserverConfig};
use crate::warmup::{FleetWarmup, FleetWarmupConfig, Warmup, WarmupConfig};
use ironman_core::{Engine, SharedCotPool};
use ironman_net::{CotService, CotServiceConfig, DirectoryView, FaultPlan, ServiceStats};
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one [`ClusterServer`].
#[derive(Clone, Debug, Default)]
pub struct ClusterServerConfig {
    /// The underlying service configuration (shards, seed).
    pub service: CotServiceConfig,
    /// Per-server warm-up refiller; `None` serves cold (extensions
    /// inline on demand) unless a fleet-level [`FleetWarmup`] steers
    /// refills from outside — the preferred fleet shape, since it
    /// balances refill capacity across servers by demand.
    pub warmup: Option<WarmupConfig>,
}

/// One member of the fleet: a running COT service (directory-attached
/// when spawned with one) with an optional per-server warm-up refiller.
#[derive(Debug)]
pub struct ClusterServer {
    service: CotService,
    warmup: Option<Warmup>,
}

impl ClusterServer {
    /// Binds `addr` and starts the service (and, if configured, its
    /// warm-up refiller). With a directory attached, the service fences
    /// stale-epoch sessions and answers `Sync` with membership deltas;
    /// registering the server *in* that directory is the caller's move
    /// (bind first, then [`Directory::join`] with the bound address).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        engine: &Engine,
        cfg: ClusterServerConfig,
        directory: Option<Arc<Directory>>,
    ) -> std::io::Result<ClusterServer> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(cfg.service.build_pool(engine));
        let view = directory.map(|d| d as Arc<dyn DirectoryView>);
        let service = CotService::serve_on_with(listener, Arc::clone(&pool), view);
        let warmup = cfg.warmup.map(|wcfg| Warmup::spawn(pool, wcfg));
        Ok(ClusterServer { service, warmup })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.service.addr()
    }

    /// The pool backing this server.
    pub fn pool(&self) -> &Arc<SharedCotPool> {
        self.service.pool()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// The underlying running service — the chaos and degradation hooks
    /// (`set_faults`, `set_unavailable_for`, subscriber write deadlines)
    /// live there.
    pub fn service(&self) -> &CotService {
        &self.service
    }

    /// Tells the service which directory member it is (see
    /// [`CotService::set_self_id`]) — required for the v9 drain-handoff
    /// announcement on replicated servers.
    pub fn set_self_id(&self, id: ServerId) {
        self.service.set_self_id(id.0);
    }

    /// Stops the warm-up refiller (if any) and the service; returns the
    /// final statistics.
    pub fn shutdown(self) -> ServiceStats {
        if let Some(warmup) = self.warmup {
            warmup.stop();
        }
        self.service.shutdown()
    }
}

/// A whole dynamic fleet on loopback: N [`ClusterServer`]s (each an
/// independent FERRET dealer with its own `Δ` stream) registered in one
/// shared [`Directory`], plus optional health checking and fleet-level
/// warm-up. Servers are keyed by their stable [`ServerId`]; killing one
/// and joining a replacement is the membership-churn scenario the epoch
/// fence exists for.
#[derive(Debug)]
pub struct LocalCluster {
    directory: Arc<Directory>,
    servers: HashMap<ServerId, ClusterServer>,
    engine: Engine,
    cfg: ClusterServerConfig,
    /// Servers spawned so far (drives per-server seed derivation, so a
    /// replacement never shares a correlation stream with any earlier
    /// server).
    spawned: u64,
    health: Vec<HealthChecker>,
    fleet_warmup: Option<FleetWarmup>,
    observer: Option<FleetObserver>,
    exporter: Option<FleetExporter>,
    /// Replicated mode (v9): each server's own directory replica, keyed
    /// by id. Empty = shared-directory mode (`self.directory` is the one
    /// truth); non-empty = `self.directory` is a pull-only observer view
    /// converged by its own gossiper.
    replicas: HashMap<ServerId, Arc<Directory>>,
    /// Running anti-entropy loops, one per replica. A killed server's
    /// gossiper is stopped with it — a dead server must not keep
    /// re-announcing itself from beyond the grave.
    gossipers: HashMap<ServerId, Gossiper>,
    /// The observer view's own pull loop (replicated mode).
    view_gossiper: Option<Gossiper>,
    /// Gossip rendezvous: every server address ever spawned in
    /// replicated mode (static seeds survive mutual eviction).
    seeds: Vec<SocketAddr>,
    /// Gossip/standby cadence template for replicated spawns.
    gossip_cfg: GossiperConfig,
}

impl LocalCluster {
    /// Spawns `n` servers on ephemeral loopback ports, all joined into a
    /// fresh shared directory (epoch `n` afterwards). Server `i` uses
    /// `cfg.service.seed` offset by a per-spawn multiplier, so no two
    /// servers — original or replacement — share a correlation stream.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn(n: usize, engine: &Engine, cfg: &ClusterServerConfig) -> std::io::Result<Self> {
        assert!(n > 0, "cluster needs at least one server");
        let mut cluster = Self::empty(engine, cfg);
        for _ in 0..n {
            cluster.spawn_server()?;
        }
        Ok(cluster)
    }

    /// Like [`LocalCluster::spawn`], but **replicated** (v9): each
    /// server carries its own [`Directory`] replica, announced through
    /// [`Directory::join_as`] and converged by a per-server [`Gossiper`]
    /// (anti-entropy pulls against every peer, with all server addresses
    /// — including later joiners' — as rendezvous seeds). `self.directory()` then returns a pull-only
    /// *observer view* — a directory converged by its own gossiper but
    /// never written locally — which clients route on exactly as they
    /// would the shared one. Membership mutations issued through the
    /// cluster handle ([`LocalCluster::drain_server`] etc.) are applied
    /// to the lease holder's replica and spread by gossip.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn_replicated(
        n: usize,
        engine: &Engine,
        cfg: &ClusterServerConfig,
        gossip: GossiperConfig,
    ) -> std::io::Result<Self> {
        assert!(n > 0, "cluster needs at least one server");
        let mut cluster = Self::empty(engine, cfg);
        cluster.gossip_cfg = gossip;
        for _ in 0..n {
            cluster.spawn_replicated_server()?;
        }
        // The observer view: converges through pulls from the seeds, so
        // the coordinator (and clients bootstrapping off it) sees the
        // merged fleet without being a member.
        cluster.view_gossiper = Some(Gossiper::spawn(
            Arc::clone(&cluster.directory),
            GossiperConfig {
                identity: None,
                seeds: cluster.seeds.clone(),
                standby: false,
                ..cluster.gossip_cfg.clone()
            },
        ));
        Ok(cluster)
    }

    fn empty(engine: &Engine, cfg: &ClusterServerConfig) -> Self {
        LocalCluster {
            directory: Arc::new(Directory::new()),
            servers: HashMap::new(),
            engine: engine.clone(),
            cfg: cfg.clone(),
            spawned: 0,
            health: Vec::new(),
            fleet_warmup: None,
            observer: None,
            exporter: None,
            replicas: HashMap::new(),
            gossipers: HashMap::new(),
            view_gossiper: None,
            seeds: Vec::new(),
            gossip_cfg: GossiperConfig::default(),
        }
    }

    /// Whether this cluster runs per-server directory replicas (v9)
    /// rather than one shared directory.
    pub fn is_replicated(&self) -> bool {
        !self.replicas.is_empty()
    }

    /// The directory membership mutations should be issued against: in
    /// shared mode the one directory; in replicated mode the lease
    /// holder's replica (gossip spreads the write). Falls back to any
    /// replica when the observer view has not converged yet.
    pub fn control_directory(&self) -> Arc<Directory> {
        if self.replicas.is_empty() {
            return Arc::clone(&self.directory);
        }
        self.directory
            .lease_holder()
            .and_then(|holder| self.replicas.get(&holder))
            .or_else(|| {
                let mut ids: Vec<&ServerId> = self.replicas.keys().collect();
                ids.sort_unstable();
                ids.first().and_then(|id| self.replicas.get(id))
            })
            .map(Arc::clone)
            .expect("replicated cluster has at least one replica")
    }

    /// Server `id`'s own directory replica (replicated mode only).
    pub fn replica(&self, id: ServerId) -> Option<Arc<Directory>> {
        self.replicas.get(&id).map(Arc::clone)
    }

    fn next_server_cfg(&mut self) -> ClusterServerConfig {
        let mut server_cfg = self.cfg.clone();
        server_cfg.service.seed = self
            .cfg
            .service
            .seed
            .wrapping_add(0x517c_c1b7_2722_0a95u64.wrapping_mul(self.spawned + 1));
        self.spawned += 1;
        server_cfg
    }

    /// Spawns one more server in replicated mode: a fresh replica that
    /// self-announces via `join_as` and converges through its gossiper.
    /// Returns its stable id (`spawned - 1`, operator-assigned — gossip
    /// has no central id allocator).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_replicated_server(&mut self) -> std::io::Result<ServerId> {
        let server_cfg = self.next_server_cfg();
        let id = ServerId(self.spawned - 1);
        let name = format!("local-{}", id.0);
        let replica = Arc::new(Directory::new_replica(id));
        let server = ClusterServer::spawn(
            "127.0.0.1:0",
            &self.engine,
            server_cfg,
            Some(Arc::clone(&replica)),
        )?;
        server.set_self_id(id);
        let addr = server.addr();
        replica.join_as(id, addr, &name, 1);
        self.seeds.push(addr);
        // Introduce the newcomer to every gossiper already running
        // (members and the observer view). Pull-only anti-entropy never
        // discovers a peer nobody points at: without this the first
        // server's gossiper — whose seed snapshot predates the rest of
        // the fleet — would pull from no one and its replica would never
        // converge, and late joiners would stay invisible to incumbents.
        for gossiper in self.gossipers.values() {
            gossiper.add_seed(addr);
        }
        if let Some(view) = &self.view_gossiper {
            view.add_seed(addr);
        }
        self.gossipers.insert(
            id,
            Gossiper::spawn(
                Arc::clone(&replica),
                GossiperConfig {
                    identity: Some(GossipIdentity {
                        id,
                        addr,
                        name,
                        weight: 1,
                    }),
                    seeds: self.seeds.clone(),
                    ..self.gossip_cfg.clone()
                },
            ),
        );
        self.replicas.insert(id, replica);
        self.servers.insert(id, server);
        Ok(id)
    }

    /// Spawns one more server and joins it into the directory (an epoch
    /// bump every client observes) — the "replacement joins" half of
    /// membership churn. Returns its stable id.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn_server(&mut self) -> std::io::Result<ServerId> {
        assert!(
            self.replicas.is_empty(),
            "use spawn_replicated_server on a replicated cluster"
        );
        let server_cfg = self.next_server_cfg();
        let server = ClusterServer::spawn(
            "127.0.0.1:0",
            &self.engine,
            server_cfg,
            Some(Arc::clone(&self.directory)),
        )?;
        let id = self
            .directory
            .join(server.addr(), &format!("local-{}", self.spawned - 1));
        self.servers.insert(id, server);
        Ok(id)
    }

    /// The shared control-plane directory (clients, the health checker,
    /// and the fleet warm-up controller all hold the same one).
    pub fn directory(&self) -> Arc<Directory> {
        Arc::clone(&self.directory)
    }

    /// Stable ids of the currently running servers, sorted.
    pub fn server_ids(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// The running server with id `id`, if any.
    pub fn server(&self, id: ServerId) -> Option<&ClusterServer> {
        self.servers.get(&id)
    }

    /// Starts health checking: in shared mode one checker over the
    /// fleet directory; in replicated mode one checker *per replica*,
    /// each gated so only the lease holder evicts (suspect marks stay
    /// ungated — they are how the lease expires). Idempotent.
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        if !self.health.is_empty() {
            return;
        }
        if self.replicas.is_empty() {
            self.health
                .push(HealthChecker::spawn(Arc::clone(&self.directory), cfg));
            return;
        }
        for (&id, replica) in &self.replicas {
            self.health.push(HealthChecker::spawn(
                Arc::clone(replica),
                HealthConfig {
                    self_id: Some(id),
                    ..cfg
                },
            ));
        }
    }

    /// Starts the fleet-level warm-up controller (the demand-steered
    /// replacement for per-server refillers; see [`FleetWarmup`]).
    pub fn enable_fleet_warmup(&mut self, cfg: FleetWarmupConfig) {
        self.fleet_warmup
            .get_or_insert_with(|| FleetWarmup::spawn(Arc::clone(&self.directory), cfg));
    }

    /// Starts the fleet telemetry scraper (see [`FleetObserver`]): every
    /// member's v6 `Stats` latency histograms merged into one
    /// [`crate::FleetSnapshot`] on the configured cadence, readable via
    /// [`LocalCluster::observer`].
    pub fn enable_observer(&mut self, cfg: FleetObserverConfig) {
        self.observer
            .get_or_insert_with(|| FleetObserver::spawn(Arc::clone(&self.directory), cfg));
    }

    /// The running fleet observer, if [`LocalCluster::enable_observer`]
    /// started one.
    pub fn observer(&self) -> Option<&FleetObserver> {
        self.observer.as_ref()
    }

    /// A cloneable read handle onto the observer's retained state
    /// (snapshots, windows, alerts), if the observer is running.
    pub fn observer_handle(&self) -> Option<FleetHandle> {
        self.observer.as_ref().map(FleetObserver::handle)
    }

    /// Starts the scrape exporter on an ephemeral loopback port, serving
    /// `/metrics` and `/fleet` from the observer's retained state.
    /// Requires [`LocalCluster::enable_observer`] first; returns the
    /// bound address.
    ///
    /// # Errors
    ///
    /// Bind failures, and `InvalidInput` when no observer is running.
    pub fn enable_exporter(&mut self, cfg: FleetExporterConfig) -> std::io::Result<SocketAddr> {
        if let Some(exporter) = &self.exporter {
            return Ok(exporter.addr());
        }
        let handle = self.observer_handle().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "enable_observer before enable_exporter",
            )
        })?;
        let exporter = FleetExporter::spawn("127.0.0.1:0", handle, cfg)?;
        let addr = exporter.addr();
        self.exporter = Some(exporter);
        Ok(addr)
    }

    /// The running exporter's address, if one was started.
    pub fn exporter_addr(&self) -> Option<SocketAddr> {
        self.exporter.as_ref().map(FleetExporter::addr)
    }

    /// Kills a server **without telling the directory** — crash
    /// semantics: clients discover it through connect failures and the
    /// health checker (if running) evicts it. Returns its final
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if no server with `id` is running.
    pub fn kill_server(&mut self, id: ServerId) -> ServiceStats {
        // In replicated mode the dead server's gossiper dies with it:
        // its job was announcing and converging that replica, and a
        // ghost that keeps re-announcing an evicted member would fight
        // the health checker forever. The replica itself stays in the
        // map so post-mortem inspection (tests asserting convergence)
        // still works.
        if let Some(gossiper) = self.gossipers.remove(&id) {
            gossiper.stop();
        }
        self.servers
            .remove(&id)
            .expect("server not running")
            .shutdown()
    }

    /// Gracefully removes a server: [`Directory::drain`] first (no new
    /// homes), then shutdown, then [`Directory::leave`]. Returns its
    /// final statistics.
    ///
    /// # Panics
    ///
    /// Panics if no server with `id` is running.
    pub fn remove_server(&mut self, id: ServerId) -> ServiceStats {
        self.control_directory().drain(id);
        if let Some(gossiper) = self.gossipers.remove(&id) {
            gossiper.stop();
        }
        let stats = self
            .servers
            .remove(&id)
            .expect("server not running")
            .shutdown();
        self.replicas.remove(&id);
        self.control_directory().leave(id);
        stats
    }

    /// Marks a server draining (it keeps serving existing sessions but
    /// receives no new homes). The server keeps running until
    /// [`LocalCluster::kill_server`]/[`LocalCluster::remove_server`].
    /// In replicated mode the drain lands on the lease holder's replica
    /// and gossip spreads it — including to the drained server itself,
    /// whose push loops then announce `DrainHandoff` in-stream.
    pub fn drain_server(&self, id: ServerId) {
        self.control_directory().drain(id);
    }

    /// Arms a seeded fault plan on server `id`'s data-path sessions (see
    /// `ironman-net`'s `FaultInjector`). Returns `false` if the server
    /// is not running.
    pub fn inject_faults(&self, id: ServerId, plan: FaultPlan) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().set_faults(plan);
            true
        })
    }

    /// Disarms fault injection on server `id` (in-flight injected
    /// stalls unwind on their own). Returns `false` if not running.
    pub fn heal_faults(&self, id: ServerId) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().clear_faults();
            true
        })
    }

    /// Puts server `id` into graceful degradation for `window`: serving
    /// requests are declined with `Unavailable { retry_after_ms }`
    /// (control ops still answer). Returns `false` if not running.
    pub fn starve_server(&self, id: ServerId, window: Duration) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().set_unavailable_for(window);
            true
        })
    }

    /// Lifts a [`LocalCluster::starve_server`] window early. Returns
    /// `false` if the server is not running.
    pub fn unstarve_server(&self, id: ServerId) -> bool {
        self.servers.get(&id).is_some_and(|s| {
            s.service().clear_unavailable();
            true
        })
    }

    /// Heals every running server: disarms fault injection and lifts
    /// degradation windows fleet-wide (the chaos-drill "all clear").
    pub fn heal_all(&self) {
        for server in self.servers.values() {
            server.service().clear_faults();
            server.service().clear_unavailable();
        }
    }

    /// Blocks until every running server's pool holds at least
    /// `per_server` buffered correlations, or `timeout` passes. Returns
    /// whether the fleet got warm.
    pub fn wait_warm(&self, per_server: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .servers
                .values()
                .all(|s| s.pool().available() >= per_server)
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Shuts the whole fleet down (controllers first, then every
    /// running server); returns the final statistics of the servers
    /// that were still live.
    pub fn shutdown(mut self) -> Vec<ServiceStats> {
        if let Some(exporter) = self.exporter.take() {
            exporter.stop();
        }
        for health in self.health.drain(..) {
            health.stop();
        }
        if let Some(gossiper) = self.view_gossiper.take() {
            gossiper.stop();
        }
        for (_, gossiper) in self.gossipers.drain() {
            gossiper.stop();
        }
        if let Some(warmup) = self.fleet_warmup.take() {
            warmup.stop();
        }
        if let Some(observer) = self.observer.take() {
            observer.stop();
        }
        let mut ids: Vec<ServerId> = self.servers.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(|id| {
                self.servers
                    .remove(&id)
                    .expect("listed id is running")
                    .shutdown()
            })
            .collect()
    }
}
