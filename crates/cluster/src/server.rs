//! Cluster-side server composition: a [`CotService`] plus its [`Warmup`]
//! refiller, and the [`LocalCluster`] helper that spins a whole fleet in
//! one process for tests, benches, and demos.

use crate::directory::{ClusterDirectory, ServerEntry};
use crate::warmup::{Warmup, WarmupConfig};
use ironman_core::{Engine, SharedCotPool};
use ironman_net::{CotService, CotServiceConfig, ServiceStats};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of one [`ClusterServer`].
#[derive(Clone, Debug, Default)]
pub struct ClusterServerConfig {
    /// The underlying service configuration (shards, seed).
    pub service: CotServiceConfig,
    /// Warm-up refiller; `None` serves cold (extensions inline on
    /// demand), the PR-1 behavior.
    pub warmup: Option<WarmupConfig>,
}

/// One member of the fleet: a running COT service with an optional
/// background warm-up refiller over its pool.
#[derive(Debug)]
pub struct ClusterServer {
    service: CotService,
    warmup: Option<Warmup>,
}

impl ClusterServer {
    /// Binds `addr` and starts the service (and, if configured, its
    /// warm-up refiller).
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        engine: &Engine,
        cfg: ClusterServerConfig,
    ) -> std::io::Result<ClusterServer> {
        let listener = TcpListener::bind(addr)?;
        let pool = Arc::new(cfg.service.build_pool(engine));
        let service = CotService::serve_on(listener, Arc::clone(&pool));
        let warmup = cfg.warmup.map(|wcfg| Warmup::spawn(pool, wcfg));
        Ok(ClusterServer { service, warmup })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.service.addr()
    }

    /// The pool backing this server.
    pub fn pool(&self) -> &Arc<SharedCotPool> {
        self.service.pool()
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.service.stats()
    }

    /// Stops the warm-up refiller (if any) and the service; returns the
    /// final statistics.
    pub fn shutdown(self) -> ServiceStats {
        if let Some(warmup) = self.warmup {
            warmup.stop();
        }
        self.service.shutdown()
    }
}

/// A whole fleet on loopback: N [`ClusterServer`]s with per-server seeds
/// (each server is an independent FERRET dealer with its own `Δ` stream)
/// and the matching [`ClusterDirectory`].
#[derive(Debug)]
pub struct LocalCluster {
    /// Slot `i` is directory index `i` for the fleet's whole lifetime; a
    /// shut-down server leaves a `None` behind so later indices stay
    /// valid (failover tests kill servers by directory index).
    servers: Vec<Option<ClusterServer>>,
    entries: Vec<ServerEntry>,
}

impl LocalCluster {
    /// Spawns `n` servers on ephemeral loopback ports. Server `i` uses
    /// `cfg.service.seed` offset by `i`, so no two servers share a
    /// correlation stream.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn spawn(n: usize, engine: &Engine, cfg: &ClusterServerConfig) -> std::io::Result<Self> {
        assert!(n > 0, "cluster needs at least one server");
        let servers = (0..n)
            .map(|i| {
                let mut server_cfg = cfg.clone();
                server_cfg.service.seed = cfg
                    .service
                    .seed
                    .wrapping_add(0x517c_c1b7_2722_0a95u64.wrapping_mul(i as u64 + 1));
                ClusterServer::spawn("127.0.0.1:0", engine, server_cfg).map(Some)
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        let entries = servers
            .iter()
            .enumerate()
            .map(|(i, s)| ServerEntry {
                addr: s.as_ref().expect("just spawned").addr(),
                name: format!("local-{i}"),
            })
            .collect();
        Ok(LocalCluster { servers, entries })
    }

    /// The directory describing this fleet. Indices are stable: a server
    /// shut down via [`LocalCluster::shutdown_server`] keeps its entry
    /// (clients discover it is dead by failing to connect — the failover
    /// scenario).
    pub fn directory(&self) -> ClusterDirectory {
        ClusterDirectory::new(self.entries.clone())
    }

    /// The individual servers, by directory index (`None` where one has
    /// been shut down).
    pub fn servers(&self) -> &[Option<ClusterServer>] {
        &self.servers
    }

    /// Shuts down one server by directory index (for failover tests);
    /// returns its final statistics. Other indices remain valid.
    ///
    /// # Panics
    ///
    /// Panics if the server at `idx` was already shut down.
    pub fn shutdown_server(&mut self, idx: usize) -> ServiceStats {
        self.servers[idx]
            .take()
            .expect("server already shut down")
            .shutdown()
    }

    /// Blocks until every live server's pool holds at least `per_server`
    /// buffered correlations, or `timeout` passes. Returns whether the
    /// fleet got warm.
    pub fn wait_warm(&self, per_server: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self
                .servers
                .iter()
                .flatten()
                .all(|s| s.pool().available() >= per_server)
            {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Shuts the whole fleet down; returns final statistics of the
    /// servers that were still live.
    pub fn shutdown(self) -> Vec<ServiceStats> {
        self.servers
            .into_iter()
            .flatten()
            .map(ClusterServer::shutdown)
            .collect()
    }
}
