//! Fleet observability: scraping every member's `Stats` telemetry,
//! merging it into one model-ready [`FleetSnapshot`], retaining a
//! bounded time series of those snapshots, and deriving *windowed*
//! views — rates and quantiles over the last few seconds instead of
//! process lifetime.
//!
//! The serving layer records latency distributions locally (lock-free
//! histograms in each server's pool shards and serve paths — see
//! `ironman-net`'s *Telemetry (v6)* docs); this module is the roll-up:
//! a [`FleetObserver`] thread rides the health prober's cadence, pulls
//! each reachable member's `Stats` reply over a cached session, and
//! merges the per-server [`LatencyStats`] into one fleet-wide view. The
//! merge is exact at the bucket level, so a fleet-wide p99 read from the
//! snapshot carries the same ≤6.25% bucket error as a single server's —
//! and a merged quantile never leaves the range its inputs span, which
//! is what makes the roll-up trustworthy for steering decisions.
//!
//! Cumulative snapshots answer "how much ever"; the retained
//! [`TimeSeries`] and [`FleetSnapshot::delta`] answer "how fast now":
//! pairing the latest snapshot with a baseline near a window start
//! yields a [`FleetWindow`] of per-server supply/serve rates, stall
//! ratios, and windowed latency distributions. Restarts are detected
//! through the v7 `uptime_nanos` field (a later scrape with a smaller
//! uptime proves the counters reset), and members absent from the
//! baseline (fresh joins, or unreachable at that scrape) degrade to
//! since-start averages — rates never go negative.
//!
//! Unreachable members are *absent* from a snapshot, not zeroed: a
//! scrape reports what it saw, and the health checker owns deciding what
//! a silent member means.
//!
//! Scrape cadence carries ±jitter so a large fleet's observers don't
//! synchronize into a thundering herd against one server.

use crate::background::BackgroundLoop;
use crate::directory::{Directory, Member, MemberState, ServerId};
use crate::slo::{AlertView, SloEngine, SloSpec};
use ironman_net::{CotClient, LatencyStats, EPOCH_UNAWARE};
use ironman_telemetry::{now_nanos, Histogram, HistogramSnapshot, Stopwatch, TimeSeries};
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a [`FleetObserver`].
#[derive(Clone, Debug)]
pub struct FleetObserverConfig {
    /// Pause between scrape sweeps. Defaults to the health prober's
    /// cadence, so the fleet view is as fresh as the fleet's liveness
    /// view.
    pub interval: Duration,
    /// Per-step timeout for the observer's server sessions (connect and
    /// each `Stats` round trip): a blackholed member costs one timeout,
    /// never an OS-default connect stall.
    pub timeout: Duration,
    /// Relative scrape-interval jitter (`0.10` = ±10%). Each sweep's
    /// pause is drawn uniformly from `interval · [1−jitter, 1+jitter)`,
    /// so many observers started together drift apart instead of
    /// scraping every server in lockstep.
    pub jitter: f64,
    /// Snapshots retained for windowed derivation. At the default 25 ms
    /// cadence, 2048 points cover ≈51 s of history — enough for a 5 s
    /// fast window exactly and a 60 s slow window honestly shortened.
    pub retain: usize,
    /// SLO specifications evaluated against the retained series after
    /// every sweep (empty: no alerting).
    pub slos: Vec<SloSpec>,
}

impl Default for FleetObserverConfig {
    fn default() -> Self {
        FleetObserverConfig {
            interval: Duration::from_millis(25),
            timeout: Duration::from_millis(500),
            jitter: 0.10,
            retain: 2048,
            slos: Vec::new(),
        }
    }
}

/// One member's contribution to a [`FleetSnapshot`].
#[derive(Clone, Debug)]
pub struct ServerObservation {
    /// The member's stable server id.
    pub id: ServerId,
    /// Correlations this server has handed out since start.
    pub cots_served: u64,
    /// FERRET extensions this server has run since start (all shards).
    pub extensions_run: u64,
    /// Usable correlations one extension yields on this server (the
    /// advertised `max_request`) — the factor turning an extension rate
    /// into a COT supply rate.
    pub cots_per_extension: u64,
    /// Correlations currently buffered across this server's shards.
    pub available: u64,
    /// This server's streamed-demand backlog (promised, unpushed).
    pub pending_stream_cots: u64,
    /// Pool shard count.
    pub shards: u64,
    /// Monotonic nanoseconds since the server's service constructed
    /// (wire v7). A later scrape reporting a *smaller* uptime proves a
    /// restart — the signal windowed derivation keys on.
    pub uptime_nanos: u64,
    /// Stuck streaming subscribers this server evicted for blowing the
    /// push write deadline (wire v8).
    pub subscribers_evicted: u64,
    /// `Unavailable { retry_after_ms }` declines this server sent while
    /// degraded (wire v8).
    pub unavailable_sent: u64,
    /// Faults the server's injector has fired into its own data path
    /// (wire v8; nonzero only under chaos drills).
    pub faults_injected: u64,
    /// The server's own directory epoch at scrape time (v9: each server
    /// carries a replica, so members can disagree transiently — the
    /// spread across a snapshot's servers is the fleet's gossip lag).
    pub directory_epoch: u64,
    /// The server's service-wide latency distributions (its own merge
    /// over its shards).
    pub latency: LatencyStats,
}

/// A point-in-time roll-up of the whole fleet's telemetry — the
/// model-ready shape: per-server observations plus their fleet-wide
/// merge, ready for a capacity model or steering policy to consume
/// without touching any server again.
#[derive(Clone, Debug, Default)]
pub struct FleetSnapshot {
    /// When the scrape completed, on the process-wide monotonic clock
    /// ([`ironman_telemetry::now_nanos`]).
    pub at_nanos: u64,
    /// The directory epoch the scrape ran under.
    pub epoch: u64,
    /// Every member scraped successfully this pass, in membership order
    /// (unreachable members are absent, not zeroed).
    pub servers: Vec<ServerObservation>,
    /// The fleet-wide merge of every scraped server's latency
    /// distributions. Merged quantiles are bounded by the per-server
    /// ones they roll up (see the module docs).
    pub latency: LatencyStats,
    /// Sum of scraped servers' buffered correlations.
    pub available: u64,
    /// Sum of scraped servers' streamed-demand backlogs.
    pub pending_stream_cots: u64,
}

/// How a [`ServerWindow`]'s baseline was established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowBaseline {
    /// The server appeared in both snapshots with monotone counters:
    /// rates are exact deltas over the window span.
    Full,
    /// The server's uptime went *down* between the snapshots — it
    /// restarted. Counters are cumulative since the restart, so rates
    /// degrade to since-restart averages (span = the new uptime).
    Restarted,
    /// The server was absent from the earlier snapshot (a fresh join,
    /// or unreachable at that scrape). Rates degrade to since-start
    /// averages over its reported uptime.
    Joined,
}

/// One server's windowed derivation inside a [`FleetWindow`].
#[derive(Clone, Debug)]
pub struct ServerWindow {
    /// The member's stable server id.
    pub id: ServerId,
    /// How the baseline was established (exact delta vs. degraded).
    pub baseline: WindowBaseline,
    /// The span the rates below actually cover, in nanoseconds (the
    /// window for [`WindowBaseline::Full`]; the uptime otherwise).
    pub span_nanos: u64,
    /// Extension *supply* rate: correlations produced per second
    /// (`Δextensions_run × cots_per_extension / span`).
    pub supply_cots_per_sec: f64,
    /// Serving rate: correlations handed to clients per second.
    pub served_cots_per_sec: f64,
    /// Consumer-stall time per second of wall time (`Δstall.sum /
    /// span`; can exceed 1.0 when several shards stall concurrently).
    pub stall_ratio: f64,
    /// Windowed latency distributions (monotone-checked deltas; falls
    /// back to since-restart cumulative on reset).
    pub latency: LatencyStats,
}

/// The fleet over one window: per-server windowed rates plus their
/// fleet-wide merge — what the SLO engine and the exporter read.
#[derive(Clone, Debug, Default)]
pub struct FleetWindow {
    /// Baseline scrape time (monotonic nanoseconds).
    pub from_nanos: u64,
    /// Later scrape time.
    pub to_nanos: u64,
    /// Per-server windowed derivations, for every server present in the
    /// *later* snapshot. Servers absent from the later snapshot
    /// (unreachable or gone) have no row: a window reports what was
    /// observed, never synthesizes zeros.
    pub servers: Vec<ServerWindow>,
    /// Fleet supply rate: sum of the per-server supply rates.
    pub supply_cots_per_sec: f64,
    /// Fleet serving rate: sum of the per-server serving rates.
    pub served_cots_per_sec: f64,
    /// Fleet stall ratio: total windowed stall time over total span
    /// (the per-server ratios weighted by their spans).
    pub stall_ratio: f64,
    /// The merge of the per-server windowed latency distributions.
    pub latency: LatencyStats,
}

impl FleetSnapshot {
    /// The observation for server `id`, if it was reachable this scrape.
    pub fn server(&self, id: ServerId) -> Option<&ServerObservation> {
        self.servers.iter().find(|s| s.id == id)
    }

    /// The windowed view between `earlier` and `self`: per-server rate
    /// and latency derivation with restart/join degradation (see
    /// [`WindowBaseline`]). `self` should be the later snapshot; the
    /// span is clamped at zero if it is not.
    pub fn delta(&self, earlier: &FleetSnapshot) -> FleetWindow {
        let interval = self.at_nanos.saturating_sub(earlier.at_nanos);
        let mut window = FleetWindow {
            from_nanos: earlier.at_nanos,
            to_nanos: self.at_nanos,
            ..FleetWindow::default()
        };
        let mut stall_nanos_total = 0u64;
        let mut span_total = 0u64;
        for obs in &self.servers {
            let server = Self::server_window(obs, earlier.server(obs.id), interval);
            window.supply_cots_per_sec += server.supply_cots_per_sec;
            window.served_cots_per_sec += server.served_cots_per_sec;
            stall_nanos_total += server.latency.stall.sum();
            span_total += server.span_nanos;
            window.latency.merge(&server.latency);
            window.servers.push(server);
        }
        if span_total > 0 {
            window.stall_ratio = stall_nanos_total as f64 / span_total as f64;
        }
        window
    }

    fn server_window(
        obs: &ServerObservation,
        earlier: Option<&ServerObservation>,
        interval: u64,
    ) -> ServerWindow {
        // Exact delta only when the earlier scrape saw this server *and*
        // its uptime still precedes ours (monotone counters). Otherwise
        // the counters are cumulative since (re)start: use them whole
        // over the uptime — a correct average, never a negative rate.
        let (baseline, span, d_ext, d_served, latency) = match earlier {
            Some(e) if obs.uptime_nanos >= e.uptime_nanos => (
                WindowBaseline::Full,
                interval,
                obs.extensions_run.saturating_sub(e.extensions_run),
                obs.cots_served.saturating_sub(e.cots_served),
                obs.latency.delta(&e.latency),
            ),
            Some(_) => (
                WindowBaseline::Restarted,
                obs.uptime_nanos,
                obs.extensions_run,
                obs.cots_served,
                obs.latency.clone(),
            ),
            None => (
                WindowBaseline::Joined,
                obs.uptime_nanos,
                obs.extensions_run,
                obs.cots_served,
                obs.latency.clone(),
            ),
        };
        let per_sec = |count: u64| {
            if span == 0 {
                0.0
            } else {
                count as f64 * 1e9 / span as f64
            }
        };
        ServerWindow {
            id: obs.id,
            baseline,
            span_nanos: span,
            supply_cots_per_sec: per_sec(d_ext.saturating_mul(obs.cots_per_extension)),
            served_cots_per_sec: per_sec(d_served),
            stall_ratio: if span == 0 {
                0.0
            } else {
                latency.stall.sum() as f64 / span as f64
            },
            latency,
        }
    }
}

/// One fleet scrape over fresh sessions: poll every routable member's
/// `Stats` and merge. The background [`FleetObserver`] keeps sessions
/// cached across sweeps; this free function is the one-shot form for
/// tests and benches.
pub fn scrape(directory: &Directory, timeout: Duration) -> FleetSnapshot {
    let mut sessions = HashMap::new();
    scrape_with(directory, timeout, &mut sessions)
}

/// The shared scrape body: cached sessions in, [`FleetSnapshot`] out.
fn scrape_with(
    directory: &Directory,
    timeout: Duration,
    sessions: &mut HashMap<ServerId, CotClient>,
) -> FleetSnapshot {
    let snapshot = directory.snapshot();
    sessions.retain(|id, _| snapshot.member(*id).is_some());
    let mut fleet = FleetSnapshot {
        epoch: snapshot.epoch(),
        ..FleetSnapshot::default()
    };
    for member in snapshot.members() {
        // Suspect members are skipped outright rather than re-dialed
        // every sweep — the same discipline as the warm-up controller;
        // the health checker owns deciding their fate.
        if member.state == MemberState::Suspect {
            sessions.remove(&member.id);
            continue;
        }
        let client = match sessions.entry(member.id) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                match CotClient::connect_timeout(
                    member.addr,
                    "fleet-observer",
                    EPOCH_UNAWARE,
                    timeout,
                ) {
                    Ok(c) => v.insert(c),
                    Err(_) => continue,
                }
            }
        };
        let cots_per_extension = client.max_request();
        let stats = match client.stats() {
            Ok(s) => s,
            Err(_) => {
                sessions.remove(&member.id);
                continue;
            }
        };
        fleet.latency.merge(&stats.latency);
        fleet.available += stats.available;
        fleet.pending_stream_cots += stats.pending_stream_cots;
        fleet.servers.push(ServerObservation {
            id: member.id,
            cots_served: stats.cots_served,
            extensions_run: stats.extensions_run,
            cots_per_extension,
            available: stats.available,
            pending_stream_cots: stats.pending_stream_cots,
            shards: stats.shards,
            uptime_nanos: stats.uptime_nanos,
            subscribers_evicted: stats.subscribers_evicted,
            unavailable_sent: stats.unavailable_sent,
            faults_injected: stats.faults_injected,
            directory_epoch: stats.directory_epoch,
            latency: stats.latency,
        });
    }
    fleet.at_nanos = now_nanos();
    fleet
}

/// The observer's shared read surface: latest snapshot, retained series,
/// current alerts.
#[derive(Debug)]
struct ObserverShared {
    directory: Arc<Directory>,
    series: Mutex<TimeSeries<Arc<FleetSnapshot>>>,
    alerts: Mutex<Vec<AlertView>>,
    scrape_latency: Histogram,
}

/// A cloneable read handle onto a running [`FleetObserver`]'s state —
/// what the scrape exporter and terminal views render from without
/// owning (or being able to stop) the observer.
#[derive(Clone, Debug)]
pub struct FleetHandle {
    shared: Arc<ObserverShared>,
}

impl FleetHandle {
    /// The most recent completed scrape (`None` until the first sweep
    /// finishes).
    pub fn latest(&self) -> Option<Arc<FleetSnapshot>> {
        self.shared
            .series
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .latest()
            .map(|p| Arc::clone(&p.value))
    }

    /// The fleet's windowed view over (up to) the trailing `window`:
    /// latest snapshot against the retained baseline nearest the window
    /// start. `None` until two scrapes have completed. Retention shorter
    /// than the window shortens the span honestly (see
    /// [`TimeSeries::baseline`]).
    pub fn window(&self, window: Duration) -> Option<FleetWindow> {
        let series = self.shared.series.lock().unwrap_or_else(|p| p.into_inner());
        let latest = series.latest()?;
        let window_nanos = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        let base = series.baseline(latest.at_nanos, window_nanos)?;
        if base.at_nanos >= latest.at_nanos {
            return None;
        }
        Some(latest.value.delta(&base.value))
    }

    /// The SLO engine's current alert states (empty when the observer
    /// runs without SLOs, or before the first evaluation).
    pub fn alerts(&self) -> Vec<AlertView> {
        self.shared
            .alerts
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// Current directory membership (for rendering `up`/`absent` rows:
    /// a member in the directory but missing from the latest snapshot
    /// was unreachable).
    pub fn members(&self) -> Vec<Member> {
        self.shared.directory.snapshot().members().to_vec()
    }

    /// Snapshots currently retained.
    pub fn series_len(&self) -> usize {
        self.shared
            .series
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// The distribution of whole-scrape wall times.
    pub fn scrape_latency(&self) -> HistogramSnapshot {
        self.shared.scrape_latency.snapshot()
    }
}

/// A running background fleet scraper: one thread polling every member's
/// `Stats` on the configured (jittered) cadence, retaining a bounded
/// [`TimeSeries`] of [`FleetSnapshot`]s, and evaluating the configured
/// SLOs after every sweep. Read through [`FleetObserver::handle`].
///
/// Stops (and joins its thread) on [`FleetObserver::stop`] or drop.
#[derive(Debug)]
pub struct FleetObserver {
    inner: BackgroundLoop,
    shared: Arc<ObserverShared>,
}

impl FleetObserver {
    /// Starts the scraper thread over the shared `directory`.
    pub fn spawn(directory: Arc<Directory>, cfg: FleetObserverConfig) -> FleetObserver {
        let shared = Arc::new(ObserverShared {
            directory: Arc::clone(&directory),
            series: Mutex::new(TimeSeries::new(cfg.retain.max(2))),
            alerts: Mutex::new(Vec::new()),
            scrape_latency: Histogram::new(),
        });
        let inner = {
            let shared = Arc::clone(&shared);
            let mut sessions: HashMap<ServerId, CotClient> = HashMap::new();
            let mut engine = SloEngine::new(cfg.slos.clone());
            // Jitter PRNG: a cheap xorshift seeded per-observer from the
            // std random hasher state (no rand dependency, unique per
            // process and per spawn).
            let mut rng = jitter_seed();
            BackgroundLoop::spawn(move || {
                let watch = Stopwatch::start();
                let snap = scrape_with(&directory, cfg.timeout, &mut sessions);
                shared.scrape_latency.record_elapsed(watch);
                let at = snap.at_nanos;
                {
                    let mut series = shared.series.lock().unwrap_or_else(|p| p.into_inner());
                    series.push(at, Arc::new(snap));
                    if !engine.is_empty() {
                        let alerts = engine.evaluate(&series, at);
                        drop(series);
                        *shared.alerts.lock().unwrap_or_else(|p| p.into_inner()) = alerts;
                    }
                }
                Some(jittered(cfg.interval, cfg.jitter, &mut rng))
            })
        };
        FleetObserver { inner, shared }
    }

    /// A cloneable read handle (snapshots, windows, alerts) usable after
    /// this observer is moved or from other threads.
    pub fn handle(&self) -> FleetHandle {
        FleetHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The most recent completed scrape (`None` until the first sweep
    /// finishes). Cloned out so the caller never holds the publisher's
    /// lock across its own work.
    pub fn latest(&self) -> Option<FleetSnapshot> {
        self.handle().latest().map(|s| (*s).clone())
    }

    /// The distribution of whole-scrape wall times (connect + `Stats` +
    /// merge across the fleet) — the cost of observing, observed.
    pub fn scrape_latency(&self) -> HistogramSnapshot {
        self.shared.scrape_latency.snapshot()
    }

    /// Stops the scraper and waits for its thread to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}

/// Seeds the jitter PRNG from the std hasher's per-process random state.
fn jitter_seed() -> u64 {
    let state = std::collections::hash_map::RandomState::new();
    let mut h = state.build_hasher();
    h.write_u64(0x0b5e_72e5_11ed_a110);
    h.finish() | 1
}

/// One xorshift64 step and a uniform draw of `interval · [1−j, 1+j)`.
fn jittered(interval: Duration, jitter: f64, state: &mut u64) -> Duration {
    let j = jitter.clamp(0.0, 0.9);
    if j == 0.0 {
        return interval;
    }
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    let unit = (x >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    let factor = 1.0 - j + 2.0 * j * unit;
    Duration::from_secs_f64(interval.as_secs_f64() * factor)
}
