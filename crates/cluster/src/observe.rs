//! Fleet observability: scraping every member's v6 `Stats` telemetry
//! and merging it into one model-ready [`FleetSnapshot`].
//!
//! The serving layer records latency distributions locally (lock-free
//! histograms in each server's pool shards and serve paths — see
//! `ironman-net`'s *Telemetry (v6)* docs); this module is the roll-up:
//! a [`FleetObserver`] thread rides the health prober's cadence, pulls
//! each reachable member's `Stats` reply over a cached session, and
//! merges the per-server [`LatencyStats`] into one fleet-wide view. The
//! merge is exact at the bucket level, so a fleet-wide p99 read from the
//! snapshot carries the same ≤6.25% bucket error as a single server's —
//! and a merged quantile never leaves the range its inputs span, which
//! is what makes the roll-up trustworthy for steering decisions
//! (`observe` answers "is the fleet extension-bound?" the way `Stats`
//! counters answer "is this shard?").
//!
//! Unreachable members are *absent* from a snapshot, not zeroed: a
//! scrape reports what it saw, and the health checker owns deciding what
//! a silent member means.

use crate::background::BackgroundLoop;
use crate::directory::{Directory, MemberState, ServerId};
use ironman_net::{CotClient, LatencyStats, EPOCH_UNAWARE};
use ironman_telemetry::{Histogram, HistogramSnapshot, Stopwatch};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a [`FleetObserver`].
#[derive(Clone, Copy, Debug)]
pub struct FleetObserverConfig {
    /// Pause between scrape sweeps. Defaults to the health prober's
    /// cadence, so the fleet view is as fresh as the fleet's liveness
    /// view.
    pub interval: Duration,
    /// Per-step timeout for the observer's server sessions (connect and
    /// each `Stats` round trip): a blackholed member costs one timeout,
    /// never an OS-default connect stall.
    pub timeout: Duration,
}

impl Default for FleetObserverConfig {
    fn default() -> Self {
        FleetObserverConfig {
            interval: Duration::from_millis(25),
            timeout: Duration::from_millis(500),
        }
    }
}

/// One member's contribution to a [`FleetSnapshot`].
#[derive(Clone, Debug)]
pub struct ServerObservation {
    /// The member's stable server id.
    pub id: ServerId,
    /// Correlations this server has handed out since start.
    pub cots_served: u64,
    /// Correlations currently buffered across this server's shards.
    pub available: u64,
    /// This server's streamed-demand backlog (promised, unpushed).
    pub pending_stream_cots: u64,
    /// The server's service-wide latency distributions (its own merge
    /// over its shards).
    pub latency: LatencyStats,
}

/// A point-in-time roll-up of the whole fleet's telemetry — the
/// model-ready shape: per-server observations plus their fleet-wide
/// merge, ready for a capacity model or steering policy to consume
/// without touching any server again.
#[derive(Clone, Debug, Default)]
pub struct FleetSnapshot {
    /// The directory epoch the scrape ran under.
    pub epoch: u64,
    /// Every member scraped successfully this pass, in membership order
    /// (unreachable members are absent, not zeroed).
    pub servers: Vec<ServerObservation>,
    /// The fleet-wide merge of every scraped server's latency
    /// distributions. Merged quantiles are bounded by the per-server
    /// ones they roll up (see the module docs).
    pub latency: LatencyStats,
    /// Sum of scraped servers' buffered correlations.
    pub available: u64,
    /// Sum of scraped servers' streamed-demand backlogs.
    pub pending_stream_cots: u64,
}

/// One fleet scrape over fresh sessions: poll every routable member's
/// `Stats` and merge. The background [`FleetObserver`] keeps sessions
/// cached across sweeps; this free function is the one-shot form for
/// tests and benches.
pub fn scrape(directory: &Directory, timeout: Duration) -> FleetSnapshot {
    let mut sessions = HashMap::new();
    scrape_with(directory, timeout, &mut sessions)
}

/// The shared scrape body: cached sessions in, [`FleetSnapshot`] out.
fn scrape_with(
    directory: &Directory,
    timeout: Duration,
    sessions: &mut HashMap<ServerId, CotClient>,
) -> FleetSnapshot {
    let snapshot = directory.snapshot();
    sessions.retain(|id, _| snapshot.member(*id).is_some());
    let mut fleet = FleetSnapshot {
        epoch: snapshot.epoch(),
        ..FleetSnapshot::default()
    };
    for member in snapshot.members() {
        // Suspect members are skipped outright rather than re-dialed
        // every sweep — the same discipline as the warm-up controller;
        // the health checker owns deciding their fate.
        if member.state == MemberState::Suspect {
            sessions.remove(&member.id);
            continue;
        }
        let client = match sessions.entry(member.id) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                match CotClient::connect_timeout(
                    member.addr,
                    "fleet-observer",
                    EPOCH_UNAWARE,
                    timeout,
                ) {
                    Ok(c) => v.insert(c),
                    Err(_) => continue,
                }
            }
        };
        let stats = match client.stats() {
            Ok(s) => s,
            Err(_) => {
                sessions.remove(&member.id);
                continue;
            }
        };
        fleet.latency.merge(&stats.latency);
        fleet.available += stats.available;
        fleet.pending_stream_cots += stats.pending_stream_cots;
        fleet.servers.push(ServerObservation {
            id: member.id,
            cots_served: stats.cots_served,
            available: stats.available,
            pending_stream_cots: stats.pending_stream_cots,
            latency: stats.latency,
        });
    }
    fleet
}

/// A running background fleet scraper: one thread polling every member's
/// `Stats` on the configured cadence (sessions cached across sweeps) and
/// publishing the merged [`FleetSnapshot`] for lock-cheap reads via
/// [`FleetObserver::latest`].
///
/// Stops (and joins its thread) on [`FleetObserver::stop`] or drop.
#[derive(Debug)]
pub struct FleetObserver {
    inner: BackgroundLoop,
    latest: Arc<Mutex<Option<FleetSnapshot>>>,
    scrape_latency: Arc<Histogram>,
}

impl FleetObserver {
    /// Starts the scraper thread over the shared `directory`.
    pub fn spawn(directory: Arc<Directory>, cfg: FleetObserverConfig) -> FleetObserver {
        let latest = Arc::new(Mutex::new(None));
        let scrape_latency = Arc::new(Histogram::new());
        let inner = {
            let latest = Arc::clone(&latest);
            let scrape_latency = Arc::clone(&scrape_latency);
            let mut sessions: HashMap<ServerId, CotClient> = HashMap::new();
            BackgroundLoop::spawn(move || {
                let watch = Stopwatch::start();
                let snap = scrape_with(&directory, cfg.timeout, &mut sessions);
                scrape_latency.record_elapsed(watch);
                *latest.lock().unwrap_or_else(|p| p.into_inner()) = Some(snap);
                Some(cfg.interval)
            })
        };
        FleetObserver {
            inner,
            latest,
            scrape_latency,
        }
    }

    /// The most recent completed scrape (`None` until the first sweep
    /// finishes). Cloned out so the caller never holds the publisher's
    /// lock across its own work.
    pub fn latest(&self) -> Option<FleetSnapshot> {
        self.latest
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    /// The distribution of whole-scrape wall times (connect + `Stats` +
    /// merge across the fleet) — the cost of observing, observed.
    pub fn scrape_latency(&self) -> HistogramSnapshot {
        self.scrape_latency.snapshot()
    }

    /// Stops the scraper and waits for its thread to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}
