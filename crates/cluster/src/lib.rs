//! # `ironman-cluster` — sharded multi-server COT pools
//!
//! `ironman-net` (PR 1) made one process serve correlations over sockets;
//! this crate makes a *fleet* of them behave like one elastic pool. It is
//! the serving-layer translation of the Ironman paper's core idea — keep
//! extension output streaming toward the consumer instead of computing it
//! on the demand path — applied at datacenter shape:
//!
//! * [`ClusterDirectory`] — the fleet snapshot: N `CotService` endpoints
//!   and a consistent-hash ring (sticky session→server homes, minimal
//!   reshuffle when the fleet grows).
//! * [`ClusterClient`] — one handle that routes demand: consistent-hash
//!   home first, transparent splitting of oversized requests with
//!   least-outstanding spill, and automatic failover to the next ring
//!   server on connect/IO errors.
//! * [`Warmup`] — a background refiller per server that keeps every
//!   [`SharedCotPool`](ironman_core::SharedCotPool) shard above a
//!   low-watermark *before* demand arrives, so requests drain buffers
//!   instead of waiting on inline FERRET extensions.
//! * [`ClusterServer`] / [`LocalCluster`] — service + warm-up composed,
//!   and a whole loopback fleet in one call for tests and benches.
//! * Streaming rides the `ironman-net` v2 protocol: a
//!   [`ClusterClient::stream_cots`] subscription pulls chunk pushes with
//!   credit-based backpressure instead of per-request round trips.
//!
//! # Topology
//!
//! ```text
//!                        ClusterDirectory
//!                 (addresses + consistent-hash ring)
//!                               |
//!            +------------------+------------------+
//!            v                  v                  v
//!      ClusterClient      ClusterClient      ClusterClient      (sessions)
//!       "alice"            "bob"              "carol"
//!          |  home(alice)     |  home(bob)       |  home(carol)
//!          |  + spill/failover|                  |
//!     =====+==================+==================+=====  TCP, framed v2
//!          v                  v                  v
//!     +---------+        +---------+        +---------+
//!     | CotSvc  |        | CotSvc  |        | CotSvc  |    (servers)
//!     | shards: |        | shards: |        | shards: |
//!     | [p0..p3]|        | [p0..p3]|        | [p0..p3]|
//!     +----^----+        +----^----+        +----^----+
//!          |                  |                  |
//!       Warmup             Warmup             Warmup      (background
//!     (refill below      (refill below      (refill below  FERRET
//!      low-watermark)     low-watermark)     low-watermark) extensions)
//! ```
//!
//! Each server is an independent FERRET dealer (its own `Δ` stream per
//! pool shard); a batch therefore never straddles servers, and a split
//! request returns one Δ-homogeneous batch per contacted server.
//!
//! # Quickstart
//!
//! ```
//! use ironman_cluster::{ClusterClient, ClusterServerConfig, LocalCluster, WarmupConfig};
//! use ironman_core::{Backend, Engine};
//! use ironman_ot::ferret::FerretConfig;
//! use ironman_ot::params::FerretParams;
//!
//! let engine = Engine::new(FerretConfig::new(FerretParams::toy()), Backend::ironman_default());
//! let cluster = LocalCluster::spawn(
//!     3,
//!     &engine,
//!     &ClusterServerConfig {
//!         warmup: Some(WarmupConfig::default()),
//!         ..ClusterServerConfig::default()
//!     },
//! )
//! .unwrap();
//!
//! let mut client = ClusterClient::connect(cluster.directory(), "ppml-worker-0").unwrap();
//! for batch in client.request_cots(1024).unwrap() {
//!     batch.verify().unwrap();
//! }
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod directory;
pub mod server;
pub mod warmup;

pub use client::{ClusterClient, ClusterSubscription};
pub use directory::{ClusterDirectory, ServerEntry, VIRTUAL_NODES};
pub use server::{ClusterServer, ClusterServerConfig, LocalCluster};
pub use warmup::{Warmup, WarmupConfig};
