//! # `ironman-cluster` — a dynamic fleet of COT pools
//!
//! `ironman-net` (PR 1) made one process serve correlations over sockets;
//! PR 2 made a fleet of them behave like one elastic pool; this crate now
//! gives that fleet a **control plane**, so membership is dynamic:
//! servers join, drain, fail health checks, die, and get replaced while
//! clients keep serving. It is the serving-layer translation of the
//! Ironman paper's core idea — keep extension output streaming toward the
//! consumer instead of computing it on the demand path — at datacenter
//! shape:
//!
//! * [`Directory`] — the epoch-versioned membership: `join`/`leave`/
//!   `drain` mutations bump a monotonic epoch and publish copy-on-write
//!   [`RingSnapshot`]s (consistent-hash ring over the routable members),
//!   so the request path routes lock-free while membership churns. A
//!   bounded change log answers `Sync` requests with exact deltas.
//! * [`HealthChecker`] — probes every member with the `Hello`/`Stats`
//!   round trip, marks repeat offenders suspect (out of the ring, still
//!   members), and evicts the dead — each an ordinary epoch bump.
//! * [`ClusterClient`] — one handle that routes demand: consistent-hash
//!   home first, transparent splitting of oversized requests with
//!   least-outstanding spill, failure *cooldowns* (a dead server is
//!   skipped, not re-dialed, until the cooldown or an epoch bump clears
//!   it), and epoch awareness: a `WrongEpoch` fence pulls the
//!   `DirectoryUpdate` delta, re-resolves, and retries — including
//!   **mid-stream**, resuming a subscription on the new home server with
//!   exact accounting.
//! * [`FleetWarmup`] — the fleet-level refill controller: reads each
//!   server's per-shard `Stats` and subscription backlog
//!   (`pending_stream_cots`) and splits a global refill budget across
//!   servers proportionally to demand via budgeted `Warm` RPCs
//!   (cross-server demand balancing). [`Warmup`] remains as the
//!   single-server refiller, now with adaptive cadence (bounded
//!   exponential back-off while everything is above watermark).
//! * [`FleetObserver`] — the telemetry roll-up, now an observability
//!   plane (v7): scrapes every member's `Stats` latency histograms on a
//!   jittered cadence, merges them into model-ready [`FleetSnapshot`]s
//!   (per-server observations plus their exact bucket-level fleet-wide
//!   merge), **retains** them in a bounded [`TimeSeries`], and derives
//!   restart-aware windowed rates/quantiles ([`FleetWindow`]) from any
//!   two retained points.
//! * [`SloEngine`] — declarative [`SloSpec`]s (latency p99 ceilings,
//!   supply-rate floors, stall-ratio ceilings) evaluated against the
//!   retained series with multi-window burn-rate semantics: a fast
//!   window arms an alert, fast **and** slow windows fire it, and a
//!   hysteresis period resolves it.
//! * [`FleetExporter`] — a scrape endpoint over the vendored HTTP/1.0
//!   server: `/metrics` in Prometheus text exposition (fleet and
//!   per-server gauges, counters, SLO states) and `/fleet` for humans.
//! * [`HeadroomModel`] — model-vs-measured: each server's live windowed
//!   supply rate compared against the roofline + link prediction of its
//!   supply ceiling (utilization, headroom, drift — ROADMAP item 5b's
//!   validation loop).
//! * [`ClusterServer`] / [`LocalCluster`] — service, directory, health,
//!   warm-up, and observation composed; a whole dynamic loopback fleet
//!   in a few calls for tests and benches. The client drives every
//!   session under v8 data-path deadlines with a token-budgeted,
//!   jittered retry sweep, and honors `Unavailable { retry_after_ms }`
//!   declines from supply-starved servers with hint-length cooldowns.
//! * [`ChaosSchedule`] — deterministic scripted chaos against a
//!   [`LocalCluster`]: seeded fault plans (stalls, resets, bit flips,
//!   blackholes via `ironman-net`'s `FaultInjector`), degradation
//!   windows, kills, and heals fired at fixed offsets — the harness the
//!   chaos soak proves the fault-tolerance invariants with.
//!
//! # Topology
//!
//! ```text
//!                    Directory (epoch-versioned control plane)
//!        join/leave/drain -> epoch++ -> publish RingSnapshot (COW)
//!          ^           ^                        |
//!     HealthChecker    FleetWarmup       ClusterClient(s)
//!     (probe, mark     (read Stats       (route on snapshot; on
//!      suspect, evict)  backlogs, steer    WrongEpoch: Sync delta,
//!          |            Warm budget)       re-resolve, resume streams)
//!          v                 v                  v
//!     =====+=================+==================+=====  TCP, framed v4
//!          v                 v                  v
//!     +---------+       +---------+        +---------+
//!     | CotSvc  |       | CotSvc  |        | CotSvc  |   (members; each
//!     | shards: |       | shards: |        | shards: |    an independent
//!     | [p0..p3]|       | [p0..p3]|        | [p0..p3]|    FERRET dealer)
//!     +---------+       +---------+        +---------+
//! ```
//!
//! Each server is an independent FERRET dealer (its own `Δ` stream per
//! pool shard); a batch therefore never straddles servers, and a split
//! request returns one Δ-homogeneous batch per contacted server.
//!
//! # Quickstart
//!
//! ```
//! use ironman_cluster::{ClusterClient, ClusterServerConfig, LocalCluster, WarmupConfig};
//! use ironman_core::{Backend, Engine};
//! use ironman_ot::ferret::FerretConfig;
//! use ironman_ot::params::FerretParams;
//!
//! let engine = Engine::new(FerretConfig::new(FerretParams::toy()), Backend::ironman_default());
//! let mut cluster = LocalCluster::spawn(
//!     3,
//!     &engine,
//!     &ClusterServerConfig {
//!         warmup: Some(WarmupConfig::default()),
//!         ..ClusterServerConfig::default()
//!     },
//! )
//! .unwrap();
//!
//! let mut client = ClusterClient::connect(cluster.directory(), "ppml-worker-0").unwrap();
//! for batch in client.request_cots(1024).unwrap() {
//!     batch.verify().unwrap();
//! }
//! // Membership is dynamic: kill a server, join a replacement — the
//! // client re-resolves through the epoch fence and keeps serving.
//! let victim = cluster.server_ids()[0];
//! cluster.kill_server(victim);
//! cluster.directory().leave(victim);
//! cluster.spawn_server().unwrap();
//! for batch in client.request_cots(1024).unwrap() {
//!     batch.verify().unwrap();
//! }
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod background;
pub mod chaos;
pub mod client;
pub mod directory;
pub mod exporter;
pub mod gossip;
pub mod headroom;
pub mod health;
pub mod observe;
pub mod server;
pub mod slo;
pub mod warmup;

pub use chaos::{ChaosAction, ChaosEvent, ChaosOutcome, ChaosSchedule};
pub use client::{ClusterClient, ClusterSubscription, FAILOVER_COOLDOWN};
pub use directory::{
    Directory, Member, MemberState, RingSnapshot, ServerEntry, ServerId, Stamp, MAX_WEIGHT,
    TOMBSTONE_CAP, UNATTRIBUTED, VIRTUAL_NODES,
};
pub use exporter::{FleetExporter, FleetExporterConfig};
pub use gossip::{GossipHandle, GossipIdentity, GossipStats, Gossiper, GossiperConfig};
pub use headroom::{HeadroomModel, ServerHeadroom};
pub use health::{HealthChecker, HealthConfig};
pub use ironman_telemetry::TimeSeries;
pub use observe::{
    FleetHandle, FleetObserver, FleetObserverConfig, FleetSnapshot, FleetWindow, ServerObservation,
    ServerWindow, WindowBaseline,
};
pub use server::{ClusterServer, ClusterServerConfig, LocalCluster};
pub use slo::{AlertState, AlertView, BurnWindows, SloEngine, SloKind, SloSpec};
pub use warmup::{allocate_budget, FleetWarmup, FleetWarmupConfig, Warmup, WarmupConfig};
