//! A standalone replicated fleet member: one [`ClusterServer`] process
//! carrying its own [`Directory`] replica, converged with its peers by
//! an anti-entropy [`Gossiper`] (wire v9) — the child-process shape the
//! multi-process partition/heal tests drive through a fault-injecting
//! TCP proxy, and a template for running a real fleet one process per
//! member.
//!
//! Flags (all `--key value` except the boolean switches):
//!
//! * `--id <u64>` — stable server id (required).
//! * `--name <str>` — display name (default `fleet-<id>`).
//! * `--bind <addr>` — listen address (default `127.0.0.1:0`).
//! * `--advertise <addr>` — the address *peers* should dial (default:
//!   the bound address). A proxied or NATed member advertises its proxy.
//! * `--seed-peers <addr,addr,...>` — gossip rendezvous peers dialed on
//!   every sweep regardless of membership.
//! * `--weight <u32>` — ring weight (default 1).
//! * `--params toy|toy-large` — FERRET parameter set (default `toy`).
//! * `--gossip-ms <u64>` — gossip sweep cadence (default 25).
//! * `--standby` — pre-warm this server's ring successor every sweep.
//! * `--warmup` — run the per-server warm-up refiller.
//! * `--health` — run a leader-gated health prober over the replica.
//!
//! Prints `LISTENING <bound-addr>` on stdout once serving, then obeys a
//! line protocol on stdin (the parent's control channel — pull-only
//! gossip means every member must know every rendezvous address, and
//! the parent only has them all once every child has bound):
//!
//! * `SEEDS <addr,addr,...>` — announce into the replica and start the
//!   gossiper (and health prober, with `--health`) with these rendezvous
//!   peers; answers `READY`.
//! * `LEAVE <id>` / `DRAIN <id>` — mutate the local replica (the
//!   partition-side membership writes the churn tests need); answers
//!   `OK`.
//! * EOF — graceful shutdown (the parent closed the pipe); the process
//!   is also safe to kill outright (crash-failover tests do).

use ironman_cluster::{
    ClusterServer, ClusterServerConfig, Directory, GossipIdentity, Gossiper, GossiperConfig,
    HealthChecker, HealthConfig, ServerId, WarmupConfig,
};
use ironman_core::{Backend, Engine};
use ironman_ot::ferret::FerretConfig;
use ironman_ot::params::FerretParams;
use std::io::{BufRead, Write};
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    id: u64,
    name: Option<String>,
    bind: String,
    advertise: Option<SocketAddr>,
    seed_peers: Vec<SocketAddr>,
    weight: u32,
    params: FerretParams,
    gossip_ms: u64,
    standby: bool,
    warmup: bool,
    health: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: fleet_server --id <u64> [--name <str>] [--bind <addr>] [--advertise <addr>] \
         [--seed-peers <addr,..>] [--weight <u32>] [--params toy|toy-large] [--gossip-ms <u64>] \
         [--standby] [--warmup] [--health]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        id: u64::MAX,
        name: None,
        bind: "127.0.0.1:0".to_string(),
        advertise: None,
        seed_peers: Vec::new(),
        weight: 1,
        params: FerretParams::toy(),
        gossip_ms: 25,
        standby: false,
        warmup: false,
        health: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| usage_missing(flag));
        match flag.as_str() {
            "--id" => args.id = value("--id").parse().unwrap_or_else(|_| usage()),
            "--name" => args.name = Some(value("--name")),
            "--bind" => args.bind = value("--bind"),
            "--advertise" => {
                args.advertise = Some(value("--advertise").parse().unwrap_or_else(|_| usage()));
            }
            "--seed-peers" => {
                args.seed_peers = value("--seed-peers")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--weight" => args.weight = value("--weight").parse().unwrap_or_else(|_| usage()),
            "--params" => match value("--params").as_str() {
                "toy" => args.params = FerretParams::toy(),
                "toy-large" => args.params = FerretParams::toy_large(),
                _ => usage(),
            },
            "--gossip-ms" => {
                args.gossip_ms = value("--gossip-ms").parse().unwrap_or_else(|_| usage());
            }
            "--standby" => args.standby = true,
            "--warmup" => args.warmup = true,
            "--health" => args.health = true,
            _ => usage(),
        }
    }
    if args.id == u64::MAX {
        usage();
    }
    args
}

fn usage_missing(flag: &str) -> String {
    eprintln!("missing value for {flag}");
    usage();
}

fn main() {
    let args = parse_args();
    let id = ServerId(args.id);
    let name = args
        .name
        .clone()
        .unwrap_or_else(|| format!("fleet-{}", args.id));
    let engine = Engine::new(FerretConfig::new(args.params), Backend::ironman_default());
    let directory = Arc::new(Directory::new_replica(id));
    let cfg = ClusterServerConfig {
        warmup: args.warmup.then(WarmupConfig::default),
        // Distinct streams per member: no two servers may share a
        // correlation seed, or their Δ streams collide.
        service: ironman_net::CotServiceConfig {
            seed: 0x5EED_0000 ^ args.id.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ..ironman_net::CotServiceConfig::default()
        },
    };
    let server = ClusterServer::spawn(
        args.bind.as_str(),
        &engine,
        cfg,
        Some(Arc::clone(&directory)),
    )
    .expect("bind listen address");
    server.set_self_id(id);
    // Peers dial the advertised address (the proxy, behind one), not the
    // bind address; everything this process announces must carry it.
    let advertise = args.advertise.unwrap_or_else(|| server.addr());

    println!("LISTENING {}", server.addr());
    std::io::stdout().flush().expect("flush stdout");

    let mut gossiper: Option<Gossiper> = None;
    let mut health: Option<HealthChecker> = None;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let mut words = line.split_whitespace();
        match words.next() {
            Some("SEEDS") => {
                let mut seeds: Vec<SocketAddr> = words
                    .next()
                    .unwrap_or("")
                    .split(',')
                    .filter(|s| !s.is_empty())
                    .map(|s| s.parse().expect("parseable seed address"))
                    .collect();
                seeds.extend(args.seed_peers.iter().copied());
                gossiper.get_or_insert_with(|| {
                    Gossiper::spawn(
                        Arc::clone(&directory),
                        GossiperConfig {
                            interval: Duration::from_millis(args.gossip_ms.max(1)),
                            identity: Some(GossipIdentity {
                                id,
                                addr: advertise,
                                name: name.clone(),
                                weight: args.weight,
                            }),
                            seeds,
                            standby: args.standby,
                            ..GossiperConfig::default()
                        },
                    )
                });
                if args.health && health.is_none() {
                    health = Some(HealthChecker::spawn(
                        Arc::clone(&directory),
                        HealthConfig {
                            self_id: Some(id),
                            ..HealthConfig::default()
                        },
                    ));
                }
                println!("READY");
            }
            // Local replica mutations: the churn tests write membership
            // on *both* sides of a partition, and this process is the
            // only writer its island has.
            Some("LEAVE") => {
                let target: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("LEAVE <id>");
                directory.leave(ServerId(target));
                println!("OK");
            }
            Some("DRAIN") => {
                let target: u64 = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .expect("DRAIN <id>");
                directory.drain(ServerId(target));
                println!("OK");
            }
            Some(_) | None => {}
        }
        std::io::stdout().flush().expect("flush stdout");
    }
    if let Some(health) = health {
        health.stop();
    }
    if let Some(gossiper) = gossiper {
        gossiper.stop();
    }
    server.shutdown();
}
