//! Deterministic fleet-level chaos: a scripted schedule of faults,
//! degradation windows, and membership churn driven against a
//! [`LocalCluster`].
//!
//! A [`ChaosSchedule`] is a list of `(offset, action)` pairs built once
//! up front — stall server X's links at t₁, corrupt server Y's frames
//! at t₂, starve Z at t₃, heal everything at t₄ — then applied by
//! polling [`ChaosSchedule::step`] from the test's own loop (or
//! [`ChaosSchedule::run`] when the loop has nothing else to do). The
//! schedule owns *what happens when*; every random choice inside an
//! action (which byte stalls, which bit flips) comes from the fault
//! injector's seeded PRNG, so a failing soak replays with the same
//! seed and the same script.
//!
//! Actions degrade gracefully against a moving fleet: killing a server
//! that already died, or arming faults on one that was replaced, is
//! skipped (and reported), not a panic — chaos scripts outlive the
//! membership they were written against, that being rather the point.

use crate::directory::ServerId;
use crate::server::LocalCluster;
use ironman_net::FaultPlan;
use std::time::{Duration, Instant};

/// One scripted disturbance (or recovery) of the fleet.
#[derive(Clone, Debug)]
pub enum ChaosAction {
    /// Arm `FaultPlan` on one server's data-path sessions.
    Faults(ServerId, FaultPlan),
    /// Disarm fault injection on one server.
    HealFaults(ServerId),
    /// Put one server into graceful degradation (`Unavailable` declines
    /// with a retry hint) for the window.
    Starve(ServerId, Duration),
    /// Lift a degradation window early.
    Unstarve(ServerId),
    /// Kill one server without telling the directory (crash semantics).
    Kill(ServerId),
    /// Mark one server draining (no new homes; existing sessions keep
    /// serving).
    Drain(ServerId),
    /// Spawn and join a replacement server (an epoch bump).
    Spawn,
    /// Disarm faults and lift degradation on every running server.
    HealAll,
}

/// A scheduled action and the offset (from the first [`step`]) it fires
/// at.
///
/// [`step`]: ChaosSchedule::step
#[derive(Clone, Debug)]
pub struct ChaosEvent {
    /// Offset from schedule start.
    pub at: Duration,
    /// What happens then.
    pub action: ChaosAction,
}

/// How one stepped event landed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// The action was applied to the fleet.
    Applied,
    /// The action's target was gone (already dead or replaced); the
    /// schedule moved on.
    SkippedDeadTarget,
    /// A `Spawn` failed to bind; the schedule moved on.
    SpawnFailed,
}

/// A deterministic, poll-driven chaos script over a [`LocalCluster`].
///
/// Build with [`ChaosSchedule::at`] (offsets may be given in any
/// order; they are kept sorted), then call [`ChaosSchedule::step`] from
/// the driving loop — the first call pins t₀. Each step applies every
/// event whose offset has passed, in offset order, exactly once.
#[derive(Debug, Default)]
pub struct ChaosSchedule {
    events: Vec<ChaosEvent>,
    next: usize,
    started: Option<Instant>,
}

impl ChaosSchedule {
    /// An empty schedule.
    pub fn new() -> ChaosSchedule {
        ChaosSchedule::default()
    }

    /// Adds `action` at `offset` from schedule start (builder-style).
    /// Events at equal offsets fire in insertion order.
    #[must_use]
    pub fn at(mut self, offset: Duration, action: ChaosAction) -> ChaosSchedule {
        assert!(self.started.is_none(), "schedule already started");
        self.events.push(ChaosEvent { at: offset, action });
        self.events.sort_by_key(|e| e.at);
        self
    }

    /// Scheduled events, in firing order.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Events not yet fired.
    pub fn remaining(&self) -> usize {
        self.events.len() - self.next
    }

    /// Whether every event has fired.
    pub fn is_done(&self) -> bool {
        self.next == self.events.len()
    }

    /// Time since the first [`ChaosSchedule::step`] (zero before it).
    pub fn elapsed(&self) -> Duration {
        self.started.map_or(Duration::ZERO, |t0| t0.elapsed())
    }

    /// Applies every event whose offset has passed, in order, returning
    /// `(event index, outcome)` per event fired this step. The first
    /// call pins the schedule's t₀.
    pub fn step(&mut self, cluster: &mut LocalCluster) -> Vec<(usize, ChaosOutcome)> {
        let t0 = *self.started.get_or_insert_with(Instant::now);
        let elapsed = t0.elapsed();
        let mut fired = Vec::new();
        while self.next < self.events.len() && self.events[self.next].at <= elapsed {
            let idx = self.next;
            let action = self.events[idx].action.clone();
            self.next += 1;
            fired.push((idx, apply(cluster, &action)));
        }
        fired
    }

    /// Drives the schedule to completion, sleeping `poll` between
    /// steps; returns the outcomes of every event in order. For tests
    /// whose driving loop does its own work between disturbances,
    /// prefer polling [`ChaosSchedule::step`] directly.
    pub fn run(mut self, cluster: &mut LocalCluster, poll: Duration) -> Vec<(usize, ChaosOutcome)> {
        let mut all = Vec::with_capacity(self.events.len());
        while !self.is_done() {
            all.extend(self.step(cluster));
            if !self.is_done() {
                std::thread::sleep(poll.max(Duration::from_millis(1)));
            }
        }
        all
    }
}

/// Applies one action to the fleet, degrading dead targets to skips.
fn apply(cluster: &mut LocalCluster, action: &ChaosAction) -> ChaosOutcome {
    let hit = |ok: bool| {
        if ok {
            ChaosOutcome::Applied
        } else {
            ChaosOutcome::SkippedDeadTarget
        }
    };
    match action {
        ChaosAction::Faults(id, plan) => hit(cluster.inject_faults(*id, plan.clone())),
        ChaosAction::HealFaults(id) => hit(cluster.heal_faults(*id)),
        ChaosAction::Starve(id, window) => hit(cluster.starve_server(*id, *window)),
        ChaosAction::Unstarve(id) => hit(cluster.unstarve_server(*id)),
        ChaosAction::Kill(id) => {
            if cluster.server(*id).is_none() {
                return ChaosOutcome::SkippedDeadTarget;
            }
            cluster.kill_server(*id);
            ChaosOutcome::Applied
        }
        ChaosAction::Drain(id) => {
            if cluster.server(*id).is_none() {
                return ChaosOutcome::SkippedDeadTarget;
            }
            cluster.drain_server(*id);
            ChaosOutcome::Applied
        }
        ChaosAction::Spawn => match cluster.spawn_server() {
            Ok(_) => ChaosOutcome::Applied,
            Err(_) => ChaosOutcome::SpawnFailed,
        },
        ChaosAction::HealAll => {
            cluster.heal_all();
            ChaosOutcome::Applied
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ClusterServerConfig;
    use ironman_core::{Backend, Engine};
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;

    fn toy_cluster(n: usize) -> LocalCluster {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        LocalCluster::spawn(n, &engine, &ClusterServerConfig::default()).expect("spawn fleet")
    }

    #[test]
    fn schedule_fires_in_offset_order_and_skips_dead_targets() {
        let mut cluster = toy_cluster(2);
        let ids = cluster.server_ids();
        let (a, b) = (ids[0], ids[1]);
        // Built out of order on purpose: the schedule sorts by offset.
        let schedule = ChaosSchedule::new()
            .at(Duration::from_millis(20), ChaosAction::Kill(a))
            .at(
                Duration::ZERO,
                ChaosAction::Starve(a, Duration::from_secs(5)),
            )
            .at(Duration::from_millis(40), ChaosAction::HealFaults(a))
            .at(
                Duration::from_millis(10),
                ChaosAction::Faults(b, FaultPlan::default()),
            )
            .at(Duration::from_millis(50), ChaosAction::HealAll);
        assert_eq!(schedule.remaining(), 5);
        let outcomes = schedule.run(&mut cluster, Duration::from_millis(2));
        assert_eq!(
            outcomes,
            vec![
                (0, ChaosOutcome::Applied),           // starve a
                (1, ChaosOutcome::Applied),           // faults b
                (2, ChaosOutcome::Applied),           // kill a
                (3, ChaosOutcome::SkippedDeadTarget), // heal-faults a: dead
                (4, ChaosOutcome::Applied),           // heal-all survivors
            ]
        );
        assert_eq!(cluster.server_ids(), vec![b]);
        cluster.shutdown();
    }

    #[test]
    fn step_is_incremental_and_pins_start_on_first_call() {
        let mut cluster = toy_cluster(1);
        let id = cluster.server_ids()[0];
        let mut schedule = ChaosSchedule::new()
            .at(
                Duration::ZERO,
                ChaosAction::Starve(id, Duration::from_secs(9)),
            )
            .at(Duration::from_secs(3600), ChaosAction::Kill(id));
        let first = schedule.step(&mut cluster);
        assert_eq!(first, vec![(0, ChaosOutcome::Applied)]);
        assert!(!schedule.is_done());
        assert_eq!(schedule.remaining(), 1);
        // The far-future event does not fire on an immediate re-step.
        assert!(schedule.step(&mut cluster).is_empty());
        assert_eq!(cluster.server_ids(), vec![id]);
        cluster.shutdown();
    }

    #[test]
    fn spawn_action_grows_the_fleet() {
        let mut cluster = toy_cluster(1);
        let schedule = ChaosSchedule::new().at(Duration::ZERO, ChaosAction::Spawn);
        let outcomes = schedule.run(&mut cluster, Duration::from_millis(1));
        assert_eq!(outcomes, vec![(0, ChaosOutcome::Applied)]);
        assert_eq!(cluster.server_ids().len(), 2);
        cluster.shutdown();
    }
}
