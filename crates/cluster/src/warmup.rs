//! Background pool warm-up: extensions run *before* demand arrives.
//!
//! The Ironman pipeline wins by keeping OT extension output streaming
//! toward the compute side instead of computing it on the critical path;
//! this module is the serving-layer version of that idea, at two scopes:
//!
//! * [`Warmup`] — the per-pool refiller: a thread sweeps one
//!   [`SharedCotPool`] and tops up any shard below the configured
//!   low-watermark. Its cadence is **adaptive**: a sweep that finds every
//!   shard already above watermark doubles the pause (bounded by
//!   [`WarmupConfig::max_interval`]) instead of spinning, and any refill
//!   resets it — so an idle server costs almost nothing while a draining
//!   one is swept at full rate.
//! * [`FleetWarmup`] — the fleet-level controller that replaces per-server
//!   refiller fleets: one thread reads every member's `Stats` (per-shard
//!   occupancy plus the `pending_stream_cots` subscription backlog) and
//!   splits a global per-sweep refill **budget** across servers
//!   proportionally to their demand, issuing budgeted `Warm` RPCs. Refill
//!   capacity follows subscription backlog instead of being spent evenly
//!   — the ROADMAP's cross-server demand balancing.
//!
//! Both refillers use [`SharedCotPool::warm`]/`warm_budgeted`, which skip
//! busy shards rather than blocking behind them: warm-up never adds
//! latency to the demand path it exists to protect. Effectiveness is
//! observable through the `Stats` reply (`warmup_refills` and the
//! per-shard occupancy/demand/refill counters).

use crate::background::BackgroundLoop;
use crate::directory::{Directory, ServerId};
use ironman_core::SharedCotPool;
use ironman_net::CotClient;
use ironman_telemetry::{Histogram, HistogramSnapshot, Stopwatch};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`Warmup`] refiller.
#[derive(Clone, Copy, Debug)]
pub struct WarmupConfig {
    /// Refill a shard when its buffered correlations drop below this.
    ///
    /// The effective value is clamped per shard, per sweep, by
    /// `SharedCotPool::warm` against the shard's *live* supply mode: up
    /// to two extensions' output for remnant-merging (pipelined) shards,
    /// and half an extension for buffer-replacing (inline) shards —
    /// including a pipelined shard that degraded to inline after its
    /// session threads died — where a post-drain refill discards the
    /// live remnant and the half cap bounds the discard to at most half
    /// the work each refill buys.
    pub low_watermark: usize,
    /// Base pause between sweeps (the cadence while refills happen).
    pub interval: Duration,
    /// Upper bound for the adaptive back-off: when a sweep refills
    /// nothing, the pause doubles up to this (clamped to at least
    /// `interval`); the first refill resets it.
    pub max_interval: Duration,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            // As warm as the half-buffer cap allows.
            low_watermark: usize::MAX,
            interval: Duration::from_millis(5),
            max_interval: Duration::from_millis(80),
        }
    }
}

/// A running background refiller over one server's [`SharedCotPool`].
///
/// Stops (and joins its thread) on [`Warmup::stop`] or drop.
#[derive(Debug)]
pub struct Warmup {
    inner: BackgroundLoop,
    sweep_latency: Arc<Histogram>,
}

impl Warmup {
    /// Starts the refiller thread over `pool` (the watermark is clamped
    /// per shard on every sweep; see [`WarmupConfig::low_watermark`]).
    pub fn spawn(pool: Arc<SharedCotPool>, cfg: WarmupConfig) -> Warmup {
        // Per-shard, per-sweep supply-mode clamping happens inside
        // SharedCotPool::warm (see WarmupConfig::low_watermark).
        let low_watermark = cfg.low_watermark.max(1);
        let max_interval = cfg.max_interval.max(cfg.interval);
        let mut pause = cfg.interval;
        let sweep_latency = Arc::new(Histogram::new());
        let inner = {
            let sweep_latency = Arc::clone(&sweep_latency);
            BackgroundLoop::spawn(move || {
                // A panicking refill must not poison shutdown (the serve
                // paths guard their pool calls the same way); the
                // refiller retires and the service degrades to inline
                // extensions, which `warmup_refills` stalling makes
                // observable.
                let watch = Stopwatch::start();
                let sweep = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    pool.warm(low_watermark)
                }));
                sweep_latency.record_elapsed(watch);
                pause = match sweep {
                    Err(_) => return None,
                    // Bounded exponential back-off while every shard sits
                    // above watermark; full cadence the moment a sweep
                    // does real work again.
                    Ok(0) => (pause * 2).min(max_interval),
                    Ok(_) => cfg.interval,
                };
                Some(pause)
            })
        };
        Warmup {
            inner,
            sweep_latency,
        }
    }

    /// The distribution of warm-up sweep wall times in nanoseconds (both
    /// no-op sweeps, which bound the refiller's idle cost, and refilling
    /// ones, which bound how long one shard top-up occupies the thread).
    pub fn sweep_latency(&self) -> HistogramSnapshot {
        self.sweep_latency.snapshot()
    }

    /// Stops the refiller and waits for its thread to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}

/// Configuration of a [`FleetWarmup`] controller.
#[derive(Clone, Copy, Debug)]
pub struct FleetWarmupConfig {
    /// Per-shard low watermark each `Warm` RPC refills toward (clamped
    /// server-side per supply mode, exactly like
    /// [`WarmupConfig::low_watermark`]).
    pub watermark: u64,
    /// Global shard-refill budget per sweep, split across servers
    /// proportionally to demand.
    pub budget: usize,
    /// How much one pending streamed correlation weighs against one
    /// correlation of passive watermark deficit when splitting the
    /// budget (demand should dominate topping-up).
    pub demand_weight: u64,
    /// Base pause between sweeps.
    pub interval: Duration,
    /// Upper bound for the adaptive back-off (same discipline as
    /// [`WarmupConfig::max_interval`]).
    pub max_interval: Duration,
    /// Per-step timeout for the controller's server sessions (connect
    /// and each `Stats`/`Warm` round trip): a blackholed member costs
    /// the sweep one timeout, never an OS-default connect stall.
    pub timeout: Duration,
}

impl Default for FleetWarmupConfig {
    fn default() -> Self {
        FleetWarmupConfig {
            watermark: u64::MAX,
            budget: 4,
            demand_weight: 4,
            interval: Duration::from_millis(5),
            max_interval: Duration::from_millis(80),
            timeout: Duration::from_millis(500),
        }
    }
}

/// The fleet-level warm-up controller (see the module docs): one thread
/// steering a global refill budget toward the servers with the deepest
/// subscription backlogs, over ordinary `Stats`/`Warm` RPC sessions.
///
/// Stops (and joins its thread) on [`FleetWarmup::stop`] or drop.
#[derive(Debug)]
pub struct FleetWarmup {
    inner: BackgroundLoop,
    sweep_latency: Arc<Histogram>,
}

impl FleetWarmup {
    /// Starts the controller thread over the shared `directory`.
    pub fn spawn(directory: Arc<Directory>, cfg: FleetWarmupConfig) -> FleetWarmup {
        let max_interval = cfg.max_interval.max(cfg.interval);
        let mut sessions: HashMap<ServerId, CotClient> = HashMap::new();
        let mut pause = cfg.interval;
        let sweep_latency = Arc::new(Histogram::new());
        let inner = {
            let sweep_latency = Arc::clone(&sweep_latency);
            BackgroundLoop::spawn(move || {
                let watch = Stopwatch::start();
                let refills = sweep(&directory, &cfg, &mut sessions);
                sweep_latency.record_elapsed(watch);
                pause = if refills == 0 {
                    (pause * 2).min(max_interval)
                } else {
                    cfg.interval
                };
                Some(pause)
            })
        };
        FleetWarmup {
            inner,
            sweep_latency,
        }
    }

    /// The distribution of controller sweep wall times in nanoseconds
    /// (polling every member's `Stats`, weighing demand, and issuing the
    /// budgeted `Warm` RPCs).
    pub fn sweep_latency(&self) -> HistogramSnapshot {
        self.sweep_latency.snapshot()
    }

    /// Stops the controller and waits for its thread to exit.
    pub fn stop(self) {
        self.inner.stop();
    }
}

/// One controller sweep: poll every member's stats, weigh demand, split
/// the budget, and issue the budgeted `Warm` RPCs. Returns total shards
/// refilled.
fn sweep(
    directory: &Directory,
    cfg: &FleetWarmupConfig,
    sessions: &mut HashMap<ServerId, CotClient>,
) -> usize {
    let snapshot = directory.snapshot();
    sessions.retain(|id, _| snapshot.member(*id).is_some());
    // Gather (id, weight) for every reachable member. A member that
    // cannot be reached just sits this sweep out — the health checker
    // owns declaring it dead — and suspect members are skipped outright
    // rather than re-dialed every sweep.
    let mut weighed: Vec<(ServerId, u64)> = Vec::with_capacity(snapshot.len());
    for member in snapshot.members() {
        if member.state == crate::directory::MemberState::Suspect {
            sessions.remove(&member.id);
            continue;
        }
        let client = match sessions.entry(member.id) {
            std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
            std::collections::hash_map::Entry::Vacant(v) => {
                match CotClient::connect_timeout(
                    member.addr,
                    "fleet-warmup",
                    ironman_net::EPOCH_UNAWARE,
                    cfg.timeout,
                ) {
                    Ok(c) => v.insert(c),
                    Err(_) => continue,
                }
            }
        };
        let max_request = client.max_request();
        let stats = match client.stats() {
            Ok(s) => s,
            Err(_) => {
                sessions.remove(&member.id);
                continue;
            }
        };
        // Deficit against the effective watermark: the server clamps a
        // merge-refill shard at 2× one extension, so cap the client-side
        // view the same way to keep full shards weightless.
        let effective = cfg.watermark.min(max_request.saturating_mul(2));
        let deficit: u64 = stats
            .shard_stats
            .iter()
            .map(|s| effective.saturating_sub(s.available))
            .sum();
        let weight = cfg
            .demand_weight
            .saturating_mul(stats.pending_stream_cots)
            .saturating_add(deficit);
        weighed.push((member.id, weight));
    }
    let weights: Vec<u64> = weighed.iter().map(|&(_, w)| w).collect();
    let shares = allocate_budget(cfg.budget as u64, &weights);
    let mut refills = 0usize;
    for ((id, _), share) in weighed.iter().zip(shares) {
        if share == 0 {
            continue;
        }
        if let Some(client) = sessions.get_mut(id) {
            match client.warm(cfg.watermark, share) {
                Ok(r) => refills += r as usize,
                Err(_) => {
                    sessions.remove(id);
                }
            }
        }
    }
    refills
}

/// Splits `budget` across `weights` proportionally (largest-remainder
/// rounding; zero-weight entries get nothing, and with every weight zero
/// the whole budget stays unspent). Exposed for direct testing: given a
/// server with 4× the backlog weight of its peers, its share must be
/// measurably larger.
pub fn allocate_budget(budget: u64, weights: &[u64]) -> Vec<u64> {
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 || budget == 0 {
        return vec![0; weights.len()];
    }
    let mut shares: Vec<u64> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(weights.len());
    let mut assigned = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let exact = (w as u128) * (budget as u128);
        let floor = (exact / total) as u64;
        shares.push(floor);
        assigned += floor;
        remainders.push((exact % total, i));
    }
    // Hand the leftover units to the largest remainders (ties toward
    // earlier entries, i.e. join order — deterministic).
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = budget - assigned;
    for &(rem, i) in &remainders {
        if leftover == 0 {
            break;
        }
        // Never give budget to a zero-weight server.
        if rem == 0 && weights[i] == 0 {
            continue;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_core::{Backend, Engine};
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;
    use std::time::Instant;

    #[test]
    fn warmup_fills_pool_before_demand() {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        let pool = Arc::new(SharedCotPool::new(&engine, 2, 3));
        let warmup = Warmup::spawn(Arc::clone(&pool), WarmupConfig::default());
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool.available() < 2 * pool.max_request() {
            assert!(Instant::now() < deadline, "warm-up never filled the pool");
            std::thread::sleep(Duration::from_millis(2));
        }
        warmup.stop();
        assert!(pool.warmup_refills() >= 2);
        // Demand after warm-up is pure buffer drain.
        let extensions_before = pool.extensions_run();
        pool.take(100).verify().unwrap();
        assert_eq!(pool.extensions_run(), extensions_before);
    }

    #[test]
    fn budget_allocation_steers_toward_backlog() {
        // The acceptance shape: one server with 4× the backlog weight of
        // its two peers gets the dominant share of the budget.
        let shares = allocate_budget(6, &[4000, 1000, 1000]);
        assert_eq!(shares.iter().sum::<u64>(), 6);
        assert!(
            shares[0] >= 2 * shares[1] && shares[0] >= 2 * shares[2],
            "4× backlog must earn a measurably larger share: {shares:?}"
        );
        // Zero weights get nothing; the budget is conserved, never
        // over-assigned.
        assert_eq!(allocate_budget(5, &[0, 0]), vec![0, 0]);
        let shares = allocate_budget(3, &[7, 0, 2]);
        assert_eq!(shares[1], 0);
        assert_eq!(shares.iter().sum::<u64>(), 3);
        // Budget smaller than the server count still lands on the
        // heaviest entries.
        let shares = allocate_budget(1, &[1, 10, 1]);
        assert_eq!(shares, vec![0, 1, 0]);
    }
}
