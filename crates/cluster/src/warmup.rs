//! Background pool warm-up: extensions run *before* demand arrives.
//!
//! The Ironman pipeline wins by keeping OT extension output streaming
//! toward the compute side instead of computing it on the critical path;
//! [`Warmup`] is the serving-layer version of that idea. A refiller
//! thread sweeps a [`SharedCotPool`] and tops up any shard whose buffer
//! has fallen below the configured low-watermark, so a client request
//! that arrives later is served from the buffer instead of paying a full
//! FERRET extension inline.
//!
//! The sweep uses [`SharedCotPool::warm`], which skips busy shards
//! rather than blocking behind them: warm-up never adds latency to the
//! demand path it exists to protect. Effectiveness is observable through
//! the service's `Stats` reply (`warmup_refills` and the per-shard
//! occupancy/refill counters).

use ironman_core::SharedCotPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`Warmup`] refiller.
#[derive(Clone, Copy, Debug)]
pub struct WarmupConfig {
    /// Refill a shard when its buffered correlations drop below this.
    ///
    /// The effective value is clamped per shard, per sweep, by
    /// `SharedCotPool::warm` against the shard's *live* supply mode: up
    /// to two extensions' output for remnant-merging (pipelined) shards,
    /// and half an extension for buffer-replacing (inline) shards —
    /// including a pipelined shard that degraded to inline after its
    /// session threads died — where a post-drain refill discards the
    /// live remnant and the half cap bounds the discard to at most half
    /// the work each refill buys.
    pub low_watermark: usize,
    /// Pause between sweeps.
    pub interval: Duration,
}

impl Default for WarmupConfig {
    fn default() -> Self {
        WarmupConfig {
            // As warm as the half-buffer cap allows.
            low_watermark: usize::MAX,
            interval: Duration::from_millis(5),
        }
    }
}

/// A running background refiller over one server's [`SharedCotPool`].
///
/// Stops (and joins its thread) on [`Warmup::stop`] or drop.
#[derive(Debug)]
pub struct Warmup {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Warmup {
    /// Starts the refiller thread over `pool` (the watermark is clamped
    /// per shard on every sweep; see [`WarmupConfig::low_watermark`]).
    pub fn spawn(pool: Arc<SharedCotPool>, cfg: WarmupConfig) -> Warmup {
        let stop = Arc::new(AtomicBool::new(false));
        // Per-shard, per-sweep supply-mode clamping happens inside
        // SharedCotPool::warm (see WarmupConfig::low_watermark).
        let low_watermark = cfg.low_watermark.max(1);
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    // A panicking refill must not poison shutdown (the
                    // serve paths guard their pool calls the same way);
                    // the refiller retires and the service degrades to
                    // inline extensions, which `warmup_refills` stalling
                    // makes observable.
                    let sweep = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        pool.warm(low_watermark)
                    }));
                    if sweep.is_err() {
                        break;
                    }
                    // park_timeout (not sleep) so stop() interrupts the
                    // pause instead of waiting it out.
                    std::thread::park_timeout(cfg.interval);
                }
            })
        };
        Warmup {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the refiller and waits for its thread to exit.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            // Never panic out of halt(): it also runs from Drop, where a
            // second panic would abort the process and mask the original
            // error.
            let _ = thread.join();
        }
    }
}

impl Drop for Warmup {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_core::{Backend, Engine};
    use ironman_ot::ferret::FerretConfig;
    use ironman_ot::params::FerretParams;
    use std::time::Instant;

    #[test]
    fn warmup_fills_pool_before_demand() {
        let engine = Engine::new(
            FerretConfig::new(FerretParams::toy()),
            Backend::ironman_default(),
        );
        let pool = Arc::new(SharedCotPool::new(&engine, 2, 3));
        let warmup = Warmup::spawn(Arc::clone(&pool), WarmupConfig::default());
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool.available() < 2 * pool.max_request() {
            assert!(Instant::now() < deadline, "warm-up never filled the pool");
            std::thread::sleep(Duration::from_millis(2));
        }
        warmup.stop();
        assert!(pool.warmup_refills() >= 2);
        // Demand after warm-up is pure buffer drain.
        let extensions_before = pool.extensions_run();
        pool.take(100).verify().unwrap();
        assert_eq!(pool.extensions_run(), extensions_before);
    }
}
