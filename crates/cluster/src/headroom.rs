//! Model-vs-measured supply headroom: live fleet `Stats` fed into the
//! perf crate's roofline and network models.
//!
//! The paper's Fig. 1(c) roofline argues where an extension's time goes
//! (SPCOT compute-bound, LPN memory-bound); this module closes the loop
//! operationally: for each server, predict the *supply ceiling* —
//! the COTs/s the machine could produce if extensions ran back-to-back
//! at the modeled SPCOT + LPN rates — and compare it with the
//! *measured* windowed supply rate from the observer. The quotient is
//! utilization, the difference is headroom, and the signed error once a
//! server saturates is model drift — the validation signal ROADMAP item
//! 5b asks for, and the input a model-driven admission policy needs.
//!
//! Reading the gauges: utilization near 1.0 with positive drift means
//! the model *under*-predicts (the machine beats the roofline — check
//! the bandwidth figure); utilization well below 1.0 under load means
//! supply is not the bottleneck (the fleet is serving- or demand-bound).

use crate::directory::ServerId;
use crate::observe::{FleetSnapshot, FleetWindow, ServerObservation};
use ironman_ot::params::FerretParams;
use ironman_perf::network::NetworkModel;
use ironman_perf::roofline::{self, Roofline};

/// Wire bytes per correlation delivered to a consumer: two 16-byte
/// blocks (`z`, `y`) plus the choice bit's share of the packed vector —
/// the serving-side cost a link model caps supply with.
const WIRE_BYTES_PER_COT: f64 = 32.125;

/// The per-server supply-ceiling model: a roofline for the extension
/// kernels, the parameter set the fleet's engines run, and optionally a
/// link model capping delivery.
#[derive(Clone, Copy, Debug)]
pub struct HeadroomModel {
    /// The machine model (compute ceiling + memory bandwidth).
    pub roofline: Roofline,
    /// The FERRET parameter set the servers extend with (drives the
    /// modeled SPCOT/LPN op and traffic counts per extension).
    pub params: FerretParams,
    /// Optional link model: when set, the predicted ceiling is also
    /// capped by the bandwidth needed to *deliver* the supply.
    pub link: Option<NetworkModel>,
}

/// One server's model-vs-measured assessment.
#[derive(Clone, Copy, Debug)]
pub struct ServerHeadroom {
    /// The member's stable server id.
    pub id: ServerId,
    /// The modeled supply ceiling, COTs/s.
    pub predicted_cots_per_sec: f64,
    /// The measured windowed supply rate, COTs/s.
    pub measured_cots_per_sec: f64,
    /// `measured / predicted` (0 when the model predicts 0).
    pub utilization: f64,
    /// Unused modeled capacity: `max(0, predicted − measured)`.
    pub headroom_cots_per_sec: f64,
    /// Signed model error: `measured − predicted`. Meaningful once the
    /// server saturates; persistent positive drift means the model
    /// under-predicts the machine.
    pub drift_cots_per_sec: f64,
}

impl HeadroomModel {
    /// The paper's CPU platform over `params`, no link cap.
    pub fn xeon(params: FerretParams) -> HeadroomModel {
        HeadroomModel {
            roofline: Roofline::xeon_5220r(),
            params,
            link: None,
        }
    }

    /// The same model with delivery capped by `link`.
    pub fn with_link(mut self, link: NetworkModel) -> HeadroomModel {
        self.link = Some(link);
        self
    }

    /// The modeled wall time of one extension, seconds: the SPCOT phase
    /// (GGM expansion, compute-bound on the roofline) plus the LPN
    /// phase (memory-bound), each run at its intensity's attainable
    /// rate.
    pub fn extension_time_s(&self) -> f64 {
        let t = self.params.t as u64;
        let n = self.params.n as u64;
        // Two AES-equivalents per interior+leaf node across t trees.
        let spcot_ops = 2.0 * (self.params.leaves.saturating_sub(1)) as f64 * t as f64;
        let spcot = self
            .roofline
            .point(spcot_ops, roofline::spcot_traffic_bytes(spcot_ops as u64));
        let lpn_ops = roofline::lpn_ops(n, t);
        let lpn = self
            .roofline
            .point(lpn_ops, roofline::lpn_traffic_bytes(n, t));
        spcot_ops / spcot.attainable_ops_per_s + lpn_ops / lpn.attainable_ops_per_s
    }

    /// The predicted supply ceiling for `obs`'s server, COTs/s:
    /// extensions back-to-back at the modeled rate, times the usable
    /// outputs per extension the server itself advertises, capped by
    /// the link model's delivery bandwidth when one is set.
    pub fn predicted_supply(&self, obs: &ServerObservation) -> f64 {
        let per_extension = obs.cots_per_extension as f64;
        let compute = per_extension / self.extension_time_s();
        match self.link {
            Some(link) => compute.min(link.bandwidth_bps / (8.0 * WIRE_BYTES_PER_COT)),
            None => compute,
        }
    }

    /// Assesses every server present in both the snapshot and the
    /// window (measured rates come from the window; the advertised
    /// outputs-per-extension from the snapshot).
    pub fn assess(&self, snapshot: &FleetSnapshot, window: &FleetWindow) -> Vec<ServerHeadroom> {
        window
            .servers
            .iter()
            .filter_map(|w| {
                let obs = snapshot.server(w.id)?;
                Some(self.server_headroom(obs, w.supply_cots_per_sec))
            })
            .collect()
    }

    /// One server's assessment from its observation and measured
    /// windowed supply rate.
    pub fn server_headroom(&self, obs: &ServerObservation, measured: f64) -> ServerHeadroom {
        let predicted = self.predicted_supply(obs);
        ServerHeadroom {
            id: obs.id,
            predicted_cots_per_sec: predicted,
            measured_cots_per_sec: measured,
            utilization: if predicted > 0.0 {
                measured / predicted
            } else {
                0.0
            },
            headroom_cots_per_sec: (predicted - measured).max(0.0),
            drift_cots_per_sec: measured - predicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironman_net::LatencyStats;

    fn toy_observation(per_extension: u64) -> ServerObservation {
        ServerObservation {
            id: ServerId(3),
            directory_epoch: 0,
            cots_served: 0,
            extensions_run: 10,
            cots_per_extension: per_extension,
            available: 0,
            pending_stream_cots: 0,
            shards: 1,
            uptime_nanos: 1_000_000_000,
            subscribers_evicted: 0,
            unavailable_sent: 0,
            faults_injected: 0,
            latency: LatencyStats::default(),
        }
    }

    #[test]
    fn prediction_is_positive_and_scales_with_outputs() {
        let model = HeadroomModel::xeon(FerretParams::OT_2POW20);
        let small = model.predicted_supply(&toy_observation(1_000));
        let large = model.predicted_supply(&toy_observation(1_000_000));
        assert!(small > 0.0);
        assert!(large > small * 100.0, "{large} vs {small}");
        // An extension is dominated by its memory-bound LPN phase: the
        // modeled time must exceed the pure LPN lower bound.
        let lpn_floor = roofline::lpn_traffic_bytes(
            FerretParams::OT_2POW20.n as u64,
            FerretParams::OT_2POW20.t as u64,
        ) / Roofline::xeon_5220r().mem_bw_bytes_per_s;
        assert!(model.extension_time_s() > lpn_floor);
    }

    #[test]
    fn link_caps_delivery() {
        let params = FerretParams::OT_2POW20;
        let free = HeadroomModel::xeon(params);
        let capped = HeadroomModel::xeon(params).with_link(NetworkModel::WAN);
        let obs = toy_observation(1_000_000);
        let wan_ceiling = NetworkModel::WAN.bandwidth_bps / (8.0 * WIRE_BYTES_PER_COT);
        assert!(capped.predicted_supply(&obs) <= wan_ceiling * 1.000_001);
        assert!(capped.predicted_supply(&obs) <= free.predicted_supply(&obs));
    }

    #[test]
    fn headroom_accounting() {
        let model = HeadroomModel::xeon(FerretParams::toy());
        let obs = toy_observation(3_000);
        let predicted = model.predicted_supply(&obs);
        let h = model.server_headroom(&obs, predicted / 2.0);
        assert!((h.utilization - 0.5).abs() < 1e-9);
        assert!((h.headroom_cots_per_sec - predicted / 2.0).abs() < 1e-6);
        assert!(h.drift_cots_per_sec < 0.0);
        // Saturated past the model: drift goes positive, headroom clamps
        // at zero.
        let over = model.server_headroom(&obs, predicted * 1.25);
        assert!(over.drift_cots_per_sec > 0.0);
        assert_eq!(over.headroom_cots_per_sec, 0.0);
    }
}
