//! The fleet-aware client: one handle that routes COT demand across every
//! server in a [`ClusterDirectory`].
//!
//! Routing policy, in order:
//!
//! 1. **Consistent-hash home** — the first chunk of every request goes to
//!    the session's home server (sticky routing keeps one `Δ` stream per
//!    consumer where possible).
//! 2. **Least-outstanding spill** — a request larger than one server's
//!    `max_request` is transparently split, and the spill chunks go to
//!    whichever healthy servers have served this session the fewest
//!    correlations so far.
//! 3. **Failover** — a connect or I/O error marks the server failed and
//!    moves on to the next server in the session's ring order; only when
//!    every server has failed does the caller see the error. Semantic
//!    errors (e.g. a server-side rejection) are *not* failed over: they
//!    would recur on every server.

use crate::directory::ClusterDirectory;
use ironman_core::CotBatch;
use ironman_net::{CotClient, CotSubscription, ServiceStats, StreamSummary};
use ironman_ot::channel::ChannelError;
use std::net::SocketAddr;

#[derive(Debug, Default)]
struct Slot {
    client: Option<CotClient>,
    /// Correlations this session has received from this server.
    served: u64,
    failed: bool,
}

/// A session's view of the fleet: lazily connected per-server sessions,
/// the routing state, and per-server load counters.
#[derive(Debug)]
pub struct ClusterClient {
    directory: ClusterDirectory,
    session: String,
    slots: Vec<Slot>,
    /// The session's ring order (home first); the failover walk.
    route: Vec<usize>,
}

impl ClusterClient {
    /// Creates a client for `session` and connects to its home server
    /// (or, if the home is down, the first reachable server in ring
    /// order).
    ///
    /// # Errors
    ///
    /// Fails only when *no* server in the directory is reachable.
    pub fn connect(directory: ClusterDirectory, session: &str) -> Result<Self, ChannelError> {
        let route = directory.route(session);
        let mut client = ClusterClient {
            slots: (0..directory.len()).map(|_| Slot::default()).collect(),
            directory,
            session: session.to_string(),
            route,
        };
        client.first_available()?;
        Ok(client)
    }

    /// The session's home server (directory index).
    pub fn home(&self) -> usize {
        self.route[0]
    }

    /// Correlations served to this session, per server (directory order) —
    /// the observable effect of the routing policy.
    pub fn served_per_server(&self) -> Vec<u64> {
        self.slots.iter().map(|s| s.served).collect()
    }

    /// The most conservative single-server request limit: the minimum
    /// `max_request` across currently-connected servers (`None` before
    /// any connection succeeds). The value can tighten as split requests
    /// connect more servers of a heterogeneous fleet; requests above it
    /// are still served — they split.
    pub fn max_request(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| s.client.as_ref())
            .map(CotClient::max_request)
            .min()
    }

    /// Fetches `n` correlations, transparently splitting requests larger
    /// than one server's `max_request` across the fleet. Each returned
    /// batch is homogeneous in `Δ` (batches from different servers carry
    /// different `Δ`s; that is inherent to a sharded fleet).
    ///
    /// # Errors
    ///
    /// Fails when every server is unreachable, or on a semantic
    /// (non-connectivity) server error.
    pub fn request_cots(&mut self, n: usize) -> Result<Vec<CotBatch>, ChannelError> {
        let mut batches = Vec::new();
        let mut remaining = n as u64;
        while remaining > 0 {
            let preferred = if batches.is_empty() {
                self.home()
            } else {
                self.least_served_healthy()
            };
            let batch = self.issue(preferred, remaining)?;
            remaining -= batch.len() as u64;
            batches.push(batch);
        }
        Ok(batches)
    }

    /// Streams `total` correlations in chunks of `batch` through one
    /// server's credit-controlled subscription (plus one one-shot request
    /// for any remainder), invoking `consume` on every batch. Returns the
    /// exact accounting.
    ///
    /// Zero-copy receive: every chunk is decoded into **one reused
    /// batch** (and the session's retained frame buffer), so `consume`
    /// borrows it for the duration of the call — a steady-state stream
    /// allocates nothing per chunk. Consumers that need to keep a batch
    /// clone it explicitly.
    ///
    /// Server choice follows the routing policy (home first, failover on
    /// connect error). A mid-stream failure is surfaced, not failed over:
    /// correlations already consumed cannot be replayed on another
    /// server.
    ///
    /// # Errors
    ///
    /// Fails when no server is reachable, on mid-stream transport or
    /// accounting errors, and with [`ChannelError::Disconnected`] when
    /// the server ended the stream early (fewer than `total`
    /// correlations were delivered; `consume` saw exactly what arrived).
    pub fn stream_cots(
        &mut self,
        total: u64,
        batch: usize,
        mut consume: impl FnMut(&CotBatch),
    ) -> Result<StreamSummary, ChannelError> {
        if total == 0 {
            return Ok(StreamSummary { chunks: 0, cots: 0 });
        }
        if batch == 0 {
            // Same typed rejection CotClient::subscribe gives this
            // misuse, raised before the chunk-count division below.
            return Err(ChannelError::RequestTooLarge {
                max: self.max_request().unwrap_or(0),
                requested: 0,
            });
        }
        let chunks = total / batch as u64;
        let remainder = (total % batch as u64) as usize;
        loop {
            let idx = self.first_available()?;
            let client = self.slots[idx].client.as_mut().expect("connected slot");
            match stream_on(client, batch, chunks, remainder, &mut consume) {
                Ok(summary) => {
                    self.slots[idx].served += summary.cots;
                    // A server may end the stream early (it is shutting
                    // down); `consume` already saw `summary.cots`
                    // correlations, but silent truncation would break the
                    // "streams `total`" contract — surface it.
                    if summary.cots != total {
                        return Err(ChannelError::Disconnected);
                    }
                    return Ok(summary);
                }
                // Only a connectivity failure while *opening* retries on
                // the next server; anything mid-stream is surfaced.
                Err(StreamAttemptError::OpenFailed(e)) if is_connectivity(&e) => {
                    self.mark_failed(idx);
                }
                Err(StreamAttemptError::OpenFailed(e)) | Err(StreamAttemptError::MidStream(e)) => {
                    return Err(e)
                }
            }
        }
    }

    /// Opens a raw streaming subscription on the session's first
    /// reachable server (for callers that want chunk-by-chunk control;
    /// [`ClusterClient::stream_cots`] is the managed path). Chunks pulled
    /// through the returned handle still feed this session's per-server
    /// load counters, so later spill routing sees the streamed load.
    ///
    /// # Errors
    ///
    /// Fails when no server is reachable or the subscription is rejected.
    pub fn subscribe(
        &mut self,
        batch: usize,
        chunks: u64,
    ) -> Result<ClusterSubscription<'_>, ChannelError> {
        let idx = self.first_available()?;
        let slot = &mut self.slots[idx];
        let sub = slot
            .client
            .as_mut()
            .expect("connected slot")
            .subscribe(batch, chunks)?;
        Ok(ClusterSubscription {
            sub,
            served: &mut slot.served,
            counted: 0,
        })
    }

    /// Fetches a statistics snapshot from every reachable server
    /// (`None` for servers that are failed or unreachable).
    pub fn stats_all(&mut self) -> Vec<(SocketAddr, Option<ServiceStats>)> {
        (0..self.directory.len())
            .map(|idx| {
                let addr = self.directory.server(idx).addr;
                let stats = if self.ensure_connected(idx).is_ok() {
                    self.slots[idx]
                        .client
                        .as_mut()
                        .expect("connected slot")
                        .stats()
                        .ok()
                } else {
                    self.mark_failed(idx);
                    None
                };
                (addr, stats)
            })
            .collect()
    }

    /// Clears failure marks, letting previously failed servers be retried
    /// (e.g. after an operator restarted one).
    pub fn heal(&mut self) {
        for slot in &mut self.slots {
            slot.failed = false;
        }
    }

    /// Issues one chunk of at most `want` correlations, starting at
    /// `preferred` and walking the session's ring order on connectivity
    /// failures.
    fn issue(&mut self, preferred: usize, want: u64) -> Result<CotBatch, ChannelError> {
        let route = self.route.clone();
        let start = route.iter().position(|&i| i == preferred).unwrap_or(0);
        let mut last_err: Option<ChannelError> = None;
        for k in 0..route.len() {
            let idx = route[(start + k) % route.len()];
            if self.slots[idx].failed {
                continue;
            }
            if let Err(e) = self.ensure_connected(idx) {
                self.mark_failed(idx);
                last_err = Some(e);
                continue;
            }
            let client = self.slots[idx].client.as_mut().expect("connected slot");
            let chunk = want.min(client.max_request()).max(1);
            match client.request_cots(chunk as usize) {
                Ok(batch) => {
                    self.slots[idx].served += batch.len() as u64;
                    return Ok(batch);
                }
                Err(e) if is_connectivity(&e) => {
                    self.mark_failed(idx);
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(ChannelError::Disconnected))
    }

    /// The healthy server that has served this session the least (ties
    /// break toward ring order) — the spill target for split requests.
    fn least_served_healthy(&self) -> usize {
        self.route
            .iter()
            .copied()
            .filter(|&idx| !self.slots[idx].failed)
            .min_by_key(|&idx| self.slots[idx].served)
            .unwrap_or(self.route[0])
    }

    /// First reachable server in ring order, connecting as needed.
    fn first_available(&mut self) -> Result<usize, ChannelError> {
        let route = self.route.clone();
        let mut last_err: Option<ChannelError> = None;
        for idx in route {
            if self.slots[idx].failed {
                continue;
            }
            match self.ensure_connected(idx) {
                Ok(()) => return Ok(idx),
                Err(e) => {
                    self.mark_failed(idx);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(ChannelError::Disconnected))
    }

    fn ensure_connected(&mut self, idx: usize) -> Result<(), ChannelError> {
        if self.slots[idx].failed {
            return Err(ChannelError::Disconnected);
        }
        if self.slots[idx].client.is_some() {
            return Ok(());
        }
        let server = self.directory.server(idx);
        let name = format!("{}@{}", self.session, server.name);
        self.slots[idx].client = Some(CotClient::connect(server.addr, &name)?);
        Ok(())
    }

    fn mark_failed(&mut self, idx: usize) {
        self.slots[idx].failed = true;
        self.slots[idx].client = None;
    }
}

/// A raw subscription handle from [`ClusterClient::subscribe`]: the
/// underlying [`CotSubscription`] plus the owning server's load counter,
/// kept current as chunks arrive.
#[derive(Debug)]
pub struct ClusterSubscription<'a> {
    sub: CotSubscription<'a>,
    served: &'a mut u64,
    /// Correlations already added to `served` by `next_chunk`.
    counted: u64,
}

impl ClusterSubscription<'_> {
    /// Receives the next chunk (see [`CotSubscription::next_chunk`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::next_chunk`].
    pub fn next_chunk(&mut self) -> Result<Option<CotBatch>, ChannelError> {
        let chunk = self.sub.next_chunk()?;
        if let Some(batch) = &chunk {
            *self.served += batch.len() as u64;
            self.counted += batch.len() as u64;
        }
        Ok(chunk)
    }

    /// Receives the next chunk into a caller-retained batch, reusing its
    /// allocations (see [`CotSubscription::next_chunk_into`]); returns
    /// `false` once the stream is over. Load accounting is identical to
    /// [`ClusterSubscription::next_chunk`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::next_chunk_into`].
    pub fn next_chunk_into(&mut self, out: &mut CotBatch) -> Result<bool, ChannelError> {
        let got = self.sub.next_chunk_into(out)?;
        if got {
            *self.served += out.len() as u64;
            self.counted += out.len() as u64;
        }
        Ok(got)
    }

    /// Credits granted but not yet consumed by an arrived chunk.
    pub fn credits_outstanding(&self) -> u64 {
        self.sub.credits_outstanding()
    }

    /// Chunks still expected by this subscription.
    pub fn chunks_remaining(&self) -> u64 {
        self.sub.chunks_remaining()
    }

    /// Ends the subscription and returns the server's accounting trailer
    /// (see [`CotSubscription::finish`]). Chunks the early-end drain
    /// discards still count toward the server's load.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::finish`].
    pub fn finish(mut self) -> Result<StreamSummary, ChannelError> {
        let summary = self.sub.end()?;
        *self.served += summary.cots.saturating_sub(self.counted);
        self.counted = summary.cots;
        Ok(summary)
    }
}

impl Drop for ClusterSubscription<'_> {
    /// A dropped handle still settles the load accounting: the inner
    /// subscription's close drains in-flight chunks, and those drained
    /// correlations were server work the spill routing must see.
    fn drop(&mut self) {
        if let Ok(summary) = self.sub.end() {
            *self.served += summary.cots.saturating_sub(self.counted);
        }
    }
}

/// Connectivity failures trigger failover; anything else would recur on
/// every server and is surfaced instead.
fn is_connectivity(e: &ChannelError) -> bool {
    matches!(e, ChannelError::Io(_) | ChannelError::Disconnected)
}

/// Where one streaming attempt failed — at open (retryable on another
/// server: nothing was consumed yet) or mid-stream (not retryable:
/// already-consumed correlations cannot be replayed elsewhere).
enum StreamAttemptError {
    OpenFailed(ChannelError),
    MidStream(ChannelError),
}

/// One complete streaming attempt against one server: subscription,
/// chunk loop, trailer, and the one-shot remainder. Every chunk lands in
/// `reused`, whose allocations (like the session's frame buffer) carry
/// across the whole stream.
fn stream_on(
    client: &mut CotClient,
    batch: usize,
    chunks: u64,
    remainder: usize,
    consume: &mut impl FnMut(&CotBatch),
) -> Result<StreamSummary, StreamAttemptError> {
    let mut pushed = 0u64;
    let mut cots = 0u64;
    let mut reused = CotBatch::default();
    // A total below one chunk needs no subscription at all — the
    // remainder one-shot below covers it in a single round trip.
    if chunks > 0 {
        let mut sub = client
            .subscribe(batch, chunks)
            .map_err(StreamAttemptError::OpenFailed)?;
        while sub
            .next_chunk_into(&mut reused)
            .map_err(StreamAttemptError::MidStream)?
        {
            cots += reused.len() as u64;
            consume(&reused);
        }
        let summary = sub.finish().map_err(StreamAttemptError::MidStream)?;
        debug_assert_eq!(summary.cots, cots);
        pushed = summary.chunks;
    }
    if remainder > 0 {
        // Served one-shot, so it does not count toward `chunks` (that
        // field means chunks the server *pushed*). Before the
        // subscription ran nothing was consumed, so a failure here may
        // still fail over to another server.
        let wrap: fn(ChannelError) -> StreamAttemptError = if chunks > 0 {
            StreamAttemptError::MidStream
        } else {
            StreamAttemptError::OpenFailed
        };
        client
            .request_cots_into(remainder, &mut reused)
            .map_err(wrap)?;
        cots += reused.len() as u64;
        consume(&reused);
    }
    Ok(StreamSummary {
        chunks: pushed,
        cots,
    })
}
