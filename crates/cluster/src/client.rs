//! The fleet-aware client: one handle that routes COT demand across the
//! live membership of a shared [`Directory`].
//!
//! Routing policy, in order:
//!
//! 1. **Consistent-hash home** — the first chunk of every request goes to
//!    the session's home server in the *current ring snapshot* (sticky
//!    routing keeps one `Δ` stream per consumer where possible).
//! 2. **Least-outstanding spill** — a request larger than one server's
//!    `max_request` is transparently split, and the spill chunks go to
//!    whichever healthy servers have served this session the fewest
//!    correlations so far.
//! 3. **Failover with cooldown** — a connect or I/O error puts the server
//!    in a *failure cooldown*: requests skip it without re-paying the
//!    connect timeout until the cooldown expires, a membership epoch bump
//!    clears the marks, or [`ClusterClient::heal`] is called. Semantic
//!    errors are *not* failed over: they would recur on every server.
//!
//! # Deadlines, retries & degradation (v8)
//!
//! Every server session is dialed and driven under [`OpTimeouts`]
//! deadlines (see [`ClusterClient::set_op_timeouts`]), so a blackholed
//! or stalled member costs one bounded timeout — surfaced as the typed
//! `ChannelError::TimedOut` and treated as a connectivity failure
//! (cooldown + failover), never an indefinite hang. A corrupt link
//! (`Malformed` frames) fails over the same way: garbage from one
//! server says nothing about the others.
//!
//! When a *whole* routing sweep fails on connectivity, the client may
//! sleep **one** [`RetryPolicy`] backoff step (decorrelated jitter),
//! heal, and sweep again — but only while the [`RetryBudget`] token
//! bucket has credit, so a fleet-wide outage degrades to fast typed
//! failures instead of a retry storm. One backoff per call, budget or
//! not: no call blocks longer than its deadlines plus one backoff step.
//!
//! A server answering `Unavailable { retry_after_ms }` (supply-starved,
//! wire v8) is *honored*: it is cooled down for exactly the hinted
//! window — not the generic failure cooldown — while requests fail over
//! to healthy members; if the whole fleet is starved the hint also
//! bounds the single backoff sleep. Timeouts seen, retries spent,
//! unavailable hints honored, and the backoff-sleep distribution are
//! all observable ([`ClusterClient::timeouts_seen`] and friends).
//!
//! # Epoch handling
//!
//! The client announces its directory epoch at connect and keeps each
//! server session current: when the membership changes, a stale session
//! is fenced with `WrongEpoch`, the client presents its per-origin epoch
//! vector in a `Gossip` exchange (v9 — scalar epochs from different
//! replicas of a replicated fleet are incomparable, vectors name exactly
//! which writes we hold), merges the returned delta into its
//! [`Directory`], re-resolves against the fresh ring snapshot, and
//! retries — transparently to the caller. Streams do the same
//! mid-flight: [`ClusterClient::stream_cots`] resumes a stream cut short
//! by a dead or draining server on the new home with exact accounting
//! (every correlation is consumed exactly once; nothing is lost or
//! replayed) — and when the draining server announced its successor
//! in-stream (`DrainHandoff`, v9), the resume goes straight there, zero
//! extra roundtrips.

use crate::directory::{Directory, RingSnapshot, ServerId, UNATTRIBUTED};
use ironman_core::CotBatch;
use ironman_net::{
    CotClient, CotSubscription, OpTimeouts, RetryBudget, RetryPolicy, ServiceStats, StreamSummary,
};
use ironman_ot::channel::ChannelError;
use ironman_telemetry::{
    EventKind, Histogram, HistogramSnapshot, Stopwatch, TraceEvent, TraceLog,
    DEFAULT_TRACE_CAPACITY,
};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a connect/IO failure keeps a server out of this client's
/// routing before it may be retried (an epoch bump or
/// [`ClusterClient::heal`] clears the mark earlier).
pub const FAILOVER_COOLDOWN: Duration = Duration::from_millis(250);

/// Bound on fence→resync→retry rounds per request: each round means the
/// membership moved *again* while we were retrying; past this the fleet
/// is churning too fast to route and the caller should see the error.
const MAX_EPOCH_RETRIES: usize = 8;

/// Hard ceiling on how long an `Unavailable { retry_after_ms }` hint may
/// cool a server down — a buggy or hostile hint must not bench a member
/// for hours.
const MAX_UNAVAILABLE_HINT: Duration = Duration::from_secs(30);

#[derive(Debug, Default)]
struct Slot {
    client: Option<CotClient>,
    /// Correlations this session has received from this server.
    served: u64,
    /// When this server last failed (connect or I/O); requests skip it
    /// until [`FAILOVER_COOLDOWN`] elapses.
    failed_at: Option<Instant>,
    /// Cooldown from an `Unavailable { retry_after_ms }` hint: requests
    /// skip this server until the hinted instant (the session itself is
    /// kept — the server is healthy, just starved).
    unavailable_until: Option<Instant>,
    /// The directory epoch this server session last announced (`Hello`
    /// or `Sync`); lagging behind the snapshot triggers a proactive
    /// resync before the server has to fence us.
    epoch_synced: u64,
}

/// A session's view of the fleet: the shared control-plane directory, a
/// routing snapshot, and lazily connected per-server sessions keyed by
/// stable [`ServerId`].
#[derive(Debug)]
pub struct ClusterClient {
    directory: Arc<Directory>,
    session: String,
    snapshot: Arc<RingSnapshot>,
    slots: HashMap<ServerId, Slot>,
    cooldown: Duration,
    /// Deadlines applied to every server session (connect, read, write).
    timeouts: OpTimeouts,
    /// Backoff generator for the one budgeted retry sweep per call.
    retry: RetryPolicy,
    /// Token bucket bounding retries per unit time across calls.
    budget: RetryBudget,
    /// `TimedOut` failures observed on this client's sessions.
    timeouts_seen: u64,
    /// Budgeted backoff sweeps actually slept.
    retries_spent: u64,
    /// `Unavailable { retry_after_ms }` hints honored.
    unavailable_seen: u64,
    /// Distribution of backoff sleeps actually taken.
    retry_backoff: Histogram,
    /// Routing events this client has lived through — `Failover` (arg:
    /// the cooled server's id) and `EpochFence` (arg: the epoch routed
    /// under after resync) — in a bounded ring; see
    /// [`ClusterClient::trace_events`].
    trace: TraceLog,
}

impl ClusterClient {
    /// Creates a client for `session` over the shared `directory` and
    /// connects to its home server (or, if the home is down, the first
    /// reachable server in ring order).
    ///
    /// # Errors
    ///
    /// Fails only when *no* member of the directory is reachable (or the
    /// directory is empty).
    pub fn connect(directory: Arc<Directory>, session: &str) -> Result<Self, ChannelError> {
        let snapshot = directory.snapshot();
        // Seed the backoff jitter from the session name: deterministic
        // for a given consumer (replayable tests), decorrelated across
        // differently-named consumers (no synchronized retry herd).
        let seed = fnv1a(session.as_bytes());
        let mut client = ClusterClient {
            directory,
            session: session.to_string(),
            snapshot,
            slots: HashMap::new(),
            cooldown: FAILOVER_COOLDOWN,
            timeouts: OpTimeouts::default(),
            retry: RetryPolicy::default_with_seed(seed),
            budget: RetryBudget::default_serving(),
            timeouts_seen: 0,
            retries_spent: 0,
            unavailable_seen: 0,
            retry_backoff: Histogram::new(),
            trace: TraceLog::new(DEFAULT_TRACE_CAPACITY),
        };
        client.first_available()?;
        Ok(client)
    }

    /// Overrides the failure cooldown (tests mostly; the default is
    /// [`FAILOVER_COOLDOWN`]).
    pub fn set_failover_cooldown(&mut self, cooldown: Duration) {
        self.cooldown = cooldown;
    }

    /// Overrides the per-operation deadlines for every server session.
    /// Existing sessions are dropped so the next request redials under
    /// the new deadlines; in-flight calls on other handles are
    /// unaffected (each `ClusterClient` owns its sessions).
    pub fn set_op_timeouts(&mut self, timeouts: OpTimeouts) {
        self.timeouts = timeouts;
        for slot in self.slots.values_mut() {
            slot.client = None;
        }
    }

    /// The deadlines currently applied to server sessions.
    pub fn op_timeouts(&self) -> OpTimeouts {
        self.timeouts
    }

    /// Replaces the backoff policy for budgeted retry sweeps.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Replaces the retry token bucket (e.g. a zero-refill bucket to
    /// forbid retries entirely).
    pub fn set_retry_budget(&mut self, budget: RetryBudget) {
        self.budget = budget;
    }

    /// `TimedOut` failures this client has observed on its sessions.
    pub fn timeouts_seen(&self) -> u64 {
        self.timeouts_seen
    }

    /// Budgeted backoff sweeps this client has slept.
    pub fn retries_spent(&self) -> u64 {
        self.retries_spent
    }

    /// `Unavailable { retry_after_ms }` declines this client has
    /// honored with a hint-length cooldown.
    pub fn unavailable_seen(&self) -> u64 {
        self.unavailable_seen
    }

    /// The distribution of backoff sleeps actually taken (nanoseconds).
    pub fn retry_backoff(&self) -> HistogramSnapshot {
        self.retry_backoff.snapshot()
    }

    /// The session's current home server, per the latest ring snapshot
    /// this client has observed (`None` on an empty fleet).
    pub fn home(&self) -> Option<ServerId> {
        self.snapshot.home(&self.session)
    }

    /// The membership epoch this client currently routes under.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// Correlations served to this session per server, sorted by id —
    /// the observable effect of the routing policy. Includes servers
    /// that have since left the fleet.
    pub fn served_per_server(&self) -> Vec<(ServerId, u64)> {
        let mut out: Vec<(ServerId, u64)> =
            self.slots.iter().map(|(id, s)| (*id, s.served)).collect();
        out.sort_unstable_by_key(|&(id, _)| id);
        out
    }

    /// Correlations served to this session by one server.
    pub fn served_for(&self, id: ServerId) -> u64 {
        self.slots.get(&id).map_or(0, |s| s.served)
    }

    /// Total correlations served to this session across the fleet.
    pub fn served_total(&self) -> u64 {
        self.slots.values().map(|s| s.served).sum()
    }

    /// The most conservative single-server request limit: the minimum
    /// `max_request` across currently-connected servers (`None` before
    /// any connection succeeds). The value can tighten as split requests
    /// connect more servers of a heterogeneous fleet; requests above it
    /// are still served — they split.
    pub fn max_request(&self) -> Option<u64> {
        self.slots
            .values()
            .filter_map(|s| s.client.as_ref())
            .map(CotClient::max_request)
            .min()
    }

    /// Fetches `n` correlations, transparently splitting requests larger
    /// than one server's `max_request` across the fleet. Each returned
    /// batch is homogeneous in `Δ` (batches from different servers carry
    /// different `Δ`s; that is inherent to a sharded fleet).
    ///
    /// # Errors
    ///
    /// Fails when every server is unreachable, on a semantic
    /// (non-connectivity) server error, or when the membership churns
    /// faster than the client can resync.
    pub fn request_cots(&mut self, n: usize) -> Result<Vec<CotBatch>, ChannelError> {
        let mut batches = Vec::new();
        let mut remaining = n as u64;
        while remaining > 0 {
            let mut batch = CotBatch::default();
            self.issue_into(batches.is_empty(), remaining, &mut batch)?;
            remaining -= batch.len() as u64;
            batches.push(batch);
        }
        Ok(batches)
    }

    /// The buffer-reusing form of [`ClusterClient::request_cots`]: every
    /// split chunk lands in **one reused batch** handed to `visit` by
    /// borrow, so an oversized request crossing the whole fleet
    /// allocates nothing per chunk — the PR-3 zero-copy contract
    /// extended across the split path. Returns the number of chunks
    /// visited. Consumers that keep a batch past the next chunk clone it
    /// explicitly.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`ClusterClient::request_cots`]; chunks
    /// already visited stay visited (the visitor is not replayed).
    pub fn request_cots_with(
        &mut self,
        n: usize,
        mut visit: impl FnMut(&CotBatch),
    ) -> Result<u64, ChannelError> {
        let mut reused = CotBatch::default();
        let mut chunks = 0u64;
        let mut remaining = n as u64;
        while remaining > 0 {
            self.issue_into(chunks == 0, remaining, &mut reused)?;
            remaining -= reused.len() as u64;
            chunks += 1;
            visit(&reused);
        }
        Ok(chunks)
    }

    /// Streams `total` correlations in chunks of `batch` through
    /// credit-controlled subscriptions (plus one one-shot request for
    /// any remainder), invoking `consume` on every batch. Returns the
    /// exact accounting.
    ///
    /// Zero-copy receive: every chunk is decoded into **one reused
    /// batch** (and each session's retained frame buffer), so `consume`
    /// borrows it for the duration of the call — a steady-state stream
    /// allocates nothing per chunk.
    ///
    /// **Resumes across membership changes.** Server choice follows the
    /// routing policy; when the serving server dies mid-stream, ends the
    /// stream early (drain/shutdown), or fences a stale epoch, the
    /// client re-resolves against the updated membership and continues
    /// the stream on the new home for exactly the correlations still
    /// owed. `consume` sees every correlation exactly once — nothing
    /// lost, nothing replayed. Only accounting violations and semantic
    /// errors abort the stream.
    ///
    /// # Errors
    ///
    /// Fails when no server is reachable, on accounting violations or
    /// semantic errors, and with [`ChannelError::Disconnected`] when the
    /// whole fleet stops making progress before `total` is delivered
    /// (`consume` saw exactly what arrived).
    pub fn stream_cots(
        &mut self,
        total: u64,
        batch: usize,
        mut consume: impl FnMut(&CotBatch),
    ) -> Result<StreamSummary, ChannelError> {
        if total == 0 {
            return Ok(StreamSummary { chunks: 0, cots: 0 });
        }
        if batch == 0 {
            // Same typed rejection CotClient::subscribe gives this
            // misuse, raised before the chunk-count division below.
            return Err(ChannelError::RequestTooLarge {
                max: self.max_request().unwrap_or(0),
                requested: 0,
            });
        }
        let mut progress = StreamProgress::default();
        let mut reused = CotBatch::default();
        let mut dry_attempts = 0usize;
        let mut epoch_retries = 0usize;
        let mut retried = false;
        while progress.cots < total {
            let preferred = progress.handoff.take();
            let id = match self.first_available_preferring(preferred) {
                Ok(id) => id,
                // Nobody reachable (or everybody cooling down): one
                // budgeted backoff sweep, then the failure surfaces.
                Err(e) if !retried && is_connectivity(&e) && self.backoff_once(None) => {
                    retried = true;
                    continue;
                }
                Err(e) => return Err(e),
            };
            let remaining = total - progress.cots;
            let chunks = remaining / batch as u64;
            let remainder = (remaining % batch as u64) as usize;
            let before = progress.cots;
            let client = self
                .slots
                .get_mut(&id)
                .and_then(|s| s.client.as_mut())
                .expect("first_available leaves a connected slot");
            let outcome = stream_on(
                client,
                batch,
                chunks,
                remainder,
                &mut reused,
                &mut progress,
                &mut consume,
            );
            let gained = progress.cots - before;
            if let Some(slot) = self.slots.get_mut(&id) {
                slot.served += gained;
            }
            match outcome {
                Ok(()) if progress.cots == total => {
                    return Ok(StreamSummary {
                        chunks: progress.chunks,
                        cots: progress.cots,
                    });
                }
                // A clean-but-short stream is the server bowing out
                // (drain or shutdown): cool it down and resume the
                // remainder elsewhere.
                Ok(()) => self.mark_failed(id),
                Err(StreamAttemptError::OpenFailed(ChannelError::WrongEpoch { .. }))
                | Err(StreamAttemptError::MidStream(ChannelError::WrongEpoch { .. })) => {
                    // Fenced: the membership moved. Resync and re-route;
                    // progress so far is preserved.
                    epoch_retries += 1;
                    if epoch_retries > MAX_EPOCH_RETRIES {
                        return Err(ChannelError::Disconnected);
                    }
                    self.resync(id)?;
                    continue;
                }
                Err(StreamAttemptError::OpenFailed(ChannelError::Unavailable {
                    retry_after_ms,
                }))
                | Err(StreamAttemptError::MidStream(ChannelError::Unavailable {
                    retry_after_ms,
                })) => {
                    // Starved server: honor the hint; progress so far is
                    // preserved and the remainder resumes elsewhere.
                    self.mark_unavailable(id, retry_after_ms);
                }
                Err(StreamAttemptError::OpenFailed(e)) if is_connectivity(&e) => {
                    self.note_failure(&e);
                    self.mark_failed(id);
                }
                Err(StreamAttemptError::MidStream(e)) if is_connectivity(&e) => {
                    // The server died mid-stream. Chunks already consumed
                    // are counted; the remainder resumes elsewhere.
                    self.note_failure(&e);
                    self.mark_failed(id);
                }
                Err(StreamAttemptError::OpenFailed(e)) | Err(StreamAttemptError::MidStream(e)) => {
                    return Err(e)
                }
            }
            // Bound attempts that deliver nothing: once every member has
            // had a dry turn, the fleet is not making progress. Progress
            // resets both counters — the bounds exist to catch a fleet
            // churning faster than the client can resync, not to cap how
            // many membership changes a long-lived stream may ride out.
            if gained == 0 {
                dry_attempts += 1;
                if dry_attempts > self.snapshot.len().max(1) {
                    return Err(ChannelError::Disconnected);
                }
            } else {
                dry_attempts = 0;
                epoch_retries = 0;
            }
        }
        Ok(StreamSummary {
            chunks: progress.chunks,
            cots: progress.cots,
        })
    }

    /// Opens a raw streaming subscription on the session's first
    /// reachable server (for callers that want chunk-by-chunk control;
    /// [`ClusterClient::stream_cots`] is the managed path and the one
    /// that resumes across membership changes). Chunks pulled through
    /// the returned handle still feed this session's per-server load
    /// counters, so later spill routing sees the streamed load.
    ///
    /// # Errors
    ///
    /// Fails when no server is reachable or the subscription is rejected.
    pub fn subscribe(
        &mut self,
        batch: usize,
        chunks: u64,
    ) -> Result<ClusterSubscription<'_>, ChannelError> {
        let id = self.first_available()?;
        let slot = self.slots.get_mut(&id).expect("connected slot");
        let sub = slot
            .client
            .as_mut()
            .expect("connected slot")
            .subscribe(batch, chunks)?;
        Ok(ClusterSubscription {
            sub,
            served: &mut slot.served,
            counted: 0,
        })
    }

    /// Fetches a statistics snapshot from every current member (`None`
    /// for members that are failed, unreachable, or inside their failure
    /// cooldown — a dead member costs one connect attempt per cooldown,
    /// not one per call).
    pub fn stats_all(&mut self) -> Vec<(ServerId, SocketAddr, Option<ServiceStats>)> {
        self.refresh();
        let members: Vec<(ServerId, SocketAddr)> = self
            .snapshot
            .members()
            .iter()
            .map(|m| (m.id, m.addr))
            .collect();
        members
            .into_iter()
            .map(|(id, addr)| {
                if self.cooled(id) {
                    return (id, addr, None);
                }
                if self.ensure_connected(id).is_err() {
                    self.mark_failed(id);
                    return (id, addr, None);
                }
                let stats = self
                    .slots
                    .get_mut(&id)
                    .and_then(|s| s.client.as_mut())
                    .and_then(|c| c.stats().ok());
                if stats.is_none() {
                    self.mark_failed(id);
                }
                (id, addr, stats)
            })
            .collect()
    }

    /// Clears failure cooldowns and re-pulls the ring snapshot, letting
    /// previously failed servers be retried immediately (e.g. after an
    /// operator restarted one).
    pub fn heal(&mut self) {
        for slot in self.slots.values_mut() {
            slot.failed_at = None;
            slot.unavailable_until = None;
        }
        self.snapshot = self.directory.snapshot();
    }

    /// Re-pulls the ring snapshot when the directory has moved. An epoch
    /// bump clears every failure cooldown (the marks were made under a
    /// membership that no longer exists — a rejoined server must not
    /// inherit its predecessor's cooldown) and drops connections to
    /// members that left.
    fn refresh(&mut self) {
        if self.directory.epoch() == self.snapshot.epoch() {
            return;
        }
        let current = self.directory.snapshot();
        for (id, slot) in self.slots.iter_mut() {
            slot.failed_at = None;
            slot.unavailable_until = None;
            if current.member(*id).is_none() {
                slot.client = None;
            }
        }
        self.snapshot = current;
    }

    /// Whether `id` is inside its failure cooldown (or an honored
    /// `Unavailable` hint window) right now.
    fn cooled(&self, id: ServerId) -> bool {
        self.slots.get(&id).is_some_and(|s| {
            s.failed_at.is_some_and(|at| at.elapsed() < self.cooldown)
                || s.unavailable_until
                    .is_some_and(|until| Instant::now() < until)
        })
    }

    /// Issues one chunk of at most `want` correlations into `out`
    /// (reusing its allocations), preferring the home server for a
    /// request's first chunk and the least-served healthy server for
    /// spill chunks, walking the ring order on connectivity failures and
    /// resyncing through epoch fences. Returns the serving server.
    fn issue_into(
        &mut self,
        first_chunk: bool,
        want: u64,
        out: &mut CotBatch,
    ) -> Result<ServerId, ChannelError> {
        self.refresh();
        let mut retried = false;
        for _ in 0..=MAX_EPOCH_RETRIES {
            let route = self.snapshot.route(&self.session);
            let preferred = if first_chunk {
                self.home()
            } else {
                self.least_served_healthy(&route)
            };
            let start = preferred
                .and_then(|p| route.iter().position(|&id| id == p))
                .unwrap_or(0);
            let mut last_err: Option<ChannelError> = None;
            let mut fenced = false;
            for k in 0..route.len() {
                let id = route[(start + k) % route.len()];
                if self.cooled(id) {
                    continue;
                }
                if let Err(e) = self.ensure_connected(id) {
                    self.note_failure(&e);
                    self.mark_failed(id);
                    last_err = Some(e);
                    continue;
                }
                let client = self
                    .slots
                    .get_mut(&id)
                    .and_then(|s| s.client.as_mut())
                    .expect("connected slot");
                let chunk = want.min(client.max_request()).max(1);
                match client.request_cots_into(chunk as usize, out) {
                    Ok(()) => {
                        let slot = self.slots.get_mut(&id).expect("slot exists");
                        slot.served += out.len() as u64;
                        return Ok(id);
                    }
                    Err(ChannelError::WrongEpoch { .. }) => {
                        self.resync(id)?;
                        fenced = true;
                        break;
                    }
                    Err(ChannelError::Unavailable { retry_after_ms }) => {
                        // Supply-starved, not broken: honor the hint and
                        // keep walking to a healthy member.
                        self.mark_unavailable(id, retry_after_ms);
                        last_err = Some(ChannelError::Unavailable { retry_after_ms });
                    }
                    Err(e) if is_connectivity(&e) => {
                        self.note_failure(&e);
                        self.mark_failed(id);
                        last_err = Some(e);
                    }
                    Err(e) => return Err(e),
                }
            }
            if !fenced {
                let err = last_err.unwrap_or(ChannelError::Disconnected);
                let hint = match &err {
                    ChannelError::Unavailable { retry_after_ms } => Some(*retry_after_ms),
                    _ => None,
                };
                // The whole sweep failed: one budgeted backoff, then one
                // more sweep. `retried` bounds this call to a single
                // backoff step regardless of budget.
                if !retried && (hint.is_some() || is_connectivity(&err)) && self.backoff_once(hint)
                {
                    retried = true;
                    continue;
                }
                return Err(err);
            }
        }
        Err(ChannelError::Disconnected)
    }

    /// The healthy server that has served this session the least (ties
    /// break toward ring order) — the spill target for split requests.
    fn least_served_healthy(&self, route: &[ServerId]) -> Option<ServerId> {
        route
            .iter()
            .copied()
            .filter(|&id| !self.cooled(id))
            .min_by_key(|&id| self.served_for(id))
            .or_else(|| route.first().copied())
    }

    /// Like [`ClusterClient::first_available`], but tries `preferred`
    /// first when it is still a routable member and not cooling down —
    /// the drain-handoff resume path (v9): the draining server already
    /// told us who inherits this session's arc, so the stream resumes
    /// there with zero extra roundtrips instead of walking ring order.
    /// An unreachable preference falls through to the ordinary walk.
    fn first_available_preferring(
        &mut self,
        preferred: Option<ServerId>,
    ) -> Result<ServerId, ChannelError> {
        self.refresh();
        if let Some(id) = preferred {
            if self.snapshot.member(id).is_some() && !self.cooled(id) {
                match self.ensure_connected(id) {
                    Ok(()) => return Ok(id),
                    Err(e) => {
                        self.note_failure(&e);
                        self.mark_failed(id);
                    }
                }
            }
        }
        self.first_available()
    }

    /// First reachable server in ring order, connecting as needed.
    fn first_available(&mut self) -> Result<ServerId, ChannelError> {
        self.refresh();
        let route = self.snapshot.route(&self.session);
        let mut last_err: Option<ChannelError> = None;
        for id in route {
            if self.cooled(id) {
                continue;
            }
            match self.ensure_connected(id) {
                Ok(()) => return Ok(id),
                Err(e) => {
                    self.note_failure(&e);
                    self.mark_failed(id);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or(ChannelError::Disconnected))
    }

    /// Connects the slot if needed (announcing the current epoch) and
    /// proactively resyncs a session whose announced epoch fell behind
    /// the snapshot, so the server does not have to fence it.
    fn ensure_connected(&mut self, id: ServerId) -> Result<(), ChannelError> {
        let member = self
            .snapshot
            .member(id)
            .cloned()
            .ok_or(ChannelError::Disconnected)?;
        let epoch = self.snapshot.epoch();
        let slot = self.slots.entry(id).or_default();
        if slot.client.is_none() {
            let name = format!("{}@{}", self.session, member.name);
            slot.client = Some(CotClient::connect_with_timeouts(
                member.addr,
                &name,
                epoch,
                self.timeouts,
            )?);
            slot.epoch_synced = epoch;
            slot.failed_at = None;
        }
        if slot.epoch_synced < epoch {
            self.resync(id)?;
            // The resync itself may have found the server dead (it cools
            // the slot down and drops the connection rather than
            // erroring, so the caller's walk moves on): only report
            // connected if a live client actually remains.
            if self
                .slots
                .get(&id)
                .and_then(|s| s.client.as_ref())
                .is_none()
            {
                return Err(ChannelError::Disconnected);
            }
        }
        Ok(())
    }

    /// Pulls the membership delta from server `id` via the v9 gossip
    /// exchange — presenting our per-origin epoch vector, not the scalar
    /// epoch, because in a replicated fleet scalar epochs from different
    /// replicas are incomparable (each counts its own lineage of merges)
    /// while vectors name exactly which writes we have — applies it to
    /// the local directory, records the session as current, and re-pulls
    /// the routing snapshot. Connectivity failures cool the server down
    /// (the caller's walk moves on); semantic failures surface.
    fn resync(&mut self, id: ServerId) -> Result<(), ChannelError> {
        let have = self.directory.epoch();
        let vector = self.directory.epoch_vector();
        if let Some(client) = self.slots.get_mut(&id).and_then(|s| s.client.as_mut()) {
            match client.gossip(UNATTRIBUTED, vector) {
                Ok(delta) => {
                    self.directory.apply_delta(&delta);
                    if let Some(slot) = self.slots.get_mut(&id) {
                        slot.epoch_synced = delta.epoch.max(have);
                    }
                }
                Err(e) if is_connectivity(&e) => self.mark_failed(id),
                Err(e) => return Err(e),
            }
        }
        // Unconditional re-pull: the delta (or another actor) may have
        // moved the directory past our snapshot.
        let current = self.directory.snapshot();
        if current.epoch() != self.snapshot.epoch() {
            self.refresh();
        }
        self.trace
            .push(EventKind::EpochFence, self.snapshot.epoch());
        Ok(())
    }

    fn mark_failed(&mut self, id: ServerId) {
        self.trace.push(EventKind::Failover, id.0);
        let slot = self.slots.entry(id).or_default();
        slot.failed_at = Some(Instant::now());
        slot.client = None;
    }

    /// Books a connectivity failure's *kind*: a deadline expiry is
    /// counted and traced separately from hard IO errors (same failover
    /// treatment, different diagnosis).
    fn note_failure(&mut self, e: &ChannelError) {
        if matches!(e, ChannelError::TimedOut) {
            self.timeouts_seen += 1;
            self.trace
                .push(EventKind::Timeout, self.timeouts.read.as_nanos() as u64);
        }
    }

    /// Honors an `Unavailable { retry_after_ms }` decline: cools the
    /// server for exactly the hinted window (clamped to
    /// [`MAX_UNAVAILABLE_HINT`]) while keeping its session — the server
    /// is healthy, just starved — and books the hint.
    fn mark_unavailable(&mut self, id: ServerId, retry_after_ms: u64) {
        self.unavailable_seen += 1;
        self.trace.push(EventKind::Unavailable, retry_after_ms);
        let hint = Duration::from_millis(retry_after_ms.max(1)).min(MAX_UNAVAILABLE_HINT);
        let slot = self.slots.entry(id).or_default();
        slot.unavailable_until = Some(Instant::now() + hint);
    }

    /// One budgeted backoff sweep: spends a retry token, sleeps one
    /// [`RetryPolicy`] step (stretched to a fleet-wide `Unavailable`
    /// hint when one is in play, still capped by the policy), heals the
    /// cooldowns, and reports `true`. A dry budget refuses — the caller
    /// surfaces the failure instead of amplifying an outage.
    fn backoff_once(&mut self, hint_ms: Option<u64>) -> bool {
        if !self.budget.try_spend() {
            return false;
        }
        let mut sleep = self.retry.next_backoff();
        if let Some(ms) = hint_ms {
            sleep = sleep.max(Duration::from_millis(ms)).min(self.retry.cap());
        }
        self.retries_spent += 1;
        self.trace.push(EventKind::Retry, sleep.as_nanos() as u64);
        let watch = Stopwatch::start();
        std::thread::sleep(sleep);
        self.retry_backoff.record_elapsed(watch);
        self.heal();
        true
    }

    /// This client's recent routing events, oldest first: a `Failover`
    /// per server cooled down (arg: the server id), an `EpochFence` per
    /// membership resync (arg: the epoch routed under afterwards), plus
    /// the v8 fault-tolerance kinds — `Timeout` (arg: the read deadline,
    /// ns), `Retry` (arg: the backoff slept, ns), and `Unavailable`
    /// (arg: the server's `retry_after_ms` hint). The log is a bounded
    /// ring ([`DEFAULT_TRACE_CAPACITY`] events), so a long-lived session
    /// keeps the recent history, not all of it.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.dump()
    }
}

/// A raw subscription handle from [`ClusterClient::subscribe`]: the
/// underlying [`CotSubscription`] plus the owning server's load counter,
/// kept current as chunks arrive.
#[derive(Debug)]
pub struct ClusterSubscription<'a> {
    sub: CotSubscription<'a>,
    served: &'a mut u64,
    /// Correlations already added to `served` by `next_chunk`.
    counted: u64,
}

impl ClusterSubscription<'_> {
    /// Receives the next chunk (see [`CotSubscription::next_chunk`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::next_chunk`].
    pub fn next_chunk(&mut self) -> Result<Option<CotBatch>, ChannelError> {
        let chunk = self.sub.next_chunk()?;
        if let Some(batch) = &chunk {
            *self.served += batch.len() as u64;
            self.counted += batch.len() as u64;
        }
        Ok(chunk)
    }

    /// Receives the next chunk into a caller-retained batch, reusing its
    /// allocations (see [`CotSubscription::next_chunk_into`]); returns
    /// `false` once the stream is over. Load accounting is identical to
    /// [`ClusterSubscription::next_chunk`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::next_chunk_into`].
    pub fn next_chunk_into(&mut self, out: &mut CotBatch) -> Result<bool, ChannelError> {
        let got = self.sub.next_chunk_into(out)?;
        if got {
            *self.served += out.len() as u64;
            self.counted += out.len() as u64;
        }
        Ok(got)
    }

    /// Credits granted but not yet consumed by an arrived chunk.
    pub fn credits_outstanding(&self) -> u64 {
        self.sub.credits_outstanding()
    }

    /// Chunks still expected by this subscription.
    pub fn chunks_remaining(&self) -> u64 {
        self.sub.chunks_remaining()
    }

    /// Ends the subscription and returns the server's accounting trailer
    /// (see [`CotSubscription::finish`]). Chunks the early-end drain
    /// discards still count toward the server's load.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`CotSubscription::finish`].
    pub fn finish(mut self) -> Result<StreamSummary, ChannelError> {
        let summary = self.sub.end()?;
        *self.served += summary.cots.saturating_sub(self.counted);
        self.counted = summary.cots;
        Ok(summary)
    }
}

impl Drop for ClusterSubscription<'_> {
    /// A dropped handle still settles the load accounting: the inner
    /// subscription's close drains in-flight chunks, and those drained
    /// correlations were server work the spill routing must see.
    fn drop(&mut self) {
        if let Ok(summary) = self.sub.end() {
            *self.served += summary.cots.saturating_sub(self.counted);
        }
    }
}

/// Connectivity failures trigger failover; anything else would recur on
/// every server and is surfaced instead. Deadline expiries (`TimedOut`)
/// and corrupt frames (`Malformed`) are per-link conditions — a stalled
/// or garbling server says nothing about the rest of the fleet.
fn is_connectivity(e: &ChannelError) -> bool {
    matches!(
        e,
        ChannelError::Io(_)
            | ChannelError::Disconnected
            | ChannelError::TimedOut
            | ChannelError::Malformed { .. }
    )
}

/// FNV-1a over `bytes` — the session-name hash seeding backoff jitter.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Where one streaming attempt failed — before any chunk was consumed
/// (retryable on another server with nothing owed) or after (resumable:
/// consumed chunks are counted and only the remainder moves).
enum StreamAttemptError {
    OpenFailed(ChannelError),
    MidStream(ChannelError),
}

/// Consumed-so-far accounting carried across stream attempts.
#[derive(Debug, Default)]
struct StreamProgress {
    /// Correlations consumed (chunks + remainder one-shots).
    cots: u64,
    /// Subscription chunks consumed (remainder one-shots not counted).
    chunks: u64,
    /// The successor a draining server announced in-stream
    /// (`DrainHandoff`, v9) — the zero-roundtrip failover hint the next
    /// attempt resumes at.
    handoff: Option<ServerId>,
}

/// One streaming attempt against one server: subscription, chunk loop,
/// trailer, and the one-shot remainder. Every consumed chunk updates
/// `progress` *before* anything can fail, so the caller resumes from the
/// exact correlation where this attempt stopped. `Ok(())` with
/// `progress` short of the target means the server ended the stream
/// early (cleanly); the caller decides where to resume.
fn stream_on(
    client: &mut CotClient,
    batch: usize,
    chunks: u64,
    remainder: usize,
    reused: &mut CotBatch,
    progress: &mut StreamProgress,
    consume: &mut impl FnMut(&CotBatch),
) -> Result<(), StreamAttemptError> {
    let mut got_any = false;
    // A total below one chunk needs no subscription at all — the
    // remainder one-shot below covers it in a single round trip.
    if chunks > 0 {
        let mut sub = client
            .subscribe(batch, chunks)
            .map_err(StreamAttemptError::OpenFailed)?;
        loop {
            match sub.next_chunk_into(reused) {
                Ok(true) => {
                    got_any = true;
                    progress.cots += reused.len() as u64;
                    progress.chunks += 1;
                    // A draining server announces its successor in-stream
                    // (v9); remember it so the resume lands there without
                    // rediscovering the new home the hard way.
                    if let Some(&(id, _, _)) = sub.handoff() {
                        progress.handoff = Some(ServerId(id));
                    }
                    consume(reused);
                }
                Ok(false) => break,
                Err(e) => {
                    if let Some(&(id, _, _)) = sub.handoff() {
                        progress.handoff = Some(ServerId(id));
                    }
                    return Err(if got_any {
                        StreamAttemptError::MidStream(e)
                    } else {
                        StreamAttemptError::OpenFailed(e)
                    });
                }
            }
        }
        if let Some(&(id, _, _)) = sub.handoff() {
            progress.handoff = Some(ServerId(id));
        }
        let ended_early = sub.chunks_remaining() > 0;
        sub.finish().map_err(StreamAttemptError::MidStream)?;
        if ended_early {
            return Ok(()); // partial but clean; the caller resumes elsewhere
        }
    }
    if remainder > 0 {
        // Served one-shot, so it does not count toward `chunks` (that
        // field means subscription chunks). Before anything was consumed
        // a failure here may still fail over to another server.
        let wrap: fn(ChannelError) -> StreamAttemptError = if got_any {
            StreamAttemptError::MidStream
        } else {
            StreamAttemptError::OpenFailed
        };
        client.request_cots_into(remainder, reused).map_err(wrap)?;
        progress.cots += reused.len() as u64;
        consume(reused);
    }
    Ok(())
}
