//! The fleet scrape exporter: Prometheus text exposition and a
//! human-readable fleet page over the `ironman-net` HTTP/1.0 server.
//!
//! `GET /metrics` renders the observer's latest snapshot, its windowed
//! derivation, the SLO alert states, and (when a [`HeadroomModel`] is
//! configured) per-server model-vs-measured headroom — everything an
//! external scraper needs, computed from already-retained state (the
//! handler never touches a fleet member). `GET /fleet` renders the same
//! state as a page for humans; `GET /` lists the routes.
//!
//! Family naming follows Prometheus conventions: the `ironman_` prefix,
//! `_total` suffixes on cumulative counters, base units in the name
//! (`_nanoseconds`, `_seconds`, `_cots_per_second`), labels for
//! per-server (`server="<id>"`) and per-window (`window="fast"`)
//! breakdowns.

use crate::headroom::HeadroomModel;
use crate::observe::{FleetHandle, FleetSnapshot, FleetWindow};
use crate::slo::AlertView;
use ironman_net::http::{HttpResponse, HttpServer};
use std::fmt::Write as _;
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

/// Configuration of a [`FleetExporter`].
#[derive(Clone, Copy, Debug)]
pub struct FleetExporterConfig {
    /// The window rendered for rate/quantile gauges (labeled
    /// `window="fast"`). Defaults to 5 s — the SLO fast window.
    pub window: Duration,
    /// Model-vs-measured headroom gauges, when a machine model is
    /// configured.
    pub model: Option<HeadroomModel>,
}

impl Default for FleetExporterConfig {
    fn default() -> Self {
        FleetExporterConfig {
            window: Duration::from_secs(5),
            model: None,
        }
    }
}

/// A running scrape endpoint over a [`FleetHandle`].
///
/// Stops (and joins the accept thread) on [`FleetExporter::stop`] or
/// drop.
#[derive(Debug)]
pub struct FleetExporter {
    http: HttpServer,
}

impl FleetExporter {
    /// Binds `addr` and serves `/metrics`, `/fleet`, and `/` from
    /// `handle`'s retained state.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        handle: FleetHandle,
        cfg: FleetExporterConfig,
    ) -> io::Result<FleetExporter> {
        let http = HttpServer::serve(addr, move |req| {
            let path = req.path.split('?').next().unwrap_or("");
            match path {
                "/metrics" => HttpResponse::text(render_prometheus(&handle, &cfg)),
                "/fleet" => HttpResponse::html(render_fleet_page(&handle, &cfg)),
                "/" => HttpResponse::text("routes: /metrics (Prometheus), /fleet (human)\n"),
                _ => HttpResponse::not_found(),
            }
        })?;
        Ok(FleetExporter { http })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// Requests answered so far.
    pub fn requests_served(&self) -> u64 {
        self.http.requests_served()
    }

    /// Stops the endpoint and joins its thread.
    pub fn stop(self) {
        self.http.stop();
    }
}

/// A finite f64 for exposition (Prometheus text has no place for NaN
/// here; broken ratios render as 0).
fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

struct MetricsWriter {
    out: String,
}

impl MetricsWriter {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        if labels.is_empty() {
            let _ = writeln!(self.out, "{name} {}", finite(value));
        } else {
            let rendered: Vec<String> = labels
                .iter()
                .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
                .collect();
            let _ = writeln!(
                self.out,
                "{name}{{{}}} {}",
                rendered.join(","),
                finite(value)
            );
        }
    }
}

/// Renders the full Prometheus text exposition of `handle`'s state.
pub fn render_prometheus(handle: &FleetHandle, cfg: &FleetExporterConfig) -> String {
    let mut w = MetricsWriter {
        out: String::with_capacity(4096),
    };
    let snapshot = handle.latest();
    let window = handle.window(cfg.window);
    let members = handle.members();
    let window_label = format!("{}s", cfg.window.as_secs_f64());

    w.family(
        "ironman_scrape_epoch",
        "gauge",
        "Directory epoch of the latest fleet scrape.",
    );
    w.sample(
        "ironman_scrape_epoch",
        &[],
        snapshot.as_ref().map_or(0.0, |s| s.epoch as f64),
    );

    w.family(
        "ironman_fleet_available_cots",
        "gauge",
        "Correlations buffered across the scraped fleet.",
    );
    w.sample(
        "ironman_fleet_available_cots",
        &[],
        snapshot.as_ref().map_or(0.0, |s| s.available as f64),
    );

    w.family(
        "ironman_fleet_pending_stream_cots",
        "gauge",
        "Promised-but-unpushed streamed demand across the fleet.",
    );
    w.sample(
        "ironman_fleet_pending_stream_cots",
        &[],
        snapshot
            .as_ref()
            .map_or(0.0, |s| s.pending_stream_cots as f64),
    );

    w.family(
        "ironman_fleet_supply_cots_per_second",
        "gauge",
        "Windowed fleet COT supply rate (extensions x outputs per extension).",
    );
    w.family(
        "ironman_fleet_served_cots_per_second",
        "gauge",
        "Windowed fleet serving rate.",
    );
    w.family(
        "ironman_fleet_stall_ratio",
        "gauge",
        "Windowed consumer-stall time per second of wall time, fleet-wide.",
    );
    w.family(
        "ironman_fleet_chunk_push_p99_nanoseconds",
        "gauge",
        "Windowed fleet p99 chunk-push latency (bucket ceiling, <=6.25% high).",
    );
    if let Some(win) = &window {
        let l = [("window", window_label.clone())];
        w.sample(
            "ironman_fleet_supply_cots_per_second",
            &l,
            win.supply_cots_per_sec,
        );
        w.sample(
            "ironman_fleet_served_cots_per_second",
            &l,
            win.served_cots_per_sec,
        );
        w.sample("ironman_fleet_stall_ratio", &l, win.stall_ratio);
        w.sample(
            "ironman_fleet_chunk_push_p99_nanoseconds",
            &l,
            win.latency.chunk_push.p99() as f64,
        );
    }

    render_servers(
        &mut w,
        snapshot.as_deref(),
        window.as_ref(),
        cfg,
        &members,
        &window_label,
    );
    render_alerts(&mut w, &handle.alerts());

    w.family(
        "ironman_observer_scrape_p99_nanoseconds",
        "gauge",
        "p99 wall time of one whole-fleet scrape.",
    );
    w.sample(
        "ironman_observer_scrape_p99_nanoseconds",
        &[],
        handle.scrape_latency().p99() as f64,
    );
    w.out
}

fn render_servers(
    w: &mut MetricsWriter,
    snapshot: Option<&FleetSnapshot>,
    window: Option<&FleetWindow>,
    cfg: &FleetExporterConfig,
    members: &[crate::directory::Member],
    window_label: &str,
) {
    w.family(
        "ironman_server_up",
        "gauge",
        "1 if the directory member answered the latest scrape, else 0.",
    );
    for m in members {
        let reached = snapshot.is_some_and(|s| s.server(m.id).is_some());
        w.sample(
            "ironman_server_up",
            &[("server", m.id.0.to_string())],
            if reached { 1.0 } else { 0.0 },
        );
    }

    w.family(
        "ironman_server_available_cots",
        "gauge",
        "Correlations buffered on this server.",
    );
    w.family(
        "ironman_server_uptime_seconds",
        "gauge",
        "Monotonic seconds since this server's service constructed.",
    );
    w.family(
        "ironman_server_cots_served_total",
        "counter",
        "Correlations handed out since server start.",
    );
    w.family(
        "ironman_server_extensions_total",
        "counter",
        "FERRET extensions run since server start.",
    );
    w.family(
        "ironman_server_subscribers_evicted_total",
        "counter",
        "Stuck streaming subscribers evicted past the push write deadline.",
    );
    w.family(
        "ironman_server_unavailable_sent_total",
        "counter",
        "Unavailable{retry_after_ms} declines sent while degraded.",
    );
    w.family(
        "ironman_server_faults_injected_total",
        "counter",
        "Faults the server's injector fired into its own data path (chaos drills).",
    );
    w.family(
        "ironman_server_directory_epoch",
        "gauge",
        "The server's own directory-replica epoch at scrape time (v9).",
    );
    w.family(
        "ironman_server_directory_epoch_lag",
        "gauge",
        "Gossip lag: the most advanced scraped replica's epoch minus this server's.",
    );
    // Lag is relative to the fleet's most advanced *scraped* replica —
    // an unreachable server cannot drag everyone else's lag up.
    let max_epoch = snapshot.map_or(0, |s| {
        s.servers
            .iter()
            .map(|o| o.directory_epoch)
            .max()
            .unwrap_or(0)
    });
    if let Some(s) = snapshot {
        for obs in &s.servers {
            let l = [("server", obs.id.0.to_string())];
            w.sample("ironman_server_available_cots", &l, obs.available as f64);
            w.sample(
                "ironman_server_uptime_seconds",
                &l,
                obs.uptime_nanos as f64 / 1e9,
            );
            w.sample(
                "ironman_server_cots_served_total",
                &l,
                obs.cots_served as f64,
            );
            w.sample(
                "ironman_server_extensions_total",
                &l,
                obs.extensions_run as f64,
            );
            w.sample(
                "ironman_server_subscribers_evicted_total",
                &l,
                obs.subscribers_evicted as f64,
            );
            w.sample(
                "ironman_server_unavailable_sent_total",
                &l,
                obs.unavailable_sent as f64,
            );
            w.sample(
                "ironman_server_faults_injected_total",
                &l,
                obs.faults_injected as f64,
            );
            w.sample(
                "ironman_server_directory_epoch",
                &l,
                obs.directory_epoch as f64,
            );
            w.sample(
                "ironman_server_directory_epoch_lag",
                &l,
                max_epoch.saturating_sub(obs.directory_epoch) as f64,
            );
        }
    }

    w.family(
        "ironman_server_supply_cots_per_second",
        "gauge",
        "Windowed per-server COT supply rate.",
    );
    w.family(
        "ironman_server_chunk_push_p99_nanoseconds",
        "gauge",
        "Windowed per-server p99 chunk-push latency.",
    );
    w.family(
        "ironman_server_stall_ratio",
        "gauge",
        "Windowed per-server consumer-stall time per second of wall time.",
    );
    if let Some(win) = window {
        for sw in &win.servers {
            let l = [
                ("server", sw.id.0.to_string()),
                ("window", window_label.to_string()),
            ];
            w.sample(
                "ironman_server_supply_cots_per_second",
                &l,
                sw.supply_cots_per_sec,
            );
            w.sample(
                "ironman_server_chunk_push_p99_nanoseconds",
                &l,
                sw.latency.chunk_push.p99() as f64,
            );
            w.sample("ironman_server_stall_ratio", &l, sw.stall_ratio);
        }
    }

    w.family(
        "ironman_server_predicted_supply_cots_per_second",
        "gauge",
        "Modeled supply ceiling (roofline + link) for this server.",
    );
    w.family(
        "ironman_server_supply_utilization",
        "gauge",
        "Measured windowed supply over the modeled ceiling.",
    );
    w.family(
        "ironman_server_headroom_cots_per_second",
        "gauge",
        "Unused modeled supply capacity, max(0, predicted - measured).",
    );
    w.family(
        "ironman_server_model_drift_cots_per_second",
        "gauge",
        "Signed model error, measured - predicted.",
    );
    if let (Some(model), Some(s), Some(win)) = (cfg.model.as_ref(), snapshot, window) {
        for h in model.assess(s, win) {
            let l = [("server", h.id.0.to_string())];
            w.sample(
                "ironman_server_predicted_supply_cots_per_second",
                &l,
                h.predicted_cots_per_sec,
            );
            w.sample("ironman_server_supply_utilization", &l, h.utilization);
            w.sample(
                "ironman_server_headroom_cots_per_second",
                &l,
                h.headroom_cots_per_sec,
            );
            w.sample(
                "ironman_server_model_drift_cots_per_second",
                &l,
                h.drift_cots_per_sec,
            );
        }
    }
}

fn render_alerts(w: &mut MetricsWriter, alerts: &[AlertView]) {
    w.family(
        "ironman_slo_state",
        "gauge",
        "SLO alert state: 0 inactive, 1 pending, 2 firing, 3 resolved.",
    );
    w.family(
        "ironman_slo_burning",
        "gauge",
        "1 if the labeled evaluation window currently violates the SLO.",
    );
    w.family(
        "ironman_slo_threshold",
        "gauge",
        "The configured SLO bound.",
    );
    for a in alerts {
        let l = [("slo", a.slo.clone())];
        w.sample("ironman_slo_state", &l, a.state.as_gauge() as f64);
        w.sample("ironman_slo_threshold", &l, a.threshold);
        for (win, burning) in [("fast", a.fast_burning), ("slow", a.slow_burning)] {
            w.sample(
                "ironman_slo_burning",
                &[("slo", a.slo.clone()), ("window", win.to_string())],
                if burning { 1.0 } else { 0.0 },
            );
        }
    }
}

/// Renders the `/fleet` page: the same state as `/metrics`, shaped for
/// a human glance.
pub fn render_fleet_page(handle: &FleetHandle, cfg: &FleetExporterConfig) -> String {
    let mut body = String::with_capacity(2048);
    let snapshot = handle.latest();
    let window = handle.window(cfg.window);
    body.push_str("<html><head><title>ironman fleet</title></head><body><pre>\n");
    match &snapshot {
        None => body.push_str("no scrape completed yet\n"),
        Some(s) => {
            let _ = writeln!(
                body,
                "epoch {}   servers {}   available {}   pending {}",
                s.epoch,
                s.servers.len(),
                s.available,
                s.pending_stream_cots
            );
            if let Some(win) = &window {
                let _ = writeln!(
                    body,
                    "window {:.1}s: supply {:.0} cots/s   served {:.0} cots/s   stall {:.3}   push p99 {} ns",
                    (win.to_nanos - win.from_nanos) as f64 / 1e9,
                    win.supply_cots_per_sec,
                    win.served_cots_per_sec,
                    win.stall_ratio,
                    win.latency.chunk_push.p99()
                );
            }
            body.push_str("\nserver  up  avail      supply/s     served/s   stall  headroom/s\n");
            for m in handle.members() {
                let obs = s.server(m.id);
                let sw = window
                    .as_ref()
                    .and_then(|w| w.servers.iter().find(|sw| sw.id == m.id));
                let headroom = match (cfg.model.as_ref(), obs, sw) {
                    (Some(model), Some(obs), Some(sw)) => format!(
                        "{:.0}",
                        model
                            .server_headroom(obs, sw.supply_cots_per_sec)
                            .headroom_cots_per_sec
                    ),
                    _ => "-".to_string(),
                };
                let _ = writeln!(
                    body,
                    "{:>6}  {:>2}  {:>7}  {:>11}  {:>11}  {:>6}  {:>10}",
                    m.id.0,
                    if obs.is_some() { "y" } else { "n" },
                    obs.map_or("-".to_string(), |o| o.available.to_string()),
                    sw.map_or("-".to_string(), |w| format!("{:.0}", w.supply_cots_per_sec)),
                    sw.map_or("-".to_string(), |w| format!("{:.0}", w.served_cots_per_sec)),
                    sw.map_or("-".to_string(), |w| format!("{:.3}", w.stall_ratio)),
                    headroom,
                );
            }
        }
    }
    let alerts = handle.alerts();
    if !alerts.is_empty() {
        body.push_str("\nslo alerts\n");
        for a in &alerts {
            let _ = writeln!(
                body,
                "  {:<20} {:<9} fast {} slow {} (threshold {})",
                a.slo,
                a.state.name(),
                a.fast_value.map_or("-".to_string(), |v| format!("{v:.1}")),
                a.slow_value.map_or("-".to_string(), |v| format!("{v:.1}")),
                a.threshold,
            );
        }
    }
    body.push_str("</pre></body></html>\n");
    body
}
