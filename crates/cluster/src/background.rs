//! The shared scaffolding of this crate's background controllers
//! ([`Warmup`](crate::Warmup), [`FleetWarmup`](crate::FleetWarmup),
//! [`HealthChecker`](crate::HealthChecker)): one stoppable thread
//! running a sweep function on a self-chosen cadence.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A background thread driving a sweep closure in a stop-flag loop.
///
/// The closure returns the pause until its next run, or `None` to
/// retire (e.g. after a contained panic). The pause is interruptible:
/// [`BackgroundLoop::stop`] (and drop) unparks the thread so shutdown
/// never waits a full interval out.
#[derive(Debug)]
pub(crate) struct BackgroundLoop {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl BackgroundLoop {
    pub(crate) fn spawn(mut step: impl FnMut() -> Option<Duration> + Send + 'static) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match step() {
                        Some(pause) => std::thread::park_timeout(pause),
                        None => break,
                    }
                }
            })
        };
        BackgroundLoop {
            stop,
            thread: Some(thread),
        }
    }

    pub(crate) fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            thread.thread().unpark();
            // Never panic out of halt(): it also runs from Drop, where a
            // second panic would abort the process and mask the original
            // error.
            let _ = thread.join();
        }
    }
}

impl Drop for BackgroundLoop {
    fn drop(&mut self) {
        self.halt();
    }
}
